//! # doduo-repro
//!
//! Umbrella crate for the DODUO (SIGMOD 2022) reproduction. It re-exports
//! the workspace crates under one roof and hosts the runnable examples and
//! the cross-crate integration tests. See `README.md` for the tour and
//! `DESIGN.md` for the substitution ledger.

pub use doduo_baselines as baselines;
pub use doduo_core as core;
pub use doduo_datagen as datagen;
pub use doduo_eval as eval;
pub use doduo_serve as serve;
pub use doduo_table as table;
pub use doduo_tensor as tensor;
pub use doduo_tokenizer as tokenizer;
pub use doduo_transformer as transformer;
