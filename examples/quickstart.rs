//! Quickstart: the DODUO pipeline end to end, in miniature.
//!
//! 1. Generate a synthetic knowledge base and verbalize it into a corpus.
//! 2. Pretrain a small BERT-style LM (masked-language-model objective).
//! 3. Fine-tune Doduo on a WikiTable-style benchmark with multi-task
//!    learning (column types + column relations, Algorithm 1).
//! 4. Annotate a brand-new table — the paper's Figure 2(a) scenario.
//!
//! Run with: `cargo run --release --example quickstart`

use doduo_core::{
    build_finetune_model, prepare, pretrain_lm, train, Annotator, DoduoConfig, PretrainRecipe,
    Task, TrainConfig,
};
use doduo_datagen::{
    generate_corpus, generate_wikitable, CorpusConfig, KbConfig, KnowledgeBase, WikiTableConfig,
};
use doduo_table::{Column, SerializeConfig, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let seed = 42;

    // --- 1. The world: entities, facts, and text about them.
    println!("[1/4] generating knowledge base + corpus…");
    let kb = KnowledgeBase::generate(&KbConfig::default(), seed);
    let corpus = generate_corpus(&kb, &CorpusConfig::default());
    println!("      {} sentences, e.g. {:?}", corpus.len(), &corpus[0]);

    // --- 2. Pretrain the language model (a scaled-down BERT).
    println!("[2/4] pretraining the LM (masked language modelling)…");
    let mut recipe = PretrainRecipe::tiny();
    recipe.mlm.epochs = 12;
    let lm = pretrain_lm(&corpus, &recipe, seed);
    println!(
        "      vocab = {}, MLM loss {:.2} -> {:.2}",
        lm.tokenizer.vocab_size(),
        lm.losses.first().unwrap(),
        lm.losses.last().unwrap()
    );

    // --- 3. Fine-tune Doduo with multi-task learning.
    println!("[3/4] fine-tuning Doduo (types + relations)…");
    let ds = generate_wikitable(&kb, &WikiTableConfig { n_tables: 250, ..Default::default() });
    let mut rng = StdRng::seed_from_u64(seed);
    let (train_ds, valid_ds, test_ds) = ds.split(0.75, 0.1, &mut rng);
    let (mut store, model) = build_finetune_model(
        &lm,
        |enc| {
            let max_seq = enc.max_seq;
            DoduoConfig::new(enc, train_ds.type_vocab.len(), train_ds.rel_vocab.len(), true)
                .with_serialize(SerializeConfig::new(8, max_seq))
        },
        seed,
    );
    let train_p = prepare(&model, &train_ds, &lm.tokenizer);
    let valid_p = prepare(&model, &valid_ds, &lm.tokenizer);
    let report = train(
        &model,
        &mut store,
        &train_p,
        &valid_p,
        &[Task::ColumnType, Task::ColumnRelation],
        &TrainConfig { epochs: 40, batch_size: 8, ..Default::default() },
    );
    let test_p = prepare(&model, &test_ds, &lm.tokenizer);
    let scores = doduo_core::evaluate(&model, &store, &test_p, doduo_tensor::default_threads());
    println!(
        "      best epoch {} | test type F1 {:.3}, rel F1 {:.3}",
        report.best_epoch,
        scores.type_micro.f1,
        scores.rel_micro.map(|r| r.f1).unwrap_or(f64::NAN)
    );

    // --- 4. Annotate an unseen table (Figure 2(a): films & directors).
    println!("[4/4] annotating a new table…");
    let film = &kb.films[0];
    let film2 = &kb.films[1];
    let table = Table::new(
        "demo",
        vec![
            Column::new(vec![film.title.clone(), film2.title.clone()]),
            Column::new(vec![
                kb.person_name(film.directors[0]).to_string(),
                kb.person_name(film2.directors[0]).to_string(),
            ]),
            Column::new(vec![
                kb.country_name(film.country).to_string(),
                kb.country_name(film2.country).to_string(),
            ]),
        ],
    );
    let annotator = Annotator {
        model: &model,
        store: &store,
        tokenizer: &lm.tokenizer,
        type_vocab: &train_ds.type_vocab,
        rel_vocab: &train_ds.rel_vocab,
    };
    let ann = annotator.annotate(&table);
    for t in &ann.types {
        let top: Vec<String> =
            t.labels.iter().take(2).map(|(n, p)| format!("{n} ({p:.2})")).collect();
        println!("      column {}: {}", t.column, top.join(", "));
    }
    for rel in &ann.relations {
        println!(
            "      relation col{}→col{}: {} ({:.2})",
            rel.subject, rel.object, rel.labels[0].0, rel.labels[0].1
        );
    }
}
