//! The §7 case study as a runnable example: cluster semantically similar
//! columns of an enterprise HR database using Doduo's contextualized column
//! embeddings, and compare against a fastText-style static-embedding
//! baseline.
//!
//! Note the domain transfer: the Doduo model is fine-tuned on *WikiTable*
//! data and applied, unchanged, to jobsearch/review tables it has never
//! seen — exactly the scenario of the paper's data scientist "Sofia".
//!
//! Run with: `cargo run --release --example column_clustering`

use doduo_baselines::{FastText, FastTextConfig};
use doduo_core::{
    build_finetune_model, prepare, pretrain_lm, train, Annotator, DoduoConfig, PretrainRecipe,
    Task, TrainConfig,
};
use doduo_datagen::{
    generate_case_study, generate_corpus, generate_wikitable, CaseStudyConfig, CorpusConfig,
    KbConfig, KnowledgeBase, WikiTableConfig, ALL_CLUSTERS,
};
use doduo_eval::{completeness, homogeneity, kmeans, v_measure};
use doduo_table::SerializeConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let seed = 42;
    let kb = KnowledgeBase::generate(&KbConfig::default(), seed);
    let corpus = generate_corpus(&kb, &CorpusConfig::default());

    // Train Doduo on WikiTable (out-of-domain for the HR data).
    println!("[1/3] pretraining LM + fine-tuning Doduo on WikiTable…");
    let mut recipe = PretrainRecipe::tiny();
    recipe.mlm.epochs = 12;
    let lm = pretrain_lm(&corpus, &recipe, seed);
    let ds = generate_wikitable(&kb, &WikiTableConfig { n_tables: 250, ..Default::default() });
    let mut rng = StdRng::seed_from_u64(seed);
    let (train_ds, valid_ds, _) = ds.split(0.85, 0.15, &mut rng);
    let (mut store, model) = build_finetune_model(
        &lm,
        |enc| {
            let max_seq = enc.max_seq;
            DoduoConfig::new(enc, train_ds.type_vocab.len(), train_ds.rel_vocab.len(), true)
                .with_serialize(SerializeConfig::new(8, max_seq))
        },
        seed,
    );
    let train_p = prepare(&model, &train_ds, &lm.tokenizer);
    let valid_p = prepare(&model, &valid_ds, &lm.tokenizer);
    train(
        &model,
        &mut store,
        &train_p,
        &valid_p,
        &[Task::ColumnType, Task::ColumnRelation],
        &TrainConfig { epochs: 30, batch_size: 8, ..Default::default() },
    );

    // The HR database: 10 jobsearch/review tables, 15 ground-truth clusters.
    println!("[2/3] embedding the HR columns…");
    let study = generate_case_study(&kb, &CaseStudyConfig::default());
    let gold: Vec<usize> = study.columns.iter().map(|c| c.cluster as usize).collect();
    let annotator = Annotator {
        model: &model,
        store: &store,
        tokenizer: &lm.tokenizer,
        type_vocab: &train_ds.type_vocab,
        rel_vocab: &train_ds.rel_vocab,
    };
    let mut doduo_embs = Vec::new();
    for table in &study.tables {
        doduo_embs.extend(annotator.column_embeddings(table));
    }

    let ft = FastText::train(&corpus, FastTextConfig::default());
    let mut ft_embs = Vec::new();
    for table in &study.tables {
        for col in &table.columns {
            ft_embs.push(ft.embed_column_values(&col.values));
        }
    }

    println!("[3/3] k-means (k = {}) and cluster quality:", ALL_CLUSTERS.len());
    let k = ALL_CLUSTERS.len();
    for (name, embs) in [("Doduo contextualized", &doduo_embs), ("fastText static", &ft_embs)] {
        let pred = kmeans(embs, k, 100, seed);
        println!(
            "  {name:<22} homogeneity {:.3}  completeness {:.3}  v-measure {:.3}",
            homogeneity(&gold, &pred),
            completeness(&gold, &pred),
            v_measure(&gold, &pred)
        );
    }

    // Show one discovered cluster as the data scientist would see it.
    let pred = kmeans(&doduo_embs, k, 100, seed);
    let biggest = (0..k).max_by_key(|&c| pred.iter().filter(|&&p| p == c).count()).expect("k >= 1");
    println!("\nlargest Doduo cluster contains columns:");
    for (i, col) in study.columns.iter().enumerate() {
        if pred[i] == biggest {
            let name =
                study.tables[col.table_idx].columns[col.col_idx].name.clone().unwrap_or_default();
            println!(
                "  {}.{name}  (gold: {})",
                study.tables[col.table_idx].id,
                col.cluster.label()
            );
        }
    }
}
