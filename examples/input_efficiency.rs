//! Input-data efficiency (the Table 8 / Table 11 analysis as an example):
//! how does Doduo's accuracy change with the `MaxToken/col` serialization
//! budget? The paper's headline: 8 tokens per column already carry most of
//! the signal — which is what makes Doduo practical for wide tables.
//!
//! Run with: `cargo run --release --example input_efficiency`

use doduo_core::{
    build_finetune_model, evaluate, prepare, pretrain_lm, train, DoduoConfig, PretrainRecipe, Task,
    TrainConfig,
};
use doduo_datagen::{
    generate_corpus, generate_wikitable, CorpusConfig, KbConfig, KnowledgeBase, WikiTableConfig,
};
use doduo_table::SerializeConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let seed = 42;
    let kb = KnowledgeBase::generate(&KbConfig::default(), seed);
    let corpus = generate_corpus(&kb, &CorpusConfig::default());
    println!("pretraining LM…");
    let mut recipe = PretrainRecipe::tiny();
    recipe.mlm.epochs = 12;
    let lm = pretrain_lm(&corpus, &recipe, seed);

    let ds = generate_wikitable(&kb, &WikiTableConfig { n_tables: 250, ..Default::default() });
    let mut rng = StdRng::seed_from_u64(seed);
    let (train_ds, valid_ds, test_ds) = ds.split(0.75, 0.1, &mut rng);

    println!("budget  type F1  rel F1  max cols supported");
    for budget in [2usize, 4, 8, 16] {
        let (mut store, model) = build_finetune_model(
            &lm,
            |enc| {
                let max_seq = enc.max_seq;
                DoduoConfig::new(enc, train_ds.type_vocab.len(), train_ds.rel_vocab.len(), true)
                    .with_serialize(SerializeConfig::new(budget, max_seq))
            },
            seed,
        );
        let train_p = prepare(&model, &train_ds, &lm.tokenizer);
        let valid_p = prepare(&model, &valid_ds, &lm.tokenizer);
        train(
            &model,
            &mut store,
            &train_p,
            &valid_p,
            &[Task::ColumnType, Task::ColumnRelation],
            &TrainConfig { epochs: 30, batch_size: 8, ..Default::default() },
        );
        let test_p = prepare(&model, &test_ds, &lm.tokenizer);
        let scores = evaluate(&model, &store, &test_p, doduo_tensor::default_threads());
        println!(
            "{budget:<7} {:<8.3} {:<7.3} {}",
            scores.type_micro.f1,
            scores.rel_micro.map(|r| r.f1).unwrap_or(f64::NAN),
            SerializeConfig::new(budget, lm.config.max_seq).max_supported_cols()
        );
    }
    println!(
        "\n(the paper's Table 8: with BERT's 512-token window, 8 tokens/col supports 56 columns)"
    );
}
