//! Language-model probing (Appendix A.5): after masked-LM pretraining on
//! the synthetic corpus, the *vanilla* LM — no fine-tuning — already stores
//! factual knowledge that column annotation benefits from. We probe it with
//! templates, ranking candidate type words by pseudo-perplexity.
//!
//! Run with: `cargo run --release --example lm_probing`

use doduo_core::{instantiate_lm, pretrain_lm, PretrainRecipe};
use doduo_datagen::{generate_corpus, CorpusConfig, KbConfig, KnowledgeBase, Profession};
use doduo_tokenizer::{CLS, SEP};
use doduo_transformer::pseudo_perplexity;

fn main() {
    let seed = 42;
    let kb = KnowledgeBase::generate(&KbConfig::default(), seed);
    let corpus = generate_corpus(&kb, &CorpusConfig::default());
    println!("pretraining LM on {} sentences…", corpus.len());
    let mut recipe = PretrainRecipe::tiny();
    recipe.mlm.epochs = 12;
    let lm = pretrain_lm(&corpus, &recipe, seed);
    let (store, encoder, head) = instantiate_lm(&lm);
    let tok = &lm.tokenizer;

    let ppl = |sentence: &str| {
        let mut ids = vec![CLS];
        ids.extend(tok.encode(sentence));
        ids.push(SEP);
        pseudo_perplexity(&encoder, &head, &store, &ids)
    };

    // Probe: who is this person? Candidates span professions.
    let candidates = ["director", "producer", "city", "film", "team", "monarch"];
    let director = &kb.people[kb.people_with(Profession::Director)[0]];
    let city = &kb.cities[0];
    let film = &kb.films[0];

    for (entity, truth) in [
        (director.name.clone(), "director"),
        (city.name.clone(), "city"),
        (film.title.clone(), "film"),
    ] {
        println!("\ntemplate: \"{entity} is a ___\"   (truth: {truth})");
        let mut scored: Vec<(f32, &str)> =
            candidates.iter().map(|c| (ppl(&format!("{entity} is a {c}")), *c)).collect();
        scored.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite ppl"));
        for (i, (p, c)) in scored.iter().enumerate() {
            let marker = if *c == truth { "  <-- truth" } else { "" };
            println!("  {}. {c:<12} ppl {p:8.2}{marker}", i + 1);
        }
    }

    // Relation knowledge: birthplaces.
    let p = &kb.people[0];
    let born = kb.city_name(p.birth_city);
    let other = kb.city_name((p.birth_city + 7) % kb.cities.len());
    let good = ppl(&format!("{} was born in {born}", p.name));
    let bad = ppl(&format!("{} was born in {other}", p.name));
    println!(
        "\n\"{} was born in ___\": {born} -> ppl {good:.2}, {other} -> ppl {bad:.2} ({})",
        p.name,
        if good < bad { "LM prefers the true fact" } else { "LM is unsure" }
    );
}
