//! Cross-crate integration tests: the full DODUO pipeline at miniature
//! scale — knowledge base → corpus → pretrained LM → fine-tuned annotator →
//! predictions on raw tables.

use doduo_core::{
    build_finetune_model, evaluate, prepare, pretrain_lm, train, Annotator, DoduoConfig,
    PretrainRecipe, Task, TrainConfig,
};
use doduo_datagen::{
    generate_case_study, generate_corpus, generate_wikitable, CaseStudyConfig, CorpusConfig,
    KbConfig, KnowledgeBase, WikiTableConfig,
};
use doduo_eval::{kmeans, v_measure};
use doduo_table::SerializeConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Pipeline {
    lm: doduo_core::PretrainedLm,
    kb: KnowledgeBase,
    train_ds: doduo_table::Dataset,
    valid_ds: doduo_table::Dataset,
    test_ds: doduo_table::Dataset,
    store: doduo_tensor::ParamStore,
    model: doduo_core::DoduoModel,
}

/// One shared miniature pipeline (pretraining + fine-tuning are the
/// expensive parts, so tests share a lazily-built instance).
fn pipeline() -> &'static Pipeline {
    use std::sync::OnceLock;
    static PIPE: OnceLock<Pipeline> = OnceLock::new();
    PIPE.get_or_init(|| {
        let seed = 42;
        let kb = KnowledgeBase::generate(&KbConfig::default(), seed);
        let corpus = generate_corpus(&kb, &CorpusConfig::default());
        let mut recipe = PretrainRecipe::tiny();
        recipe.mlm.epochs = 12;
        let lm = pretrain_lm(&corpus, &recipe, seed);
        let ds = generate_wikitable(
            &kb,
            &WikiTableConfig { n_tables: 220, min_rows: 2, max_rows: 4, seed },
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let (train_ds, valid_ds, test_ds) = ds.split(0.75, 0.1, &mut rng);
        let (mut store, model) = build_finetune_model(
            &lm,
            |enc| {
                let max_seq = enc.max_seq;
                DoduoConfig::new(enc, train_ds.type_vocab.len(), train_ds.rel_vocab.len(), true)
                    .with_serialize(SerializeConfig::new(8, max_seq))
            },
            seed,
        );
        let train_p = prepare(&model, &train_ds, &lm.tokenizer);
        let valid_p = prepare(&model, &valid_ds, &lm.tokenizer);
        train(
            &model,
            &mut store,
            &train_p,
            &valid_p,
            &[Task::ColumnType, Task::ColumnRelation],
            &TrainConfig { epochs: 40, batch_size: 8, lr: 3e-3, ..Default::default() },
        );
        Pipeline { lm, kb, train_ds, valid_ds, test_ds, store, model }
    })
}

#[test]
fn fine_tuned_model_generalizes_to_held_out_tables() {
    let p = pipeline();
    let test_p = prepare(&p.model, &p.test_ds, &p.lm.tokenizer);
    let scores = evaluate(&p.model, &p.store, &test_p, doduo_tensor::default_threads());
    assert!(scores.type_micro.f1 > 0.55, "held-out type F1 too low: {}", scores.type_micro.f1);
    let rel = scores.rel_micro.expect("relation task was trained");
    assert!(rel.f1 > 0.45, "held-out relation F1 too low: {}", rel.f1);
}

#[test]
fn annotator_handles_raw_unseen_tables() {
    let p = pipeline();
    let annotator = Annotator {
        model: &p.model,
        store: &p.store,
        tokenizer: &p.lm.tokenizer,
        type_vocab: &p.train_ds.type_vocab,
        rel_vocab: &p.train_ds.rel_vocab,
    };
    // A hand-built film table with the full Figure 2(a) shape
    // (film / director / producer / country).
    let f = &p.kb.films[3];
    let g = &p.kb.films[4];
    let table = doduo_table::Table::new(
        "unseen",
        vec![
            doduo_table::Column::new(vec![f.title.clone(), g.title.clone()]),
            doduo_table::Column::new(vec![
                p.kb.person_name(f.directors[0]).to_string(),
                p.kb.person_name(g.directors[0]).to_string(),
            ]),
            doduo_table::Column::new(vec![
                p.kb.person_name(f.producers[0]).to_string(),
                p.kb.person_name(g.producers[0]).to_string(),
            ]),
            doduo_table::Column::new(vec![
                p.kb.country_name(f.country).to_string(),
                p.kb.country_name(g.country).to_string(),
            ]),
        ],
    );
    let ann = annotator.annotate(&table);
    assert_eq!(ann.types.len(), 4);
    assert_eq!(ann.relations.len(), 3);
    // The film column should be typed film.film among the top labels.
    let film_labels: Vec<&str> = ann.types[0].labels.iter().map(|(n, _)| n.as_str()).collect();
    assert!(film_labels.contains(&"film.film"), "film column labels: {film_labels:?}");
    // The person column should carry people.person.
    let person_labels: Vec<&str> = ann.types[1].labels.iter().map(|(n, _)| n.as_str()).collect();
    assert!(person_labels.contains(&"people.person"), "person column labels: {person_labels:?}");
}

#[test]
fn contextual_embeddings_cluster_hr_columns_better_than_chance() {
    let p = pipeline();
    let annotator = Annotator {
        model: &p.model,
        store: &p.store,
        tokenizer: &p.lm.tokenizer,
        type_vocab: &p.train_ds.type_vocab,
        rel_vocab: &p.train_ds.rel_vocab,
    };
    let study = generate_case_study(&p.kb, &CaseStudyConfig::default());
    let gold: Vec<usize> = study.columns.iter().map(|c| c.cluster as usize).collect();
    let mut embs = Vec::new();
    for table in &study.tables {
        embs.extend(annotator.column_embeddings(table));
    }
    let pred = kmeans(&embs, 15, 100, 1);
    let v = v_measure(&gold, &pred);
    // Random assignment scores near 0.35-0.45 V-measure for 15 clusters of
    // ~50 items; contextual embeddings must do clearly better.
    assert!(v > 0.5, "case-study v-measure too low: {v}");
}

#[test]
fn validation_checkpointing_returns_best_scores() {
    // The multi-task trainer must hand back the best-validation weights:
    // re-evaluating equals the recorded best.
    let p = pipeline();
    let valid_p = prepare(&p.model, &p.valid_ds, &p.lm.tokenizer);
    let scores = evaluate(&p.model, &p.store, &valid_p, 4);
    assert!(scores.type_micro.f1 > 0.5, "valid type F1 {}", scores.type_micro.f1);
}
