//! Property-based tests (proptest) over the core invariants of the
//! reproduction: serialization structure, tokenizer behavior, metric
//! bounds, clustering-metric invariances, and autograd correctness on
//! randomly shaped inputs.
#![allow(clippy::needless_range_loop)]

use doduo_eval::{completeness, connected_components, homogeneity, multi_label_micro, v_measure};
use doduo_table::{serialize_table, Column, SerializeConfig, Table};
use doduo_tensor::{Gradients, ParamStore, Tape, Tensor};
use doduo_tokenizer::{TrainConfig, WordPiece, CLS, SEP};
use proptest::prelude::*;

fn word() -> impl Strategy<Value = String> {
    "[a-z]{1,8}".prop_map(|s| s)
}

fn cell() -> impl Strategy<Value = String> {
    prop_oneof![
        word(),
        "[0-9]{1,6}".prop_map(|s| s),
        (word(), word()).prop_map(|(a, b)| format!("{a} {b}")),
    ]
}

fn table() -> impl Strategy<Value = Table> {
    (1usize..5, 1usize..5).prop_flat_map(|(cols, rows)| {
        proptest::collection::vec(proptest::collection::vec(cell(), rows..rows + 1), cols..cols + 1)
            .prop_map(|columns| Table::new("prop", columns.into_iter().map(Column::new).collect()))
    })
}

fn shared_tokenizer() -> &'static WordPiece {
    use std::sync::OnceLock;
    static TOK: OnceLock<WordPiece> = OnceLock::new();
    TOK.get_or_init(|| {
        WordPiece::train(
            // Every letter/digit both word-initial and as a continuation
            // piece, so any [a-z0-9]+ word can be decomposed.
            [
                "the quick brown fox jumps over the lazy dog",
                "0 1 2 3 4 5 6 7 8 9",
                "x0 x1 x2 x3 x4 x5 x6 x7 x8 x9",
                "a b c d e f g h i j k l m n o p q r s t u v w x y z",
                "xa xb xc xd xe xf xg xh xi xj xk xl xm xn xo xp xq xr xs xt xu xv xw xx xy xz",
            ],
            &TrainConfig { merges: 100, min_pair_count: 1, max_word_len: 24 },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// serialize(T) structure (§4.2): one [CLS] per column at the recorded
    /// positions, exactly one trailing [SEP], length within the cap, and
    /// col_of_token aligned.
    #[test]
    fn serialization_structure_invariants(t in table(), budget in 1usize..40, cap in 16usize..128) {
        let tok = shared_tokenizer();
        let cfg = SerializeConfig::new(budget, cap);
        let st = serialize_table(&t, tok, &cfg);
        prop_assert_eq!(st.cls_positions.len(), t.n_cols());
        prop_assert!(st.ids.len() <= cap);
        prop_assert_eq!(st.ids.len(), st.col_of_token.len());
        prop_assert_eq!(*st.ids.last().unwrap(), SEP);
        prop_assert_eq!(st.ids.iter().filter(|&&i| i == CLS).count(), t.n_cols());
        for (c, &p) in st.cls_positions.iter().enumerate() {
            prop_assert_eq!(st.ids[p as usize], CLS);
            prop_assert_eq!(st.col_of_token[p as usize], c as u32);
        }
        // Column ids are non-decreasing over the sequence (SEP sentinel at the end).
        let cols: Vec<u32> = st.col_of_token[..st.col_of_token.len() - 1].to_vec();
        prop_assert!(cols.windows(2).all(|w| w[0] <= w[1]));
    }

    /// Tokenizer encodes never panic, never emit special ids, and decoding
    /// known-alphabet words roundtrips.
    #[test]
    fn tokenizer_safety(text in proptest::collection::vec(word(), 1..6)) {
        let tok = shared_tokenizer();
        let joined = text.join(" ");
        let ids = tok.encode(&joined);
        prop_assert!(ids.iter().all(|&i| (i as usize) < tok.vocab_size()));
        prop_assert!(ids.iter().all(|&i| i > 4 || i == doduo_tokenizer::UNK));
        let decoded = tok.decode(&ids);
        prop_assert_eq!(decoded, joined);
    }

    /// Micro F1 stays in [0,1], equals 1 iff predictions match gold sets.
    #[test]
    fn micro_f1_bounds(
        labels in proptest::collection::vec(
            (proptest::collection::vec(0u32..6, 1..3), proptest::collection::vec(0u32..6, 1..3)),
            1..20
        )
    ) {
        let pred: Vec<Vec<u32>> = labels.iter().map(|(p, _)| { let mut p = p.clone(); p.sort_unstable(); p.dedup(); p }).collect();
        let gold: Vec<Vec<u32>> = labels.iter().map(|(_, g)| { let mut g = g.clone(); g.sort_unstable(); g.dedup(); g }).collect();
        let m = multi_label_micro(&pred, &gold);
        prop_assert!((0.0..=1.0).contains(&m.f1));
        prop_assert!((0.0..=1.0).contains(&m.precision));
        prop_assert!((0.0..=1.0).contains(&m.recall));
        let self_match = multi_label_micro(&gold, &gold);
        prop_assert!((self_match.f1 - 1.0).abs() < 1e-12);
    }

    /// V-measure is permutation-invariant in cluster ids and bounded.
    #[test]
    fn v_measure_invariances(assign in proptest::collection::vec(0usize..5, 2..30), offset in 1usize..7) {
        let gold: Vec<usize> = assign.iter().map(|&a| a % 3).collect();
        let pred = assign.clone();
        let v = v_measure(&gold, &pred);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&v));
        // Relabeling predictions must not change any score.
        let relabeled: Vec<usize> = pred.iter().map(|&p| (p + offset) * 13).collect();
        prop_assert!((v_measure(&gold, &relabeled) - v).abs() < 1e-9);
        prop_assert!((homogeneity(&gold, &relabeled) - homogeneity(&gold, &pred)).abs() < 1e-9);
        prop_assert!((completeness(&gold, &relabeled) - completeness(&gold, &pred)).abs() < 1e-9);
    }

    /// Connected components: every match really merges, non-matches stay
    /// apart (checked against a brute-force reachability).
    #[test]
    fn connected_components_correct(n in 2usize..12, edges in proptest::collection::vec((0usize..12, 0usize..12), 0..10)) {
        let edges: Vec<(usize, usize)> = edges.into_iter()
            .filter(|&(a, b)| a < n && b < n && a != b)
            .collect();
        let cc = connected_components(n, &edges);
        // Brute force reachability.
        let mut reach = vec![vec![false; n]; n];
        for i in 0..n { reach[i][i] = true; }
        for &(a, b) in &edges { reach[a][b] = true; reach[b][a] = true; }
        for k in 0..n {
            for i in 0..n {
                for j in 0..n {
                    if reach[i][k] && reach[k][j] {
                        reach[i][j] = true;
                    }
                }
            }
        }
        for i in 0..n {
            for j in 0..n {
                prop_assert_eq!(cc[i] == cc[j], reach[i][j], "nodes {} {}", i, j);
            }
        }
    }

    /// Autograd: analytic gradients of a random two-layer network match
    /// finite differences for random shapes.
    #[test]
    fn autograd_matches_finite_differences(
        rows in 1usize..4,
        inner in 1usize..5,
        classes in 2usize..4,
        seed in 0u64..1000,
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let w = store.add_randn("w", 3, inner, 0.5, &mut rng);
        let b = store.add_zeros("b", 1, inner);
        let out = store.add_randn("out", inner, classes, 0.5, &mut rng);
        let x = Tensor::randn(rows, 3, 1.0, &mut rng);
        let targets: Vec<u32> = (0..rows).map(|i| (i % classes) as u32).collect();

        let loss_fn = |store: &ParamStore| {
            let mut tape = Tape::inference(store);
            let xn = tape.input(x.clone());
            let h = tape.linear(xn, w, b);
            let a = tape.gelu(h);
            let on = tape.param(out);
            let logits = tape.matmul(a, on);
            let l = tape.softmax_ce(logits, &targets);
            tape.value(l).scalar_value()
        };

        let mut grads = Gradients::new(&store);
        {
            let mut tape = Tape::inference(&store);
            let xn = tape.input(x.clone());
            let h = tape.linear(xn, w, b);
            let a = tape.gelu(h);
            let on = tape.param(out);
            let logits = tape.matmul(a, on);
            let l = tape.softmax_ce(logits, &targets);
            tape.backward(l, &mut grads);
        }
        // Check a few random scalars of `w` against central differences.
        let eps = 1e-2f32;
        for &i in &[0usize, (3 * inner - 1) / 2, 3 * inner - 1] {
            let orig = store.get(w).data()[i];
            store.get_mut(w).data_mut()[i] = orig + eps;
            let up = loss_fn(&store);
            store.get_mut(w).data_mut()[i] = orig - eps;
            let down = loss_fn(&store);
            store.get_mut(w).data_mut()[i] = orig;
            let numeric = (up - down) / (2.0 * eps);
            let analytic = grads.get(w).map_or(0.0, |g| g.data()[i]);
            prop_assert!(
                (numeric - analytic).abs() < 0.05 + 0.05 * numeric.abs().max(analytic.abs()),
                "grad mismatch at {}: {} vs {}", i, numeric, analytic
            );
        }
    }
}
