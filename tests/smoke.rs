//! Build-guard smoke test: a seeded, tiny, from-scratch model trains one
//! mini epoch through `doduo_core::trainer` and `Annotator` predictions
//! round-trip — same input twice, and through a checkpoint save/load —
//! so silent API breakage anywhere on the train → annotate → serialize
//! path fails fast without the cost of the full end-to-end suite.

use doduo_core::{
    prepare, train, Annotator, DoduoConfig, DoduoModel, Task, TrainConfig, ENC_PREFIX,
};
use doduo_datagen::{generate_wikitable, KbConfig, KnowledgeBase, WikiTableConfig};
use doduo_table::{Dataset, SerializeConfig};
use doduo_tensor::serialize::{load, save};
use doduo_tensor::ParamStore;
use doduo_tokenizer::{TrainConfig as TokTrainConfig, WordPiece};
use doduo_transformer::EncoderConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_setup() -> (WordPiece, Dataset, Dataset) {
    let kb = KnowledgeBase::generate(&KbConfig::default(), 11);
    let ds = generate_wikitable(
        &kb,
        &WikiTableConfig { n_tables: 24, min_rows: 2, max_rows: 3, seed: 11 },
    );
    let cells: Vec<String> = ds
        .tables
        .iter()
        .flat_map(|t| t.table.columns.iter())
        .flat_map(|c| c.values.iter().cloned())
        .collect();
    let tok = WordPiece::train(
        cells.iter().map(String::as_str),
        &TokTrainConfig { merges: 120, min_pair_count: 1, max_word_len: 24 },
    );
    let mut rng = StdRng::seed_from_u64(11);
    let (train_ds, valid_ds, _test) = ds.split(0.8, 0.2, &mut rng);
    (tok, train_ds, valid_ds)
}

fn tiny_model(tok: &WordPiece, ds: &Dataset, seed: u64) -> (ParamStore, DoduoModel) {
    let enc = EncoderConfig::tiny(tok.vocab_size());
    let max_seq = enc.max_seq;
    let cfg = DoduoConfig::new(enc, ds.type_vocab.len(), ds.rel_vocab.len(), true)
        .with_serialize(SerializeConfig::new(4, max_seq));
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let model = DoduoModel::new(&mut store, cfg, ENC_PREFIX, &mut rng);
    (store, model)
}

#[test]
fn one_epoch_train_and_annotate_roundtrip() {
    let (tok, train_ds, valid_ds) = tiny_setup();
    let (mut store, model) = tiny_model(&tok, &train_ds, 5);

    // One mini epoch of Algorithm 1 on both tasks must run end to end and
    // produce finite losses.
    let train_p = prepare(&model, &train_ds, &tok);
    let valid_p = prepare(&model, &valid_ds, &tok);
    let report = train(
        &model,
        &mut store,
        &train_p,
        &valid_p,
        &[Task::ColumnType, Task::ColumnRelation],
        &TrainConfig { epochs: 1, batch_size: 4, threads: 2, ..Default::default() },
    );
    assert_eq!(report.epochs.len(), 1);
    for &(_, loss) in &report.epochs[0].task_losses {
        assert!(loss.is_finite(), "non-finite epoch loss: {loss}");
    }

    // Annotations must be well-formed: one prediction per column, scores in
    // [0, 1] sorted descending, and every label drawn from the vocabularies.
    let annotator = Annotator {
        model: &model,
        store: &store,
        tokenizer: &tok,
        type_vocab: &train_ds.type_vocab,
        rel_vocab: &train_ds.rel_vocab,
    };
    let table = &train_ds.tables[0].table;
    let ann = annotator.annotate(table);
    assert_eq!(ann.types.len(), table.n_cols());
    let type_names: Vec<&str> =
        (0..train_ds.type_vocab.len()).map(|i| train_ds.type_vocab.name(i as u32)).collect();
    let rel_names: Vec<&str> =
        (0..train_ds.rel_vocab.len()).map(|i| train_ds.rel_vocab.name(i as u32)).collect();
    for tp in &ann.types {
        assert!(!tp.labels.is_empty());
        for w in tp.labels.windows(2) {
            assert!(w[0].1 >= w[1].1, "scores not sorted: {:?}", tp.labels);
        }
        for (name, score) in &tp.labels {
            assert!((0.0..=1.0).contains(score), "score out of range: {score}");
            assert!(type_names.contains(&name.as_str()), "unknown type label {name:?}");
        }
    }
    if table.n_cols() > 1 {
        assert_eq!(ann.relations.len(), table.n_cols() - 1);
    }
    for rp in &ann.relations {
        for (name, score) in &rp.labels {
            assert!((0.0..=1.0).contains(score), "score out of range: {score}");
            assert!(rel_names.contains(&name.as_str()), "unknown rel label {name:?}");
        }
    }

    // Round-trip 1: annotation is deterministic for the same input.
    let again = annotator.annotate(table);
    assert_eq!(format!("{ann:?}"), format!("{again:?}"), "annotate() must be deterministic");

    // Round-trip 2: predictions survive a checkpoint save/load into a
    // freshly initialized (different-seed) parameter store.
    let blob = save(&store);
    let (mut store2, model2) = tiny_model(&tok, &train_ds, 99);
    let loaded = load(&mut store2, &blob).expect("checkpoint must load");
    assert_eq!(loaded, store.len(), "every parameter must round-trip");
    let annotator2 = Annotator {
        model: &model2,
        store: &store2,
        tokenizer: &tok,
        type_vocab: &train_ds.type_vocab,
        rel_vocab: &train_ds.rel_vocab,
    };
    let reloaded = annotator2.annotate(table);
    assert_eq!(
        format!("{ann:?}"),
        format!("{reloaded:?}"),
        "annotations must round-trip through save/load"
    );
}
