//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors the small slice of the `rand` 0.8 API it actually
//! uses: [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic across
//! platforms, which the seeded tests and benches rely on. It is **not**
//! cryptographically secure and does not reproduce upstream `StdRng`
//! streams bit-for-bit; all in-repo consumers only assume a seeded,
//! well-mixed uniform source.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source, mirroring `rand_core::RngCore`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    type Seed;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable from the uniform "standard" distribution
/// (`rng.gen::<T>()`): floats in `[0, 1)`, full-range integers, fair bools.
pub trait StandardSample {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> [0, 1) with full float resolution.
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a uniform sampler over an interval, mirroring
/// `rand::distributions::uniform::SampleUniform`.
pub trait SampleUniform: Sized + PartialOrd {
    /// Samples uniformly from `[lo, hi)` (`inclusive = false`) or
    /// `[lo, hi]` (`inclusive = true`).
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

/// Ranges usable with [`Rng::gen_range`], mirroring
/// `rand::distributions::uniform::SampleRange`. The generic impls keep
/// upstream's type-inference behavior: the range's element type fixes
/// the output type.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_uniform(lo, hi, true, rng)
    }
}

/// Unbiased integer sampling in `[0, bound)` by rejecting the biased
/// tail of the 64-bit space (Lemire-style threshold).
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let zone = u64::MAX - u64::MAX.wrapping_rem(bound);
    loop {
        let v = rng.next_u64();
        if v < zone || zone == 0 {
            return v % bound;
        }
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) + if inclusive { 1 } else { 0 };
                if span == 0 || span > u64::MAX as i128 {
                    // Full-width inclusive range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                let off = uniform_u64_below(rng, span as u64);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let unit = <$t as StandardSample>::standard_sample(rng);
                let v = lo + unit * (hi - lo);
                // lo + unit*(hi-lo) can round up to exactly hi; keep the
                // half-open contract for exclusive ranges.
                if !inclusive && v >= hi {
                    hi.next_down().max(lo)
                } else {
                    v
                }
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// User-facing sampling methods, mirroring `rand::Rng`. Blanket-implemented
/// for every bit source so `R: Rng + ?Sized` bounds work like upstream.
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Seeded deterministic generator (xoshiro256++), standing in for
    /// `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_splitmix(mut state: u64) -> Self {
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            if s.iter().all(|&w| w == 0) {
                return Self::from_splitmix(0);
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            Self::from_splitmix(state)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..2000 {
            let v = rng.gen_range(-10..2_400);
            assert!((-10..2_400).contains(&v));
            let u = rng.gen_range(0..=5usize);
            assert!(u <= 5);
            let f = rng.gen_range(-0.5..0.5f32);
            assert!((-0.5..0.5).contains(&f));
        }
    }

    #[test]
    fn unit_floats_are_in_unit_interval_and_mixed() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0f64;
        for _ in 0..4000 {
            let x = rng.gen::<f32>();
            assert!((0.0..1.0).contains(&x));
            sum += x as f64;
        }
        let mean = sum / 4000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..4000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 4000.0;
        assert!((rate - 0.25).abs() < 0.05, "rate {rate} far from 0.25");
    }
}
