//! Offline stand-in for the `bytes` crate.
//!
//! Implements the slice of the `bytes` 1.x API the workspace uses for
//! checkpoint (de)serialization: [`Bytes`], [`BytesMut`], and the
//! [`Buf`] / [`BufMut`] cursor traits with little-endian u32/f32
//! accessors. `Bytes` shares its payload through an `Arc` so clones are
//! cheap like upstream, but there is no sub-slicing machinery.

use std::ops::Deref;
use std::sync::Arc;

/// Cheaply cloneable immutable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.as_ref().clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data: Arc::new(data) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes { data: Arc::new(data.to_vec()) }
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(data: &[u8; N]) -> Self {
        Bytes { data: Arc::new(data.to_vec()) }
    }
}

/// Growable byte buffer; [`BytesMut::freeze`] converts it into [`Bytes`]
/// without copying.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut { data: Vec::with_capacity(capacity) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes { data: Arc::new(self.data) }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte source, mirroring `bytes::Buf`. Reads past the
/// end panic, as upstream's do.
pub trait Buf {
    fn remaining(&self) -> usize;

    fn chunk(&self) -> &[u8];

    fn advance(&mut self, cnt: usize);

    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.chunk()[..4].try_into().unwrap());
        self.advance(4);
        v
    }

    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.chunk()[..8].try_into().unwrap());
        self.advance(8);
        v
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write cursor over a growable sink, mirroring `bytes::BufMut`.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_accessors() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_f32_le(1.5);
        buf.put_slice(b"xy");
        let frozen = buf.freeze();
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.remaining(), 10);
        assert_eq!(cursor.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_f32_le(), 1.5);
        assert_eq!(cursor.chunk(), b"xy");
        cursor.advance(2);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn bytes_clone_shares_payload() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(&a[..], &b[..]);
        assert_eq!(a.len(), 3);
    }
}
