//! Offline stand-in for `criterion`.
//!
//! The build environment has no crates-registry access, so this crate
//! provides the API surface the workspace's benches use —
//! [`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], `criterion_group!` and
//! `criterion_main!` — backed by a simple wall-clock loop: a short
//! warm-up to pick an iteration count, then three timed passes reported
//! as `min / median / max` ns per iteration. No statistics, plots, or
//! baselines; the per-table experiment binaries carry the paper's
//! numbers, these benches are for relative hot-path tracking.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How much work `iter_batched` setup amortizes; only affects batch
/// sizing upstream, accepted here for API compatibility.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Target time for one measurement pass.
const PASS_BUDGET: Duration = Duration::from_millis(60);
const WARMUP_BUDGET: Duration = Duration::from_millis(20);
const PASSES: usize = 3;

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut passes = Vec::with_capacity(PASSES);
        // Warm-up pass, run only to populate caches and JIT-ish effects.
        f(&mut Bencher { mode: Mode::Calibrate(WARMUP_BUDGET), ns_per_iter: 0.0 });
        for _ in 0..PASSES {
            let mut b = Bencher { mode: Mode::Calibrate(PASS_BUDGET), ns_per_iter: 0.0 };
            f(&mut b);
            passes.push(b.ns_per_iter);
        }
        passes.sort_by(|a, b| a.partial_cmp(b).unwrap());
        println!(
            "{id:<40} time: [{} {} {}]",
            fmt_ns(passes[0]),
            fmt_ns(passes[PASSES / 2]),
            fmt_ns(passes[PASSES - 1]),
        );
        self
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.4} ns")
    }
}

enum Mode {
    /// Run for roughly this long, then report the mean.
    Calibrate(Duration),
}

pub struct Bencher {
    mode: Mode,
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine` back-to-back until the pass budget is spent.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let Mode::Calibrate(budget) = self.mode;
        let start = Instant::now();
        let mut iters: u64 = 0;
        let mut spent = Duration::ZERO;
        while spent < budget {
            black_box(routine());
            iters += 1;
            // Check the clock in growing strides so cheap routines are not
            // dominated by `Instant::now` overhead.
            if iters.is_power_of_two() || iters.is_multiple_of(1024) {
                spent = start.elapsed();
            }
        }
        self.ns_per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let Mode::Calibrate(budget) = self.mode;
        let mut iters: u64 = 0;
        let mut spent = Duration::ZERO;
        while spent < budget {
            let input = setup();
            let start = Instant::now();
            black_box(routine(black_box(input)));
            spent += start.elapsed();
            iters += 1;
        }
        self.ns_per_iter = spent.as_nanos() as f64 / iters as f64;
    }
}

/// Mirrors `criterion::criterion_group!` (plain form).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Mirrors `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_reports() {
        let mut c = Criterion::default();
        c.bench_function("noop_sum", |b| b.iter(|| (0..100u64).sum::<u64>())).bench_function(
            "batched_reverse",
            |b| {
                b.iter_batched(
                    || vec![1u32, 2, 3],
                    |mut v| {
                        v.reverse();
                        v
                    },
                    BatchSize::SmallInput,
                )
            },
        );
    }
}
