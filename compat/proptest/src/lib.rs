//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates-registry access, so this crate
//! implements the slice of the proptest API the workspace's property
//! tests use: the [`Strategy`](strategy::Strategy) trait with `prop_map` / `prop_flat_map` /
//! `boxed`, range and tuple strategies, a character-class regex subset
//! for `&str` strategies, [`collection::vec`], the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` / `prop_oneof!` macros and
//! [`ProptestConfig`]. Cases are sampled from a seed derived from the
//! test name, so failures reproduce across runs; there is **no
//! shrinking** — a failing case reports the case index instead.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

pub use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy;

pub mod collection {
    use std::ops::Range;

    use crate::strategy::Strategy;
    use crate::StdRng;
    use rand::Rng;

    /// Strategy producing `Vec`s with lengths drawn from `size` and
    /// elements drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Mirrors `proptest::collection::vec` for exclusive size ranges.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "collection::vec: empty size range");
        VecStrategy { element, size }
    }
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Per-test configuration; only `cases` is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-test RNG: the seed is a hash of the test name, so a
/// failing case index identifies a reproducible input.
pub fn test_rng(test_name: &str) -> StdRng {
    let mut h = DefaultHasher::new();
    test_name.hash(&mut h);
    StdRng::seed_from_u64(h.finish())
}

/// Defines property tests. Supports the optional
/// `#![proptest_config(..)]` header and one or more
/// `fn name(binding in strategy, ...) { body }` items carrying arbitrary
/// attributes (`#[test]`, doc comments, ...).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..cfg.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    let outcome: ::core::result::Result<(), ::std::string::String> =
                        (move || { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(msg) = outcome {
                        panic!("proptest {} failed at case {}/{}: {}",
                               stringify!($name), case, cfg.cases, msg);
                    }
                }
            }
        )*
    };
}

/// `assert!` that fails the current proptest case with a message instead
/// of panicking directly (the harness adds the case index).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err(
                ::std::format!("assertion failed: `{:?}` != `{:?}`", l, r),
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                l, r, ::std::format!($($fmt)+),
            ));
        }
    }};
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` == `{:?}`",
                l,
                r
            ));
        }
    }};
}

/// Uniform choice between boxed strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
