//! Sampling-only strategies: each strategy draws one value per case from
//! the shared seeded RNG; there is no shrink tree.

use std::marker::PhantomData;
use std::ops::Range;

use crate::StdRng;
use rand::Rng;

/// A generator of test values. Mirrors `proptest::strategy::Strategy`
/// minus shrinking: `sample` plays the role of `new_tree` + `current`.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Type-erased strategy, as produced by [`Strategy::boxed`].
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        (**self).sample(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Uniform choice among same-typed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
    _marker: PhantomData<T>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof!: no arms");
        Union { arms, _marker: PhantomData }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A / 0)
    (A / 0, B / 1)
    (A / 0, B / 1, C / 2)
    (A / 0, B / 1, C / 2, D / 3)
    (A / 0, B / 1, C / 2, D / 3, E / 4)
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5)
}

/// `&str` strategies: a pattern subset of sequences of atoms, each an
/// optionally `{m,n}`/`{n}`-quantified character class (`[a-z0-9_]`) or
/// literal character. Covers patterns like `"[a-z]{1,8}"`.
impl Strategy for &'static str {
    type Value = String;

    fn sample(&self, rng: &mut StdRng) -> String {
        sample_pattern(self, rng)
    }
}

struct Atom {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .unwrap_or_else(|| panic!("unclosed '[' in pattern {pattern:?}"))
                + i;
            let mut set = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                    assert!(lo <= hi, "bad class range in pattern {pattern:?}");
                    set.extend((lo..=hi).filter_map(char::from_u32));
                    j += 3;
                } else {
                    set.push(chars[j]);
                    j += 1;
                }
            }
            assert!(!set.is_empty(), "empty class in pattern {pattern:?}");
            i = close + 1;
            set
        } else {
            let c = chars[i];
            assert!(
                !matches!(c, '(' | ')' | '|' | '*' | '+' | '?' | '.' | '\\'),
                "unsupported regex feature {c:?} in pattern {pattern:?}",
            );
            i += 1;
            vec![c]
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed '{{' in pattern {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            let parsed = match body.split_once(',') {
                Some((m, n)) => (m.trim().parse().unwrap(), n.trim().parse().unwrap()),
                None => {
                    let n = body.trim().parse().unwrap();
                    (n, n)
                }
            };
            i = close + 1;
            parsed
        } else {
            (1, 1)
        };
        assert!(min <= max, "bad quantifier in pattern {pattern:?}");
        atoms.push(Atom { choices, min, max });
    }
    atoms
}

fn sample_pattern(pattern: &str, rng: &mut StdRng) -> String {
    let mut out = String::new();
    for atom in parse_pattern(pattern) {
        let n = rng.gen_range(atom.min..=atom.max);
        for _ in 0..n {
            out.push(atom.choices[rng.gen_range(0..atom.choices.len())]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn pattern_strategy_matches_class_and_bounds() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..500 {
            let s = "[a-z]{1,8}".sample(&mut rng);
            assert!((1..=8).contains(&s.len()), "bad len: {s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "bad char: {s:?}");
            let d = "[0-9]{3}".sample(&mut rng);
            assert_eq!(d.len(), 3);
            assert!(d.chars().all(|c| c.is_ascii_digit()));
        }
    }

    #[test]
    fn union_and_combinators_produce_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = crate::prop_oneof![
            "[a-z]{2}",
            (1usize..4, 1usize..4).prop_map(|(a, b)| format!("{a}{b}")),
        ];
        for _ in 0..100 {
            assert!(!s.sample(&mut rng).is_empty());
        }
        let v = crate::collection::vec(0u32..6, 1..20).sample(&mut rng);
        assert!(!v.is_empty() && v.len() < 20);
        assert!(v.iter().all(|&x| x < 6));
    }
}
