//! Offline stand-in for the Linux readiness syscalls: `epoll_create1` /
//! `epoll_ctl` / `epoll_wait`, `eventfd`, `ppoll`, and `prlimit64`.
//!
//! The build environment has no crates-registry access, so — like the other
//! `compat/` crates — this one brings the missing capability in-tree instead
//! of depending on `libc`/`mio`/`polling`. The syscalls are invoked raw
//! (inline `asm!` with per-architecture syscall numbers on x86_64/aarch64,
//! the C `syscall(2)` symbol std already links elsewhere), wrapped in a
//! small safe API:
//!
//! * [`Epoll`] — a readiness set: register fds with a `u64` token, wait for
//!   events with a millisecond timeout.
//! * [`EventFd`] — a cross-thread wakeup: any thread [`EventFd::signal`]s,
//!   the reactor sees the fd readable and [`EventFd::drain`]s it.
//! * [`poll_one`] — one-shot readiness probe of a single fd (`ppoll`),
//!   used to detect stale pooled connections without consuming bytes.
//! * [`raise_nofile_limit`] — best-effort `RLIMIT_NOFILE` bump for
//!   benchmarks that open thousands of sockets.
//!
//! All `unsafe` in the serving stack lives here; the callers
//! (`doduo-served`'s reactor, `doduo-balance`'s backend pool) stay
//! `forbid(unsafe_code)`-clean.

#![warn(missing_docs)]

use std::io;
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::time::Duration;

// ---------------------------------------------------------------- syscalls

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod nr {
    pub const READ: usize = 0;
    pub const WRITE: usize = 1;
    pub const PPOLL: usize = 271;
    pub const EPOLL_CTL: usize = 233;
    pub const EPOLL_PWAIT: usize = 281;
    pub const EVENTFD2: usize = 290;
    pub const EPOLL_CREATE1: usize = 291;
    pub const PRLIMIT64: usize = 302;
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
mod nr {
    pub const READ: usize = 63;
    pub const WRITE: usize = 64;
    pub const PPOLL: usize = 73;
    pub const EPOLL_CTL: usize = 21;
    pub const EPOLL_PWAIT: usize = 22;
    pub const EVENTFD2: usize = 19;
    pub const EPOLL_CREATE1: usize = 20;
    pub const PRLIMIT64: usize = 261;
}

/// Raw 6-argument syscall; returns the kernel's `-errno` convention.
///
/// # Safety
/// The caller must uphold the invoked syscall's contract (valid pointers,
/// correct lengths) exactly as for any FFI call.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
unsafe fn syscall6(
    nr: usize,
    a0: usize,
    a1: usize,
    a2: usize,
    a3: usize,
    a4: usize,
    a5: usize,
) -> isize {
    let ret: isize;
    core::arch::asm!(
        "syscall",
        inlateout("rax") nr => ret,
        in("rdi") a0,
        in("rsi") a1,
        in("rdx") a2,
        in("r10") a3,
        in("r8") a4,
        in("r9") a5,
        out("rcx") _,
        out("r11") _,
        options(nostack),
    );
    ret
}

/// Raw 6-argument syscall; returns the kernel's `-errno` convention.
///
/// # Safety
/// As for the x86_64 variant: the syscall's own contract applies.
#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
unsafe fn syscall6(
    nr: usize,
    a0: usize,
    a1: usize,
    a2: usize,
    a3: usize,
    a4: usize,
    a5: usize,
) -> isize {
    let ret: isize;
    core::arch::asm!(
        "svc 0",
        in("x8") nr,
        inlateout("x0") a0 => ret,
        in("x1") a1,
        in("x2") a2,
        in("x3") a3,
        in("x4") a4,
        in("x5") a5,
        options(nostack),
    );
    ret
}

/// Fallback for Linux architectures without an inline-asm table here:
/// route through the C library's `syscall(2)`, which std already links.
#[cfg(all(target_os = "linux", not(any(target_arch = "x86_64", target_arch = "aarch64"))))]
mod nr {
    pub const READ: usize = 0xffff_0000;
    pub const WRITE: usize = 0xffff_0001;
    pub const PPOLL: usize = 0xffff_0002;
    pub const EPOLL_CTL: usize = 0xffff_0003;
    pub const EPOLL_PWAIT: usize = 0xffff_0004;
    pub const EVENTFD2: usize = 0xffff_0005;
    pub const EPOLL_CREATE1: usize = 0xffff_0006;
    pub const PRLIMIT64: usize = 0xffff_0007;
}

#[cfg(not(target_os = "linux"))]
compile_error!("the epoll compat shim targets Linux (the only platform this workspace serves on)");

#[cfg(all(target_os = "linux", not(any(target_arch = "x86_64", target_arch = "aarch64"))))]
unsafe fn syscall6(
    nr: usize,
    a0: usize,
    a1: usize,
    a2: usize,
    a3: usize,
    a4: usize,
    a5: usize,
) -> isize {
    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut u8) -> i32;
        fn epoll_pwait(
            epfd: i32,
            events: *mut u8,
            max: i32,
            timeout: i32,
            sigmask: *const u8,
        ) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn ppoll(fds: *mut u8, nfds: usize, ts: *const u8, sigmask: *const u8) -> i32;
        fn prlimit(pid: i32, resource: i32, new_limit: *const u8, old_limit: *mut u8) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    }
    fn errno_result(r: isize) -> isize {
        if r < 0 {
            -(io::Error::last_os_error().raw_os_error().unwrap_or(5) as isize)
        } else {
            r
        }
    }
    match nr {
        x if x == nr::READ => errno_result(read(a0 as i32, a1 as *mut u8, a2)),
        x if x == nr::WRITE => errno_result(write(a0 as i32, a1 as *const u8, a2)),
        x if x == nr::PPOLL => {
            errno_result(ppoll(a0 as *mut u8, a1, a2 as *const u8, a3 as *const u8) as isize)
        }
        x if x == nr::EPOLL_CTL => {
            errno_result(epoll_ctl(a0 as i32, a1 as i32, a2 as i32, a3 as *mut u8) as isize)
        }
        x if x == nr::EPOLL_PWAIT => errno_result(epoll_pwait(
            a0 as i32,
            a1 as *mut u8,
            a2 as i32,
            a3 as i32,
            a4 as *const u8,
        ) as isize),
        x if x == nr::EVENTFD2 => errno_result(eventfd(a0 as u32, a1 as i32) as isize),
        x if x == nr::EPOLL_CREATE1 => errno_result(epoll_create1(a0 as i32) as isize),
        x if x == nr::PRLIMIT64 => {
            errno_result(prlimit(a0 as i32, a1 as i32, a2 as *const u8, a3 as *mut u8) as isize)
        }
        _ => -38, // ENOSYS
    }
}

/// Converts a `-errno` return into `io::Result<usize>`.
fn check(ret: isize) -> io::Result<usize> {
    if ret < 0 {
        Err(io::Error::from_raw_os_error(-ret as i32))
    } else {
        Ok(ret as usize)
    }
}

// ------------------------------------------------------------------- epoll

/// Readable: data waiting (or, with 0 bytes, EOF).
pub const EPOLLIN: u32 = 0x001;
/// Writable: the send buffer has room again.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition on the fd (always reported, no need to register).
pub const EPOLLERR: u32 = 0x008;
/// Hangup: both directions closed (always reported).
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its write half (must be registered to be reported).
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: usize = 1;
const EPOLL_CTL_DEL: usize = 2;
const EPOLL_CTL_MOD: usize = 3;
const EPOLL_CLOEXEC: usize = 0x80000;

/// The kernel's `struct epoll_event`; packed on x86_64 per the ABI.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
struct RawEvent {
    events: u32,
    data: u64,
}

/// One readiness event: which conditions fired, for which registration.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// Bitmask of `EPOLL*` conditions.
    pub events: u32,
    /// The token passed at registration (`add`/`modify`).
    pub token: u64,
}

impl Event {
    /// True when the fd is readable (or at EOF).
    pub fn readable(&self) -> bool {
        self.events & EPOLLIN != 0
    }

    /// True when the fd is writable.
    pub fn writable(&self) -> bool {
        self.events & EPOLLOUT != 0
    }

    /// True on error/hangup conditions that mean the fd is finished.
    pub fn closed(&self) -> bool {
        self.events & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0
    }
}

/// A level-triggered epoll readiness set.
pub struct Epoll {
    fd: OwnedFd,
}

impl Epoll {
    /// Creates the epoll instance (`EPOLL_CLOEXEC`).
    pub fn new() -> io::Result<Epoll> {
        let fd = check(unsafe { syscall6(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0) })?;
        Ok(Epoll { fd: unsafe { OwnedFd::from_raw_fd(fd as RawFd) } })
    }

    fn ctl(&self, op: usize, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        let mut ev = RawEvent { events: interest, data: token };
        let ptr = if op == EPOLL_CTL_DEL { std::ptr::null_mut() } else { &mut ev as *mut RawEvent };
        check(unsafe {
            syscall6(
                nr::EPOLL_CTL,
                self.fd.as_raw_fd() as usize,
                op,
                fd as usize,
                ptr as usize,
                0,
                0,
            )
        })
        .map(|_| ())
    }

    /// Registers `fd` with the given interest mask and token.
    pub fn add(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Changes the interest mask (and token) of a registered fd.
    pub fn modify(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Removes `fd` from the set (safe to call on an already-closed fd).
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Waits up to `timeout` (`None` = forever) and fills `out` with up to
    /// `max` events — `out` is cleared first, so it only ever holds this
    /// wait's batch. Returns the number of events delivered; `0` means
    /// the timeout elapsed. `EINTR` is swallowed and reported as `0`.
    pub fn wait(
        &self,
        out: &mut Vec<Event>,
        max: usize,
        timeout: Option<Duration>,
    ) -> io::Result<usize> {
        out.clear();
        let max = max.clamp(1, 1024);
        // Stack scratch (12 KiB worst case) — a hot reactor calls this
        // hundreds of times per second and shouldn't pay a heap allocation
        // per wait.
        let mut raw = [RawEvent { events: 0, data: 0 }; 1024];
        let timeout_ms: isize = match timeout {
            None => -1,
            Some(d) => d.as_millis().min(i32::MAX as u128) as isize,
        };
        let n = unsafe {
            syscall6(
                nr::EPOLL_PWAIT,
                self.fd.as_raw_fd() as usize,
                raw.as_mut_ptr() as usize,
                max,
                timeout_ms as usize,
                0,
                8,
            )
        };
        if n == -4 {
            return Ok(0); // EINTR: treat as a timeout tick
        }
        let n = check(n)?;
        for ev in &raw[..n] {
            // A packed struct field can't be referenced in place; copy out.
            let (events, data) = (ev.events, ev.data);
            out.push(Event { events, token: data });
        }
        Ok(n)
    }
}

impl AsRawFd for Epoll {
    fn as_raw_fd(&self) -> RawFd {
        self.fd.as_raw_fd()
    }
}

// ----------------------------------------------------------------- eventfd

const EFD_CLOEXEC: usize = 0x80000;
const EFD_NONBLOCK: usize = 0x800;

/// A kernel event counter used as a cross-thread wakeup: writers
/// [`EventFd::signal`], the epoll loop sees it readable and
/// [`EventFd::drain`]s. Non-blocking on both ends; sharable via `Arc`.
pub struct EventFd {
    fd: OwnedFd,
}

impl EventFd {
    /// Creates the eventfd (`EFD_CLOEXEC | EFD_NONBLOCK`, counter 0).
    pub fn new() -> io::Result<EventFd> {
        let fd =
            check(unsafe { syscall6(nr::EVENTFD2, 0, EFD_CLOEXEC | EFD_NONBLOCK, 0, 0, 0, 0) })?;
        Ok(EventFd { fd: unsafe { OwnedFd::from_raw_fd(fd as RawFd) } })
    }

    /// Adds 1 to the counter, waking any epoll waiting on readability.
    /// Saturation (counter full) still leaves the fd readable, so the wake
    /// is never lost; errors other than `EAGAIN` are reported.
    pub fn signal(&self) -> io::Result<()> {
        let one: u64 = 1;
        let r = unsafe {
            syscall6(
                nr::WRITE,
                self.fd.as_raw_fd() as usize,
                &one as *const u64 as usize,
                8,
                0,
                0,
                0,
            )
        };
        if r == -11 {
            return Ok(()); // EAGAIN: counter saturated — still readable
        }
        check(r).map(|_| ())
    }

    /// Reads and resets the counter; returns it (0 when nothing pending).
    pub fn drain(&self) -> u64 {
        let mut count: u64 = 0;
        let r = unsafe {
            syscall6(
                nr::READ,
                self.fd.as_raw_fd() as usize,
                &mut count as *mut u64 as usize,
                8,
                0,
                0,
                0,
            )
        };
        if r == 8 {
            count
        } else {
            0
        }
    }
}

impl AsRawFd for EventFd {
    fn as_raw_fd(&self) -> RawFd {
        self.fd.as_raw_fd()
    }
}

// -------------------------------------------------------------------- poll

/// `poll(2)` readable condition.
pub const POLLIN: u32 = 0x001;
/// `poll(2)` writable condition.
pub const POLLOUT: u32 = 0x004;
/// `poll(2)` error condition (output only).
pub const POLLERR: u32 = 0x008;
/// `poll(2)` hangup condition (output only).
pub const POLLHUP: u32 = 0x010;
/// `poll(2)` peer-closed-write-half condition.
pub const POLLRDHUP: u32 = 0x2000;

#[repr(C)]
struct PollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

#[repr(C)]
struct Timespec {
    secs: i64,
    nanos: i64,
}

/// Polls one fd for the `interest` conditions (`POLLIN`/`POLLOUT`) with a
/// timeout (`Some(ZERO)` = instant probe). Returns the fired `revents`
/// mask — `0` when the timeout elapsed with nothing ready.
pub fn poll_one(fd: RawFd, interest: u32, timeout: Option<Duration>) -> io::Result<u32> {
    let mut pfd = PollFd { fd, events: interest as i16, revents: 0 };
    let ts;
    let ts_ptr = match timeout {
        None => std::ptr::null::<Timespec>(),
        Some(d) => {
            ts = Timespec { secs: d.as_secs() as i64, nanos: d.subsec_nanos() as i64 };
            &ts as *const Timespec
        }
    };
    let r = unsafe {
        syscall6(nr::PPOLL, &mut pfd as *mut PollFd as usize, 1, ts_ptr as usize, 0, 8, 0)
    };
    if r == -4 {
        return Ok(0); // EINTR
    }
    let n = check(r)?;
    Ok(if n == 0 { 0 } else { pfd.revents as u32 & 0xffff })
}

// ------------------------------------------------------------------ rlimit

#[repr(C)]
struct RLimit64 {
    cur: u64,
    max: u64,
}

const RLIMIT_NOFILE: usize = 7;

/// Best-effort raise of the open-file soft limit toward `want` (capped at
/// the hard limit). Returns the resulting soft limit.
pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
    let mut old = RLimit64 { cur: 0, max: 0 };
    check(unsafe {
        syscall6(nr::PRLIMIT64, 0, RLIMIT_NOFILE, 0, &mut old as *mut RLimit64 as usize, 0, 0)
    })?;
    if old.cur >= want {
        return Ok(old.cur);
    }
    let new = RLimit64 { cur: want.min(old.max), max: old.max };
    check(unsafe {
        syscall6(nr::PRLIMIT64, 0, RLIMIT_NOFILE, &new as *const RLimit64 as usize, 0, 0, 0)
    })?;
    Ok(new.cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::unix::net::UnixStream;

    #[test]
    fn eventfd_signal_then_drain() {
        let efd = EventFd::new().expect("eventfd");
        assert_eq!(efd.drain(), 0, "fresh eventfd is empty");
        efd.signal().expect("signal");
        efd.signal().expect("signal");
        assert_eq!(efd.drain(), 2, "counter accumulates signals");
        assert_eq!(efd.drain(), 0, "drain resets");
    }

    #[test]
    fn epoll_sees_socketpair_readability() {
        let ep = Epoll::new().expect("epoll");
        let (mut a, b) = UnixStream::pair().expect("socketpair");
        b.set_nonblocking(true).expect("nonblocking");
        ep.add(b.as_raw_fd(), 7, EPOLLIN | EPOLLRDHUP).expect("add");

        let mut events = Vec::new();
        let n = ep.wait(&mut events, 8, Some(Duration::from_millis(0))).expect("wait");
        assert_eq!(n, 0, "nothing readable yet");

        a.write_all(b"x").expect("write");
        let n = ep.wait(&mut events, 8, Some(Duration::from_secs(5))).expect("wait");
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable());

        let mut buf = [0u8; 8];
        let mut bb = &b;
        assert_eq!(bb.read(&mut buf).expect("read"), 1);

        // Peer close reports a closed condition.
        drop(a);
        events.clear();
        let n = ep.wait(&mut events, 8, Some(Duration::from_secs(5))).expect("wait");
        assert_eq!(n, 1);
        assert!(events[0].closed() || events[0].readable());

        ep.delete(b.as_raw_fd()).expect("delete");
    }

    #[test]
    fn epoll_wakes_on_eventfd_from_another_thread() {
        let ep = Epoll::new().expect("epoll");
        let efd = std::sync::Arc::new(EventFd::new().expect("eventfd"));
        ep.add(efd.as_raw_fd(), 1, EPOLLIN).expect("add");
        let remote = std::sync::Arc::clone(&efd);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            remote.signal().expect("signal");
        });
        let mut events = Vec::new();
        let n = ep.wait(&mut events, 8, Some(Duration::from_secs(5))).expect("wait");
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 1);
        assert_eq!(efd.drain(), 1);
        t.join().expect("thread");
    }

    #[test]
    fn epoll_modify_switches_interest_to_writable() {
        let ep = Epoll::new().expect("epoll");
        let (_a, b) = UnixStream::pair().expect("socketpair");
        ep.add(b.as_raw_fd(), 3, EPOLLIN).expect("add");
        let mut events = Vec::new();
        assert_eq!(ep.wait(&mut events, 8, Some(Duration::ZERO)).expect("wait"), 0);
        // An idle socket with send-buffer room is instantly writable.
        ep.modify(b.as_raw_fd(), 3, EPOLLOUT).expect("modify");
        let n = ep.wait(&mut events, 8, Some(Duration::from_secs(5))).expect("wait");
        assert_eq!(n, 1);
        assert!(events[0].writable());
    }

    #[test]
    fn poll_one_probes_without_consuming() {
        let (mut a, b) = UnixStream::pair().expect("socketpair");
        assert_eq!(poll_one(b.as_raw_fd(), POLLIN, Some(Duration::ZERO)).expect("poll"), 0);
        a.write_all(b"y").expect("write");
        let r = poll_one(b.as_raw_fd(), POLLIN, Some(Duration::from_secs(5))).expect("poll");
        assert!(r & POLLIN != 0);
        // The probe left the byte in the socket.
        let mut buf = [0u8; 8];
        let mut bb = &b;
        assert_eq!(std::io::Read::read(&mut bb, &mut buf).expect("read"), 1);
        // A closed peer reports HUP-ish conditions.
        drop(a);
        let r = poll_one(b.as_raw_fd(), POLLIN | POLLRDHUP, Some(Duration::from_secs(5)))
            .expect("poll");
        assert!(r & (POLLIN | POLLHUP | POLLRDHUP) != 0);
    }

    #[test]
    fn nofile_limit_is_queryable_and_raisable() {
        let now = raise_nofile_limit(0).expect("query");
        assert!(now > 0);
        let raised = raise_nofile_limit(now).expect("noop raise");
        assert!(raised >= now);
    }
}
