//! End-to-end daemon tests over real TCP sockets: responses must be
//! *byte*-identical to the offline annotation path at every concurrency
//! level and batching policy, and shutdown must be graceful (in-flight and
//! queued requests answered, `run()` returns).

use doduo_serve::BatchConfig;
use doduo_served::bootstrap::{synthetic_world, SyntheticWorld};
use doduo_served::http::Client;
use doduo_served::json::{annotations_response, table_to_json, Json};
use doduo_served::{BatchPolicy, ServeConfig, Server};
use doduo_table::Table;
use std::time::Duration;

/// The offline reference bytes for one table: per-table `annotate` through
/// the same response encoder the daemon uses.
fn offline_bytes(world: &SyntheticWorld, t: &Table) -> Vec<u8> {
    let ann = world.annotator().annotate(t);
    annotations_response(&[ann], false).into_bytes()
}

fn with_server<R>(
    world: &SyntheticWorld,
    policy: BatchPolicy,
    body: impl FnOnce(&str) -> R + Send,
) -> R {
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        policy,
        engine: BatchConfig { threads: 2, ..BatchConfig::default() },
        read_timeout: Duration::from_millis(50),
        ..ServeConfig::default()
    };
    let server = Server::bind(cfg).expect("bind ephemeral port");
    let addr = server.addr().to_string();
    let handle = server.handle();
    std::thread::scope(|scope| {
        let runner = scope.spawn(|| server.run(&world.bundle));
        let out = body(&addr);
        handle.shutdown();
        runner.join().expect("server thread exits cleanly");
        out
    })
}

#[test]
fn healthz_stats_and_errors() {
    let world = synthetic_world(true, 42);
    with_server(&world, BatchPolicy::default(), |addr| {
        let mut c = Client::connect(addr, Some(Duration::from_secs(10))).expect("connect");
        let health = c.request("GET", "/healthz", b"").expect("healthz");
        assert_eq!(health.status, 200);
        let v = Json::parse(std::str::from_utf8(&health.body).unwrap().trim()).unwrap();
        assert_eq!(v.get("status").and_then(Json::as_str), Some("ok"));

        // Malformed JSON → 400 (connection closes after an error).
        let mut c2 = Client::connect(addr, Some(Duration::from_secs(10))).expect("connect");
        let bad = c2.request("POST", "/annotate", b"{not json").expect("bad body answered");
        assert_eq!(bad.status, 400);

        // Unknown route → 404; keep-alive survives it.
        let notfound = c.request("GET", "/nope", b"").expect("404 answered");
        assert_eq!(notfound.status, 404);

        // A valid single-table request on the same connection, then stats.
        let t = &world.tables[0];
        let ok = c.request("POST", "/annotate", table_to_json(t).as_bytes()).expect("annotate");
        assert_eq!(ok.status, 200);
        let stats = c.request("GET", "/stats", b"").expect("stats");
        assert_eq!(stats.status, 200);
        let s = Json::parse(std::str::from_utf8(&stats.body).unwrap().trim()).unwrap();
        assert_eq!(s.get("requests_ok").and_then(Json::as_f64), Some(1.0));
        assert!(s.get("latency_ms").unwrap().get("p50").unwrap().as_f64().unwrap() > 0.0);
        let flushes = s.get("flushes").unwrap();
        let total = ["budget", "deadline", "shutdown"]
            .iter()
            .map(|k| flushes.get(k).unwrap().as_f64().unwrap())
            .sum::<f64>();
        assert!(total >= 1.0, "the annotate request flushed at least one batch");
    });
}

#[test]
fn sequential_responses_are_byte_identical_to_offline() {
    let world = synthetic_world(true, 42);
    with_server(&world, BatchPolicy::default(), |addr| {
        let mut c = Client::connect(addr, Some(Duration::from_secs(30))).expect("connect");
        for t in world.tables.iter().take(6) {
            let resp = c.request("POST", "/annotate", table_to_json(t).as_bytes()).expect("req");
            assert_eq!(resp.status, 200);
            assert_eq!(
                resp.body,
                offline_bytes(&world, t),
                "online response must be byte-identical to offline annotate for {}",
                t.id
            );
        }
    });
}

#[test]
fn concurrent_burst_is_byte_identical_and_batched() {
    let world = synthetic_world(true, 42);
    // A generous deadline forces real coalescing: the burst below lands
    // well inside 50ms, so most responses ride shared batches.
    let policy = BatchPolicy {
        max_delay: Duration::from_millis(50),
        max_batch_seqs: 8,
        max_batch_tokens: 100_000,
        ..BatchPolicy::default()
    };
    let n_clients = 12usize;
    let world_ref = &world;
    with_server(world_ref, policy, |addr| {
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for k in 0..n_clients {
                handles.push(scope.spawn(move || {
                    let mut c =
                        Client::connect(addr, Some(Duration::from_secs(30))).expect("connect");
                    // Each client hits a different table, twice.
                    let t = &world_ref.tables[k % world_ref.tables.len()];
                    for _ in 0..2 {
                        let resp = c
                            .request("POST", "/annotate", table_to_json(t).as_bytes())
                            .expect("annotate");
                        assert_eq!(resp.status, 200);
                        assert_eq!(resp.body, offline_bytes(world_ref, t), "table {}", t.id);
                    }
                }));
            }
            for h in handles {
                h.join().expect("client ok");
            }
        });

        // With 24 requests and an 8-sequence budget, coalescing must have
        // produced at least one multi-table batch.
        let mut c = Client::connect(addr, Some(Duration::from_secs(10))).expect("connect");
        let stats = c.request("GET", "/stats", b"").expect("stats");
        let s = Json::parse(std::str::from_utf8(&stats.body).unwrap().trim()).unwrap();
        assert_eq!(s.get("requests_ok").and_then(Json::as_f64), Some(2.0 * n_clients as f64));
        let mean_batch =
            s.get("batch_tables").unwrap().get("mean").unwrap().as_f64().expect("mean");
        assert!(mean_batch > 1.0, "expected coalescing, got mean batch {mean_batch}");
    });
}

#[test]
fn multi_table_requests_round_trip() {
    let world = synthetic_world(true, 42);
    with_server(&world, BatchPolicy::default(), |addr| {
        let mut c = Client::connect(addr, Some(Duration::from_secs(30))).expect("connect");
        let ts: Vec<&Table> = world.tables.iter().take(3).collect();
        let body = format!(
            "{{\"tables\":[{}]}}",
            ts.iter().map(|t| table_to_json(t)).collect::<Vec<_>>().join(",")
        );
        let resp = c.request("POST", "/annotate", body.as_bytes()).expect("annotate");
        assert_eq!(resp.status, 200);
        let anns: Vec<_> = ts.iter().map(|t| world.annotator().annotate(t)).collect();
        assert_eq!(resp.body, annotations_response(&anns, true).into_bytes());
    });
}

#[test]
fn oversized_table_is_rejected_not_crashed() {
    let world = synthetic_world(true, 42);
    with_server(&world, BatchPolicy::default(), |addr| {
        let mut c = Client::connect(addr, Some(Duration::from_secs(10))).expect("connect");
        let max_cols = world.bundle.annotator().model.config().serialize.max_supported_cols();
        let cols: Vec<String> = (0..max_cols + 1).map(|i| format!("[\"cell {i}\"]")).collect();
        let body = format!("{{\"columns\":[{}]}}", cols.join(","));
        let resp = c.request("POST", "/annotate", body.as_bytes()).expect("answered");
        assert_eq!(resp.status, 400);
        // The daemon still serves afterwards.
        let mut c2 = Client::connect(addr, Some(Duration::from_secs(10))).expect("connect");
        let t = &world.tables[0];
        let ok = c2.request("POST", "/annotate", table_to_json(t).as_bytes()).expect("annotate");
        assert_eq!(ok.status, 200);
    });
}

#[test]
fn shutdown_endpoint_stops_the_server() {
    let world = synthetic_world(true, 42);
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        read_timeout: Duration::from_millis(50),
        ..ServeConfig::default()
    };
    let server = Server::bind(cfg).expect("bind");
    let addr = server.addr().to_string();
    std::thread::scope(|scope| {
        let runner = scope.spawn(|| server.run(&world.bundle));
        let mut c = Client::connect(&addr, Some(Duration::from_secs(10))).expect("connect");
        let t = &world.tables[1];
        let ok = c.request("POST", "/annotate", table_to_json(t).as_bytes()).expect("annotate");
        assert_eq!(ok.status, 200);
        let resp = c.request("POST", "/shutdown", b"").expect("shutdown answered");
        assert_eq!(resp.status, 200);
        runner.join().expect("run() returns after POST /shutdown");
    });
    // After shutdown (and dropping the server) the port must be closed.
    drop(server);
    assert!(Client::connect(&addr, Some(Duration::from_millis(200))).is_err());
}
