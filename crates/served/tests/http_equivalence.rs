//! End-to-end daemon tests over real TCP sockets: responses must be
//! *byte*-identical to the offline annotation path at every concurrency
//! level and batching policy, and shutdown must be graceful (in-flight and
//! queued requests answered, `run()` returns).

use doduo_serve::BatchConfig;
use doduo_served::bootstrap::{synthetic_world, SyntheticWorld};
use doduo_served::http::Client;
use doduo_served::json::{annotations_response, table_to_json, Json};
use doduo_served::{BatchPolicy, ServeConfig, Server};
use doduo_table::Table;
use std::time::Duration;

/// The offline reference bytes for one table: per-table `annotate` through
/// the same response encoder the daemon uses. Also exactly one line of an
/// `/annotate_stream` response for the same table.
fn offline_bytes(world: &SyntheticWorld, t: &Table) -> Vec<u8> {
    let ann = world.annotator().annotate(t);
    annotations_response(&[ann], false).into_bytes()
}

fn test_config(policy: BatchPolicy) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        policy,
        engine: BatchConfig { threads: 2, ..BatchConfig::default() },
        read_timeout: Duration::from_millis(50),
        ..ServeConfig::default()
    }
}

/// Requests shutdown when dropped, so an assertion failure inside the test
/// body unwinds into a stopping server instead of deadlocking the scope's
/// implicit join.
struct ShutdownOnDrop(doduo_served::ServerHandle);

impl Drop for ShutdownOnDrop {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

fn with_server_cfg<R>(
    world: &SyntheticWorld,
    cfg: ServeConfig,
    body: impl FnOnce(&str) -> R + Send,
) -> R {
    let server = Server::bind(cfg).expect("bind ephemeral port");
    let addr = server.addr().to_string();
    std::thread::scope(|scope| {
        let guard = ShutdownOnDrop(server.handle());
        let runner = scope.spawn(|| server.run(world.bundle.clone()));
        let out = body(&addr);
        drop(guard);
        runner.join().expect("server thread exits cleanly");
        out
    })
}

fn with_server<R>(
    world: &SyntheticWorld,
    policy: BatchPolicy,
    body: impl FnOnce(&str) -> R + Send,
) -> R {
    with_server_cfg(world, test_config(policy), body)
}

#[test]
fn healthz_stats_and_errors() {
    let world = synthetic_world(true, 42);
    with_server(&world, BatchPolicy::default(), |addr| {
        let mut c = Client::connect(addr, Some(Duration::from_secs(10))).expect("connect");
        let health = c.request("GET", "/healthz", b"").expect("healthz");
        assert_eq!(health.status, 200);
        let v = Json::parse(std::str::from_utf8(&health.body).unwrap().trim()).unwrap();
        assert_eq!(v.get("status").and_then(Json::as_str), Some("ok"));

        // Malformed JSON → 400 (connection closes after an error).
        let mut c2 = Client::connect(addr, Some(Duration::from_secs(10))).expect("connect");
        let bad = c2.request("POST", "/annotate", b"{not json").expect("bad body answered");
        assert_eq!(bad.status, 400);

        // Unknown route → 404; keep-alive survives it.
        let notfound = c.request("GET", "/nope", b"").expect("404 answered");
        assert_eq!(notfound.status, 404);

        // A valid single-table request on the same connection, then stats.
        let t = &world.tables[0];
        let ok = c.request("POST", "/annotate", table_to_json(t).as_bytes()).expect("annotate");
        assert_eq!(ok.status, 200);
        let stats = c.request("GET", "/stats", b"").expect("stats");
        assert_eq!(stats.status, 200);
        let s = Json::parse(std::str::from_utf8(&stats.body).unwrap().trim()).unwrap();
        assert_eq!(s.get("requests_ok").and_then(Json::as_f64), Some(1.0));
        assert!(s.get("latency_ms").unwrap().get("p50").unwrap().as_f64().unwrap() > 0.0);
        let flushes = s.get("flushes").unwrap();
        let total = ["budget", "deadline", "shutdown"]
            .iter()
            .map(|k| flushes.get(k).unwrap().as_f64().unwrap())
            .sum::<f64>();
        assert!(total >= 1.0, "the annotate request flushed at least one batch");
    });
}

#[test]
fn sequential_responses_are_byte_identical_to_offline() {
    let world = synthetic_world(true, 42);
    with_server(&world, BatchPolicy::default(), |addr| {
        let mut c = Client::connect(addr, Some(Duration::from_secs(30))).expect("connect");
        for t in world.tables.iter().take(6) {
            let resp = c.request("POST", "/annotate", table_to_json(t).as_bytes()).expect("req");
            assert_eq!(resp.status, 200);
            assert_eq!(
                resp.body,
                offline_bytes(&world, t),
                "online response must be byte-identical to offline annotate for {}",
                t.id
            );
        }
    });
}

/// The versioned `/v1/...` routes are aliases of the legacy unprefixed
/// routes: same handlers, byte-identical annotation bodies, and the
/// streaming endpoint works under the prefix too.
#[test]
fn v1_routes_are_byte_identical_aliases() {
    let world = synthetic_world(true, 42);
    with_server(&world, BatchPolicy::default(), |addr| {
        let mut c = Client::connect(addr, Some(Duration::from_secs(30))).expect("connect");
        for t in world.tables.iter().take(3) {
            let legacy =
                c.request("POST", "/annotate", table_to_json(t).as_bytes()).expect("legacy");
            let v1 = c.request("POST", "/v1/annotate", table_to_json(t).as_bytes()).expect("v1");
            assert_eq!(v1.status, 200, "table {}", t.id);
            assert_eq!(v1.body, legacy.body, "alias must answer identically for {}", t.id);
            assert_eq!(v1.body, offline_bytes(&world, t), "and match offline for {}", t.id);
        }
        let stats = c.request("GET", "/v1/stats", b"").expect("stats");
        assert_eq!(stats.status, 200);
        Json::parse(std::str::from_utf8(&stats.body).expect("utf8")).expect("valid stats JSON");

        let mut s = Client::connect(addr, Some(Duration::from_secs(30))).expect("connect");
        s.stream_open("/v1/annotate_stream").expect("open stream");
        assert_eq!(s.stream_status().expect("status"), 200);
        let t = &world.tables[0];
        let mut doc = table_to_json(t);
        doc.push('\n');
        s.stream_send(doc.as_bytes()).expect("send table");
        let line = s.stream_next_line().expect("read result").expect("one result");
        assert_eq!(line.as_bytes(), offline_bytes(&world, t).as_slice());
        s.stream_finish().expect("finish upload");
        assert_eq!(s.stream_next_line().expect("end of stream"), None);
    });
}

#[test]
fn concurrent_burst_is_byte_identical_and_batched() {
    let world = synthetic_world(true, 42);
    // A generous deadline forces real coalescing: the burst below lands
    // well inside 50ms, so most responses ride shared batches.
    let policy = BatchPolicy {
        max_delay: Duration::from_millis(50),
        max_batch_seqs: 8,
        max_batch_tokens: 100_000,
        ..BatchPolicy::default()
    };
    let n_clients = 12usize;
    let world_ref = &world;
    with_server(world_ref, policy, |addr| {
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for k in 0..n_clients {
                handles.push(scope.spawn(move || {
                    let mut c =
                        Client::connect(addr, Some(Duration::from_secs(30))).expect("connect");
                    // Each client hits a different table, twice.
                    let t = &world_ref.tables[k % world_ref.tables.len()];
                    for _ in 0..2 {
                        let resp = c
                            .request("POST", "/annotate", table_to_json(t).as_bytes())
                            .expect("annotate");
                        assert_eq!(resp.status, 200);
                        assert_eq!(resp.body, offline_bytes(world_ref, t), "table {}", t.id);
                    }
                }));
            }
            for h in handles {
                h.join().expect("client ok");
            }
        });

        // With 24 requests and an 8-sequence budget, coalescing must have
        // produced at least one multi-table batch.
        let mut c = Client::connect(addr, Some(Duration::from_secs(10))).expect("connect");
        let stats = c.request("GET", "/stats", b"").expect("stats");
        let s = Json::parse(std::str::from_utf8(&stats.body).unwrap().trim()).unwrap();
        assert_eq!(s.get("requests_ok").and_then(Json::as_f64), Some(2.0 * n_clients as f64));
        let mean_batch =
            s.get("batch_tables").unwrap().get("mean").unwrap().as_f64().expect("mean");
        assert!(mean_batch > 1.0, "expected coalescing, got mean batch {mean_batch}");
    });
}

#[test]
fn multi_table_requests_round_trip() {
    let world = synthetic_world(true, 42);
    with_server(&world, BatchPolicy::default(), |addr| {
        let mut c = Client::connect(addr, Some(Duration::from_secs(30))).expect("connect");
        let ts: Vec<&Table> = world.tables.iter().take(3).collect();
        let body = format!(
            "{{\"tables\":[{}]}}",
            ts.iter().map(|t| table_to_json(t)).collect::<Vec<_>>().join(",")
        );
        let resp = c.request("POST", "/annotate", body.as_bytes()).expect("annotate");
        assert_eq!(resp.status, 200);
        let anns: Vec<_> = ts.iter().map(|t| world.annotator().annotate(t)).collect();
        assert_eq!(resp.body, annotations_response(&anns, true).into_bytes());
    });
}

#[test]
fn oversized_table_is_rejected_not_crashed() {
    let world = synthetic_world(true, 42);
    with_server(&world, BatchPolicy::default(), |addr| {
        let mut c = Client::connect(addr, Some(Duration::from_secs(10))).expect("connect");
        let max_cols = world.bundle.annotator().model.config().serialize.max_supported_cols();
        let cols: Vec<String> = (0..max_cols + 1).map(|i| format!("[\"cell {i}\"]")).collect();
        let body = format!("{{\"columns\":[{}]}}", cols.join(","));
        let resp = c.request("POST", "/annotate", body.as_bytes()).expect("answered");
        assert_eq!(resp.status, 400);
        // The daemon still serves afterwards.
        let mut c2 = Client::connect(addr, Some(Duration::from_secs(10))).expect("connect");
        let t = &world.tables[0];
        let ok = c2.request("POST", "/annotate", table_to_json(t).as_bytes()).expect("annotate");
        assert_eq!(ok.status, 200);
    });
}

#[test]
fn thread_per_connection_mode_is_byte_identical() {
    let world = synthetic_world(true, 42);
    let cfg = ServeConfig { workers: 0, ..test_config(BatchPolicy::default()) };
    with_server_cfg(&world, cfg, |addr| {
        let mut c = Client::connect(addr, Some(Duration::from_secs(30))).expect("connect");
        for t in world.tables.iter().take(3) {
            let resp = c.request("POST", "/annotate", table_to_json(t).as_bytes()).expect("req");
            assert_eq!(resp.status, 200);
            assert_eq!(resp.body, offline_bytes(&world, t), "table {}", t.id);
        }
    });
}

#[test]
fn keep_alive_reuses_connections_across_many_requests() {
    let world = synthetic_world(true, 42);
    with_server(&world, BatchPolicy::default(), |addr| {
        let mut c = Client::connect(addr, Some(Duration::from_secs(30))).expect("connect");
        for t in world.tables.iter().take(10) {
            let resp = c.request("POST", "/annotate", table_to_json(t).as_bytes()).expect("req");
            assert_eq!(resp.status, 200);
        }
        let stats = c.request("GET", "/stats", b"").expect("stats");
        let s = Json::parse(std::str::from_utf8(&stats.body).unwrap().trim()).unwrap();
        let conns = s.get("connections").expect("connections section");
        assert_eq!(conns.get("accepted").and_then(Json::as_f64), Some(1.0));
        // 11 requests so far on one connection: 10 reuses before this one.
        assert_eq!(conns.get("keepalive_reused").and_then(Json::as_f64), Some(10.0));
        let workers = s.get("workers").expect("workers section");
        let per_worker = workers.get("requests").and_then(Json::as_array).expect("array");
        let total: f64 = per_worker.iter().filter_map(Json::as_f64).sum();
        // Under the epoll topology no request here crosses a worker
        // thread: quick GET routes are answered inline on the reactor, and
        // annotates are submitted to the batching queue from the reactor
        // and completed by the dispatcher's engine callback. Workers only
        // see taken-over streams and chaos runs.
        assert_eq!(total, 0.0, "epoll annotates bypass the worker pool, got {total}");
        // The requests still count as served.
        assert_eq!(s.get("requests_ok").and_then(Json::as_f64), Some(10.0));
    });
}

#[test]
fn stream_results_arrive_incrementally_and_byte_identical() {
    let world = synthetic_world(true, 42);
    with_server(&world, BatchPolicy::default(), |addr| {
        let mut c = Client::connect(addr, Some(Duration::from_secs(30))).expect("connect");
        c.stream_open("/annotate_stream").expect("open stream");
        assert_eq!(c.stream_status().expect("status"), 200);
        // Interleave: each result is read back *before* the next table is
        // sent (and before the upload is finished), proving per-table
        // streaming rather than buffer-then-answer.
        for t in world.tables.iter().take(5) {
            let mut doc = table_to_json(t);
            doc.push('\n');
            c.stream_send(doc.as_bytes()).expect("send table");
            let line = c.stream_next_line().expect("read result").expect("one result per table");
            assert_eq!(line.as_bytes(), offline_bytes(&world, t).as_slice(), "table {}", t.id);
        }
        c.stream_finish().expect("finish upload");
        assert_eq!(c.stream_next_line().expect("end of stream"), None);
    });
}

#[test]
fn stream_of_split_chunks_matches_offline_in_order() {
    let world = synthetic_world(true, 42);
    with_server(&world, BatchPolicy::default(), |addr| {
        let tables: Vec<&Table> = world.tables.iter().take(8).collect();
        let mut payload = String::new();
        for t in &tables {
            payload.push_str(&table_to_json(t));
            payload.push('\n');
        }
        let mut c = Client::connect(addr, Some(Duration::from_secs(30))).expect("connect");
        c.stream_open("/annotate_stream").expect("open stream");
        // Deliberately awkward chunking: 97-byte pieces that split JSON
        // documents (and UTF-8-free ASCII) at arbitrary points.
        for piece in payload.as_bytes().chunks(97) {
            c.stream_send(piece).expect("send chunk");
        }
        c.stream_finish().expect("finish upload");
        let (status, lines) = c.stream_collect().expect("collect");
        assert_eq!(status, 200);
        assert_eq!(lines.len(), tables.len(), "one result line per table");
        for (t, line) in tables.iter().zip(&lines) {
            assert_eq!(line.as_bytes(), offline_bytes(&world, t).as_slice(), "table {}", t.id);
        }

        // Stream accounting is visible in /stats.
        let mut c2 = Client::connect(addr, Some(Duration::from_secs(10))).expect("connect");
        let stats = c2.request("GET", "/stats", b"").expect("stats");
        let s = Json::parse(std::str::from_utf8(&stats.body).unwrap().trim()).unwrap();
        let streams = s.get("streams").expect("streams section");
        assert!(streams.get("ok").and_then(Json::as_f64).unwrap_or(0.0) >= 1.0);
        assert!(streams.get("tables").and_then(Json::as_f64).unwrap_or(0.0) >= 8.0);
    });
}

#[test]
fn stream_total_length_is_not_capped() {
    let world = synthetic_world(true, 42);
    with_server(&world, BatchPolicy::default(), |addr| {
        let mut c = Client::connect(addr, Some(Duration::from_secs(30))).expect("connect");
        c.stream_open("/annotate_stream").expect("open stream");
        assert_eq!(c.stream_status().expect("status"), 200);
        let t = &world.tables[0];
        let mut doc = table_to_json(t);
        doc.push('\n');
        c.stream_send(doc.as_bytes()).expect("send table");
        assert!(c.stream_next_line().expect("read").is_some());
        // Push the cumulative stream length well past MAX_BODY_BYTES (8 MB)
        // with inter-document whitespace: a stream's total length is
        // legitimately unbounded (memory is bounded per document and by
        // the read-ahead window), so this must not trip a 413-style limit.
        let filler = vec![b' '; 64 * 1024];
        for _ in 0..160 {
            c.stream_send(&filler).expect("send filler"); // 10 MB total
        }
        c.stream_send(doc.as_bytes()).expect("send second table");
        c.stream_finish().expect("finish");
        let line = c.stream_next_line().expect("read").expect("second result");
        assert_eq!(line.as_bytes(), offline_bytes(&world, t).as_slice());
        assert_eq!(c.stream_next_line().expect("eof"), None, "no error object");
    });
}

#[test]
fn idle_stream_is_cut_not_pinned() {
    let world = synthetic_world(true, 42);
    let cfg = ServeConfig {
        stream_idle_timeout: Duration::from_millis(300),
        ..test_config(BatchPolicy::default())
    };
    with_server_cfg(&world, cfg, |addr| {
        let mut c = Client::connect(addr, Some(Duration::from_secs(10))).expect("connect");
        c.stream_open("/annotate_stream").expect("open stream");
        assert_eq!(c.stream_status().expect("status"), 200);
        let t = &world.tables[0];
        let mut doc = table_to_json(t);
        doc.push('\n');
        c.stream_send(doc.as_bytes()).expect("send table");
        let line = c.stream_next_line().expect("read").expect("result");
        assert_eq!(line.as_bytes(), offline_bytes(&world, t).as_slice());
        // Dribble meaningless whitespace: raw bytes are not progress, so
        // the idle timeout must cut the stream (a worker cannot be pinned
        // by a byte-dripping client).
        let t0 = std::time::Instant::now();
        let mut lines = Vec::new();
        loop {
            // Keep dripping while polling for the server's verdict.
            let _ = c.stream_send(b" ");
            std::thread::sleep(Duration::from_millis(50));
            match c.stream_next_line() {
                Ok(Some(l)) => lines.push(l),
                Ok(None) => break,
                Err(_) => break, // read timeout while server decides
            }
            assert!(t0.elapsed() < Duration::from_secs(8), "stream was never cut");
        }
        assert!(t0.elapsed() < Duration::from_secs(8), "stream was never cut");
        let err = lines.last().expect("an error object was streamed");
        assert!(err.contains("idle"), "expected idle-timeout error, got {err:?}");
    });
}

#[test]
fn stream_bad_table_gets_results_then_inband_error() {
    let world = synthetic_world(true, 42);
    with_server(&world, BatchPolicy::default(), |addr| {
        let mut c = Client::connect(addr, Some(Duration::from_secs(30))).expect("connect");
        c.stream_open("/annotate_stream").expect("open stream");
        let t = &world.tables[0];
        let mut doc = table_to_json(t);
        doc.push('\n');
        doc.push_str("{\"columns\": 7}\n"); // parses as JSON, not as a table
        c.stream_send(doc.as_bytes()).expect("send");
        c.stream_finish().expect("finish");
        let (status, lines) = c.stream_collect().expect("collect");
        assert_eq!(status, 200, "stream errors are in-band once the response started");
        assert_eq!(lines.len(), 2, "good table's result, then the error object");
        assert_eq!(lines[0].as_bytes(), offline_bytes(&world, t).as_slice());
        let err = Json::parse(lines[1].trim()).expect("error object parses");
        assert!(err.get("error").is_some(), "second line is an error: {:?}", lines[1]);
    });
}

#[test]
fn shutdown_with_an_open_stream_still_returns_promptly() {
    let world = synthetic_world(true, 42);
    let server = Server::bind(test_config(BatchPolicy::default())).expect("bind");
    let addr = server.addr().to_string();
    let handle = server.handle();
    std::thread::scope(|scope| {
        let runner = scope.spawn(|| server.run(world.bundle.clone()));
        let mut c = Client::connect(&addr, Some(Duration::from_secs(10))).expect("connect");
        c.stream_open("/annotate_stream").expect("open stream");
        assert_eq!(c.stream_status().expect("status"), 200);
        let t = &world.tables[0];
        let mut doc = table_to_json(t);
        doc.push('\n');
        c.stream_send(doc.as_bytes()).expect("send table");
        let line = c.stream_next_line().expect("result").expect("one result");
        assert_eq!(line.as_bytes(), offline_bytes(&world, t).as_slice());
        // The upload is deliberately left unfinished: a held-open stream
        // must not stall graceful shutdown (its worker notices the flag
        // within one poll cycle, flushes, and exits).
        let t0 = std::time::Instant::now();
        handle.shutdown();
        runner.join().expect("run() returns despite an open stream");
        assert!(t0.elapsed() < Duration::from_secs(5), "shutdown took {:?}", t0.elapsed());
    });
}

#[test]
fn shutdown_endpoint_stops_the_server() {
    let world = synthetic_world(true, 42);
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        read_timeout: Duration::from_millis(50),
        ..ServeConfig::default()
    };
    let server = Server::bind(cfg).expect("bind");
    let addr = server.addr().to_string();
    std::thread::scope(|scope| {
        let runner = scope.spawn(|| server.run(world.bundle.clone()));
        let mut c = Client::connect(&addr, Some(Duration::from_secs(10))).expect("connect");
        let t = &world.tables[1];
        let ok = c.request("POST", "/annotate", table_to_json(t).as_bytes()).expect("annotate");
        assert_eq!(ok.status, 200);
        let resp = c.request("POST", "/shutdown", b"").expect("shutdown answered");
        assert_eq!(resp.status, 200);
        runner.join().expect("run() returns after POST /shutdown");
    });
    // After shutdown (and dropping the server) the port must be closed.
    drop(server);
    assert!(Client::connect(&addr, Some(Duration::from_millis(200))).is_err());
}
