//! Adversarial tests for the daemon's hand-rolled HTTP stack, over raw TCP
//! sockets: malformed request lines, oversized heads/bodies, premature
//! EOF, byte-at-a-time split writes, pipelining, wrong `Content-Length`,
//! and bad chunked framing. Error-class requests must get the right status
//! (400/413), and a poisoned connection must never wedge a pool worker —
//! after any of these, a well-formed request is still answered promptly.

use doduo_served::bootstrap::{synthetic_world, SyntheticWorld};
use doduo_served::http::Client;
use doduo_served::json::table_to_json;
use doduo_served::{BatchPolicy, ServeConfig, Server, ServerHandle, Topology};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Every adversarial scenario runs against both serving topologies: the
/// epoll reactor (default) and the probe/requeue worker pool it replaced.
const TOPOLOGIES: &[Topology] = &[Topology::Epoll, Topology::Pool];

/// A small pool (2 workers) with short timeouts, so wedged-worker bugs
/// surface as test timeouts quickly.
fn hardened_config(topology: Topology) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        policy: BatchPolicy::default(),
        read_timeout: Duration::from_millis(50),
        request_deadline: Duration::from_secs(2),
        workers: 2,
        topology,
        ..ServeConfig::default()
    }
}

struct ShutdownOnDrop(ServerHandle);

impl Drop for ShutdownOnDrop {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

/// Runs `body` once per serving topology (epoll reactor, then legacy
/// pool), each against a fresh server.
fn with_server(world: &SyntheticWorld, body: impl Fn(&str) + Send + Sync) {
    for &topology in TOPOLOGIES {
        with_server_cfg(world, hardened_config(topology), &body);
    }
}

/// Raw connection: write whatever bytes, read whatever comes back.
fn raw(addr: &str) -> TcpStream {
    let s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    s.set_nodelay(true).expect("nodelay");
    s
}

/// Reads until EOF or read timeout; returns everything received.
fn read_all(s: &mut TcpStream) -> String {
    let mut out = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match s.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => out.extend_from_slice(&buf[..n]),
            Err(_) => break,
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Asserts the daemon still answers a good request quickly — the "no
/// worker is wedged" check used after every poisoning scenario.
fn assert_still_serving(addr: &str) {
    let mut c = Client::connect(addr, Some(Duration::from_secs(5))).expect("connect");
    let r = c.request("GET", "/healthz", b"").expect("healthz answered");
    assert_eq!(r.status, 200, "daemon must still serve after adversarial input");
}

#[test]
fn malformed_request_lines_get_400() {
    let world = synthetic_world(true, 42);
    with_server(&world, |addr| {
        for bad in [
            "GARBAGE\r\n\r\n",
            "GET\r\n\r\n",
            "GET /healthz\r\n\r\n",          // missing version
            "GET /healthz SMTP/1.0\r\n\r\n", // wrong protocol
            "\r\nGET /healthz HTTP/1.1\r\n\r\n",
        ] {
            let mut s = raw(addr);
            s.write_all(bad.as_bytes()).expect("write");
            let resp = read_all(&mut s);
            assert!(resp.starts_with("HTTP/1.1 400"), "{bad:?} => {resp:?}");
            assert!(
                resp.contains("\"error\"") && resp.contains("\"code\":\"bad_request\""),
                "400 carries the error envelope: {resp:?}"
            );
        }
        assert_still_serving(addr);
    });
}

#[test]
fn malformed_headers_get_400() {
    let world = synthetic_world(true, 42);
    with_server(&world, |addr| {
        for bad in [
            "GET /healthz HTTP/1.1\r\nno-colon-here\r\n\r\n",
            "POST /annotate HTTP/1.1\r\ncontent-length: banana\r\n\r\n",
            "POST /annotate HTTP/1.1\r\ntransfer-encoding: gzip\r\n\r\n",
            "POST /annotate HTTP/1.1\r\nexpect: 200-maybe\r\n\r\n",
        ] {
            let mut s = raw(addr);
            s.write_all(bad.as_bytes()).expect("write");
            let resp = read_all(&mut s);
            assert!(resp.starts_with("HTTP/1.1 400"), "{bad:?} => {resp:?}");
        }
        assert_still_serving(addr);
    });
}

#[test]
fn oversized_head_gets_413_without_unbounded_buffering() {
    let world = synthetic_world(true, 42);
    with_server(&world, |addr| {
        // One endless header line, no newline: the incremental cap must cut
        // it off at MAX_HEAD_BYTES, not buffer until the writer stops.
        let mut s = raw(addr);
        s.write_all(b"GET /healthz HTTP/1.1\r\nx-junk: ").expect("write");
        let junk = vec![b'a'; 64 * 1024];
        let _ = s.write_all(&junk); // may fail once the server answers+closes
        let resp = read_all(&mut s);
        assert!(resp.starts_with("HTTP/1.1 413"), "got {resp:?}");
        assert!(
            resp.contains("\"code\":\"payload_too_large\""),
            "413 carries the error envelope: {resp:?}"
        );

        // Many well-formed headers adding past the cap: same outcome.
        let mut s = raw(addr);
        s.write_all(b"GET /healthz HTTP/1.1\r\n").expect("write");
        for i in 0..300 {
            if s.write_all(format!("x-h{i}: {}\r\n", "v".repeat(100)).as_bytes()).is_err() {
                break;
            }
        }
        let resp = read_all(&mut s);
        assert!(resp.starts_with("HTTP/1.1 413"), "got {resp:?}");
        assert_still_serving(addr);
    });
}

#[test]
fn oversized_body_gets_413_before_upload() {
    let world = synthetic_world(true, 42);
    with_server(&world, |addr| {
        let mut s = raw(addr);
        // Declared 9 MB: rejected from the declaration alone, no body sent.
        s.write_all(b"POST /annotate HTTP/1.1\r\ncontent-length: 9437184\r\n\r\n").expect("write");
        let resp = read_all(&mut s);
        assert!(resp.starts_with("HTTP/1.1 413"), "got {resp:?}");
        assert_still_serving(addr);
    });
}

#[test]
fn premature_eof_mid_body_never_wedges() {
    let world = synthetic_world(true, 42);
    with_server(&world, |addr| {
        let mut s = raw(addr);
        s.write_all(b"POST /annotate HTTP/1.1\r\ncontent-length: 100\r\n\r\n{\"colu")
            .expect("write");
        s.shutdown(std::net::Shutdown::Write).expect("half-close");
        // The server cannot answer a request it never fully received; it
        // must just close. Reading drains to EOF without a 200.
        let resp = read_all(&mut s);
        assert!(!resp.contains("200 OK"), "truncated request must not succeed: {resp:?}");
        assert_still_serving(addr);
    });
}

#[test]
fn byte_at_a_time_request_still_parses() {
    let world = synthetic_world(true, 42);
    with_server(&world, |addr| {
        let t = &world.tables[0];
        let body = table_to_json(t);
        let req = format!(
            "POST /annotate HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{}",
            body.len(),
            body
        );
        let mut s = raw(addr);
        for b in req.as_bytes() {
            s.write_all(std::slice::from_ref(b)).expect("write one byte");
            s.flush().expect("flush");
        }
        let resp = read_all(&mut s);
        assert!(resp.starts_with("HTTP/1.1 200"), "split writes must still parse: {resp:?}");
        assert!(resp.contains("\"types\""), "got a real annotation body");
    });
}

#[test]
fn pipelined_requests_are_all_answered() {
    let world = synthetic_world(true, 42);
    with_server(&world, |addr| {
        let mut s = raw(addr);
        // Three requests in one write; the last closes the connection so
        // read_all terminates deterministically.
        s.write_all(
            b"GET /healthz HTTP/1.1\r\n\r\nGET /healthz HTTP/1.1\r\n\r\nGET /healthz \
              HTTP/1.1\r\nconnection: close\r\n\r\n",
        )
        .expect("write");
        let resp = read_all(&mut s);
        let answers = resp.matches("HTTP/1.1 200").count();
        assert_eq!(answers, 3, "all pipelined requests answered: {resp:?}");
    });
}

#[test]
fn wrong_content_length_poisons_only_its_connection() {
    let world = synthetic_world(true, 42);
    with_server(&world, |addr| {
        // Declared length smaller than the JSON actually sent: the request
        // parses a truncated body (400), and the trailing bytes must not be
        // misread as a second valid request.
        let body = b"{\"columns\": [[\"a\"]]}";
        let mut s = raw(addr);
        s.write_all(b"POST /annotate HTTP/1.1\r\ncontent-length: 5\r\n\r\n").expect("write");
        s.write_all(body).expect("write");
        let resp = read_all(&mut s);
        assert!(resp.starts_with("HTTP/1.1 400"), "truncated JSON is a 400: {resp:?}");
        assert_eq!(resp.matches("HTTP/1.1").count(), 1, "error closes the connection");
        assert_still_serving(addr);
    });
}

#[test]
fn conflicting_body_framings_get_400() {
    let world = synthetic_world(true, 42);
    with_server(&world, |addr| {
        // Content-Length alongside Transfer-Encoding (in either order) is
        // the classic request-smuggling vector: peers that resolve the
        // conflict differently disagree on where the body ends. The daemon
        // refuses to resolve it at all.
        for bad in [
            "POST /annotate HTTP/1.1\r\ntransfer-encoding: chunked\r\ncontent-length: \
             5\r\n\r\n0\r\n\r\n",
            "POST /annotate HTTP/1.1\r\ncontent-length: 5\r\ntransfer-encoding: \
             chunked\r\n\r\n0\r\n\r\n",
        ] {
            let mut s = raw(addr);
            s.write_all(bad.as_bytes()).expect("write");
            let resp = read_all(&mut s);
            assert!(resp.starts_with("HTTP/1.1 400"), "{bad:?} => {resp:?}");
        }
        // Duplicate Content-Length is the same smuggling class.
        let mut s = raw(addr);
        s.write_all(
            b"POST /annotate HTTP/1.1\r\ncontent-length: 5\r\ncontent-length: 500\r\n\r\nhello",
        )
        .expect("write");
        let resp = read_all(&mut s);
        assert!(resp.starts_with("HTTP/1.1 400"), "duplicate content-length: {resp:?}");
        assert_still_serving(addr);
    });
}

#[test]
fn bad_chunked_framing_gets_400() {
    let world = synthetic_world(true, 42);
    with_server(&world, |addr| {
        let mut s = raw(addr);
        s.write_all(b"POST /annotate HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\nzz\r\n")
            .expect("write");
        let resp = read_all(&mut s);
        assert!(resp.starts_with("HTTP/1.1 400"), "bad chunk size is a 400: {resp:?}");
        assert_still_serving(addr);
    });
}

#[test]
fn chunked_annotate_body_is_byte_identical() {
    let world = synthetic_world(true, 42);
    with_server(&world, |addr| {
        let t = &world.tables[1];
        let body = table_to_json(t);
        let mut s = raw(addr);
        s.write_all(
            b"POST /annotate HTTP/1.1\r\ntransfer-encoding: chunked\r\nconnection: \
                      close\r\n\r\n",
        )
        .expect("write");
        // Upload in two chunks split mid-document.
        let (a, b) = body.as_bytes().split_at(body.len() / 2);
        for piece in [a, b] {
            s.write_all(format!("{:x}\r\n", piece.len()).as_bytes()).expect("size");
            s.write_all(piece).expect("data");
            s.write_all(b"\r\n").expect("crlf");
        }
        s.write_all(b"0\r\n\r\n").expect("last chunk");
        let resp = read_all(&mut s);
        assert!(resp.starts_with("HTTP/1.1 200"), "chunked /annotate works: {resp:?}");
        let offline = {
            let ann = world.annotator().annotate(t);
            doduo_served::json::annotations_response(&[ann], false)
        };
        let payload = resp.split("\r\n\r\n").nth(1).expect("body present");
        assert_eq!(payload.as_bytes(), offline.as_bytes(), "byte-identical to offline");
    });
}

#[test]
fn poisoned_connections_never_wedge_the_pool() {
    let world = synthetic_world(true, 42);
    with_server(&world, |addr| {
        // More slow/partial connections than pool workers (2), all holding
        // a half-sent request head open.
        let mut poison = Vec::new();
        for _ in 0..4 {
            let mut s = raw(addr);
            s.write_all(b"POST /annotate HTTP/1.1\r\ncontent-len").expect("write partial");
            poison.push(s); // keep sockets open
        }
        // A well-formed request must still be answered promptly: stalled
        // reads are cut off at the read timeout, freeing their workers.
        let start = std::time::Instant::now();
        assert_still_serving(addr);
        assert!(
            start.elapsed() < Duration::from_secs(4),
            "good request waited {:?} behind poisoned connections",
            start.elapsed()
        );
        drop(poison);
    });
}

// ---------------------------------------------------------------------------
// Error-path audit pins and chaos-injection behavior (replicated serving).
// ---------------------------------------------------------------------------

/// Runs the server with a caller-supplied config (the chaos and
/// connection-cap tests below need non-default configs).
fn with_server_cfg<R>(
    world: &SyntheticWorld,
    cfg: ServeConfig,
    body: impl FnOnce(&str) -> R + Send,
) -> R {
    let server = Server::bind(cfg).expect("bind ephemeral port");
    let addr = server.addr().to_string();
    std::thread::scope(|scope| {
        let guard = ShutdownOnDrop(server.handle());
        let runner = scope.spawn(|| server.run(world.bundle.clone()));
        let out = body(&addr);
        drop(guard);
        runner.join().expect("server thread exits cleanly");
        out
    })
}

/// Audit pin: an empty `tables` array and a table with zero columns are
/// request errors (400 + clean close), not panics.
#[test]
fn empty_tables_and_empty_columns_get_400() {
    let world = synthetic_world(true, 42);
    with_server(&world, |addr| {
        for body in ["{\"tables\": []}", "{\"id\": \"t\", \"columns\": []}"] {
            let mut c = Client::connect(addr, Some(Duration::from_secs(5))).expect("connect");
            let r = c.request("POST", "/annotate", body.as_bytes()).expect("answered");
            assert_eq!(r.status, 400, "body {body:?} must be a request error");
        }
        assert_still_serving(addr);
    });
}

/// Audit pin: pathologically nested JSON trips the parser's depth bound
/// (400), never a recursion stack overflow (which would abort the process).
#[test]
fn deeply_nested_json_gets_400_not_a_stack_overflow() {
    let world = synthetic_world(true, 42);
    with_server(&world, |addr| {
        let mut body = String::from("{\"tables\": ");
        body.push_str(&"[".repeat(4096));
        body.push_str(&"]".repeat(4096));
        body.push('}');
        let mut c = Client::connect(addr, Some(Duration::from_secs(5))).expect("connect");
        let r = c.request("POST", "/annotate", body.as_bytes()).expect("answered");
        assert_eq!(r.status, 400, "deep nesting must hit the depth bound");
        assert_still_serving(addr);
    });
}

/// The unprefixed legacy aliases are no longer blind spots: every hit is
/// counted in `/v1/stats` as `legacy_route_hits`, and the response carries
/// a `Deprecation` header so clients can find themselves in logs. `/v1`
/// routes carry neither.
#[test]
fn legacy_aliases_are_counted_and_marked_deprecated() {
    let world = synthetic_world(true, 42);
    with_server(&world, |addr| {
        let mut c = Client::connect(addr, Some(Duration::from_secs(5))).expect("connect");
        let body = table_to_json(&world.tables[0]);

        let legacy = c.request("POST", "/annotate", body.as_bytes()).expect("legacy annotate");
        assert_eq!(legacy.status, 200);
        assert!(legacy.deprecated, "legacy alias must carry a Deprecation header");

        let legacy_get = c.request("GET", "/healthz", b"").expect("legacy healthz");
        assert_eq!(legacy_get.status, 200);
        assert!(legacy_get.deprecated, "legacy alias must carry a Deprecation header");

        let v1 = c.request("POST", "/v1/annotate", body.as_bytes()).expect("v1 annotate");
        assert_eq!(v1.status, 200);
        assert!(!v1.deprecated, "versioned routes are not deprecated");

        let stats = c.request("GET", "/v1/stats", b"").expect("stats");
        assert_eq!(stats.status, 200);
        assert!(!stats.deprecated);
        let stats = String::from_utf8(stats.body).expect("utf8 stats");
        assert!(stats.contains("\"legacy_route_hits\":2"), "stats: {stats}");
    });
}

/// The liveness/readiness split: `/healthz` reports `ready: true` once the
/// engine is up, and `/readyz` answers 200 on a serving daemon.
#[test]
fn readyz_and_healthz_report_readiness() {
    let world = synthetic_world(true, 42);
    with_server(&world, |addr| {
        let mut c = Client::connect(addr, Some(Duration::from_secs(5))).expect("connect");
        // The versioned routes and the legacy unprefixed aliases must agree.
        for path in ["/healthz", "/v1/healthz"] {
            let h = c.request("GET", path, b"").expect("healthz");
            assert_eq!(h.status, 200, "{path}");
            let body = String::from_utf8(h.body).expect("utf8");
            assert!(body.contains("\"ready\":true"), "{path}: {body}");
        }
        for path in ["/readyz", "/v1/readyz"] {
            let r = c.request("GET", path, b"").expect("readyz");
            assert_eq!(r.status, 200, "{path}");
        }
    });
}

/// Unknown routes — versioned or not — answer `404` with the standard
/// error envelope, and near-miss prefixes (`/v1x/...`) are not silently
/// treated as `/v1/`.
#[test]
fn unknown_routes_get_404_with_envelope() {
    let world = synthetic_world(true, 42);
    with_server(&world, |addr| {
        let mut c = Client::connect(addr, Some(Duration::from_secs(5))).expect("connect");
        for path in ["/nope", "/v1/nope", "/v1x/healthz", "/v1healthz"] {
            let r = c.request("GET", path, b"").expect("answered");
            assert_eq!(r.status, 404, "{path}");
            let body = String::from_utf8(r.body).expect("utf8");
            assert!(
                body.contains("\"error\"") && body.contains("\"code\":\"not_found\""),
                "{path}: {body}"
            );
        }
        assert_still_serving(addr);
    });
}

/// The connection-cap 503 is a *backpressure* signal, so it must carry a
/// `Retry-After` hint for well-behaved clients (and the balancer).
#[test]
fn connection_cap_503_carries_retry_after() {
    let world = synthetic_world(true, 42);
    for &topology in TOPOLOGIES {
        let cfg = ServeConfig { max_connections: 1, ..hardened_config(topology) };
        with_server_cfg(&world, cfg, |addr| {
            let _held = raw(addr); // occupies the only connection slot
            std::thread::sleep(Duration::from_millis(100)); // let it be admitted
            let mut turned_away = raw(addr);
            let resp = read_all(&mut turned_away);
            assert!(resp.starts_with("HTTP/1.1 503"), "over-cap connection: {resp:?}");
            let lower = resp.to_ascii_lowercase();
            assert!(lower.contains("retry-after:"), "503 must carry Retry-After: {resp:?}");
            assert!(
                resp.contains("\"code\":\"overloaded\"") && resp.contains("\"retry_after_ms\""),
                "503 carries the backpressure envelope: {resp:?}"
            );
        });
    }
}

/// Chaos reset faults sever the connection after a *partial* response (the
/// head advertises the full length), and the daemon keeps serving — this is
/// the replica-side half of the balancer's mid-response abort tests.
#[test]
fn chaos_reset_sends_a_torn_response_and_the_daemon_survives() {
    let world = synthetic_world(true, 42);
    for &topology in TOPOLOGIES {
        let chaos = doduo_served::chaos::ChaosConfig::parse("reset_prob=1.0,seed=3").expect("spec");
        let cfg = ServeConfig { chaos: Some(chaos), ..hardened_config(topology) };
        with_server_cfg(&world, cfg, |addr| {
            let t = &world.tables[0];
            let body = table_to_json(t);
            let mut s = raw(addr);
            s.write_all(
                format!(
                    "POST /annotate HTTP/1.1\r\nhost: x\r\ncontent-length: {}\r\n\r\n{body}",
                    body.len()
                )
                .as_bytes(),
            )
            .expect("write request");
            let resp = read_all(&mut s); // ends at the chaos-severed EOF
            assert!(
                resp.starts_with("HTTP/1.1 200"),
                "torn response still starts cleanly: {resp:?}"
            );
            let advertised: usize = resp
                .lines()
                .find_map(|l| {
                    l.to_ascii_lowercase().strip_prefix("content-length:").map(String::from)
                })
                .and_then(|v| v.trim().parse().ok())
                .expect("content-length advertised");
            let received = resp.split("\r\n\r\n").nth(1).map_or(0, str::len);
            assert!(
                received < advertised,
                "the body must be torn: got {received} of {advertised} bytes"
            );
            // The fault is per-connection: the daemon is still healthy.
            assert_still_serving(addr);
        });
    }
}

/// Chaos delay faults hold the response back without corrupting it: the
/// request takes at least the configured delay and the bytes stay
/// byte-identical to offline annotation.
#[test]
fn chaos_delay_postpones_but_never_corrupts() {
    let world = synthetic_world(true, 42);
    for &topology in TOPOLOGIES {
        let chaos = doduo_served::chaos::ChaosConfig::parse("delay_ms=300,seed=4").expect("spec");
        let cfg = ServeConfig { chaos: Some(chaos), ..hardened_config(topology) };
        with_server_cfg(&world, cfg, |addr| {
            let t = &world.tables[0];
            let offline = {
                let ann = world.annotator().annotate(t);
                doduo_served::json::annotations_response(&[ann], false)
            };
            let mut c = Client::connect(addr, Some(Duration::from_secs(10))).expect("connect");
            let start = std::time::Instant::now();
            let r = c.request("POST", "/annotate", table_to_json(t).as_bytes()).expect("annotate");
            assert!(
                start.elapsed() >= Duration::from_millis(300),
                "delay fault must hold the response, elapsed {:?}",
                start.elapsed()
            );
            assert_eq!(r.status, 200);
            assert_eq!(r.body, offline.as_bytes(), "delayed response must stay byte-identical");
        });
    }
}
