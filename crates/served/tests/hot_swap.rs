//! Swap atomicity under fire: hammer `/v1/annotate` from several threads
//! while the model is repeatedly hot-swapped between two trained
//! checkpoints. The invariant is *exactly-one-model per response*: every
//! body is byte-identical to the offline annotation under one of the two
//! bundles — never a torn mix — and the `x-model-version` header names the
//! model that actually produced those bytes (its CRC matches the blob).

use doduo_core::blob_crc;
use doduo_serve::BatchConfig;
use doduo_served::bootstrap::{synthetic_world, SyntheticWorld};
use doduo_served::http::Client;
use doduo_served::validate::offline_response;
use doduo_served::{BatchPolicy, ServeConfig, Server};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

fn test_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        policy: BatchPolicy::default(),
        engine: BatchConfig { threads: 2, ..BatchConfig::default() },
        read_timeout: Duration::from_millis(50),
        ..ServeConfig::default()
    }
}

struct ShutdownOnDrop(doduo_served::ServerHandle);

impl Drop for ShutdownOnDrop {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

/// Two distinct trained models, the request bodies, and the offline
/// reference bytes each model must produce for each body.
struct TwoModels {
    boot: SyntheticWorld,
    blob_a: Vec<u8>,
    blob_b: Vec<u8>,
    crc_a: String,
    crc_b: String,
    bodies: Vec<String>,
    refs_a: Vec<Vec<u8>>,
    refs_b: Vec<Vec<u8>>,
}

fn two_models() -> TwoModels {
    let boot = synthetic_world(true, 42);
    let other = synthetic_world(true, 99);
    let blob_a = boot.bundle.save();
    let blob_b = other.bundle.save();
    let crc_a = format!("-{:08x}", blob_crc(&blob_a).expect("blob A crc"));
    let crc_b = format!("-{:08x}", blob_crc(&blob_b).expect("blob B crc"));
    assert_ne!(crc_a, crc_b, "seeds 42 and 99 must train distinct models");
    let bodies: Vec<String> =
        boot.tables.iter().take(3).map(doduo_served::json::table_to_json).collect();
    let refs_a: Vec<Vec<u8>> = bodies
        .iter()
        .map(|b| offline_response(&boot.bundle, b).expect("offline A").into_bytes())
        .collect();
    let refs_b: Vec<Vec<u8>> = bodies
        .iter()
        .map(|b| offline_response(&other.bundle, b).expect("offline B").into_bytes())
        .collect();
    for (a, b) in refs_a.iter().zip(&refs_b) {
        assert_ne!(a, b, "the two models must disagree somewhere for this test to bite");
    }
    TwoModels { boot, blob_a, blob_b, crc_a, crc_b, bodies, refs_a, refs_b }
}

/// The tentpole invariant: under continuous concurrent load, blue/green
/// swaps are atomic per response. Also pins the `/v1/stats` model block:
/// the swap counter and the final version label must both be visible.
#[test]
fn concurrent_swaps_never_tear_responses() {
    let m = two_models();
    let server = Server::bind(test_config()).expect("bind ephemeral port");
    let addr = server.addr().to_string();
    const SWAPS: usize = 6;
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let guard = ShutdownOnDrop(server.handle());
        let runner = scope.spawn(|| server.run(m.boot.bundle.clone()));

        let hammers: Vec<_> = (0..4usize)
            .map(|tid| {
                let (addr, m, stop) = (&addr, &m, &stop);
                scope.spawn(move || {
                    let mut c = Client::connect(addr, Some(Duration::from_secs(30)))
                        .expect("connect hammer");
                    let mut served = 0usize;
                    for i in tid.. {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        let idx = i % m.bodies.len();
                        let resp = c
                            .request("POST", "/v1/annotate", m.bodies[idx].as_bytes())
                            .expect("annotate under swap");
                        assert_eq!(resp.status, 200, "no errors during a hot swap");
                        let v = resp.model_version.expect("annotate carries x-model-version");
                        if resp.body == m.refs_a[idx] {
                            assert!(v.ends_with(&m.crc_a), "bytes from A, version {v}");
                        } else {
                            assert_eq!(resp.body, m.refs_b[idx], "torn response: neither model");
                            assert!(v.ends_with(&m.crc_b), "bytes from B, version {v}");
                        }
                        served += 1;
                    }
                    served
                })
            })
            .collect();

        // Swap back and forth while the hammers run; every upload must be
        // accepted and report the version label of the blob it installed.
        let mut sc = Client::connect(&addr, Some(Duration::from_secs(30))).expect("connect swap");
        for i in 0..SWAPS {
            let (blob, crc) =
                if i % 2 == 0 { (&m.blob_b, &m.crc_b) } else { (&m.blob_a, &m.crc_a) };
            let resp = sc.request("POST", "/v1/model", blob).expect("model upload");
            let body = String::from_utf8_lossy(&resp.body).to_string();
            assert_eq!(resp.status, 200, "swap {i} rejected: {body}");
            let v = resp.model_version.expect("swap response carries x-model-version");
            assert!(v.ends_with(crc), "swap {i} installed {v}, expected CRC {crc}");
            assert_eq!(v, format!("{}{crc}", i + 2), "versions are monotonic from 1");
            std::thread::sleep(Duration::from_millis(60));
        }
        stop.store(true, Ordering::Relaxed);
        let served: usize = hammers.into_iter().map(|h| h.join().expect("hammer")).sum();
        assert!(served >= 2 * SWAPS, "only {served} requests overlapped the swaps");

        // The stats window agrees: swap count and the final version label.
        let resp = sc.request("GET", "/v1/stats", b"").expect("stats");
        assert_eq!(resp.status, 200);
        let stats = String::from_utf8(resp.body).expect("utf8 stats");
        assert!(stats.contains(&format!("\"swaps\":{SWAPS}")), "stats: {stats}");
        // SWAPS is even, so the last upload installed blob A as version SWAPS+1.
        let last = format!("\"version\":\"{}{}\"", SWAPS + 1, m.crc_a);
        assert!(stats.contains(&last), "expected {last} in stats: {stats}");

        drop(guard);
        runner.join().expect("server thread exits cleanly");
    });
}

/// A corrupted blob must be rejected atomically: the serving model, its
/// version label, and the swap counter are all untouched.
#[test]
fn corrupt_upload_is_rejected_and_the_live_model_is_untouched() {
    let m = two_models();
    let server = Server::bind(test_config()).expect("bind ephemeral port");
    let addr = server.addr().to_string();

    std::thread::scope(|scope| {
        let guard = ShutdownOnDrop(server.handle());
        let runner = scope.spawn(|| server.run(m.boot.bundle.clone()));

        let mut c = Client::connect(&addr, Some(Duration::from_secs(30))).expect("connect");
        let mut corrupt = m.blob_b.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0xff;
        let resp = c.request("POST", "/v1/model", &corrupt).expect("corrupt upload answered");
        assert_eq!(resp.status, 400, "a CRC-failing blob must be rejected");

        let resp = c.request("POST", "/v1/annotate", m.bodies[0].as_bytes()).expect("annotate");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, m.refs_a[0], "the boot model must still be serving");
        let v = resp.model_version.expect("version header");
        assert!(v.ends_with(&m.crc_a), "version must still be the boot model, got {v}");

        let stats = c.request("GET", "/v1/stats", b"").expect("stats");
        let stats = String::from_utf8(stats.body).expect("utf8 stats");
        assert!(stats.contains("\"swaps\":0"), "a rejected upload is not a swap: {stats}");

        drop(guard);
        runner.join().expect("server thread exits cleanly");
    });
}
