//! The dynamic micro-batching queue.
//!
//! [`Batcher`] is the deterministic core: a bounded FIFO of pending jobs
//! with a *flush-at-N-tokens-or-T-ms* policy. It never looks at a wall
//! clock itself — every operation takes `now: Instant` — so the flush
//! policy is unit-testable without sleeping. The daemon wraps it in a
//! `Mutex`/`Condvar` pair ([`SharedBatcher`]): connection threads push and
//! notify, one dispatcher thread waits until a batch is due (budget reached
//! or the oldest job's deadline expired) and drains it.
//!
//! Batches preserve arrival order, and a drain cuts at the budget boundary
//! (leaving the overflow queued) so a burst becomes a train of full batches
//! rather than one unbounded one.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Flush policy and bounds for the batching queue.
#[derive(Clone, Debug)]
pub struct BatchPolicy {
    /// Flush once this many sequences are pending (tables in table-wise
    /// mode; a multi-table request contributes all of its sequences).
    pub max_batch_seqs: usize,
    /// Flush once this many total tokens are pending.
    pub max_batch_tokens: usize,
    /// Flush when the oldest pending job has waited this long, even if no
    /// budget is met — the latency bound for isolated requests.
    pub max_delay: Duration,
    /// Upper bound on queued jobs; pushes beyond it are rejected
    /// (backpressure → HTTP 503).
    pub max_queue_jobs: usize,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch_seqs: 32,
            // Matches BatchConfig::default().max_batch_tokens in doduo-serve:
            // the engine cuts micro-batches at this budget anyway, so queuing
            // more per flush only adds queueing latency.
            max_batch_tokens: 192,
            max_delay: Duration::from_millis(2),
            max_queue_jobs: 1024,
        }
    }
}

/// One queued job.
#[derive(Debug)]
struct Pending<T> {
    payload: T,
    seqs: usize,
    tokens: usize,
    arrived: Instant,
}

/// Why a batch was released.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlushReason {
    /// A token or sequence budget was reached.
    Budget,
    /// The oldest job's deadline expired.
    Deadline,
    /// The queue was drained for shutdown.
    Shutdown,
}

/// The deterministic batching core (see module docs).
#[derive(Debug)]
pub struct Batcher<T> {
    policy: BatchPolicy,
    pending: VecDeque<Pending<T>>,
    seqs: usize,
    tokens: usize,
}

impl<T> Batcher<T> {
    /// An empty queue under `policy`.
    pub fn new(policy: BatchPolicy) -> Self {
        Batcher { policy, pending: VecDeque::new(), seqs: 0, tokens: 0 }
    }

    /// Queued job count.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Total queued tokens.
    pub fn tokens(&self) -> usize {
        self.tokens
    }

    /// Enqueues a job of `seqs` sequences / `tokens` total tokens. Returns
    /// the job back as `Err` when the queue is full.
    pub fn push(&mut self, payload: T, seqs: usize, tokens: usize, now: Instant) -> Result<(), T> {
        if self.pending.len() >= self.policy.max_queue_jobs {
            return Err(payload);
        }
        self.pending.push_back(Pending { payload, seqs, tokens, arrived: now });
        self.seqs += seqs;
        self.tokens += tokens;
        Ok(())
    }

    /// True when a budget is already met and a batch should flush now.
    pub fn budget_reached(&self) -> bool {
        self.seqs >= self.policy.max_batch_seqs || self.tokens >= self.policy.max_batch_tokens
    }

    /// The instant the oldest pending job must flush by (its arrival plus
    /// `max_delay`); `None` when empty.
    pub fn deadline(&self) -> Option<Instant> {
        self.pending.front().map(|p| p.arrived + self.policy.max_delay)
    }

    /// Releases the next batch if one is due at `now` (budget reached or
    /// deadline expired). The batch is cut at the budget boundary: jobs are
    /// taken in arrival order until sequence/token budgets are met, always
    /// at least one.
    pub fn take_due(&mut self, now: Instant) -> Option<(Vec<T>, FlushReason)> {
        if self.pending.is_empty() {
            return None;
        }
        let reason = if self.budget_reached() {
            FlushReason::Budget
        } else if self.deadline().is_some_and(|d| d <= now) {
            FlushReason::Deadline
        } else {
            return None;
        };
        Some((self.cut_batch(), reason))
    }

    /// Drains one batch unconditionally (shutdown path); `None` when empty.
    pub fn take_for_shutdown(&mut self) -> Option<(Vec<T>, FlushReason)> {
        if self.pending.is_empty() {
            return None;
        }
        Some((self.cut_batch(), FlushReason::Shutdown))
    }

    fn cut_batch(&mut self) -> Vec<T> {
        let mut out = Vec::new();
        let (mut seqs, mut tokens) = (0usize, 0usize);
        while let Some(front) = self.pending.front() {
            if !out.is_empty()
                && (seqs + front.seqs > self.policy.max_batch_seqs
                    || tokens + front.tokens > self.policy.max_batch_tokens)
            {
                break;
            }
            let p = self.pending.pop_front().expect("front exists");
            seqs += p.seqs;
            tokens += p.tokens;
            self.seqs -= p.seqs;
            self.tokens -= p.tokens;
            out.push(p.payload);
        }
        out
    }
}

/// Why [`SharedBatcher::push`] rejected a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushRejected {
    /// The queue is at `max_queue_jobs` (backpressure).
    Full,
    /// The queue was closed for shutdown; nothing will drain new jobs.
    Closed,
}

/// [`Batcher`] behind a `Mutex`/`Condvar`: the runtime wrapper the daemon's
/// connection and dispatcher threads share.
pub struct SharedBatcher<T> {
    inner: Mutex<Batcher<T>>,
    wake: Condvar,
    closed: std::sync::atomic::AtomicBool,
}

impl<T> SharedBatcher<T> {
    /// Wraps an empty queue under `policy`.
    pub fn new(policy: BatchPolicy) -> Self {
        SharedBatcher {
            inner: Mutex::new(Batcher::new(policy)),
            wake: Condvar::new(),
            closed: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Enqueues a job and wakes the dispatcher. A rejected push hands the
    /// payload back so callers under backpressure can retry it without
    /// rebuilding (or cloning) the job.
    pub fn push(&self, payload: T, seqs: usize, tokens: usize) -> Result<(), (PushRejected, T)> {
        let mut guard = self.inner.lock().expect("queue lock");
        // Checked under the queue lock: `close()` happens strictly before
        // the dispatcher can observe shutdown (which it also reads under
        // this lock), so a push that gets past this check is guaranteed to
        // be seen by the dispatcher's final drain — no job can be queued
        // after the last drain and left unanswered.
        if self.closed.load(std::sync::atomic::Ordering::SeqCst) {
            return Err((PushRejected::Closed, payload));
        }
        let r = guard.push(payload, seqs, tokens, Instant::now());
        drop(guard);
        match r {
            Ok(()) => {
                self.wake.notify_one();
                Ok(())
            }
            Err(payload) => Err((PushRejected::Full, payload)),
        }
    }

    /// Closes the queue: subsequent pushes are rejected with
    /// [`PushRejected::Closed`]. Call *before* signalling the dispatcher to
    /// stop, so every accepted job is drained.
    pub fn close(&self) {
        // Taking the lock serializes with in-flight pushes; the flag is
        // visible to the next lock holder.
        let _guard = self.inner.lock().expect("queue lock");
        self.closed.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    /// Queued job count (for `/stats`).
    pub fn depth(&self) -> usize {
        self.inner.lock().expect("queue lock").len()
    }

    /// Wakes the dispatcher (used on shutdown).
    pub fn notify(&self) {
        self.wake.notify_all();
    }

    /// Dispatcher side: blocks until a batch is due or `stop()` turns true
    /// with an empty conclusion. Returns `None` when `stop()` is true and —
    /// after a final drain — the queue is empty.
    pub fn wait_for_batch(&self, stop: impl Fn() -> bool) -> Option<(Vec<T>, FlushReason)> {
        let mut guard = self.inner.lock().expect("queue lock");
        loop {
            if stop() {
                return guard.take_for_shutdown();
            }
            let now = Instant::now();
            if let Some(batch) = guard.take_due(now) {
                return Some(batch);
            }
            guard = match guard.deadline() {
                // Nothing queued: sleep until a push (or shutdown) wakes us.
                // The timeout bounds how stale `stop()` can get.
                None => self.wake.wait_timeout(guard, Duration::from_millis(50)).expect("lock").0,
                Some(deadline) => {
                    let wait = deadline.saturating_duration_since(now);
                    self.wake.wait_timeout(guard, wait).expect("lock").0
                }
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(seqs: usize, tokens: usize, delay_ms: u64) -> BatchPolicy {
        BatchPolicy {
            max_batch_seqs: seqs,
            max_batch_tokens: tokens,
            max_delay: Duration::from_millis(delay_ms),
            max_queue_jobs: 8,
        }
    }

    #[test]
    fn flushes_on_token_budget() {
        let t0 = Instant::now();
        let mut b: Batcher<u32> = Batcher::new(policy(100, 50, 1000));
        b.push(1, 1, 20, t0).unwrap();
        assert!(!b.budget_reached());
        assert_eq!(b.take_due(t0), None, "under budget and before deadline");
        b.push(2, 1, 20, t0).unwrap();
        assert_eq!(b.take_due(t0), None);
        b.push(3, 1, 20, t0).unwrap();
        assert!(b.budget_reached(), "60 tokens >= 50");
        let (batch, reason) = b.take_due(t0).expect("due");
        assert_eq!(reason, FlushReason::Budget);
        // The cut stops before the job that would overflow the budget, but
        // budget_reached uses totals, so all three jobs (20+20 <= 50, +20
        // crosses) split as [1, 2] then [3] on the next due check.
        assert_eq!(batch, vec![1, 2]);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn flushes_on_sequence_budget() {
        let t0 = Instant::now();
        let mut b: Batcher<u32> = Batcher::new(policy(4, 10_000, 1000));
        for i in 0..3 {
            b.push(i, 1, 5, t0).unwrap();
            assert_eq!(b.take_due(t0), None, "3 sequences < 4");
        }
        b.push(3, 2, 5, t0).unwrap();
        let (batch, reason) = b.take_due(t0).expect("due");
        assert_eq!(reason, FlushReason::Budget);
        assert_eq!(batch, vec![0, 1, 2]);
        assert_eq!(b.take_for_shutdown().expect("rest").0, vec![3]);
    }

    #[test]
    fn flushes_on_deadline() {
        let t0 = Instant::now();
        let mut b: Batcher<u32> = Batcher::new(policy(100, 1000, 10));
        b.push(1, 1, 5, t0).unwrap();
        b.push(2, 1, 5, t0 + Duration::from_millis(4)).unwrap();
        assert_eq!(b.deadline(), Some(t0 + Duration::from_millis(10)));
        assert_eq!(b.take_due(t0 + Duration::from_millis(9)), None, "before deadline");
        let (batch, reason) = b.take_due(t0 + Duration::from_millis(10)).expect("due");
        assert_eq!(reason, FlushReason::Deadline);
        assert_eq!(batch, vec![1, 2], "deadline flush takes everything under budget");
        assert!(b.is_empty());
    }

    #[test]
    fn oversized_job_flushes_alone() {
        let t0 = Instant::now();
        let mut b: Batcher<u32> = Batcher::new(policy(8, 50, 1000));
        b.push(1, 1, 500, t0).unwrap();
        let (batch, reason) = b.take_due(t0).expect("due");
        assert_eq!(reason, FlushReason::Budget);
        assert_eq!(batch, vec![1], "a job over budget still ships, alone");
    }

    #[test]
    fn preserves_arrival_order_under_interleaving() {
        let t0 = Instant::now();
        let mut b: Batcher<(u32, u32)> = Batcher::new(policy(100, 60, 1000));
        // Two "connections" interleave pushes; arrival order must be kept
        // within and across batches.
        for (i, conn) in [(0, 0), (1, 1), (2, 0), (3, 1), (4, 0), (5, 1)] {
            b.push((conn, i), 1, 10, t0 + Duration::from_micros(i as u64)).unwrap();
        }
        let mut order = Vec::new();
        while let Some((batch, _)) = b.take_for_shutdown() {
            assert!(batch.len() <= 6);
            order.extend(batch);
        }
        assert_eq!(order, vec![(0, 0), (1, 1), (0, 2), (1, 3), (0, 4), (1, 5)]);
    }

    #[test]
    fn bounded_queue_rejects_overflow() {
        let t0 = Instant::now();
        let mut b: Batcher<u32> = Batcher::new(policy(1000, 100_000, 1000));
        for i in 0..8 {
            b.push(i, 1, 1, t0).unwrap();
        }
        assert_eq!(b.push(99, 1, 1, t0), Err(99), "9th job bounces");
        assert_eq!(b.len(), 8);
    }

    #[test]
    fn burst_becomes_budgeted_batch_train() {
        let t0 = Instant::now();
        let mut b: Batcher<u32> = Batcher::new(policy(2, 10_000, 0));
        for i in 0..7 {
            b.push(i, 1, 1, t0).unwrap();
        }
        let mut sizes = Vec::new();
        while let Some((batch, _)) = b.take_due(t0) {
            sizes.push(batch.len());
        }
        assert_eq!(sizes, vec![2, 2, 2, 1]);
    }
}
