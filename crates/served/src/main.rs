//! `doduo-served` — the online annotation daemon.
//!
//! ```text
//! doduo-served --synthetic quick --seed 42                  # serve a seeded world
//! doduo-served --checkpoint model.dckpt --addr 0.0.0.0:7878 # serve a saved bundle
//! doduo-served --synthetic quick --save-checkpoint model.dckpt --oneshot req.json
//! ```
//!
//! `--oneshot FILE` skips the network entirely: it annotates the request in
//! FILE through the same codec the HTTP path uses, prints the exact bytes
//! `/annotate` would return, and exits — CI diffs this against a live
//! response to prove online == offline.
//!
//! The whole CLI lives in [`doduo_served::cli::run`] so that
//! `doduo-balance replica <args...>` can embed an identical daemon
//! in a supervised child process.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(doduo_served::cli::run(&argv))
}
