//! Deterministic fault injection for the daemon (`--chaos`).
//!
//! The replicated-serving stack (`doduo-balance`) is only trustworthy if
//! its failure handling is *tested against real failures*: processes that
//! die mid-load, replicas that stall, connections that reset after a
//! partial response. This module makes those failures injectable and — the
//! part that matters for CI — **reproducible**: every decision is driven
//! by a request counter and a seeded [`SplitMix64`] stream, never by wall
//! clock or OS entropy, so a chaos test that passes once passes always.
//!
//! The spec grammar is a comma-separated key=value list:
//!
//! ```text
//! --chaos crash_after=40,delay_ms=250,reset_prob=0.5,seed=7
//! ```
//!
//! * `crash_after=N` — the process exits (code 86, before any response
//!   byte) on the Nth `/annotate` request it sees, counting from 1;
//!   `crash_after=0` crashes on the first. Because no response byte was
//!   written, a balancer may safely retry the request elsewhere.
//! * `delay_ms=D` — sleep D ms before writing each `/annotate` response
//!   (a slow replica; still answers correctly).
//! * `reset_prob=P` — with probability P per request, write roughly half
//!   of the response and then sever the connection (a torn, *mid-response*
//!   failure — the one case a correct balancer must NOT retry).
//! * `seed=S` — seed for the `reset_prob` coin flips.
//!
//! Note on determinism under concurrency: the RNG *stream* is fixed by the
//! seed, but which worker thread draws which value depends on scheduling.
//! Tests therefore either run chaos daemons single-threaded, use
//! probabilities 0.0/1.0 (scheduling-independent), or assert scheduling
//! -independent invariants (e.g. "every 200 is byte-identical").

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Parsed `--chaos` specification.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosConfig {
    /// Exit the process on the Nth `/annotate` request (1-based; `Some(0)`
    /// crashes on the first request).
    pub crash_after: Option<u64>,
    /// Sleep this long before writing each `/annotate` response.
    pub delay: Duration,
    /// Probability, per request, of writing a partial response and then
    /// severing the connection.
    pub reset_prob: f64,
    /// Seed for the `reset_prob` coin flips.
    pub seed: u64,
}

impl ChaosConfig {
    /// Parses a spec like `crash_after=40,delay_ms=250,reset_prob=0.5,seed=7`.
    /// Every key is optional; unknown keys are errors.
    pub fn parse(spec: &str) -> Result<ChaosConfig, String> {
        let mut cfg =
            ChaosConfig { crash_after: None, delay: Duration::ZERO, reset_prob: 0.0, seed: 0 };
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) =
                part.split_once('=').ok_or_else(|| format!("chaos: expected key=value: {part}"))?;
            match key.trim() {
                "crash_after" => {
                    cfg.crash_after = Some(
                        value.parse().map_err(|_| format!("chaos: bad crash_after: {value}"))?,
                    )
                }
                "delay_ms" => {
                    let ms: u64 =
                        value.parse().map_err(|_| format!("chaos: bad delay_ms: {value}"))?;
                    cfg.delay = Duration::from_millis(ms);
                }
                "reset_prob" => {
                    let p: f64 =
                        value.parse().map_err(|_| format!("chaos: bad reset_prob: {value}"))?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(format!("chaos: reset_prob out of [0,1]: {value}"));
                    }
                    cfg.reset_prob = p;
                }
                "seed" => {
                    cfg.seed = value.parse().map_err(|_| format!("chaos: bad seed: {value}"))?
                }
                other => return Err(format!("chaos: unknown key: {other}")),
            }
        }
        Ok(cfg)
    }
}

/// The faults to inject into one `/annotate` request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Exit the process before any response byte (retryable by a balancer).
    pub crash: bool,
    /// Sleep this long before writing the response.
    pub delay: Option<Duration>,
    /// Write a partial response, then sever the connection (NOT retryable).
    pub reset: bool,
}

/// Per-process chaos state: the request counter and the seeded RNG stream.
#[derive(Debug)]
pub struct ChaosState {
    cfg: ChaosConfig,
    served: AtomicU64,
    rng: Mutex<SplitMix64>,
}

impl ChaosState {
    /// Chaos state at request zero for `cfg`.
    pub fn new(cfg: ChaosConfig) -> ChaosState {
        let rng = Mutex::new(SplitMix64::new(cfg.seed));
        ChaosState { cfg, served: AtomicU64::new(0), rng }
    }

    /// Called once per `/annotate` request; returns the faults to inject.
    pub fn on_annotate(&self) -> ChaosPlan {
        let n = self.served.fetch_add(1, Ordering::SeqCst) + 1; // 1-based
        let coin = if self.cfg.reset_prob > 0.0 {
            self.rng.lock().expect("chaos rng lock").next_f64()
        } else {
            1.0
        };
        plan(&self.cfg, n, coin)
    }
}

/// The pure decision rule: request number + one uniform draw → plan.
/// Split out so tests can table-drive it without a process to crash.
fn plan(cfg: &ChaosConfig, request: u64, coin: f64) -> ChaosPlan {
    ChaosPlan {
        crash: cfg.crash_after.is_some_and(|n| request >= n.max(1)),
        delay: (cfg.delay > Duration::ZERO).then_some(cfg.delay),
        reset: coin < cfg.reset_prob,
    }
}

/// SplitMix64: a tiny, high-quality, seedable PRNG (public-domain
/// algorithm). Used for chaos coin flips and for backoff jitter in
/// `doduo-balance` — anywhere randomness must be reproducible from a seed.
#[derive(Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator whose whole output stream is determined by `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw in `[0, 1)` (53 mantissa bits).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_spec() {
        let cfg = ChaosConfig::parse("crash_after=40,delay_ms=250,reset_prob=0.5,seed=7").unwrap();
        assert_eq!(
            cfg,
            ChaosConfig {
                crash_after: Some(40),
                delay: Duration::from_millis(250),
                reset_prob: 0.5,
                seed: 7,
            }
        );
    }

    #[test]
    fn parses_partial_and_empty_specs() {
        let cfg = ChaosConfig::parse("delay_ms=5").unwrap();
        assert_eq!(cfg.crash_after, None);
        assert_eq!(cfg.delay, Duration::from_millis(5));
        assert_eq!(cfg.reset_prob, 0.0);
        let empty = ChaosConfig::parse("").unwrap();
        assert_eq!(empty.crash_after, None);
    }

    #[test]
    fn rejects_bad_specs() {
        assert!(ChaosConfig::parse("crash_after").is_err());
        assert!(ChaosConfig::parse("crash_after=x").is_err());
        assert!(ChaosConfig::parse("reset_prob=1.5").is_err());
        assert!(ChaosConfig::parse("reset_prob=-0.1").is_err());
        assert!(ChaosConfig::parse("frob=1").is_err());
    }

    #[test]
    fn crash_fires_at_and_after_threshold() {
        let cfg = ChaosConfig::parse("crash_after=3").unwrap();
        assert!(!plan(&cfg, 1, 1.0).crash);
        assert!(!plan(&cfg, 2, 1.0).crash);
        assert!(plan(&cfg, 3, 1.0).crash);
        assert!(plan(&cfg, 4, 1.0).crash, "still armed after the threshold");
        // crash_after=0 behaves as "first request".
        let zero = ChaosConfig::parse("crash_after=0").unwrap();
        assert!(plan(&zero, 1, 1.0).crash);
    }

    #[test]
    fn reset_decision_follows_the_coin() {
        let cfg = ChaosConfig::parse("reset_prob=0.5").unwrap();
        assert!(plan(&cfg, 1, 0.49).reset);
        assert!(!plan(&cfg, 1, 0.5).reset);
        let always = ChaosConfig::parse("reset_prob=1.0").unwrap();
        assert!(plan(&always, 1, 0.999_999).reset);
        let never = ChaosConfig::parse("reset_prob=0").unwrap();
        assert!(!plan(&never, 1, 0.0).reset);
    }

    #[test]
    fn state_is_deterministic_for_a_seed() {
        let mk = || ChaosState::new(ChaosConfig::parse("reset_prob=0.5,seed=9").unwrap());
        let (a, b) = (mk(), mk());
        let plans_a: Vec<ChaosPlan> = (0..64).map(|_| a.on_annotate()).collect();
        let plans_b: Vec<ChaosPlan> = (0..64).map(|_| b.on_annotate()).collect();
        assert_eq!(plans_a, plans_b);
        assert!(plans_a.iter().any(|p| p.reset) && plans_a.iter().any(|p| !p.reset));
    }

    #[test]
    fn splitmix_reference_values() {
        // First outputs for seed 0 (SplitMix64 reference implementation).
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        let mut f = SplitMix64::new(42);
        for _ in 0..1000 {
            let x = f.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
