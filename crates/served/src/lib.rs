//! # doduo-served
//!
//! The online annotation daemon: an always-on HTTP/1.1 server over the
//! batched annotation engine, turning `doduo-serve`'s offline throughput
//! into low-latency live serving — the ROADMAP's production north star.
//!
//! The scaling idea is **dynamic micro-batching**: concurrent single-table
//! requests from independent connections are coalesced in a bounded queue
//! and flushed into one packed forward pass on a
//! *token-budget-or-deadline* policy (flush at N tokens / M sequences, or
//! when the oldest request has waited T ms — whichever comes first). Under
//! load the daemon serves batched-GEMM throughput; an isolated request
//! pays at most T extra milliseconds. Responses are bit-identical to
//! offline [`Annotator::annotate`](doduo_core::Annotator) — batching
//! changes scheduling, never numbers — and the JSON encoder uses
//! shortest-round-trip float formatting, so "bit-identical" is observable
//! as *byte*-identical response bodies.
//!
//! Connections are served by an **epoll reactor** by default: one thread
//! owns the listener and every parked keep-alive connection, drives
//! per-connection state machines off readiness events, and hands fully
//! parsed requests to worker threads that never touch a socket (an
//! `eventfd` wakes the reactor when a response is ready). The legacy
//! fixed worker pool (`--topology pool`) and thread-per-connection mode
//! (`--workers 0`) remain as A/B baselines. `POST /annotate_stream` adds a
//! streaming multi-table mode — a chunked upload of table objects answered
//! by a chunked NDJSON stream of per-table results, each emitted as its
//! micro-batch flushes and each byte-identical to the single-table
//! `/annotate` response.
//!
//! Everything is hand-rolled on `std` (TCP, HTTP, JSON, threads): the
//! workspace is offline-only by policy, and the daemon inherits that.
//!
//! * [`json`] — JSON value parser + the wire codecs (tables in,
//!   annotations out) + the incremental stream splitter.
//! * [`http`] — minimal HTTP/1.1 request/response with chunked framing
//!   (blocking and sans-IO parsers), the unified error envelope, plus a
//!   tiny blocking client for tests and load benches.
//! * [`handler`] — the transport-independent [`Handler`]
//!   trait and `/v1` path canonicalization shared by every topology and by
//!   `doduo-balance`'s test backends.
//! * [`reactor`] — the epoll event loop: connection state machines, timer
//!   wheel, eventfd completion routing.
//! * [`queue`] — the deterministic batching core and its `Condvar` wrapper.
//! * [`lifecycle`] — the versioned live-model layer: atomic blue/green
//!   hot-swap (`POST /v1/model`), per-response `x-model-version`
//!   attribution, and the bounded feedback journal behind the opt-in
//!   fine-tune loop (`POST /v1/feedback`, `--feedback-finetune`).
//! * [`stats`] — latency percentiles and aggregate counters (`/stats`).
//! * [`server`] — accept loop, topologies (reactor / worker pool /
//!   thread-per-conn), dispatcher, streaming, graceful shutdown.
//! * [`bootstrap`] — the deterministic synthetic serving world shared by
//!   the daemon's `--synthetic` mode, the `serve_load` bench, and CI.
//! * [`validate`] — the online == offline equivalence check and the
//!   response decoder the repro harness scores served checkpoints with.
//! * [`chaos`] — seeded fault injection (`--chaos`) for testing the
//!   replicated-serving failure paths in `doduo-balance`.
//! * [`cli`] — the `doduo-served` command line as a library function, so
//!   the balancer can embed a replica daemon in a child process.
//!
//! Endpoints are mounted under `/v1` (`POST /v1/annotate`, `POST
//! /v1/annotate_stream`, `POST /v1/model` (hot-swap upload), `POST
//! /v1/feedback` (corrected labels), `GET /v1/healthz` (liveness), `GET
//! /v1/readyz` (readiness), `GET /v1/stats`, `POST /v1/shutdown`); the
//! legacy unprefixed paths remain as deprecated aliases and answer with a
//! `Deprecation: true` header.
#![warn(missing_docs)]

pub mod bootstrap;
pub mod chaos;
pub mod cli;
pub mod handler;
pub mod http;
pub mod json;
pub mod lifecycle;
pub mod queue;
pub mod reactor;
pub mod server;
pub mod stats;
pub mod validate;

pub use handler::{canonical_path, Handler, HttpRequest, HttpResponse};
pub use lifecycle::{EngineSlot, FeedbackJournal, Lifecycle, VersionedEngine};
pub use queue::{BatchPolicy, Batcher, FlushReason, PushRejected, SharedBatcher};
pub use server::{ServeConfig, Server, ServerHandle, Topology};
pub use stats::{percentiles, Percentiles, ServerStats};
