//! The daemon's command-line entry point, as a library function.
//!
//! `doduo-served`'s `main` is a one-liner over [`run`] so that other
//! binaries can embed the full daemon CLI — `doduo-balance replica
//! <args...>` execs *itself* and routes those args here, which lets the
//! balancer's tests spawn real replica processes without knowing where a
//! `doduo-served` binary lives (cargo only guarantees a package's own
//! binaries are built for its integration tests).

use crate::bootstrap::synthetic_world;
use crate::chaos::ChaosConfig;
use crate::validate::{check_label_equivalence, offline_response, offline_response_quant};
use crate::{BatchPolicy, ServeConfig, Server, Topology};
use doduo_core::AnnotatorBundle;
use doduo_serve::BatchConfig;
use std::time::Duration;

struct Args {
    addr: String,
    checkpoint: Option<String>,
    synthetic: Option<bool>, // Some(quick?)
    seed: u64,
    save_checkpoint: Option<String>,
    oneshot: Option<String>,
    compare_labels: Option<(String, String)>,
    quant: bool,
    max_batch_seqs: usize,
    max_batch_tokens: usize,
    max_delay_ms: u64,
    threads: usize,
    workers: usize,
    topology: Topology,
    keep_alive: bool,
    chaos: Option<ChaosConfig>,
    port_file: Option<String>,
    feedback_finetune: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: doduo-served (--checkpoint FILE | --synthetic quick|full) [options]\n\
         \n\
         model source:\n\
           --checkpoint FILE       load an AnnotatorBundle checkpoint\n\
           --synthetic quick|full  build the deterministic seeded world\n\
           --seed N                seed for --synthetic (default 42)\n\
           --save-checkpoint FILE  write the loaded/built bundle, then continue\n\
         \n\
         serving:\n\
           --addr HOST:PORT        bind address (default 127.0.0.1:7878; port 0 = ephemeral)\n\
           --max-batch N           flush at N pending sequences (default 32)\n\
           --max-batch-tokens N    flush at N pending tokens (default 192)\n\
           --max-delay-ms T        flush when the oldest request waited T ms (default 2)\n\
           --threads K             engine worker threads (default: all cores)\n\
           --quant int8|off        int8 inference (accuracy-gated; default off)\n\
           --workers W             request worker threads; 0 = one thread per\n\
                                   connection (default 16)\n\
           --topology T            connection handling: epoll (reactor; default),\n\
                                   pool (probe/requeue workers), thread_per_conn\n\
           --keep-alive on|off     honor HTTP keep-alive (default on)\n\
           --port-file FILE        write the bound address to FILE after bind\n\
                                   (how a supervisor discovers an ephemeral port)\n\
           --chaos SPEC            deterministic fault injection, e.g.\n\
                                   crash_after=40,delay_ms=250,reset_prob=0.5,seed=7\n\
           --feedback-finetune     fold POST /v1/feedback corrections into a\n\
                                   background fine-tune + hot-swap cycle\n\
                                   (default off; the journal still accumulates)\n\
         \n\
         other:\n\
           --oneshot FILE          annotate request FILE offline, print the exact\n\
                                   /annotate response bytes, and exit\n\
           --compare-labels A B    exit 0 iff response files A and B decode to\n\
                                   identical prediction sets (the int8 gate:\n\
                                   scores may differ, labels must not flip)"
    );
    std::process::exit(2)
}

fn parse_args(argv: &[String]) -> Args {
    let mut args = Args {
        addr: "127.0.0.1:7878".into(),
        checkpoint: None,
        synthetic: None,
        seed: 42,
        save_checkpoint: None,
        oneshot: None,
        compare_labels: None,
        quant: false,
        max_batch_seqs: 32,
        max_batch_tokens: 192,
        max_delay_ms: 2,
        threads: doduo_tensor::default_threads(),
        workers: ServeConfig::default().workers,
        topology: Topology::Epoll,
        keep_alive: true,
        chaos: None,
        port_file: None,
        feedback_finetune: false,
    };
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--addr" => args.addr = value(&mut i),
            "--checkpoint" => args.checkpoint = Some(value(&mut i)),
            "--synthetic" => {
                args.synthetic = Some(match value(&mut i).as_str() {
                    "quick" => true,
                    "full" => false,
                    _ => usage(),
                })
            }
            "--seed" => args.seed = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--save-checkpoint" => args.save_checkpoint = Some(value(&mut i)),
            "--oneshot" => args.oneshot = Some(value(&mut i)),
            "--compare-labels" => {
                let a = value(&mut i);
                let b = value(&mut i);
                args.compare_labels = Some((a, b));
            }
            "--quant" => {
                args.quant = match value(&mut i).as_str() {
                    "int8" => true,
                    "off" => false,
                    _ => usage(),
                }
            }
            "--max-batch" => {
                args.max_batch_seqs = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--max-batch-tokens" => {
                args.max_batch_tokens = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--max-delay-ms" => {
                args.max_delay_ms = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--threads" => args.threads = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--workers" => args.workers = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--topology" => {
                args.topology = value(&mut i).parse().unwrap_or_else(|e| {
                    eprintln!("[served] {e}");
                    usage()
                })
            }
            "--keep-alive" => {
                args.keep_alive = match value(&mut i).as_str() {
                    "on" | "true" | "1" => true,
                    "off" | "false" | "0" => false,
                    _ => usage(),
                }
            }
            "--chaos" => {
                args.chaos = Some(ChaosConfig::parse(&value(&mut i)).unwrap_or_else(|e| {
                    eprintln!("[served] {e}");
                    usage()
                }))
            }
            "--port-file" => args.port_file = Some(value(&mut i)),
            "--feedback-finetune" => args.feedback_finetune = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other}");
                usage()
            }
        }
        i += 1;
    }
    if args.compare_labels.is_none() && args.checkpoint.is_some() == args.synthetic.is_some() {
        eprintln!("exactly one of --checkpoint / --synthetic is required");
        usage()
    }
    args
}

/// Runs the full `doduo-served` CLI over `argv` (flags only, no program
/// name) and returns the process exit code. May call `process::exit`
/// directly on usage errors, and *will* exit mid-serving when a `--chaos`
/// crash fault fires — callers are expected to be a process `main`.
pub fn run(argv: &[String]) -> i32 {
    let args = parse_args(argv);
    if let Some((a, b)) = &args.compare_labels {
        let read = |path: &str| {
            std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("[served] cannot read {path}: {e}");
                std::process::exit(1)
            })
        };
        match check_label_equivalence(&read(a), &read(b)) {
            Ok(n) => {
                eprintln!("[served] label sets identical across {n} table(s)");
                return 0;
            }
            Err(e) => {
                eprintln!("[served] label divergence: {e}");
                return 1;
            }
        }
    }
    let t0 = std::time::Instant::now();
    let bundle: std::sync::Arc<AnnotatorBundle> = if let Some(path) = &args.checkpoint {
        match AnnotatorBundle::load_from(path) {
            Ok(b) => std::sync::Arc::new(b),
            Err(e) => {
                eprintln!("[served] {e}");
                return 1;
            }
        }
    } else {
        let quick = args.synthetic.expect("synthetic set when checkpoint is not");
        synthetic_world(quick, args.seed).bundle
    };
    eprintln!(
        "[served] model ready in {:?}: vocab {}, {} types, {} relations",
        t0.elapsed(),
        bundle.tokenizer.vocab_size(),
        bundle.type_vocab.len(),
        bundle.rel_vocab.len(),
    );
    if let Some(path) = &args.save_checkpoint {
        if let Err(e) = bundle.save_to(path) {
            eprintln!("[served] cannot write checkpoint {path}: {e}");
            return 1;
        }
        eprintln!("[served] checkpoint written to {path}");
    }

    if let Some(path) = &args.oneshot {
        let body = match std::fs::read_to_string(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("[served] cannot read request {path}: {e}");
                return 1;
            }
        };
        // The offline reference path through the selected numeric tier —
        // the daemon's equivalence target for the same `--quant` setting.
        let resp = if args.quant {
            offline_response_quant(&bundle, &body)
        } else {
            offline_response(&bundle, &body)
        };
        match resp {
            Ok(r) => print!("{r}"),
            Err(e) => {
                eprintln!("[served] bad request body: {e}");
                return 1;
            }
        }
        return 0;
    }

    let cfg = ServeConfig {
        addr: args.addr.clone(),
        policy: BatchPolicy {
            max_batch_seqs: args.max_batch_seqs,
            max_batch_tokens: args.max_batch_tokens,
            max_delay: Duration::from_millis(args.max_delay_ms),
            ..BatchPolicy::default()
        },
        engine: BatchConfig {
            max_batch: args.max_batch_seqs,
            max_batch_tokens: args.max_batch_tokens,
            threads: args.threads.max(1),
            quant: args.quant,
            ..BatchConfig::default()
        },
        workers: args.workers,
        topology: args.topology,
        keep_alive: args.keep_alive,
        chaos: args.chaos.clone(),
        feedback_finetune: args.feedback_finetune,
        ..ServeConfig::default()
    };
    let topo = cfg.effective_topology();
    let server = match Server::bind(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("[served] cannot bind {}: {e}", args.addr);
            return 1;
        }
    };
    if let Some(path) = &args.port_file {
        // Write-then-rename so a polling supervisor never reads a torn
        // half-written address.
        let tmp = format!("{path}.tmp");
        let write = std::fs::write(&tmp, format!("{}\n", server.addr()))
            .and_then(|()| std::fs::rename(&tmp, path));
        if let Err(e) = write {
            eprintln!("[served] cannot write port file {path}: {e}");
            return 1;
        }
    }
    eprintln!(
        "[served] listening on {} ({}; flush at {} seqs / {} tokens / {} ms; {} engine threads; \
         {}; keep-alive {}{})",
        server.addr(),
        if args.quant { "int8" } else { "f32" },
        args.max_batch_seqs,
        args.max_batch_tokens,
        args.max_delay_ms,
        args.threads.max(1),
        match topo {
            Topology::ThreadPerConn => "thread-per-connection".to_string(),
            t => format!("{} topology, {} workers", t.name(), args.workers),
        },
        if args.keep_alive { "on" } else { "off" },
        if args.chaos.is_some() { "; CHAOS INJECTION ON" } else { "" },
    );
    server.run(bundle);
    eprintln!("[served] shut down cleanly");
    0
}
