//! Transport-independent request handling.
//!
//! The [`Handler`] trait is the seam between "how bytes arrive" and "what
//! the response is": the epoll reactor, the legacy worker pool, the
//! thread-per-connection fallback, and the scripted mock backends in
//! `doduo-balance`'s failover tests all parse HTTP their own way but
//! dispatch through the same `fn handle(&self, &HttpRequest) ->
//! HttpResponse`. Streaming (`POST /annotate_stream`) is the one endpoint
//! outside this seam — it consumes its body incrementally and owns its
//! connection to the end, so each transport hands it off explicitly.
//!
//! [`canonical_path`] implements the `/v1` API versioning: every route is
//! mounted under `/v1/` with the legacy unprefixed path kept as an alias,
//! and handlers match on the canonical (unprefixed) form.

use crate::http::{self, Head};
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// One fully received request, decoupled from the socket it arrived on.
#[derive(Debug, Clone)]
pub struct HttpRequest {
    /// Uppercased request method (`GET`, `POST`, ...).
    pub method: String,
    /// Request path as sent by the client (possibly `/v1`-prefixed; use
    /// [`canonical_path`] when routing).
    pub path: String,
    /// Raw query string (no leading `?`; empty when absent).
    pub query: String,
    /// Fully buffered request body.
    pub body: Vec<u8>,
    /// Whether the *client* asked to keep the connection open. Transports
    /// combine this with their own policy and the response's `close` flag.
    pub keep_alive: bool,
}

impl HttpRequest {
    /// Assembles a request from a parsed [`Head`] and its buffered body.
    pub fn from_head(head: &Head, body: Vec<u8>) -> HttpRequest {
        HttpRequest {
            method: head.method.clone(),
            path: head.path.clone(),
            query: head.query.clone(),
            body,
            keep_alive: head.keep_alive,
        }
    }
}

/// A normal rendered response: status + headers + complete body.
#[derive(Debug, Clone)]
pub struct Payload {
    /// HTTP status code; the reason phrase comes from
    /// [`http::reason_for`].
    pub status: u16,
    /// `content-type` header value.
    pub content_type: String,
    /// Extra pre-formatted header lines (each `name: value\r\n`).
    pub extra: String,
    /// Complete response body.
    pub body: String,
    /// Force `connection: close` and drop the connection afterwards,
    /// regardless of what the client asked for.
    pub close: bool,
}

/// What a [`Handler`] tells the transport to put on the wire.
#[derive(Debug, Clone)]
pub enum HttpResponse {
    /// A complete response; the common case.
    Payload(Payload),
    /// Write these bytes verbatim, then sever the connection — used by
    /// chaos injection (torn responses) and scripted test backends.
    RawThenClose(Vec<u8>),
    /// Sever the connection without writing a byte.
    Hangup,
}

impl HttpResponse {
    /// A `200`-style response with an explicit content type.
    pub fn text(status: u16, content_type: &str, body: impl Into<String>) -> HttpResponse {
        HttpResponse::Payload(Payload {
            status,
            content_type: content_type.to_string(),
            extra: String::new(),
            body: body.into(),
            close: false,
        })
    }

    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> HttpResponse {
        HttpResponse::text(status, "application/json", body)
    }

    /// The unified error envelope with the code derived from the status.
    pub fn error(status: u16, message: &str) -> HttpResponse {
        HttpResponse::error_code(status, http::code_for_status(status), message)
    }

    /// The unified error envelope with an explicit `code`.
    pub fn error_code(status: u16, code: &str, message: &str) -> HttpResponse {
        HttpResponse::json(status, http::error_envelope(code, message, None))
    }

    /// The standard `503` backpressure response: `Retry-After` header plus
    /// `retry_after_ms` in the envelope.
    pub fn unavailable(code: &str, message: &str, retry_after_secs: u64) -> HttpResponse {
        HttpResponse::Payload(Payload {
            status: 503,
            content_type: "application/json".into(),
            extra: format!("retry-after: {retry_after_secs}\r\n"),
            body: http::error_envelope(code, message, Some(retry_after_secs * 1000)),
            close: false,
        })
    }

    /// Marks the response connection-closing (a no-op for the variants
    /// that already sever).
    pub fn close(mut self) -> HttpResponse {
        if let HttpResponse::Payload(p) = &mut self {
            p.close = true;
        }
        self
    }

    /// Appends one extra response header (a no-op for the raw/severing
    /// variants, which carry no header section to extend).
    pub fn with_header(mut self, name: &str, value: &str) -> HttpResponse {
        if let HttpResponse::Payload(p) = &mut self {
            p.extra.push_str(&format!("{name}: {value}\r\n"));
        }
        self
    }
}

/// The request→response core every transport drives.
pub trait Handler: Sync {
    /// Produces the response for one fully received request. Implementors
    /// may block (e.g. `/annotate` waits on the batching queue) but must
    /// never touch the client socket — the transport owns it.
    fn handle(&self, req: &HttpRequest) -> HttpResponse;
}

impl<F: Fn(&HttpRequest) -> HttpResponse + Sync> Handler for F {
    fn handle(&self, req: &HttpRequest) -> HttpResponse {
        self(req)
    }
}

/// Strips the `/v1` API-version prefix, mapping versioned routes onto the
/// canonical unprefixed names handlers match on. Unprefixed (legacy) paths
/// pass through unchanged, so both `/v1/annotate` and `/annotate` resolve
/// to `/annotate`.
pub fn canonical_path(path: &str) -> &str {
    match path.strip_prefix("/v1") {
        Some("") => "/",
        Some(rest) if rest.starts_with('/') => rest,
        _ => path,
    }
}

/// Renders `resp` into wire bytes. Returns `(bytes, keep_open)`:
/// `keep_open` is false when the response itself demands closing or the
/// client asked for `connection: close`.
pub fn render_http_response(resp: &HttpResponse, req_keep_alive: bool) -> (Vec<u8>, bool) {
    match resp {
        HttpResponse::Payload(p) => {
            let keep = req_keep_alive && !p.close;
            let bytes = http::render_response(
                p.status,
                http::reason_for(p.status),
                &p.content_type,
                &p.extra,
                &p.body,
                keep,
            );
            (bytes, keep)
        }
        HttpResponse::RawThenClose(bytes) => (bytes.clone(), false),
        HttpResponse::Hangup => (Vec::new(), false),
    }
}

/// Writes `resp` to a blocking stream. `Ok(true)` = connection may serve
/// another request.
pub fn write_http_response(
    stream: &mut impl Write,
    resp: &HttpResponse,
    req_keep_alive: bool,
) -> std::io::Result<bool> {
    let (bytes, keep) = render_http_response(resp, req_keep_alive);
    if !bytes.is_empty() {
        stream.write_all(&bytes)?;
        stream.flush()?;
    }
    Ok(keep)
}

/// A minimal blocking HTTP server over a [`Handler`]: nonblocking accept
/// loop, one thread per connection, full head+body parse per request.
/// This is the scripted-backend driver `doduo-balance`'s failover tests
/// use in place of hand-rolled mini-servers; the production topologies
/// live in `server.rs`. Returns when `stop` flips true.
pub fn serve_blocking<H: Handler>(
    listener: TcpListener,
    handler: &H,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    std::thread::scope(|scope| {
        while !stop.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    scope.spawn(move || serve_blocking_conn(stream, handler, stop));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => break,
            }
        }
    });
    Ok(())
}

/// One connection's request loop for [`serve_blocking`].
fn serve_blocking_conn<H: Handler>(stream: TcpStream, handler: &H, stop: &AtomicBool) {
    let mut stream = stream;
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut reader = std::io::BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    while !stop.load(Ordering::SeqCst) {
        let deadline = Instant::now() + Duration::from_secs(5);
        let head = match http::read_head(&mut reader, deadline) {
            Ok(h) => h,
            Err(http::ReadError::TimedOut) => continue, // idle keep-alive
            Err(http::ReadError::Eof) | Err(http::ReadError::Io(_)) => return,
            Err(http::ReadError::Bad(msg)) => {
                let _ = http::write_error(&mut stream, 400, "Bad Request", &msg, false);
                return;
            }
            Err(http::ReadError::TooLarge(msg)) => {
                let _ = http::write_error(&mut stream, 413, "Payload Too Large", &msg, false);
                return;
            }
            Err(http::ReadError::TooSlow) => {
                let _ = http::write_error(
                    &mut stream,
                    408,
                    "Request Timeout",
                    "request too slow",
                    false,
                );
                return;
            }
        };
        if head.expect_continue && http::write_continue(&mut stream).is_err() {
            return;
        }
        let body = match http::read_body(&mut reader, head.framing, deadline) {
            Ok(b) => b,
            Err(_) => return,
        };
        let req = HttpRequest::from_head(&head, body);
        let resp = handler.handle(&req);
        let severs = matches!(resp, HttpResponse::RawThenClose(_) | HttpResponse::Hangup);
        match write_http_response(&mut stream, &resp, req.keep_alive) {
            Ok(true) => {}
            Ok(false) => {
                if severs {
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                }
                return;
            }
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_path_strips_exactly_the_v1_prefix() {
        assert_eq!(canonical_path("/v1/annotate"), "/annotate");
        assert_eq!(canonical_path("/v1/stats"), "/stats");
        assert_eq!(canonical_path("/annotate"), "/annotate");
        assert_eq!(canonical_path("/v1"), "/");
        assert_eq!(canonical_path("/v12/annotate"), "/v12/annotate");
        assert_eq!(canonical_path("/v1annotate"), "/v1annotate");
        assert_eq!(canonical_path("/"), "/");
    }

    #[test]
    fn render_respects_close_and_client_keep_alive() {
        let resp = HttpResponse::json(200, "{}\n");
        let (bytes, keep) = render_http_response(&resp, true);
        assert!(keep);
        assert!(String::from_utf8_lossy(&bytes).contains("connection: keep-alive"));
        let (bytes, keep) = render_http_response(&resp, false);
        assert!(!keep);
        assert!(String::from_utf8_lossy(&bytes).contains("connection: close"));
        let (_, keep) = render_http_response(&resp.clone().close(), true);
        assert!(!keep);
        let (bytes, keep) = render_http_response(&HttpResponse::Hangup, true);
        assert!(bytes.is_empty());
        assert!(!keep);
    }

    #[test]
    fn with_header_appends_to_the_header_section() {
        let resp = HttpResponse::json(200, "{}\n")
            .with_header("x-model-version", "3-deadbeef")
            .with_header("deprecation", "true");
        let (bytes, _) = render_http_response(&resp, true);
        let text = String::from_utf8_lossy(&bytes);
        assert!(text.contains("x-model-version: 3-deadbeef"), "{text}");
        assert!(text.contains("deprecation: true"), "{text}");
        // Raw variants have no header section; the call must be a no-op.
        let raw = HttpResponse::RawThenClose(b"x".to_vec()).with_header("a", "b");
        let (bytes, _) = render_http_response(&raw, true);
        assert_eq!(bytes, b"x");
    }

    #[test]
    fn error_constructors_emit_the_envelope() {
        let HttpResponse::Payload(p) = HttpResponse::error(404, "no route") else {
            panic!("payload expected")
        };
        assert_eq!(p.status, 404);
        assert!(p.body.contains("\"code\":\"not_found\""), "{}", p.body);
        assert!(p.body.contains("\"message\":\"no route\""), "{}", p.body);
        assert!(!p.body.contains("retry_after_ms"), "{}", p.body);

        let HttpResponse::Payload(p) = HttpResponse::unavailable("overloaded", "busy", 2) else {
            panic!("payload expected")
        };
        assert_eq!(p.status, 503);
        assert!(p.extra.contains("retry-after: 2"), "{}", p.extra);
        assert!(p.body.contains("\"retry_after_ms\":2000"), "{}", p.body);
    }

    #[test]
    fn serve_blocking_round_trips_requests_through_a_closure_handler() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let stop = std::sync::Arc::new(AtomicBool::new(false));
        let thread = {
            let stop = std::sync::Arc::clone(&stop);
            std::thread::spawn(move || {
                let handler = |req: &HttpRequest| match canonical_path(&req.path) {
                    "/echo" => HttpResponse::json(200, format!("{{\"len\":{}}}\n", req.body.len())),
                    p => HttpResponse::error(404, &format!("no route for {} {p}", req.method)),
                };
                serve_blocking(listener, &handler, &stop).expect("serve");
            })
        };

        let mut client =
            crate::http::Client::connect(&addr, Some(Duration::from_secs(5))).expect("connect");
        let resp = client.request("POST", "/v1/echo", b"hello").expect("versioned echo");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"{\"len\":5}\n");
        let resp = client.request("POST", "/echo", b"hi").expect("legacy echo");
        assert_eq!(resp.status, 200, "unprefixed alias still served");
        let resp = client.request("GET", "/nope", b"").expect("miss");
        assert_eq!(resp.status, 404);
        let body = String::from_utf8(resp.body).expect("utf8");
        assert!(body.contains("\"code\":\"not_found\""), "{body}");

        stop.store(true, Ordering::SeqCst);
        drop(client);
        thread.join().expect("join");
    }
}
