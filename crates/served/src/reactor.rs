//! The epoll event loop behind the default serving topology.
//!
//! One reactor thread owns the listener and every parked connection. Each
//! connection is a small state machine —
//!
//! ```text
//!   Idle ──bytes──▶ Reading ──full request──▶ Dispatched ──completion──▶ Writing
//!    ▲  (75 s)        (request deadline)        (dispatch backstop)    (write stall)
//!    └──────────────────── outbox drained, keep-alive ───────────────────────┘
//! ```
//!
//! — where every edge has a timeout budget tracked by a hashed
//! [`TimerWheel`]. Sockets are nonblocking; reads and writes happen only
//! when epoll reports readiness, so ten thousand idle keep-alive
//! connections cost zero syscalls between requests (the worker pool they
//! replace paid two `fcntl`s plus a `peek` per parked connection per
//! probe round).
//!
//! The reactor never computes responses for work that can block: a fully
//! parsed request is handed to the [`Driver`], which either answers
//! immediately (`GET` endpoints, errors) or queues it for worker threads.
//! Workers never touch sockets — they push a [`Completion`] into the
//! [`Router`] and signal its `eventfd`, which wakes the reactor to write
//! the bytes out. Streaming requests (`POST /annotate_stream`) are the one
//! exception: the reactor hands the raw socket plus any buffered bytes
//! back to the driver at head-parse time, before the body is consumed.
//!
//! Timer entries and dispatch tickets carry a `slot | gen << 32` token;
//! the generation bumps on every state transition, so a stale timer (or a
//! completion for a connection that died) is recognized by a mismatched
//! generation and dropped — lazy cancellation, no timer deletion needed.
//! Epoll registrations carry a separate `slot | epoch << 32` token whose
//! epoch bumps only when the slot's socket changes hands (close or
//! stream hand-over): readiness events stay valid across the per-request
//! generation churn, which lets the reactor skip `epoll_ctl` entirely
//! whenever a transition keeps the kernel's interest mask unchanged.

use crate::handler::{render_http_response, HttpRequest, HttpResponse};
use crate::http::{parse_head, BodyDecoder, BodyFraming, Head, ReadError};
use epoll::{Epoll, EventFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use std::io::{Read, Write};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Epoll token of the listening socket.
const TOKEN_LISTENER: u64 = u64::MAX;
/// Epoll token of the completion-queue `eventfd`.
const TOKEN_WAKE: u64 = u64::MAX - 1;

/// A connection ticket: `slot | generation << 32`. Valid only until the
/// connection transitions state; the [`Router`] uses it to route worker
/// completions back to the right connection (or drop them if it died).
pub type Ticket = u64;

fn ticket_slot(t: Ticket) -> usize {
    (t & 0xffff_ffff) as usize
}

fn ticket_gen(t: Ticket) -> u32 {
    (t >> 32) as u32
}

/// A byte stream the reactor can drive: nonblocking reads/writes plus the
/// socket controls the event loop needs. Implemented for [`TcpStream`]
/// (production) and [`UnixStream`] (socketpair-backed unit tests).
///
/// [`TcpStream`]: std::net::TcpStream
/// [`UnixStream`]: std::os::unix::net::UnixStream
pub trait Source: Read + Write + AsRawFd + Send {
    /// Switches the `O_NONBLOCK` flag.
    fn set_nonblocking_flag(&self, nonblocking: bool) -> std::io::Result<()>;
    /// Severs both directions without dropping the descriptor.
    fn shutdown_both(&self) -> std::io::Result<()>;
}

impl Source for std::net::TcpStream {
    fn set_nonblocking_flag(&self, nonblocking: bool) -> std::io::Result<()> {
        self.set_nonblocking(nonblocking)
    }
    fn shutdown_both(&self) -> std::io::Result<()> {
        self.shutdown(std::net::Shutdown::Both)
    }
}

impl Source for std::os::unix::net::UnixStream {
    fn set_nonblocking_flag(&self, nonblocking: bool) -> std::io::Result<()> {
        self.set_nonblocking(nonblocking)
    }
    fn shutdown_both(&self) -> std::io::Result<()> {
        self.shutdown(std::net::Shutdown::Both)
    }
}

/// What the [`Driver`] decided to do with a fully received request.
pub enum Dispatch {
    /// Answer now (the driver computed the response without blocking).
    Respond(HttpResponse),
    /// The request was handed to worker threads; a [`Completion`] carrying
    /// this connection's [`Ticket`] will arrive through the [`Router`].
    Queued,
}

/// The policy half of the event loop: accepting, routing, and stats. The
/// reactor owns all socket I/O; the driver owns everything else.
pub trait Driver<S: Source>: Sync {
    /// Pulls one pending connection off the listener. `Ok(None)` when none
    /// is waiting. Admission control (connection caps) lives here.
    fn accept(&self) -> std::io::Result<Option<S>> {
        Ok(None)
    }

    /// Returns true when this request head names an endpoint that owns
    /// its connection to the end (streaming); the reactor then calls
    /// [`Driver::take_over`] instead of buffering the body.
    fn wants_takeover(&self, head: &Head) -> bool {
        let _ = head;
        false
    }

    /// Receives a taken-over connection: the raw stream (still
    /// nonblocking), its parsed head, bytes read past the head, and the
    /// number of requests previously served on the connection.
    fn take_over(&self, stream: S, head: Head, leftover: Vec<u8>, prior_requests: u64) {
        let _ = (stream, head, leftover, prior_requests);
    }

    /// Routes one fully received request. `prior_requests` is the number
    /// of requests already served on this connection (for keep-alive
    /// reuse accounting). Must not block.
    fn dispatch(&self, ticket: Ticket, req: HttpRequest, prior_requests: u64) -> Dispatch;

    /// A request failed before dispatch (parse error, deadline) — the
    /// reactor already wrote the error envelope; this is for counters.
    fn on_request_error(&self) {}

    /// A connection was admitted into the reactor.
    fn on_open(&self) {}

    /// A connection left the reactor (closed or taken over).
    fn on_close(&self) {}
}

/// Timeout budgets and sizing for a [`Reactor`].
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Budget for receiving one complete request (head + body) once its
    /// first byte arrives; exceeded → `408` and close.
    pub request_deadline: Duration,
    /// How long a keep-alive connection may sit idle between requests.
    pub idle_timeout: Duration,
    /// Backstop for a queued request whose completion never arrives; the
    /// worker's own timeout should fire first and answer `500`.
    pub dispatch_timeout: Duration,
    /// Budget for draining a response to a slow-reading client.
    pub write_timeout: Duration,
    /// Discriminates a slow-loris from a dead client when
    /// `request_deadline` expires mid-request: a client whose last byte
    /// arrived within this window gets a `408`; one silent for longer is
    /// closed without a response (mirroring the blocking parser, which
    /// turns a mid-request read timeout into a silent close).
    pub read_grace: Duration,
    /// Timer wheel tick size; timers fire within one tick of their
    /// deadline, never early.
    pub timer_granularity: Duration,
}

impl Default for ReactorConfig {
    fn default() -> ReactorConfig {
        ReactorConfig {
            request_deadline: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(75),
            dispatch_timeout: Duration::from_secs(35),
            write_timeout: Duration::from_secs(10),
            read_grace: Duration::from_secs(5),
            timer_granularity: Duration::from_millis(25),
        }
    }
}

// ------------------------------------------------------------- timer wheel

/// A hashed timer wheel: deadlines hash into `slots.len()` buckets by tick
/// number, expiry walks at most the elapsed ticks, and entries further
/// than one full rotation simply survive extra walks of their bucket.
/// Cancellation is lazy — the reactor drops fired tokens whose generation
/// no longer matches.
pub struct TimerWheel {
    slots: Vec<Vec<WheelEntry>>,
    granularity: Duration,
    start: Instant,
    /// Next tick to expire; all entries with `deadline_tick` below this
    /// have already fired.
    tick: u64,
    len: usize,
}

struct WheelEntry {
    deadline_tick: u64,
    token: u64,
}

impl TimerWheel {
    /// A wheel of `slots` buckets ticking every `granularity`, with tick 0
    /// anchored at `now`.
    pub fn new(granularity: Duration, slots: usize, now: Instant) -> TimerWheel {
        assert!(slots > 0 && granularity > Duration::ZERO);
        TimerWheel {
            slots: (0..slots).map(|_| Vec::new()).collect(),
            granularity,
            start: now,
            tick: 0,
            len: 0,
        }
    }

    /// The tick at which a deadline fires — rounded *up* so a timer never
    /// fires before its deadline.
    fn tick_of(&self, t: Instant) -> u64 {
        let nanos = t.saturating_duration_since(self.start).as_nanos();
        let g = self.granularity.as_nanos();
        (nanos / g) as u64 + 1
    }

    /// Arms a timer; `token` comes back out of [`TimerWheel::expire`].
    pub fn insert(&mut self, deadline: Instant, token: u64) {
        let deadline_tick = self.tick_of(deadline).max(self.tick);
        let idx = (deadline_tick % self.slots.len() as u64) as usize;
        self.slots[idx].push(WheelEntry { deadline_tick, token });
        self.len += 1;
    }

    /// Collects every token whose deadline has passed by `now`.
    pub fn expire(&mut self, now: Instant, out: &mut Vec<u64>) {
        let now_tick = (now.saturating_duration_since(self.start).as_nanos()
            / self.granularity.as_nanos()) as u64;
        while self.tick <= now_tick {
            let idx = (self.tick % self.slots.len() as u64) as usize;
            let slot = &mut self.slots[idx];
            let mut i = 0;
            while i < slot.len() {
                if slot[i].deadline_tick <= now_tick {
                    out.push(slot.swap_remove(i).token);
                    self.len -= 1;
                } else {
                    i += 1;
                }
            }
            self.tick += 1;
        }
    }

    /// Time until the earliest armed deadline, or `None` when the wheel is
    /// empty. Linear in armed timers — the reactor calls it once per loop
    /// over at most one entry per connection.
    pub fn next_timeout(&self, now: Instant) -> Option<Duration> {
        if self.len == 0 {
            return None;
        }
        let min_tick = self.slots.iter().flatten().map(|e| e.deadline_tick).min().expect("len > 0");
        let due = self.start + self.granularity * (min_tick as u32);
        Some(due.saturating_duration_since(now))
    }

    /// Number of armed timers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no timers are armed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

// --------------------------------------------------------------- completions

/// A worker's finished response, addressed by connection [`Ticket`].
pub struct Completion {
    /// The ticket handed to [`Driver::dispatch`].
    pub ticket: Ticket,
    /// The response to render and write.
    pub resp: HttpResponse,
}

/// The worker→reactor completion queue: a mutexed vector plus an
/// `eventfd` that wakes the reactor out of `epoll_wait`. Cloned into every
/// worker thread via `Arc`.
pub struct Router {
    done: Mutex<Vec<Completion>>,
    wake: EventFd,
}

impl Router {
    /// An empty completion queue with a fresh `eventfd`.
    pub fn new() -> std::io::Result<Router> {
        Ok(Router { done: Mutex::new(Vec::new()), wake: EventFd::new()? })
    }

    /// Delivers a worker's response and wakes the reactor. The `eventfd`
    /// is only signalled on the empty→non-empty transition: the reactor
    /// drains the whole queue per turn (eventfd first, then the vector),
    /// so a completion that lands behind an undelivered one rides the
    /// signal already in flight. A dispatcher finishing a micro-batch of
    /// jobs pays one wake syscall, not one per job.
    pub fn complete(&self, ticket: Ticket, resp: HttpResponse) {
        let first = {
            let mut done = self.done.lock().expect("router lock");
            done.push(Completion { ticket, resp });
            done.len() == 1
        };
        if first {
            let _ = self.wake.signal();
        }
    }

    /// Wakes the reactor without delivering anything (shutdown nudge).
    pub fn nudge(&self) {
        let _ = self.wake.signal();
    }

    fn drain(&self) -> Vec<Completion> {
        let _ = self.wake.drain();
        std::mem::take(&mut *self.done.lock().expect("router lock"))
    }
}

// ------------------------------------------------------------- connections

/// Which timeout is armed and what readiness means right now.
#[derive(Debug)]
enum ConnState {
    /// Keep-alive parking: no partial request buffered.
    Idle,
    /// A request's first byte has arrived; head/body parsing in progress.
    Reading,
    /// Request handed to workers; socket reads are paused.
    Dispatched,
    /// Response bytes draining from the outbox.
    Writing {
        /// Park for another request once drained (vs. close).
        keep: bool,
        /// Sever with `shutdown(2)` after draining (torn-response chaos).
        sever: bool,
    },
}

struct ConnEntry<S> {
    stream: S,
    state: ConnState,
    /// Raw bytes read but not yet consumed by parsing.
    inbuf: Vec<u8>,
    /// Parsed head of the in-progress request.
    head: Option<Head>,
    /// Body decoder for the in-progress request.
    decoder: Option<BodyDecoder>,
    /// Decoded body bytes of the in-progress request.
    bodybuf: Vec<u8>,
    /// Rendered response bytes awaiting the socket.
    outbox: Vec<u8>,
    outpos: usize,
    /// Requests fully served on this connection.
    requests: u64,
    /// The dispatched request's keep-alive wish (consulted at completion).
    req_keep_alive: bool,
    /// Peer sent FIN (no more request bytes will arrive).
    saw_rdhup: bool,
    /// When the last request byte arrived (see `ReactorConfig::read_grace`).
    last_read: Instant,
}

// ----------------------------------------------------------------- reactor

/// The event loop. Generic over the stream type (TCP in production, Unix
/// socketpairs in tests) and the [`Driver`] policy.
pub struct Reactor<S: Source, D: Driver<S>> {
    cfg: ReactorConfig,
    driver: D,
    epoll: Epoll,
    router: Arc<Router>,
    wheel: TimerWheel,
    conns: Vec<Option<ConnEntry<S>>>,
    /// Per-slot request generation: bumped on every state transition so
    /// timers and dispatch tickets from a superseded state are lazily
    /// cancelled. Memory-only — never re-registered with the kernel.
    gens: Vec<u32>,
    /// Per-slot connection epoch: bumped only when a slot's socket
    /// changes hands (close/hand-over). This is what epoll registrations
    /// carry, so readiness events survive the per-request gen churn while
    /// events for a recycled slot still drop.
    epochs: Vec<u32>,
    /// The interest mask the kernel currently holds per slot; interest
    /// changes that match it skip the `epoll_ctl` syscall.
    interests: Vec<u32>,
    free: Vec<usize>,
    listener_fd: Option<i32>,
    events: Vec<epoll::Event>,
    fired: Vec<u64>,
    active: usize,
}

impl<S: Source, D: Driver<S>> Reactor<S, D> {
    /// Builds the reactor: epoll instance, wake `eventfd` (registered
    /// immediately), timer wheel.
    pub fn new(cfg: ReactorConfig, driver: D) -> std::io::Result<Reactor<S, D>> {
        let epoll = Epoll::new()?;
        let router = Arc::new(Router::new()?);
        epoll.add(router.wake.as_raw_fd(), TOKEN_WAKE, EPOLLIN)?;
        let wheel = TimerWheel::new(cfg.timer_granularity, 4096, Instant::now());
        Ok(Reactor {
            cfg,
            driver,
            epoll,
            router,
            wheel,
            conns: Vec::new(),
            gens: Vec::new(),
            epochs: Vec::new(),
            interests: Vec::new(),
            free: Vec::new(),
            listener_fd: None,
            events: Vec::with_capacity(256),
            fired: Vec::new(),
            active: 0,
        })
    }

    /// The completion queue to hand to worker threads.
    pub fn router(&self) -> Arc<Router> {
        Arc::clone(&self.router)
    }

    /// The driver, for inspecting its counters (stats live there).
    pub fn driver(&self) -> &D {
        &self.driver
    }

    /// Registers the listening socket; [`Driver::accept`] is called when
    /// it becomes readable. The listener must already be nonblocking.
    pub fn set_listener(&mut self, fd: i32) -> std::io::Result<()> {
        self.epoll.add(fd, TOKEN_LISTENER, EPOLLIN)?;
        self.listener_fd = Some(fd);
        Ok(())
    }

    /// Connections currently owned by the reactor.
    pub fn connections(&self) -> usize {
        self.active
    }

    /// Admits a connection: nonblocking, registered for readability,
    /// parked idle.
    pub fn insert(&mut self, stream: S) -> std::io::Result<()> {
        stream.set_nonblocking_flag(true)?;
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.conns.push(None);
                self.gens.push(0);
                self.epochs.push(0);
                self.interests.push(0);
                self.conns.len() - 1
            }
        };
        self.epoll.add(stream.as_raw_fd(), self.evtoken(slot), EPOLLIN | EPOLLRDHUP)?;
        self.interests[slot] = EPOLLIN | EPOLLRDHUP;
        let token = self.token(slot);
        self.conns[slot] = Some(ConnEntry {
            stream,
            state: ConnState::Idle,
            inbuf: Vec::new(),
            head: None,
            decoder: None,
            bodybuf: Vec::new(),
            outbox: Vec::new(),
            outpos: 0,
            requests: 0,
            req_keep_alive: true,
            saw_rdhup: false,
            last_read: Instant::now(),
        });
        self.active += 1;
        self.wheel.insert(Instant::now() + self.cfg.idle_timeout, token);
        self.driver.on_open();
        Ok(())
    }

    /// The timer/ticket token: request-generation scoped.
    fn token(&self, slot: usize) -> u64 {
        slot as u64 | (u64::from(self.gens[slot]) << 32)
    }

    /// The epoll-registration token: connection-epoch scoped.
    fn evtoken(&self, slot: usize) -> u64 {
        slot as u64 | (u64::from(self.epochs[slot]) << 32)
    }

    /// Bumps the slot's request generation, lazily cancelling any timer or
    /// dispatch ticket armed for the superseded state.
    fn bump_gen(&mut self, slot: usize) {
        self.gens[slot] = self.gens[slot].wrapping_add(1);
    }

    /// [`Reactor::bump_gen`] plus an interest update — the common shape of
    /// a state transition.
    fn retoken(&mut self, slot: usize, interest: u32) {
        self.bump_gen(slot);
        self.set_interest(slot, interest);
    }

    /// Points the kernel at `interest` for the slot's fd. A request that
    /// wants what the kernel already watches (the keep-alive steady state)
    /// costs no syscall.
    fn set_interest(&mut self, slot: usize, interest: u32) {
        if self.interests[slot] == interest {
            return;
        }
        let fd = match self.conns[slot].as_ref() {
            Some(conn) => conn.stream.as_raw_fd(),
            None => return,
        };
        if self.epoll.modify(fd, self.evtoken(slot), interest).is_ok() {
            self.interests[slot] = interest;
        }
    }

    fn arm(&mut self, slot: usize, after: Duration) {
        let token = self.token(slot);
        self.wheel.insert(Instant::now() + after, token);
    }

    /// Tears the connection down: epoll deregistration, optional sever,
    /// slot free.
    fn close(&mut self, slot: usize, sever: bool) {
        if let Some(conn) = self.conns[slot].take() {
            let _ = self.epoll.delete(conn.stream.as_raw_fd());
            if sever {
                let _ = conn.stream.shutdown_both();
            }
            self.gens[slot] = self.gens[slot].wrapping_add(1);
            self.epochs[slot] = self.epochs[slot].wrapping_add(1);
            self.free.push(slot);
            self.active -= 1;
            self.driver.on_close();
        }
    }

    /// Releases the connection to the driver for streaming: epoll
    /// deregistration, slot free, stream + buffered bytes handed over.
    fn hand_over(&mut self, slot: usize, head: Head) {
        if let Some(conn) = self.conns[slot].take() {
            let _ = self.epoll.delete(conn.stream.as_raw_fd());
            self.gens[slot] = self.gens[slot].wrapping_add(1);
            self.epochs[slot] = self.epochs[slot].wrapping_add(1);
            self.free.push(slot);
            self.active -= 1;
            // No `on_close` here: `take_over` transfers connection
            // accounting to the driver along with the socket.
            self.driver.take_over(conn.stream, head, conn.inbuf, conn.requests);
        }
    }

    /// One full event-loop iteration: wait (bounded by `cap` and the
    /// nearest timer), service readiness, drain completions, fire timers.
    /// Exposed for tests; [`Reactor::run`] loops it.
    pub fn turn(&mut self, cap: Duration) -> std::io::Result<()> {
        let now = Instant::now();
        let timeout = match self.wheel.next_timeout(now) {
            Some(t) => t.min(cap),
            None => cap,
        };
        self.epoll.wait(&mut self.events, 256, Some(timeout))?;
        let events = std::mem::take(&mut self.events);
        for ev in &events {
            match ev.token {
                TOKEN_LISTENER => self.accept_pending(),
                TOKEN_WAKE => {} // drained below, every turn
                token => self.handle_conn_event(token, ev.events),
            }
        }
        self.events = events;
        self.drain_completions();
        let now = Instant::now();
        let mut fired = std::mem::take(&mut self.fired);
        fired.clear();
        self.wheel.expire(now, &mut fired);
        for &token in &fired {
            self.handle_timer(token);
        }
        self.fired = fired;
        Ok(())
    }

    /// Runs the loop until `stop` flips true, then drains: new accepts
    /// halt, parked connections close, in-flight requests get `grace` to
    /// finish writing.
    pub fn run(&mut self, stop: &AtomicBool, grace: Duration) -> std::io::Result<()> {
        let mut grace_until: Option<Instant> = None;
        loop {
            if stop.load(Ordering::SeqCst) {
                if grace_until.is_none() {
                    grace_until = Some(Instant::now() + grace);
                    if let Some(fd) = self.listener_fd.take() {
                        let _ = self.epoll.delete(fd);
                    }
                    for slot in 0..self.conns.len() {
                        if let Some(conn) = self.conns[slot].as_ref() {
                            if matches!(conn.state, ConnState::Idle | ConnState::Reading) {
                                self.close(slot, false);
                            }
                        }
                    }
                }
                let deadline = grace_until.expect("grace set");
                if self.active == 0 || Instant::now() >= deadline {
                    for slot in 0..self.conns.len() {
                        self.close(slot, false);
                    }
                    return Ok(());
                }
            }
            self.turn(Duration::from_millis(100))?;
        }
    }

    fn accept_pending(&mut self) {
        loop {
            match self.driver.accept() {
                Ok(Some(stream)) => {
                    // An epoll-add failure drops the connection the driver
                    // just accounted for; balance the books.
                    if self.insert(stream).is_err() {
                        self.driver.on_close();
                    }
                }
                Ok(None) => break,
                Err(_) => break,
            }
        }
    }

    fn handle_conn_event(&mut self, token: u64, flags: u32) {
        let slot = ticket_slot(token);
        if slot >= self.conns.len()
            || self.epochs[slot] != ticket_gen(token)
            || self.conns[slot].is_none()
        {
            return; // stale event for a connection that moved on
        }
        if flags & (EPOLLERR | EPOLLHUP) != 0 {
            self.close(slot, false);
            return;
        }
        if flags & EPOLLRDHUP != 0 {
            let conn = self.conns[slot].as_mut().expect("checked");
            conn.saw_rdhup = true;
            if matches!(conn.state, ConnState::Idle) && conn.inbuf.is_empty() {
                self.close(slot, false);
                return;
            }
            if matches!(conn.state, ConnState::Dispatched) {
                // Nothing to read while dispatched; silence the
                // level-triggered RDHUP until the completion arrives.
                self.set_interest(slot, 0);
            }
        }
        if flags & EPOLLIN != 0 {
            if !self.fill_inbuf(slot) {
                return; // closed
            }
            self.advance(slot);
        }
        if flags & EPOLLOUT != 0 {
            self.pump_out(slot);
        }
    }

    /// Reads until `EAGAIN`/EOF into the connection's input buffer.
    /// Returns false when the connection was closed.
    fn fill_inbuf(&mut self, slot: usize) -> bool {
        let mut scratch = [0u8; 16 * 1024];
        loop {
            let conn = match self.conns[slot].as_mut() {
                Some(c) => c,
                None => return false,
            };
            match conn.stream.read(&mut scratch) {
                Ok(0) => {
                    // EOF. Mid-request → drop silently (matches the
                    // blocking parser's `Eof` close); idle with no bytes →
                    // plain close.
                    self.close(slot, false);
                    return false;
                }
                Ok(n) => {
                    let drained = n < scratch.len();
                    conn.inbuf.extend_from_slice(&scratch[..n]);
                    conn.last_read = Instant::now();
                    if matches!(conn.state, ConnState::Idle) {
                        conn.state = ConnState::Reading;
                        let interest = EPOLLIN
                            | EPOLLRDHUP
                            | if conn.outbox.len() > conn.outpos { EPOLLOUT } else { 0 };
                        self.retoken(slot, interest);
                        self.arm(slot, self.cfg.request_deadline);
                    }
                    // A short read means the socket is drained for now —
                    // skip the extra read that would only report `EAGAIN`.
                    // If more bytes race in behind the short read, the
                    // level-triggered registration fires again next turn.
                    if drained {
                        return true;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(slot, false);
                    return false;
                }
            }
        }
    }

    /// Drives the parse → dispatch state machine over whatever is
    /// buffered. Only meaningful in `Idle`/`Reading`.
    fn advance(&mut self, slot: usize) {
        loop {
            let conn = match self.conns[slot].as_mut() {
                Some(c) => c,
                None => return,
            };
            match conn.state {
                ConnState::Idle | ConnState::Reading => {}
                _ => return,
            }
            if conn.head.is_none() {
                if conn.inbuf.is_empty() {
                    return;
                }
                if matches!(conn.state, ConnState::Idle) {
                    conn.state = ConnState::Reading;
                    self.retoken(slot, EPOLLIN | EPOLLRDHUP);
                    self.arm(slot, self.cfg.request_deadline);
                    continue;
                }
                match parse_head(&conn.inbuf) {
                    Ok(None) => return, // need more bytes
                    Ok(Some((head, consumed))) => {
                        conn.inbuf.drain(..consumed);
                        if self.driver.wants_takeover(&head) {
                            self.hand_over(slot, head);
                            return;
                        }
                        let conn = self.conns[slot].as_mut().expect("checked");
                        if head.expect_continue && head.framing != BodyFraming::None {
                            conn.outbox.extend_from_slice(b"HTTP/1.1 100 Continue\r\n\r\n");
                        }
                        conn.decoder = Some(BodyDecoder::new(head.framing));
                        conn.head = Some(head);
                        if conn.outbox.len() > conn.outpos {
                            self.pump_out(slot);
                        }
                        continue;
                    }
                    Err(e) => {
                        self.fail_request(slot, &e);
                        return;
                    }
                }
            }
            // Head parsed: feed the body decoder.
            let conn = self.conns[slot].as_mut().expect("checked");
            let decoder = conn.decoder.as_mut().expect("decoder exists with head");
            let mut bodybuf = std::mem::take(&mut conn.bodybuf);
            let pushed = decoder.push(&conn.inbuf, &mut bodybuf);
            conn.bodybuf = bodybuf;
            match pushed {
                Ok(consumed) => {
                    conn.inbuf.drain(..consumed);
                    if !conn.decoder.as_ref().expect("checked").is_done() {
                        return; // need more bytes
                    }
                    self.dispatch_request(slot);
                }
                Err(e) => {
                    self.fail_request(slot, &e);
                    return;
                }
            }
        }
    }

    /// A parse/deadline failure: write the matching error envelope (where
    /// one is still possible) and close after draining.
    fn fail_request(&mut self, slot: usize, err: &ReadError) {
        self.driver.on_request_error();
        let resp = match err {
            ReadError::Bad(msg) => HttpResponse::error(400, msg),
            ReadError::TooLarge(msg) => HttpResponse::error(413, msg),
            ReadError::TooSlow => HttpResponse::error(408, "request too slow"),
            _ => {
                self.close(slot, false);
                return;
            }
        };
        self.queue_response(slot, &resp, false);
    }

    /// Hands the buffered request to the driver and transitions by its
    /// verdict.
    fn dispatch_request(&mut self, slot: usize) {
        let conn = self.conns[slot].as_mut().expect("dispatching live conn");
        let head = conn.head.take().expect("head parsed");
        conn.decoder = None;
        let body = std::mem::take(&mut conn.bodybuf);
        let prior = conn.requests;
        conn.requests += 1;
        conn.req_keep_alive = head.keep_alive;
        let req = HttpRequest::from_head(&head, body);
        let keep_wish = req.keep_alive;

        // Move to Dispatched *before* calling out so the ticket the driver
        // sees stays valid until the completion (or an immediate answer)
        // arrives.
        conn.state = ConnState::Dispatched;
        self.bump_gen(slot);
        self.arm(slot, self.cfg.dispatch_timeout);
        let ticket = self.token(slot);
        match self.driver.dispatch(ticket, req, prior) {
            Dispatch::Respond(resp) => self.queue_response(slot, &resp, keep_wish),
            // Pause reads until the completion arrives. An inline respond
            // moved straight on to Writing and never needed the change.
            Dispatch::Queued => self.set_interest(slot, EPOLLRDHUP),
        }
    }

    /// Renders `resp`, queues it on the outbox, and transitions to
    /// `Writing`.
    fn queue_response(&mut self, slot: usize, resp: &HttpResponse, req_keep_alive: bool) {
        let conn = match self.conns[slot].as_mut() {
            Some(c) => c,
            None => return,
        };
        let (bytes, keep) = render_http_response(resp, req_keep_alive);
        let sever = matches!(resp, HttpResponse::RawThenClose(_) | HttpResponse::Hangup);
        if bytes.is_empty() && sever {
            self.close(slot, true);
            return;
        }
        conn.outbox.extend_from_slice(&bytes);
        conn.state = ConnState::Writing { keep, sever };
        self.bump_gen(slot);
        self.arm(slot, self.cfg.write_timeout);
        // Write optimistically; `pump_out` arms `EPOLLOUT` only when the
        // socket pushes back, so the common drained-in-one-write response
        // never touches `epoll_ctl`.
        self.pump_out(slot);
    }

    /// Writes outbox bytes until drained or `EAGAIN`.
    fn pump_out(&mut self, slot: usize) {
        loop {
            let conn = match self.conns[slot].as_mut() {
                Some(c) => c,
                None => return,
            };
            if conn.outpos >= conn.outbox.len() {
                conn.outbox.clear();
                conn.outpos = 0;
                self.finish_write(slot);
                return;
            }
            match conn.stream.write(&conn.outbox[conn.outpos..]) {
                Ok(0) => {
                    self.close(slot, false);
                    return;
                }
                Ok(n) => conn.outpos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    let interest = match conn.state {
                        ConnState::Writing { .. } => EPOLLOUT,
                        _ => EPOLLIN | EPOLLRDHUP | EPOLLOUT,
                    };
                    self.set_interest(slot, interest);
                    return;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(slot, false);
                    return;
                }
            }
        }
    }

    /// The outbox just drained; decide what the connection does next.
    fn finish_write(&mut self, slot: usize) {
        let conn = match self.conns[slot].as_mut() {
            Some(c) => c,
            None => return,
        };
        match conn.state {
            ConnState::Writing { keep, sever } => {
                if sever || !keep {
                    self.close(slot, sever);
                    return;
                }
                conn.requests_served_reset();
                conn.state = ConnState::Idle;
                self.retoken(slot, EPOLLIN | EPOLLRDHUP);
                self.arm(slot, self.cfg.idle_timeout);
                // Pipelined bytes may already hold the next request.
                self.advance(slot);
            }
            // A mid-read flush (100 Continue): back to read-only interest.
            ConnState::Reading | ConnState::Idle => {
                self.set_interest(slot, EPOLLIN | EPOLLRDHUP);
            }
            ConnState::Dispatched => {}
        }
    }

    /// Routes queued worker completions to their connections.
    fn drain_completions(&mut self) {
        for Completion { ticket, resp } in self.router.drain() {
            let slot = ticket_slot(ticket);
            if slot >= self.conns.len()
                || self.gens[slot] != ticket_gen(ticket)
                || self.conns[slot].is_none()
            {
                continue; // connection died while the worker ran
            }
            let keep = self.conns[slot].as_ref().expect("checked").req_keep_alive;
            self.queue_response(slot, &resp, keep);
        }
    }

    /// A timer fired with a still-current generation: the budget for the
    /// connection's current state ran out.
    fn handle_timer(&mut self, token: u64) {
        let slot = ticket_slot(token);
        if slot >= self.conns.len()
            || self.gens[slot] != ticket_gen(token)
            || self.conns[slot].is_none()
        {
            return; // lazily cancelled
        }
        let conn = self.conns[slot].as_ref().expect("checked");
        let reading = matches!(conn.state, ConnState::Reading);
        // A dribbling client (bytes within the grace window) earns the
        // `408`; one that went silent mid-request is closed without a
        // response, exactly like the blocking parser's mid-request
        // timeout.
        let dribbling = conn.last_read.elapsed() < self.cfg.read_grace;
        if reading && dribbling {
            self.fail_request(slot, &ReadError::TooSlow);
        } else {
            self.close(slot, false);
        }
    }
}

impl<S> ConnEntry<S> {
    /// Hook for per-request field resets between keep-alive requests.
    fn requests_served_reset(&mut self) {
        self.head = None;
        self.decoder = None;
        self.bodybuf.clear();
    }
}

// ------------------------------------------------------------------- tests

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handler::HttpResponse;
    use std::os::unix::net::UnixStream;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// How the test driver answers [`Driver::dispatch`].
    enum Mode {
        /// Respond inline, echoing the path and body length.
        Echo,
        /// Respond inline with an `n`-byte body (exercises partial writes).
        Big(usize),
        /// Record the ticket and return [`Dispatch::Queued`] (the response
        /// arrives later through the [`Router`]).
        Queue,
    }

    struct TestDriver {
        mode: Mode,
        tickets: Mutex<Vec<Ticket>>,
        closed: AtomicUsize,
        errors: AtomicUsize,
    }

    impl Driver<UnixStream> for TestDriver {
        fn dispatch(&self, ticket: Ticket, req: HttpRequest, _prior: u64) -> Dispatch {
            match self.mode {
                Mode::Echo => Dispatch::Respond(HttpResponse::json(
                    200,
                    format!("{{\"path\":\"{}\",\"len\":{}}}\n", req.path, req.body.len()),
                )),
                Mode::Big(n) => Dispatch::Respond(HttpResponse::json(200, "x".repeat(n))),
                Mode::Queue => {
                    self.tickets.lock().expect("tickets").push(ticket);
                    Dispatch::Queued
                }
            }
        }
        fn on_request_error(&self) {
            self.errors.fetch_add(1, Ordering::SeqCst);
        }
        fn on_close(&self) {
            self.closed.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn reactor(cfg: ReactorConfig, mode: Mode) -> Reactor<UnixStream, TestDriver> {
        Reactor::new(
            cfg,
            TestDriver {
                mode,
                tickets: Mutex::new(Vec::new()),
                closed: AtomicUsize::new(0),
                errors: AtomicUsize::new(0),
            },
        )
        .expect("reactor")
    }

    fn quick_cfg() -> ReactorConfig {
        ReactorConfig { timer_granularity: Duration::from_millis(5), ..ReactorConfig::default() }
    }

    fn request(method: &str, path: &str, body: &[u8]) -> Vec<u8> {
        let mut v = format!("{method} {path} HTTP/1.1\r\ncontent-length: {}\r\n\r\n", body.len())
            .into_bytes();
        v.extend_from_slice(body);
        v
    }

    /// Drains whatever the peer end has buffered; returns true on EOF.
    fn read_available(mut peer: &UnixStream, out: &mut Vec<u8>) -> bool {
        peer.set_nonblocking(true).expect("peer nonblocking");
        let mut buf = [0u8; 64 * 1024];
        loop {
            match peer.read(&mut buf) {
                Ok(0) => return true,
                Ok(n) => out.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return false,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return true,
            }
        }
    }

    /// True once `buf` holds at least one complete response (head + the
    /// declared content-length of body bytes).
    fn response_complete(buf: &[u8]) -> bool {
        let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") else {
            return false;
        };
        let head = String::from_utf8_lossy(&buf[..pos]);
        let len = head
            .lines()
            .filter_map(|l| l.split_once(':'))
            .find(|(name, _)| name.eq_ignore_ascii_case("content-length"))
            .and_then(|(_, v)| v.trim().parse::<usize>().ok())
            .unwrap_or(0);
        buf.len() >= pos + 4 + len
    }

    fn count(buf: &[u8], needle: &[u8]) -> usize {
        buf.windows(needle.len()).filter(|w| *w == needle).count()
    }

    /// Turns the reactor until `done` holds (asserting a wall-clock bound).
    fn drive_until(
        r: &mut Reactor<UnixStream, TestDriver>,
        budget: Duration,
        mut done: impl FnMut() -> bool,
    ) {
        let end = Instant::now() + budget;
        while !done() {
            assert!(Instant::now() < end, "reactor did not converge within {budget:?}");
            r.turn(Duration::from_millis(2)).expect("turn");
        }
    }

    /// Turns the reactor until it owns no connections.
    fn drive_until_empty(r: &mut Reactor<UnixStream, TestDriver>, budget: Duration) {
        let end = Instant::now() + budget;
        while r.connections() != 0 {
            assert!(Instant::now() < end, "connections not reaped within {budget:?}");
            r.turn(Duration::from_millis(2)).expect("turn");
        }
    }

    const SEC: Duration = Duration::from_secs(5);

    // ------------------------------------------------------- timer wheel

    #[test]
    fn wheel_fires_in_order_and_never_early() {
        let t0 = Instant::now();
        let mut w = TimerWheel::new(Duration::from_millis(10), 16, t0);
        w.insert(t0 + Duration::from_millis(25), 1);
        w.insert(t0 + Duration::from_millis(5), 2);
        assert_eq!(w.len(), 2);
        // Earliest entry rounds up to tick 1 = +10ms.
        assert_eq!(w.next_timeout(t0), Some(Duration::from_millis(10)));
        let mut out = Vec::new();
        w.expire(t0 + Duration::from_millis(9), &mut out);
        assert!(out.is_empty(), "nothing fires before its rounded-up tick");
        w.expire(t0 + Duration::from_millis(10), &mut out);
        assert_eq!(out, vec![2]);
        out.clear();
        w.expire(t0 + Duration::from_millis(29), &mut out);
        assert!(out.is_empty());
        w.expire(t0 + Duration::from_millis(30), &mut out);
        assert_eq!(out, vec![1]);
        assert!(w.is_empty());
        assert_eq!(w.next_timeout(t0), None);
    }

    #[test]
    fn wheel_entry_survives_a_full_rotation() {
        let t0 = Instant::now();
        let mut w = TimerWheel::new(Duration::from_millis(10), 8, t0);
        // Tick 21 with 8 slots: its bucket is walked twice before it fires.
        w.insert(t0 + Duration::from_millis(200), 7);
        let mut out = Vec::new();
        w.expire(t0 + Duration::from_millis(100), &mut out);
        assert!(out.is_empty(), "survives earlier walks of its bucket");
        w.expire(t0 + Duration::from_millis(210), &mut out);
        assert_eq!(out, vec![7]);
    }

    // ------------------------------------------------------- event loop

    #[test]
    fn echo_round_trip_and_keep_alive_reuse() {
        let mut r = reactor(quick_cfg(), Mode::Echo);
        let (a, b) = UnixStream::pair().expect("pair");
        r.insert(a).expect("insert");
        assert_eq!(r.connections(), 1);

        (&b).write_all(&request("GET", "/v1/healthz", b"")).expect("write");
        let mut buf = Vec::new();
        drive_until(&mut r, SEC, || {
            read_available(&b, &mut buf);
            response_complete(&buf)
        });
        let text = String::from_utf8_lossy(&buf).into_owned();
        assert!(text.starts_with("HTTP/1.1 200"), "{text}");
        assert!(text.contains("\"path\":\"/v1/healthz\""), "{text}");

        // Same socket, second request: keep-alive re-parks and re-serves.
        buf.clear();
        (&b).write_all(&request("POST", "/annotate", b"hello")).expect("write");
        drive_until(&mut r, SEC, || {
            read_available(&b, &mut buf);
            response_complete(&buf)
        });
        let text = String::from_utf8_lossy(&buf).into_owned();
        assert!(text.contains("\"len\":5"), "{text}");
        assert_eq!(r.connections(), 1, "keep-alive parks the connection");
        assert_eq!(r.driver().errors.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn pipelined_requests_are_answered_in_order() {
        let mut r = reactor(quick_cfg(), Mode::Echo);
        let (a, b) = UnixStream::pair().expect("pair");
        r.insert(a).expect("insert");

        let mut two = request("GET", "/first", b"");
        two.extend_from_slice(&request("GET", "/second", b""));
        (&b).write_all(&two).expect("write");

        let mut buf = Vec::new();
        drive_until(&mut r, SEC, || {
            read_available(&b, &mut buf);
            count(&buf, b"HTTP/1.1 200") == 2
        });
        let text = String::from_utf8_lossy(&buf).into_owned();
        let first = text.find("/first").expect("first answered");
        let second = text.find("/second").expect("second answered");
        assert!(first < second, "responses in request order: {text}");
        assert_eq!(r.connections(), 1);
    }

    #[test]
    fn large_response_drains_through_partial_writes() {
        // ~1 MiB >> the socketpair buffer, so pump_out must hit EAGAIN and
        // resume from EPOLLOUT several times while the peer drains.
        const N: usize = 1 << 20;
        let mut r = reactor(quick_cfg(), Mode::Big(N));
        let (a, b) = UnixStream::pair().expect("pair");
        r.insert(a).expect("insert");

        (&b).write_all(&request("GET", "/big", b"")).expect("write");
        let mut buf = Vec::new();
        drive_until(&mut r, Duration::from_secs(20), || {
            read_available(&b, &mut buf);
            response_complete(&buf)
        });
        let body_start = buf.windows(4).position(|w| w == b"\r\n\r\n").expect("head complete") + 4;
        assert_eq!(buf.len() - body_start, N, "full body drained");
        assert!(buf[body_start..].iter().all(|&c| c == b'x'));
        assert_eq!(r.connections(), 1, "connection survives the drain");
    }

    #[test]
    fn queued_completion_routes_back_to_its_connection() {
        let mut r = reactor(quick_cfg(), Mode::Queue);
        let router = r.router();
        let (a, b) = UnixStream::pair().expect("pair");
        r.insert(a).expect("insert");
        (&b).write_all(&request("POST", "/annotate", b"{}")).expect("write");

        let end = Instant::now() + SEC;
        let ticket = loop {
            if let Some(t) = r.driver().tickets.lock().expect("tickets").first().copied() {
                break t;
            }
            assert!(Instant::now() < end, "request never dispatched");
            r.turn(Duration::from_millis(2)).expect("turn");
        };

        router.complete(ticket, HttpResponse::json(200, "{\"done\":true}\n"));
        let mut buf = Vec::new();
        drive_until(&mut r, SEC, || {
            read_available(&b, &mut buf);
            response_complete(&buf)
        });
        let text = String::from_utf8_lossy(&buf).into_owned();
        assert!(text.starts_with("HTTP/1.1 200"), "{text}");
        assert!(text.contains("\"done\":true"), "{text}");
        assert_eq!(r.connections(), 1);
    }

    #[test]
    fn stale_completion_for_a_reaped_connection_is_dropped() {
        // Dispatch backstop fires before the worker answers; the late
        // completion must be discarded by generation, not delivered.
        let cfg = ReactorConfig {
            dispatch_timeout: Duration::from_millis(40),
            timer_granularity: Duration::from_millis(5),
            ..ReactorConfig::default()
        };
        let mut r = reactor(cfg, Mode::Queue);
        let router = r.router();
        let (a, b) = UnixStream::pair().expect("pair");
        r.insert(a).expect("insert");
        (&b).write_all(&request("POST", "/annotate", b"{}")).expect("write");

        let end = Instant::now() + SEC;
        let ticket = loop {
            if let Some(t) = r.driver().tickets.lock().expect("tickets").first().copied() {
                break t;
            }
            assert!(Instant::now() < end, "request never dispatched");
            r.turn(Duration::from_millis(2)).expect("turn");
        };
        drive_until_empty(&mut r, SEC);

        // The worker answers a connection that no longer exists.
        router.complete(ticket, HttpResponse::json(200, "{\"late\":true}\n"));
        let deadline = Instant::now() + Duration::from_millis(50);
        while Instant::now() < deadline {
            r.turn(Duration::from_millis(2)).expect("turn");
        }
        let mut buf = Vec::new();
        assert!(read_available(&b, &mut buf), "peer sees EOF");
        assert!(buf.is_empty(), "nothing written for the dead connection");
        assert_eq!(r.connections(), 0);
    }

    #[test]
    fn deadline_dribbler_gets_408() {
        // Partial head, then silence — but within the grace window, so the
        // reactor owes the client a 408 before closing.
        let cfg = ReactorConfig {
            request_deadline: Duration::from_millis(50),
            read_grace: Duration::from_secs(10),
            timer_granularity: Duration::from_millis(5),
            ..ReactorConfig::default()
        };
        let mut r = reactor(cfg, Mode::Echo);
        let (a, b) = UnixStream::pair().expect("pair");
        r.insert(a).expect("insert");
        (&b).write_all(b"GET /slow HTT").expect("write");

        let mut buf = Vec::new();
        drive_until(&mut r, SEC, || {
            read_available(&b, &mut buf);
            response_complete(&buf)
        });
        let text = String::from_utf8_lossy(&buf).into_owned();
        assert!(text.starts_with("HTTP/1.1 408"), "{text}");
        assert!(text.contains("\"code\":\"request_timeout\""), "{text}");
        drive_until_empty(&mut r, SEC);
        assert_eq!(r.driver().errors.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn deadline_silent_client_is_closed_without_a_response() {
        // With no grace window every mid-request expiry looks like a dead
        // client: silent close, no 408 (the blocking parser's behavior).
        let cfg = ReactorConfig {
            request_deadline: Duration::from_millis(50),
            read_grace: Duration::ZERO,
            timer_granularity: Duration::from_millis(5),
            ..ReactorConfig::default()
        };
        let mut r = reactor(cfg, Mode::Echo);
        let (a, b) = UnixStream::pair().expect("pair");
        r.insert(a).expect("insert");
        (&b).write_all(b"GET /quiet HTT").expect("write");

        drive_until_empty(&mut r, SEC);
        let mut buf = Vec::new();
        assert!(read_available(&b, &mut buf), "peer sees EOF");
        assert!(buf.is_empty(), "silent close writes nothing");
    }

    #[test]
    fn idle_timeout_reaps_parked_connections() {
        let cfg = ReactorConfig {
            idle_timeout: Duration::from_millis(40),
            timer_granularity: Duration::from_millis(5),
            ..ReactorConfig::default()
        };
        let mut r = reactor(cfg, Mode::Echo);
        let peers: Vec<UnixStream> = (0..3)
            .map(|_| {
                let (a, b) = UnixStream::pair().expect("pair");
                r.insert(a).expect("insert");
                b
            })
            .collect();
        assert_eq!(r.connections(), 3);

        drive_until_empty(&mut r, SEC);
        assert_eq!(r.driver().closed.load(Ordering::SeqCst), 3);
        for b in &peers {
            let mut buf = Vec::new();
            assert!(read_available(b, &mut buf), "idle peer closed");
            assert!(buf.is_empty());
        }
    }

    #[test]
    fn idle_fleet_parks_while_one_connection_serves() {
        let mut r = reactor(quick_cfg(), Mode::Echo);
        let idle: Vec<UnixStream> = (0..256)
            .map(|_| {
                let (a, b) = UnixStream::pair().expect("pair");
                r.insert(a).expect("insert");
                b
            })
            .collect();
        let (a, active) = UnixStream::pair().expect("pair");
        r.insert(a).expect("insert");
        assert_eq!(r.connections(), 257);

        (&active).write_all(&request("GET", "/only", b"")).expect("write");
        let mut buf = Vec::new();
        drive_until(&mut r, SEC, || {
            read_available(&active, &mut buf);
            response_complete(&buf)
        });
        let text = String::from_utf8_lossy(&buf).into_owned();
        assert!(text.starts_with("HTTP/1.1 200"), "{text}");
        assert!(text.contains("\"path\":\"/only\""), "{text}");

        for b in &idle {
            let mut scratch = Vec::new();
            assert!(!read_available(b, &mut scratch), "idle peers stay open");
            assert!(scratch.is_empty(), "idle peers receive nothing");
        }
        assert_eq!(r.connections(), 257, "every connection still parked");
    }
}
