//! Deterministic model bootstrap for serving without a training run.
//!
//! Annotation *cost* (and the daemon's correctness contract — byte-identical
//! responses vs offline `Annotator::annotate`) is independent of training
//! state, so smoke tests and load benches serve a randomly initialized
//! paper-shaped model over a seeded corpus. This module is the single
//! source of that world: the daemon's `--synthetic` mode, the `serve_load`
//! bench, and the CI serve-smoke all call [`synthetic_world`] with the same
//! scale/seed and therefore agree bit-for-bit on every weight — which is
//! what lets CI diff a daemon response against `--oneshot` output with
//! `cmp`.
//!
//! The recipe intentionally mirrors the `throughput` bench: seeded
//! knowledge base → serving-realistic WikiTable corpus → WordPiece →
//! paper-shaped `mini` encoder.

use doduo_core::{Annotator, AnnotatorBundle, DoduoConfig, DoduoModel};
use doduo_datagen::{generate_wikitable, KbConfig, KnowledgeBase, WikiTableConfig};
use doduo_table::{SerializeConfig, Table};
use doduo_tensor::ParamStore;
use doduo_tokenizer::{TrainConfig as TokTrain, WordPiece};
use doduo_transformer::EncoderConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// A bootstrapped serving world: the model bundle plus the corpus it was
/// shaped on (handy as ready-made request payloads).
pub struct SyntheticWorld {
    /// Model + tokenizer + vocabularies, ready to serve or checkpoint
    /// (`Arc` so tests hand it straight to [`crate::server::Server::run`]
    /// and the lifecycle layer).
    pub bundle: Arc<AnnotatorBundle>,
    /// The generated tables (64 at quick scale, 192 at full).
    pub tables: Vec<Table>,
}

impl SyntheticWorld {
    /// A borrowed annotator over the world's bundle.
    pub fn annotator(&self) -> Annotator<'_> {
        self.bundle.annotator()
    }
}

/// Builds the deterministic serving world for `scale` (`true` = quick) and
/// `seed`. Same inputs ⇒ bit-identical weights, tokenizer, and tables,
/// across processes.
pub fn synthetic_world(quick: bool, seed: u64) -> SyntheticWorld {
    let kb = KnowledgeBase::generate(&KbConfig::default(), seed);
    let n_tables = if quick { 64 } else { 192 };
    // Serving-realistic tables: enough rows that sequences approach the
    // paper's 32-token column budget.
    let ds = generate_wikitable(&kb, &WikiTableConfig { n_tables, min_rows: 4, max_rows: 8, seed });
    let corpus: Vec<String> = ds
        .tables
        .iter()
        .flat_map(|t| t.table.columns.iter())
        .flat_map(|c| c.values.iter().cloned())
        .collect();
    let tokenizer = WordPiece::train(
        corpus.iter().map(String::as_str),
        &TokTrain { merges: 400, min_pair_count: 2, max_word_len: 24 },
    );
    let enc = EncoderConfig::mini(tokenizer.vocab_size());
    let max_seq = enc.max_seq;
    let cfg = DoduoConfig::new(enc, ds.type_vocab.len(), ds.rel_vocab.len().max(1), true)
        .with_serialize(SerializeConfig::new(32, max_seq));
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let model = DoduoModel::new(&mut store, cfg, "m", &mut rng);
    let tables: Vec<Table> = ds.tables.into_iter().map(|t| t.table).collect();
    let bundle =
        Arc::new(AnnotatorBundle::new(store, model, tokenizer, ds.type_vocab, ds.rel_vocab, "m"));
    SyntheticWorld { bundle, tables }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_world_is_deterministic() {
        let a = synthetic_world(true, 7);
        let b = synthetic_world(true, 7);
        assert_eq!(a.tables.len(), 64);
        assert_eq!(a.tables, b.tables);
        let t = &a.tables[0];
        let x = a.annotator().annotate(t);
        let y = b.annotator().annotate(t);
        for (p, q) in x.types.iter().zip(&y.types) {
            for ((n1, s1), (n2, s2)) in p.labels.iter().zip(&q.labels) {
                assert_eq!(n1, n2);
                assert_eq!(s1.to_bits(), s2.to_bits());
            }
        }
    }

    #[test]
    fn synthetic_bundle_round_trips_through_checkpoint() {
        let w = synthetic_world(true, 42);
        let blob = w.bundle.save();
        let loaded = AnnotatorBundle::load(&blob).expect("bundle loads");
        let t = &w.tables[3];
        let a = w.annotator().annotate(t);
        let b = loaded.annotator().annotate(t);
        assert_eq!(a.types.len(), b.types.len());
        for (p, q) in a.types.iter().zip(&b.types) {
            for ((n1, s1), (n2, s2)) in p.labels.iter().zip(&q.labels) {
                assert_eq!(n1, n2);
                assert_eq!(
                    s1.to_bits(),
                    s2.to_bits(),
                    "checkpointed daemon must serve bitwise-identical"
                );
            }
        }
    }
}
