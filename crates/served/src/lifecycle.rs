//! The live model lifecycle: versioned engines, atomic blue/green
//! hot-swap, and the feedback journal behind `--feedback-finetune`.
//!
//! A running daemon serves exactly one *current* engine at a time, held in
//! an [`EngineSlot`]. `POST /v1/model` uploads a new [`AnnotatorBundle`]
//! checkpoint blob; the slot CRC-verifies and strict-loads it, builds a
//! fresh [`BatchAnnotator`] **off the hot path** (no request ever waits on
//! an engine build), and then swaps one `Arc` pointer. Every request
//! captures its engine `Arc` at serialize time, so the swap is atomic at
//! request granularity: in-flight micro-batches finish on the model they
//! started with, and each response carries the `x-model-version` label of
//! the engine that actually produced its bytes. The quantized twin is not
//! special-cased — [`BatchAnnotator::with_config`] rebuilds the int8 model
//! from the new bundle whenever `BatchConfig::quant` is set, so both tiers
//! swap together.
//!
//! Version labels are `"{version}-{crc:08x}"`: a monotonically increasing
//! swap ordinal plus the checkpoint payload CRC32 from the blob header
//! (the same checksum [`AnnotatorBundle::load`] verifies). Two uploads of
//! the same bytes get distinct ordinals but share the CRC half, which is
//! what lets a test (or the CI smoke) match a response to the exact
//! checkpoint bytes that produced it.
//!
//! `POST /v1/feedback` accumulates corrected labels into a bounded
//! [`FeedbackJournal`]. When the daemon runs with `--feedback-finetune`, a
//! background thread folds accumulated entries into a short fine-tune of a
//! *copy* of the current bundle (via a save/load round-trip — training
//! never mutates the serving weights) and self-swaps the result through
//! the same slot, closing the serve → correct → retrain → serve loop.

use doduo_core::{blob_crc, trainer, AnnotatorBundle, Task, TrainConfig};
use doduo_serve::{BatchAnnotator, BatchConfig};
use doduo_table::{AnnotatedTable, Dataset, Table};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Feedback entries retained before the oldest are evicted.
pub const FEEDBACK_JOURNAL_CAP: usize = 1024;
/// Journal entries that trigger one background fine-tune cycle.
pub const FINETUNE_BATCH: usize = 8;

/// One serving engine pinned to the model version it was built from.
///
/// Immutable after construction: the dispatcher and every handler share it
/// by `Arc`, and a hot-swap replaces the whole value rather than mutating
/// it.
pub struct VersionedEngine {
    engine: BatchAnnotator,
    version: u64,
    crc: u32,
}

impl VersionedEngine {
    /// The batched annotation engine.
    pub fn engine(&self) -> &BatchAnnotator {
        &self.engine
    }

    /// Monotonic swap ordinal (1 for the boot model).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// CRC32 of the checkpoint payload this engine was built from.
    pub fn crc(&self) -> u32 {
        self.crc
    }

    /// The wire label carried in `x-model-version` headers and `/v1/stats`:
    /// `"{version}-{crc:08x}"`.
    pub fn label(&self) -> String {
        format!("{}-{:08x}", self.version, self.crc)
    }
}

/// Why a model upload was rejected.
#[derive(Debug)]
pub enum SwapError {
    /// The blob failed strict checkpoint validation (bad magic, truncated,
    /// checksum mismatch, malformed sections).
    BadBundle(String),
}

impl std::fmt::Display for SwapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwapError::BadBundle(msg) => write!(f, "{msg}"),
        }
    }
}

/// The daemon's single mutable model pointer: the blue/green swap point.
///
/// `current()` is a mutex-guarded `Arc` clone (nanoseconds, never held
/// across work); `swap_blob` does all expensive work — CRC verification,
/// deserialization, engine construction, int8 requantization — before
/// taking the lock.
pub struct EngineSlot {
    current: Mutex<Arc<VersionedEngine>>,
    /// Ordinal handed to the next successful swap.
    next_version: AtomicU64,
    /// Completed swaps (the boot engine is not counted).
    swaps: AtomicU64,
    /// Engine knobs applied to every rebuilt engine (including `quant`).
    engine_cfg: BatchConfig,
}

impl EngineSlot {
    /// Builds the boot engine (version 1) around `bundle`. The boot CRC is
    /// computed by serializing the bundle once, so a daemon started from
    /// `--synthetic` and one started from the equivalent checkpoint file
    /// report the same label.
    pub fn new(bundle: Arc<AnnotatorBundle>, engine_cfg: BatchConfig) -> EngineSlot {
        let crc = blob_crc(&bundle.save()).expect("saved bundle has a checkpoint header");
        let engine = BatchAnnotator::with_config(bundle, engine_cfg.clone());
        EngineSlot {
            current: Mutex::new(Arc::new(VersionedEngine { engine, version: 1, crc })),
            next_version: AtomicU64::new(2),
            swaps: AtomicU64::new(0),
            engine_cfg,
        }
    }

    /// The engine serving right now. Callers capture the `Arc` once per
    /// request (or stream, or fine-tune cycle) and use it throughout, so a
    /// concurrent swap never changes the model under them.
    pub fn current(&self) -> Arc<VersionedEngine> {
        Arc::clone(&self.current.lock().expect("engine slot lock"))
    }

    /// Completed hot-swaps since boot.
    pub fn swaps(&self) -> u64 {
        self.swaps.load(Ordering::SeqCst)
    }

    /// Strict-loads a checkpoint blob, builds the replacement engine off
    /// the hot path, and swaps it in. Returns the new engine. In-flight
    /// batches keep the `Arc` they captured and finish on the old model.
    pub fn swap_blob(&self, blob: &[u8]) -> Result<Arc<VersionedEngine>, SwapError> {
        let crc = blob_crc(blob)
            .ok_or_else(|| SwapError::BadBundle("not a checkpoint blob (bad magic)".into()))?;
        let bundle =
            AnnotatorBundle::load(blob).map_err(|e| SwapError::BadBundle(format!("{e:?}")))?;
        Ok(self.install(Arc::new(bundle), crc))
    }

    /// Installs an already-validated bundle whose payload CRC is `crc`
    /// (the fine-tune loop, which just serialized the bundle itself).
    pub fn install(&self, bundle: Arc<AnnotatorBundle>, crc: u32) -> Arc<VersionedEngine> {
        // All expensive work (engine build, quantization) happens here,
        // before the lock.
        let engine = BatchAnnotator::with_config(bundle, self.engine_cfg.clone());
        let version = self.next_version.fetch_add(1, Ordering::SeqCst);
        let fresh = Arc::new(VersionedEngine { engine, version, crc });
        *self.current.lock().expect("engine slot lock") = Arc::clone(&fresh);
        self.swaps.fetch_add(1, Ordering::SeqCst);
        fresh
    }
}

/// One corrected-label observation: a table plus per-column type labels.
#[derive(Clone, Debug)]
pub struct FeedbackEntry {
    /// The table the labels apply to.
    pub table: Table,
    /// Per-column corrected type labels (names from the serving vocab).
    pub types: Vec<Vec<String>>,
}

/// A bounded journal of corrected labels awaiting fine-tuning.
///
/// Always accumulates (feedback is accepted even when `--feedback-finetune`
/// is off — the journal is also an audit buffer); when full, the oldest
/// entries are evicted and counted in `dropped`.
pub struct FeedbackJournal {
    entries: Mutex<Vec<FeedbackEntry>>,
    cap: usize,
    accepted: AtomicU64,
    dropped: AtomicU64,
    /// Completed fine-tune + self-swap cycles.
    finetunes: AtomicU64,
}

impl FeedbackJournal {
    /// An empty journal bounded at `cap` entries.
    pub fn new(cap: usize) -> FeedbackJournal {
        FeedbackJournal {
            entries: Mutex::new(Vec::new()),
            cap,
            accepted: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            finetunes: AtomicU64::new(0),
        }
    }

    /// Appends one entry, evicting the oldest when the journal is full.
    /// Returns the pending count after the push.
    pub fn push(&self, entry: FeedbackEntry) -> usize {
        let mut entries = self.entries.lock().expect("journal lock");
        if entries.len() >= self.cap {
            entries.remove(0);
            self.dropped.fetch_add(1, Ordering::SeqCst);
        }
        entries.push(entry);
        self.accepted.fetch_add(1, Ordering::SeqCst);
        entries.len()
    }

    /// Entries currently awaiting a fine-tune cycle.
    pub fn pending(&self) -> usize {
        self.entries.lock().expect("journal lock").len()
    }

    /// Takes every pending entry if at least `min` have accumulated;
    /// otherwise leaves the journal untouched and returns an empty vec.
    pub fn drain_if_at_least(&self, min: usize) -> Vec<FeedbackEntry> {
        let mut entries = self.entries.lock().expect("journal lock");
        if entries.len() < min {
            return Vec::new();
        }
        std::mem::take(&mut *entries)
    }

    /// Total entries ever accepted.
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::SeqCst)
    }

    /// Entries evicted unprocessed because the journal was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::SeqCst)
    }

    /// Completed fine-tune + self-swap cycles.
    pub fn finetunes(&self) -> u64 {
        self.finetunes.load(Ordering::SeqCst)
    }

    /// Records one completed fine-tune cycle.
    pub fn record_finetune(&self) {
        self.finetunes.fetch_add(1, Ordering::SeqCst);
    }
}

/// Everything the serving stack shares about the live model: the swap slot
/// plus the feedback journal. One per daemon, threaded through every
/// topology in place of the old fixed `&BatchAnnotator`.
pub struct Lifecycle {
    slot: EngineSlot,
    journal: FeedbackJournal,
}

impl Lifecycle {
    /// Boots the lifecycle around the initial bundle.
    pub fn new(bundle: Arc<AnnotatorBundle>, engine_cfg: BatchConfig) -> Lifecycle {
        Lifecycle {
            slot: EngineSlot::new(bundle, engine_cfg),
            journal: FeedbackJournal::new(FEEDBACK_JOURNAL_CAP),
        }
    }

    /// The swap slot.
    pub fn slot(&self) -> &EngineSlot {
        &self.slot
    }

    /// The feedback journal.
    pub fn journal(&self) -> &FeedbackJournal {
        &self.journal
    }

    /// Shorthand for [`EngineSlot::current`].
    pub fn current(&self) -> Arc<VersionedEngine> {
        self.slot.current()
    }
}

/// Runs one fine-tune cycle over `entries` against (a copy of) `base`'s
/// bundle: short column-type training on the corrected labels, then a
/// save/serialize to fresh checkpoint bytes. Returns the retrained bundle
/// plus its payload CRC, ready for [`EngineSlot::install`]. Errors are
/// returned as strings (a failed cycle must never take the daemon down).
pub fn finetune_bundle(
    base: &VersionedEngine,
    entries: &[FeedbackEntry],
) -> Result<(Arc<AnnotatorBundle>, u32), String> {
    let bundle = base.engine().bundle();
    // Train on a deep copy: serving weights stay immutable, and a failed
    // or interrupted cycle leaves the current engine untouched.
    let blob = bundle.save();
    let mut fresh = AnnotatorBundle::load(&blob).map_err(|e| format!("{e:?}"))?;

    // Fold the corrections into an annotated dataset over the serving
    // vocabularies. Labels were validated at journal time, but the vocab
    // may have been swapped since — skip entries that no longer resolve.
    let mut tables: Vec<AnnotatedTable> = Vec::new();
    for entry in entries {
        let col_types: Option<Vec<Vec<_>>> = entry
            .types
            .iter()
            .map(|labels| labels.iter().map(|l| fresh.type_vocab.id(l)).collect())
            .collect();
        match col_types {
            Some(ct) if ct.len() == entry.table.n_cols() => {
                tables.push(AnnotatedTable {
                    table: entry.table.clone(),
                    col_types: ct,
                    relations: Vec::new(),
                });
            }
            _ => continue,
        }
    }
    if tables.is_empty() {
        return Err("no usable feedback entries".into());
    }
    let ds = Dataset {
        tables,
        type_vocab: fresh.type_vocab.clone(),
        rel_vocab: fresh.rel_vocab.clone(),
    };
    let prepared = trainer::prepare(&fresh.model, &ds, &fresh.tokenizer);
    let cfg = TrainConfig {
        epochs: 1,
        batch_size: 8,
        lr: 1e-3,
        threads: 1,
        seed: 7,
        select_best: false,
        ..TrainConfig::default()
    };
    trainer::train(&fresh.model, &mut fresh.store, &prepared, &prepared, &[Task::ColumnType], &cfg);
    let blob = fresh.save();
    let crc = blob_crc(&blob).ok_or("retrained bundle failed to serialize")?;
    Ok((Arc::new(fresh), crc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bootstrap::synthetic_world;

    #[test]
    fn slot_swaps_are_versioned_and_crc_labelled() {
        let a = synthetic_world(true, 42);
        let b = synthetic_world(true, 99);
        let slot = EngineSlot::new(Arc::clone(&a.bundle), BatchConfig::default());
        let boot = slot.current();
        assert_eq!(boot.version(), 1);
        assert_eq!(slot.swaps(), 0);
        let blob_b = b.bundle.save();
        let crc_b = blob_crc(&blob_b).expect("crc");
        let swapped = slot.swap_blob(&blob_b).expect("valid blob swaps");
        assert_eq!(swapped.version(), 2);
        assert_eq!(swapped.crc(), crc_b);
        assert_eq!(swapped.label(), format!("2-{crc_b:08x}"));
        assert_eq!(slot.swaps(), 1);
        assert_eq!(slot.current().label(), swapped.label());
        // The captured boot Arc still serves the old model (blue/green).
        assert_ne!(boot.crc(), swapped.crc());
    }

    #[test]
    fn corrupt_blob_is_rejected_and_slot_unchanged() {
        let w = synthetic_world(true, 42);
        let slot = EngineSlot::new(Arc::clone(&w.bundle), BatchConfig::default());
        let before = slot.current().label();
        let mut blob = w.bundle.save();
        let mid = blob.len() / 2;
        blob[mid] ^= 0xff;
        assert!(matches!(slot.swap_blob(&blob), Err(SwapError::BadBundle(_))));
        assert!(slot.swap_blob(b"junk").is_err());
        assert_eq!(slot.current().label(), before, "failed swap leaves the slot untouched");
        assert_eq!(slot.swaps(), 0);
    }

    #[test]
    fn journal_is_bounded_and_counts_evictions() {
        let j = FeedbackJournal::new(3);
        let entry = |id: &str| FeedbackEntry {
            table: Table { id: id.into(), columns: Vec::new() },
            types: Vec::new(),
        };
        for i in 0..5 {
            j.push(entry(&format!("t{i}")));
        }
        assert_eq!(j.pending(), 3);
        assert_eq!(j.accepted(), 5);
        assert_eq!(j.dropped(), 2);
        assert!(j.drain_if_at_least(4).is_empty(), "below threshold leaves entries");
        assert_eq!(j.pending(), 3);
        let drained = j.drain_if_at_least(3);
        assert_eq!(drained.len(), 3);
        assert_eq!(drained[0].table.id, "t2", "oldest entries were the evicted ones");
        assert_eq!(j.pending(), 0);
    }

    #[test]
    fn finetune_produces_an_installable_bundle() {
        let w = synthetic_world(true, 42);
        let lc = Lifecycle::new(Arc::clone(&w.bundle), BatchConfig::default());
        let base = lc.current();
        let label = w.bundle.type_vocab.name(0).to_string();
        let entries: Vec<FeedbackEntry> = w.tables[..4]
            .iter()
            .map(|t| FeedbackEntry {
                table: t.clone(),
                types: t.columns.iter().map(|_| vec![label.clone()]).collect(),
            })
            .collect();
        let (bundle, crc) = finetune_bundle(&base, &entries).expect("finetune runs");
        let engine = lc.slot().install(bundle, crc);
        assert_eq!(engine.version(), 2);
        assert_eq!(lc.slot().swaps(), 1);
        assert_eq!(lc.current().label(), engine.label());
    }
}
