//! The daemon: a readiness-driven connection front end feeding a single
//! dispatcher thread that drains the batching queue into the batched
//! annotation engine.
//!
//! ## Thread topology (epoll reactor, the default)
//!
//! ```text
//! reactor × 1 (caller's thread, epoll)   owns the listener and every
//!   │        connection; parses requests sans-IO as bytes arrive; quick
//!   │        GET endpoints answered inline; /annotate handed off
//!   ├── request worker × W   pop a parsed request → decode tables →
//!   │        serialize (cache) → push job → block on reply channel →
//!   │        completion (eventfd) wakes the reactor to write
//!   └── dispatcher × 1       wait for budget/deadline → flatten jobs
//!            → annotate_groups_each (fans micro-batches across engine
//!              threads) → route each table's annotation back as its
//!              micro-batch completes (streams get per-table sends)
//! ```
//!
//! Workers never block on sockets; the reactor never blocks on the
//! engine. `--topology pool` keeps the previous fixed worker pool
//! (readiness probes + requeueing of parked connections) and `workers: 0`
//! the pre-pool thread-per-connection mode — both as A/B baselines for
//! `serve_load`. All three topologies parse the same HTTP grammar and
//! dispatch through the same [`Handler`] route core, so responses are
//! byte-identical across them.
//!
//! Workers do the per-request work (parsing, tokenization through the
//! LRU cache) so the dispatcher's serial section is just the packed forward
//! passes. All threads are scoped: [`Server::run`] returns only after every
//! worker and the dispatcher have exited, so shutdown is a real barrier —
//! in-flight requests get answers, queued jobs get drained, and the process
//! can exit 0.
//!
//! ## Streaming
//!
//! `POST /annotate_stream` reads a chunked (or length-framed) body carrying
//! a whitespace-separated sequence of table JSON objects and writes back a
//! chunked NDJSON response: one annotation object per table, in input
//! order, each emitted as soon as its micro-batch flushes. Every result
//! line is byte-identical to the single-table `/annotate` (and offline
//! `--oneshot`) body for the same table. The handling worker multiplexes
//! reading, queue pushes (with backpressure), and result writes on one
//! thread using short read timeouts.
//!
//! ## Model lifecycle
//!
//! The engine is not fixed at startup: every request captures the current
//! [`VersionedEngine`] `Arc` when it is serialized, jobs carry it through
//! the queue, and the dispatcher partitions each flush by engine identity
//! — so `POST /v1/model` can blue/green-swap a new checkpoint in between
//! micro-batches while in-flight work finishes on the model it started
//! with. See [`crate::lifecycle`].
//!
//! ## Shutdown
//!
//! `POST /shutdown` (or [`ServerHandle::shutdown`]) sets one atomic flag.
//! The accept loop stops accepting; workers notice at their next queue pop
//! (or after the in-flight response) and exit; the dispatcher drains what
//! is queued, answers it, and exits.

use crate::chaos::{ChaosConfig, ChaosPlan, ChaosState};
use crate::handler::{canonical_path, write_http_response, Handler, HttpRequest, HttpResponse};
use crate::http::{
    read_body, read_head, write_chunk, write_chunked_head, write_continue, write_error,
    write_last_chunk, write_unavailable, BodyFraming, BodyReader, Head, Prefixed, ReadError,
    MAX_BODY_BYTES,
};
use crate::json::{
    annotation_to_json, annotations_response, table_from_json, Json, StreamSplitter,
};
use crate::lifecycle::{
    finetune_bundle, FeedbackEntry, Lifecycle, VersionedEngine, FINETUNE_BATCH,
};
use crate::queue::{BatchPolicy, PushRejected, SharedBatcher};
use crate::reactor::{Dispatch, Driver, Reactor, ReactorConfig, Router, Ticket};
use crate::stats::{ModelStatus, ServerStats};
use doduo_core::{AnnotatorBundle, TableAnnotation};
use doduo_serve::{BatchAnnotator, BatchConfig};
use doduo_table::{SerializedTable, Table};
use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Close a parked keep-alive connection after this much idle time.
const CONN_IDLE_TIMEOUT: Duration = Duration::from_secs(75);
/// Read timeout while multiplexing a stream (low so queued results flush
/// promptly even when the client pauses between tables).
const STREAM_POLL: Duration = Duration::from_millis(20);
/// Parsed-but-not-yet-queued tables a stream may buffer (read-ahead cap).
const STREAM_WINDOW: usize = 64;
/// `Retry-After` hint (seconds) on backpressure 503s.
const RETRY_AFTER_SECS: u64 = 1;

/// How connections are multiplexed onto threads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Topology {
    /// One epoll reactor thread owns every connection; worker threads see
    /// only parsed requests. The default.
    Epoll,
    /// Fixed worker pool with readiness probes and connection requeueing
    /// (the pre-reactor default, kept as an A/B baseline).
    Pool,
    /// One thread per connection (the oldest baseline; also selected by
    /// `workers: 0`).
    ThreadPerConn,
}

impl Topology {
    /// The CLI/bench name (`epoll`, `pool`, `thread_per_conn`).
    pub fn name(self) -> &'static str {
        match self {
            Topology::Epoll => "epoll",
            Topology::Pool => "pool",
            Topology::ThreadPerConn => "thread_per_conn",
        }
    }
}

impl std::str::FromStr for Topology {
    type Err = String;
    fn from_str(s: &str) -> Result<Topology, String> {
        match s {
            "epoll" => Ok(Topology::Epoll),
            "pool" => Ok(Topology::Pool),
            "thread_per_conn" => Ok(Topology::ThreadPerConn),
            other => Err(format!("unknown topology {other:?} (epoll, pool, thread_per_conn)")),
        }
    }
}

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (port 0 picks a free port).
    pub addr: String,
    /// Connection multiplexing strategy. `workers: 0` overrides this to
    /// [`Topology::ThreadPerConn`] for backward compatibility.
    pub topology: Topology,
    /// Dynamic micro-batching policy.
    pub policy: BatchPolicy,
    /// Engine knobs (micro-batch cuts, worker threads, tokenization cache).
    pub engine: BatchConfig,
    /// Socket read timeout; also the granularity at which idle
    /// thread-per-connection handlers notice shutdown.
    pub read_timeout: Duration,
    /// Maximum concurrent connections; beyond it new ones get 503+close.
    pub max_connections: usize,
    /// Connection worker threads. `0` selects the legacy
    /// thread-per-connection topology (one scoped thread per accepted
    /// socket) instead of the pool.
    pub workers: usize,
    /// Whether to honor HTTP keep-alive. `false` forces `connection:
    /// close` after every response — the pre-keep-alive behavior, kept as
    /// a benchmark baseline.
    pub keep_alive: bool,
    /// Wall-clock bound on reading one request (head + body) once its
    /// first byte has arrived; a slower client gets 408 and is closed so
    /// it cannot pin a worker.
    pub request_deadline: Duration,
    /// Abort an `/annotate_stream` connection after this long without
    /// input progress or pending results.
    pub stream_idle_timeout: Duration,
    /// Deterministic fault injection (`--chaos`), for exercising the
    /// replicated-serving failure paths. `None` in production.
    ///
    /// **Crash faults call `std::process::exit`** — only enable
    /// `crash_after` on a daemon running in its own process (the
    /// `doduo-balance` chaos tests), never on an in-process test server.
    pub chaos: Option<ChaosConfig>,
    /// Run the background feedback fine-tune loop (`--feedback-finetune`):
    /// fold accumulated `POST /v1/feedback` corrections into a short
    /// column-type fine-tune of a copy of the serving model and hot-swap
    /// the result in. Off by default — the journal still accumulates, but
    /// nothing retrains or self-swaps.
    pub feedback_finetune: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7878".into(),
            topology: Topology::Epoll,
            policy: BatchPolicy::default(),
            engine: BatchConfig::default(),
            read_timeout: Duration::from_millis(200),
            max_connections: 1024,
            workers: 16,
            keep_alive: true,
            request_deadline: Duration::from_secs(10),
            stream_idle_timeout: Duration::from_secs(30),
            chaos: None,
            feedback_finetune: false,
        }
    }
}

impl ServeConfig {
    /// The topology that will actually run: `workers: 0` has always meant
    /// thread-per-connection and still does, whatever `topology` says.
    pub fn effective_topology(&self) -> Topology {
        if self.workers == 0 {
            Topology::ThreadPerConn
        } else {
            self.topology
        }
    }
}

/// How a queued job's annotations are delivered.
enum Reply {
    /// One send with every table of the request, in request order
    /// (`/annotate` on a blocking worker thread).
    Batch(mpsc::Sender<Vec<TableAnnotation>>),
    /// One `(stream_index, annotation)` send for this job's single table,
    /// fired as soon as its micro-batch completes (`/annotate_stream`).
    Stream {
        /// The table's position in its stream (for in-order emission).
        index: usize,
        tx: mpsc::Sender<(usize, TableAnnotation)>,
    },
    /// The rendered 200 response routed straight back to the epoll
    /// reactor when the job's last table completes (`/annotate` under the
    /// epoll topology — the submitting worker never blocks, so in-flight
    /// requests are bounded by connections, not worker count).
    Reactor {
        /// The reactor connection awaiting this response.
        ticket: Ticket,
        /// The reactor's completion queue.
        router: Arc<Router>,
        /// Echo the client's `{"tables": [...]}` framing in the response.
        wrapped: bool,
        /// Request receive time, for the latency histogram on completion.
        t0: Instant,
        /// `(tables, seqs, tokens)` recorded with the completion.
        counts: (u64, u64, u64),
        /// The request arrived on a deprecated unprefixed route; the
        /// dispatcher-rendered response carries the `Deprecation` header.
        legacy: bool,
    },
}

/// One queued annotation job: serialized tables, the engine captured when
/// the request was serialized (hot-swap atomicity: the job runs on exactly
/// this engine, whatever swaps land meanwhile), and the delivery route.
struct Job {
    groups: Vec<Vec<SerializedTable>>,
    engine: Arc<VersionedEngine>,
    reply: Reply,
}

/// One pooled connection between requests.
struct Conn {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    /// Requests already served on this connection (keep-alive reuse).
    requests: u64,
    /// When the connection last finished a request (idle-timeout clock).
    idle_since: Instant,
    /// Cached `O_NONBLOCK` state, so parked connections keep the flag set
    /// across probes instead of paying two `fcntl`s per probe (the socket
    /// flips back to blocking only when a request is about to be parsed).
    nonblocking: bool,
}

/// What a readiness probe of a parked connection found.
enum Readiness {
    /// Bytes are waiting (buffered or on the socket) — parse a request.
    Ready,
    /// No bytes; park it again.
    Idle,
    /// Peer closed (or the socket errored).
    Gone,
}

impl Conn {
    fn new(stream: TcpStream) -> std::io::Result<Conn> {
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Conn { stream, reader, requests: 0, idle_since: Instant::now(), nonblocking: false })
    }

    /// Flips `O_NONBLOCK` only when the cached state disagrees.
    fn set_nonblocking(&mut self, nonblocking: bool) -> std::io::Result<()> {
        if self.nonblocking != nonblocking {
            self.stream.set_nonblocking(nonblocking)?;
            self.nonblocking = nonblocking;
        }
        Ok(())
    }

    /// Non-blocking readiness probe: buffered bytes count as ready; else a
    /// zero-timeout peek distinguishes waiting data / idle / closed. A
    /// parked connection stays in nonblocking mode between probes — the
    /// flag flips back to blocking only on `Ready`, when a request parse
    /// is about to commit, so each idle probe costs one `peek` instead of
    /// two `fcntl`s plus a `peek`.
    fn readiness(&mut self) -> Readiness {
        if !self.reader.buffer().is_empty() {
            if self.set_nonblocking(false).is_err() {
                return Readiness::Gone;
            }
            return Readiness::Ready;
        }
        if self.set_nonblocking(true).is_err() {
            return Readiness::Gone;
        }
        let mut probe = [0u8; 1];
        match self.stream.peek(&mut probe) {
            Ok(0) => Readiness::Gone,
            Ok(_) => {
                if self.set_nonblocking(false).is_err() {
                    return Readiness::Gone;
                }
                Readiness::Ready
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                Readiness::Idle
            }
            Err(_) => Readiness::Gone,
        }
    }
}

/// The connection queue the accept loop feeds and workers drain.
struct ConnQueue {
    q: Mutex<VecDeque<Conn>>,
    wake: Condvar,
}

impl ConnQueue {
    fn new() -> ConnQueue {
        ConnQueue { q: Mutex::new(VecDeque::new()), wake: Condvar::new() }
    }

    fn push(&self, conn: Conn) {
        self.q.lock().expect("conn queue lock").push_back(conn);
        self.wake.notify_one();
    }

    fn pop(&self, timeout: Duration) -> Option<Conn> {
        let mut guard = self.q.lock().expect("conn queue lock");
        if let Some(c) = guard.pop_front() {
            return Some(c);
        }
        let (mut guard, _) = self.wake.wait_timeout(guard, timeout).expect("conn queue lock");
        guard.pop_front()
    }

    fn len(&self) -> usize {
        self.q.lock().expect("conn queue lock").len()
    }

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn clear(&self) {
        self.q.lock().expect("conn queue lock").clear();
    }

    fn notify_all(&self) {
        self.wake.notify_all();
    }
}

struct Shared {
    shutdown: AtomicBool,
    /// True once the engine is built and the daemon is accepting work —
    /// the readiness half of the liveness/readiness split (`/readyz`).
    ready: AtomicBool,
    connections: AtomicUsize,
    queue: SharedBatcher<Job>,
    conns: ConnQueue,
    stats: ServerStats,
    started: Instant,
    chaos: Option<ChaosState>,
    /// The epoll reactor's completion queue, installed while that
    /// topology runs so shutdown can wake `epoll_wait` immediately.
    waker: Mutex<Option<Arc<Router>>>,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Accounting for a connection leaving the daemon (any path).
    fn end_conn(&self) {
        self.connections.fetch_sub(1, Ordering::SeqCst);
    }

    /// Close-before-flag shutdown ordering (see `ServerHandle::shutdown`).
    fn request_shutdown(&self) {
        self.queue.close();
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue.notify();
        self.conns.notify_all();
        if let Some(router) = self.waker.lock().expect("waker lock").as_ref() {
            router.nudge();
        }
    }
}

/// A clonable remote control for a running server (shutdown + stats).
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Requests graceful shutdown; [`Server::run`] returns once all threads
    /// finish.
    pub fn shutdown(&self) {
        // Order matters: close the queue *before* raising the flag the
        // dispatcher polls, so every job that was accepted is also drained.
        self.shared.request_shutdown();
    }

    /// True once shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down()
    }

    /// Aggregate serving counters.
    pub fn stats(&self) -> &ServerStats {
        &self.shared.stats
    }
}

/// A bound (but not yet serving) daemon.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    cfg: ServeConfig,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener. Serving starts with [`Server::run`].
    pub fn bind(cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            shutdown: AtomicBool::new(false),
            ready: AtomicBool::new(false),
            connections: AtomicUsize::new(0),
            queue: SharedBatcher::new(cfg.policy.clone()),
            conns: ConnQueue::new(),
            stats: ServerStats::with_topology(cfg.effective_topology().name(), cfg.workers),
            started: Instant::now(),
            chaos: cfg.chaos.clone().map(ChaosState::new),
            waker: Mutex::new(None),
        });
        Ok(Server { listener, addr, cfg, shared })
    }

    /// The actually-bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A remote control usable from other threads.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { shared: Arc::clone(&self.shared) }
    }

    /// Accepts one pending socket, applies socket options and the
    /// connection cap, and returns it ready for serving.
    fn admit(&self) -> Option<TcpStream> {
        let shared = &self.shared;
        match self.listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nonblocking(false).is_err()
                    || stream.set_read_timeout(Some(self.cfg.read_timeout)).is_err()
                    || stream.set_write_timeout(Some(Duration::from_secs(30))).is_err()
                    || stream.set_nodelay(true).is_err()
                {
                    return None;
                }
                if shared.connections.load(Ordering::SeqCst) >= self.cfg.max_connections {
                    shared.stats.conns_rejected.fetch_add(1, Ordering::Relaxed);
                    let mut stream = stream;
                    let _ = write_unavailable(
                        &mut stream,
                        "overloaded",
                        "too many connections",
                        false,
                        RETRY_AFTER_SECS,
                    );
                    return None;
                }
                shared.connections.fetch_add(1, Ordering::SeqCst);
                shared.stats.conns_accepted.fetch_add(1, Ordering::Relaxed);
                Some(stream)
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
                None
            }
            Err(e) => {
                eprintln!("[served] accept error: {e}");
                std::thread::sleep(Duration::from_millis(50));
                None
            }
        }
    }

    /// Serves until shutdown. Blocks the calling thread; all worker threads
    /// are scoped inside, so when this returns the daemon is fully stopped.
    ///
    /// `bundle` becomes model version 1; `POST /v1/model` hot-swaps later
    /// versions in without touching this call.
    pub fn run(&self, bundle: Arc<AnnotatorBundle>) {
        let lifecycle = Lifecycle::new(bundle, self.cfg.engine.clone());
        self.listener.set_nonblocking(true).expect("nonblocking listener");
        // The engine exists and threads are about to serve: ready for
        // traffic. `/readyz` flips back to 503 once shutdown is requested.
        self.shared.ready.store(true, Ordering::SeqCst);
        let shared = &self.shared;
        let lifecycle = &lifecycle;
        let cfg = &self.cfg;
        std::thread::scope(|scope| {
            scope.spawn(move || dispatcher_loop(shared));
            if cfg.feedback_finetune {
                scope.spawn(move || finetune_loop(shared, lifecycle));
            }
            match cfg.effective_topology() {
                Topology::ThreadPerConn => {
                    // Legacy topology: one scoped thread per connection.
                    while !shared.shutting_down() {
                        if let Some(stream) = self.admit() {
                            scope.spawn(move || {
                                if let Ok(mut conn) = Conn::new(stream) {
                                    thread_per_conn_loop(&mut conn, shared, lifecycle, cfg);
                                }
                                shared.end_conn();
                            });
                        }
                    }
                }
                Topology::Pool => {
                    for w in 0..cfg.workers {
                        scope.spawn(move || worker_loop(shared, lifecycle, cfg, w));
                    }
                    while !shared.shutting_down() {
                        if let Some(stream) = self.admit() {
                            match Conn::new(stream) {
                                Ok(conn) => shared.conns.push(conn),
                                Err(_) => shared.end_conn(),
                            }
                        }
                    }
                }
                Topology::Epoll => {
                    let (work_tx, work_rx) = mpsc::channel::<Work>();
                    let work_rx = Arc::new(Mutex::new(work_rx));
                    let driver = EpollDriver {
                        listener: &self.listener,
                        shared,
                        lifecycle,
                        cfg,
                        work: work_tx,
                    };
                    let rcfg = ReactorConfig {
                        request_deadline: cfg.request_deadline,
                        idle_timeout: CONN_IDLE_TIMEOUT,
                        dispatch_timeout: Duration::from_secs(35),
                        write_timeout: Duration::from_secs(30),
                        read_grace: cfg.read_timeout,
                        ..ReactorConfig::default()
                    };
                    let mut reactor = Reactor::new(rcfg, driver).expect("epoll reactor setup");
                    reactor.set_listener(self.listener.as_raw_fd()).expect("register listener");
                    let router = reactor.router();
                    *shared.waker.lock().expect("waker lock") = Some(Arc::clone(&router));
                    for w in 0..cfg.workers {
                        let work_rx = Arc::clone(&work_rx);
                        let router = Arc::clone(&router);
                        scope.spawn(move || {
                            epoll_worker_loop(shared, lifecycle, cfg, &work_rx, &router, w)
                        });
                    }
                    if let Err(e) = reactor.run(&shared.shutdown, Duration::from_secs(5)) {
                        eprintln!("[served] reactor error: {e}");
                        shared.request_shutdown();
                    }
                    *shared.waker.lock().expect("waker lock") = None;
                }
            }
            shared.queue.notify();
            shared.conns.notify_all();
        });
        // Parked connections left in the queue at shutdown are closed now,
        // so a stopped daemon holds no sockets.
        self.shared.conns.clear();
    }
}

// ----------------------------------------------------------- epoll driver

/// Work items the reactor hands to the epoll topology's worker threads.
enum Work {
    /// A fully parsed request to answer through the [`Handler`] core.
    Request { ticket: Ticket, req: HttpRequest },
    /// A taken-over streaming connection to serve to completion.
    Stream { stream: TcpStream, head: Head, leftover: Vec<u8> },
}

/// The [`Driver`] wiring the reactor into the daemon: accept + admission
/// control, `/v1` routing, streaming takeover, and stats.
struct EpollDriver<'s> {
    listener: &'s TcpListener,
    shared: &'s Shared,
    lifecycle: &'s Lifecycle,
    cfg: &'s ServeConfig,
    work: mpsc::Sender<Work>,
}

impl<'s> Driver<TcpStream> for EpollDriver<'s> {
    fn accept(&self) -> std::io::Result<Option<TcpStream>> {
        match self.listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nodelay(true);
                if self.shared.connections.load(Ordering::SeqCst) >= self.cfg.max_connections {
                    self.shared.stats.conns_rejected.fetch_add(1, Ordering::Relaxed);
                    // Best-effort 503 on the still-blocking fresh socket.
                    let mut stream = stream;
                    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
                    let _ = write_unavailable(
                        &mut stream,
                        "overloaded",
                        "too many connections",
                        false,
                        RETRY_AFTER_SECS,
                    );
                    return Ok(None);
                }
                self.shared.connections.fetch_add(1, Ordering::SeqCst);
                self.shared.stats.conns_accepted.fetch_add(1, Ordering::Relaxed);
                Ok(Some(stream))
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => {
                eprintln!("[served] accept error: {e}");
                std::thread::sleep(Duration::from_millis(50));
                Ok(None)
            }
        }
    }

    fn wants_takeover(&self, head: &Head) -> bool {
        head.method == "POST" && canonical_path(&head.path) == "/annotate_stream"
    }

    fn take_over(&self, stream: TcpStream, head: Head, leftover: Vec<u8>, prior_requests: u64) {
        if prior_requests > 0 {
            self.shared.stats.keepalive_reused.fetch_add(1, Ordering::Relaxed);
        }
        if self.work.send(Work::Stream { stream, head, leftover }).is_err() {
            self.shared.end_conn();
        }
    }

    fn dispatch(&self, ticket: Ticket, req: HttpRequest, prior_requests: u64) -> Dispatch {
        if prior_requests > 0 {
            self.shared.stats.keepalive_reused.fetch_add(1, Ordering::Relaxed);
        }
        let keep_policy = self.cfg.keep_alive && !self.shared.shutting_down();
        let canon_is = |p: &str| canonical_path(&req.path) == p;
        if req.method == "POST" && canon_is("/annotate") {
            // The engine-bound route never blocks the reactor: tokenize
            // and push to the batching queue right here, and let the
            // dispatcher's engine callback route the finished response
            // back through the completion channel. Chaos runs are the
            // exception — injected stalls must block a worker thread, so
            // they take the queued blocking path.
            if self.shared.chaos.is_none() {
                let router = self.shared.waker.lock().expect("waker lock").clone();
                if let Some(router) = router {
                    // This fast path bypasses the Handler core, so the
                    // deprecated-alias accounting happens here.
                    let legacy = !req.path.starts_with("/v1");
                    if legacy {
                        self.shared.stats.legacy_route_hits.fetch_add(1, Ordering::Relaxed);
                    }
                    return match annotate_submit(
                        self.shared,
                        self.lifecycle,
                        &router,
                        ticket,
                        legacy,
                        &req.body,
                    ) {
                        None => Dispatch::Queued,
                        Some(resp) => {
                            let resp =
                                if legacy { resp.with_header("deprecation", "true") } else { resp };
                            Dispatch::Respond(apply_keep_policy(resp, keep_policy))
                        }
                    };
                }
            }
            match self.work.send(Work::Request { ticket, req }) {
                Ok(()) => Dispatch::Queued,
                Err(_) => Dispatch::Respond(apply_keep_policy(
                    HttpResponse::unavailable(
                        "shutting_down",
                        "server is shutting down",
                        RETRY_AFTER_SECS,
                    ),
                    keep_policy,
                )),
            }
        } else if req.method == "POST" && (canon_is("/model") || canon_is("/feedback")) {
            // Lifecycle routes run on worker threads: a model upload builds
            // a whole engine (deserialize, possibly requantize), far too
            // slow for the reactor thread that owns every connection.
            match self.work.send(Work::Request { ticket, req }) {
                Ok(()) => Dispatch::Queued,
                Err(_) => Dispatch::Respond(apply_keep_policy(
                    HttpResponse::unavailable(
                        "shutting_down",
                        "server is shutting down",
                        RETRY_AFTER_SECS,
                    ),
                    keep_policy,
                )),
            }
        } else {
            // Everything else is queue-free and answered inline.
            let handler =
                EngineHandler { shared: self.shared, lifecycle: self.lifecycle, cfg: self.cfg };
            Dispatch::Respond(handler.handle(&req))
        }
    }

    fn on_request_error(&self) {
        self.shared.stats.requests_failed.fetch_add(1, Ordering::Relaxed);
    }

    fn on_close(&self) {
        self.shared.end_conn();
    }
}

/// Forces `connection: close` on a response when keep-alive is disabled by
/// policy (config or shutdown) rather than by the client.
fn apply_keep_policy(resp: HttpResponse, keep_policy: bool) -> HttpResponse {
    if keep_policy {
        resp
    } else {
        resp.close()
    }
}

/// One epoll-topology worker: pops parsed requests (or taken-over
/// streams), runs the [`Handler`] core, and routes the response back to
/// the reactor. Never touches a socket except for streaming sessions,
/// which it owns end-to-end.
fn epoll_worker_loop(
    shared: &Shared,
    lifecycle: &Lifecycle,
    cfg: &ServeConfig,
    work_rx: &Mutex<mpsc::Receiver<Work>>,
    router: &Router,
    worker: usize,
) {
    loop {
        let work = {
            let rx = work_rx.lock().expect("work queue lock");
            rx.recv_timeout(Duration::from_millis(20))
        };
        match work {
            Ok(Work::Request { ticket, req }) => {
                shared.stats.record_worker(worker);
                let handler = EngineHandler { shared, lifecycle, cfg };
                router.complete(ticket, handler.handle(&req));
            }
            Ok(Work::Stream { stream, head, leftover }) => {
                shared.stats.record_worker(worker);
                serve_takeover_stream(stream, head, leftover, shared, lifecycle, cfg);
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if shared.shutting_down() {
                    return;
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Serves a streaming connection the reactor handed over: back to
/// blocking mode, replay the bytes the reactor already read, then run the
/// same multiplexed stream session the pool topology uses.
fn serve_takeover_stream(
    stream: TcpStream,
    head: Head,
    leftover: Vec<u8>,
    shared: &Shared,
    lifecycle: &Lifecycle,
    cfg: &ServeConfig,
) {
    let mut stream = stream;
    let ok = stream.set_nonblocking(false).is_ok()
        && stream.set_read_timeout(Some(cfg.read_timeout)).is_ok()
        && stream.set_write_timeout(Some(Duration::from_secs(30))).is_ok();
    if !ok {
        shared.end_conn();
        return;
    }
    let clone = match stream.try_clone() {
        Ok(c) => c,
        Err(_) => {
            shared.end_conn();
            return;
        }
    };
    let mut reader = BufReader::new(Prefixed::new(leftover, clone));
    let _ = stream_session(&mut stream, &mut reader, shared, lifecycle, cfg, &head);
    shared.end_conn();
}

// ------------------------------------------------------------- dispatcher

/// The dispatcher: waits until the queue policy releases a batch, runs the
/// packed forward passes, and routes each table's annotation back the
/// moment its micro-batch completes — streams get per-table sends,
/// `/annotate` jobs get one send when their last table finishes. Exits when
/// shutdown is set and the queue is drained.
///
/// Every job carries the engine it was serialized against, and the flush
/// is partitioned by engine identity (`Arc::ptr_eq`): a hot-swap landing
/// mid-flush means jobs from both sides of the swap share one batch, and
/// each partition runs on exactly the model its requests captured. That is
/// the swap-atomicity contract — no request is ever answered by a blend of
/// two models, and `x-model-version` always names the weights that
/// produced the bytes. Outside a swap there is exactly one partition and
/// the batching behavior is unchanged.
fn dispatcher_loop(shared: &Shared) {
    let stop = || shared.shutting_down();
    while let Some((mut jobs, reason)) = shared.queue.wait_for_batch(stop) {
        let counts: Vec<usize> = jobs.iter().map(|j| j.groups.len()).collect();
        // Group job indices by captured engine (at most two partitions in
        // practice — the models on either side of a swap).
        let mut partitions: Vec<(Arc<VersionedEngine>, Vec<usize>)> = Vec::new();
        for (ji, job) in jobs.iter().enumerate() {
            match partitions.iter_mut().find(|(e, _)| Arc::ptr_eq(e, &job.engine)) {
                Some((_, jis)) => jis.push(ji),
                None => partitions.push((Arc::clone(&job.engine), vec![ji])),
            }
        }
        let total_tables: usize = counts.iter().sum();
        shared.stats.record_batch(reason, total_tables as u64);

        // Per-`Batch`-job collectors: slots filled by whichever engine
        // thread finishes each table, one send when the count hits zero.
        struct Collect {
            slots: Mutex<Vec<Option<TableAnnotation>>>,
            left: AtomicUsize,
        }
        let collectors: Vec<Option<Collect>> = jobs
            .iter()
            .zip(&counts)
            .map(|(job, &n)| match &job.reply {
                Reply::Batch(_) | Reply::Reactor { .. } => Some(Collect {
                    slots: Mutex::new((0..n).map(|_| None).collect()),
                    left: AtomicUsize::new(n),
                }),
                Reply::Stream { .. } => None,
            })
            .collect();
        for (engine, jis) in &partitions {
            // Move (not clone) the serialized groups out of this
            // partition's jobs; record which (job, slot) each flattened
            // group routes back to.
            let mut flat: Vec<Vec<SerializedTable>> = Vec::new();
            let mut routes: Vec<(usize, usize)> = Vec::new();
            for &ji in jis {
                for (li, g) in jobs[ji].groups.drain(..).enumerate() {
                    routes.push((ji, li));
                    flat.push(g);
                }
            }
            let jobs = &jobs;
            let collectors = &collectors;
            let routes = &routes;
            engine.engine().annotate_groups_each(&flat, &|fi, ann| {
                let (ji, li) = routes[fi];
                match &jobs[ji].reply {
                    // A dead receiver means the handler gave up (client
                    // vanished); dropping its annotations is the right
                    // outcome.
                    Reply::Stream { index, tx } => {
                        let _ = tx.send((*index, ann));
                    }
                    Reply::Batch(tx) => {
                        let c = collectors[ji].as_ref().expect("collector exists for batch job");
                        c.slots.lock().expect("collector lock")[li] = Some(ann);
                        if c.left.fetch_sub(1, Ordering::AcqRel) == 1 {
                            let anns: Vec<TableAnnotation> = c
                                .slots
                                .lock()
                                .expect("collector lock")
                                .iter_mut()
                                .map(|s| s.take().expect("slot filled"))
                                .collect();
                            let _ = tx.send(anns);
                        }
                    }
                    // Epoll-topology jobs render and route here, on
                    // whichever engine thread finishes the last table — no
                    // worker is blocked waiting, and a stale ticket
                    // (connection reaped meanwhile) is dropped by the
                    // router's generation check.
                    Reply::Reactor { ticket, router, wrapped, t0, counts, legacy } => {
                        let c = collectors[ji].as_ref().expect("collector exists for reactor job");
                        c.slots.lock().expect("collector lock")[li] = Some(ann);
                        if c.left.fetch_sub(1, Ordering::AcqRel) == 1 {
                            let anns: Vec<TableAnnotation> = c
                                .slots
                                .lock()
                                .expect("collector lock")
                                .iter_mut()
                                .map(|s| s.take().expect("slot filled"))
                                .collect();
                            let (tables, seqs, tokens) = *counts;
                            shared.stats.record_request(t0.elapsed(), tables, seqs, tokens);
                            let body = annotations_response(&anns, *wrapped);
                            let mut resp = HttpResponse::json(200, body)
                                .with_header("x-model-version", &jobs[ji].engine.label());
                            if *legacy {
                                resp = resp.with_header("deprecation", "true");
                            }
                            router.complete(*ticket, resp);
                        }
                    }
                }
            });
        }
    }
}

/// The `--feedback-finetune` background loop: once enough corrected labels
/// accumulate, fold them into a short fine-tune of a copy of the current
/// model and hot-swap the result through the same slot `POST /v1/model`
/// uses. A failed cycle logs and drops that batch — it must never take the
/// daemon down or touch the serving weights.
fn finetune_loop(shared: &Shared, lifecycle: &Lifecycle) {
    while !shared.shutting_down() {
        let entries = lifecycle.journal().drain_if_at_least(FINETUNE_BATCH);
        if entries.is_empty() {
            std::thread::sleep(Duration::from_millis(100));
            continue;
        }
        let base = lifecycle.current();
        match finetune_bundle(&base, &entries) {
            Ok((bundle, crc)) => {
                let fresh = lifecycle.slot().install(bundle, crc);
                lifecycle.journal().record_finetune();
                eprintln!(
                    "[served] feedback fine-tune: {} entries folded; model {} -> {}",
                    entries.len(),
                    base.label(),
                    fresh.label()
                );
            }
            Err(msg) => eprintln!("[served] feedback fine-tune skipped: {msg}"),
        }
    }
}

// ---------------------------------------------------------------- workers

/// One pool worker: pop a connection, probe readiness, serve one request if
/// bytes are waiting, park it again otherwise. Backs off briefly when a
/// scan finds nothing but idle connections so an idle daemon doesn't spin.
fn worker_loop(shared: &Shared, lifecycle: &Lifecycle, cfg: &ServeConfig, worker: usize) {
    let mut idle_streak = 0usize;
    while !shared.shutting_down() {
        let Some(mut conn) = shared.conns.pop(Duration::from_millis(10)) else {
            idle_streak = 0;
            continue;
        };
        if shared.shutting_down() {
            shared.end_conn();
            return;
        }
        match conn.readiness() {
            Readiness::Ready => {
                idle_streak = 0;
                // Sticky serving: while no other connection is waiting,
                // keep this one and block on its next request directly
                // (the read timeout bounds each wait, so a conn arriving
                // for a fully-sticky pool is picked up within one cycle).
                // This makes the pool behave like thread-per-connection
                // whenever connections ≤ workers — no requeue/probe churn
                // on the closed-loop hot path — and multiplex beyond that.
                loop {
                    match serve_one_request(&mut conn, shared, lifecycle, cfg, Some(worker)) {
                        Next::Close => {
                            shared.end_conn();
                            break;
                        }
                        Next::Served => conn.idle_since = Instant::now(),
                        Next::Idle => {}
                    }
                    if shared.shutting_down() || conn.idle_since.elapsed() > CONN_IDLE_TIMEOUT {
                        shared.end_conn();
                        break;
                    }
                    if !shared.conns.is_empty() {
                        shared.conns.push(conn);
                        break;
                    }
                }
            }
            Readiness::Idle => {
                if conn.idle_since.elapsed() > CONN_IDLE_TIMEOUT {
                    shared.end_conn();
                } else {
                    shared.conns.push(conn);
                    idle_streak += 1;
                    // A full lap of idle-only connections: sleep so the
                    // probe loop doesn't busy-spin on a quiet daemon.
                    if idle_streak > shared.conns.len().max(8) {
                        idle_streak = 0;
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            }
            Readiness::Gone => shared.end_conn(),
        }
    }
}

/// Legacy thread-per-connection handler: blockingly serve requests until
/// the connection closes or shutdown is requested. Idle read timeouts poll
/// the shutdown flag, exactly as in the pre-pool daemon.
fn thread_per_conn_loop(
    conn: &mut Conn,
    shared: &Shared,
    lifecycle: &Lifecycle,
    cfg: &ServeConfig,
) {
    loop {
        if shared.shutting_down() {
            return;
        }
        match serve_one_request(conn, shared, lifecycle, cfg, None) {
            Next::Served | Next::Idle => continue,
            Next::Close => return,
        }
    }
}

/// What happened on one serve attempt.
enum Next {
    /// A request was answered and the connection stays open.
    Served,
    /// No request arrived before the read timeout (idle keep-alive).
    Idle,
    /// The connection is finished (error, `connection: close`, stream end).
    Close,
}

/// Reads and answers exactly one request on `conn`. An idle read timeout
/// before the first byte returns [`Next::Idle`] (the caller parks or
/// retries); every error path answers with the right status where the wire
/// still permits one, then closes.
fn serve_one_request(
    conn: &mut Conn,
    shared: &Shared,
    lifecycle: &Lifecycle,
    cfg: &ServeConfig,
    worker: Option<usize>,
) -> Next {
    let deadline = Instant::now() + cfg.request_deadline;
    let head = match read_head(&mut conn.reader, deadline) {
        Ok(h) => h,
        Err(ReadError::TimedOut) => return Next::Idle, // idle keep-alive
        Err(ReadError::Eof) => return Next::Close,
        Err(ReadError::Bad(msg)) => {
            shared.stats.requests_failed.fetch_add(1, Ordering::Relaxed);
            let _ = write_error(&mut conn.stream, 400, "Bad Request", &msg, false);
            return Next::Close;
        }
        Err(ReadError::TooLarge(msg)) => {
            shared.stats.requests_failed.fetch_add(1, Ordering::Relaxed);
            let _ = write_error(&mut conn.stream, 413, "Payload Too Large", &msg, false);
            return Next::Close;
        }
        Err(ReadError::TooSlow) => {
            shared.stats.requests_failed.fetch_add(1, Ordering::Relaxed);
            let _ =
                write_error(&mut conn.stream, 408, "Request Timeout", "request too slow", false);
            return Next::Close;
        }
        Err(ReadError::Io(_)) => return Next::Close,
    };
    conn.requests += 1;
    if conn.requests > 1 {
        shared.stats.keepalive_reused.fetch_add(1, Ordering::Relaxed);
    }
    if let Some(w) = worker {
        shared.stats.record_worker(w);
    }

    // The streaming endpoint consumes its body incrementally and owns its
    // connection to the end; everything else buffers the body first.
    if head.method == "POST" && canonical_path(&head.path) == "/annotate_stream" {
        return handle_stream(conn, shared, lifecycle, cfg, &head);
    }

    if head.expect_continue
        && head.framing != BodyFraming::None
        && write_continue(&mut conn.stream).is_err()
    {
        return Next::Close;
    }
    let body = match read_body(&mut conn.reader, head.framing, deadline) {
        Ok(b) => b,
        Err(ReadError::TooLarge(msg)) => {
            shared.stats.requests_failed.fetch_add(1, Ordering::Relaxed);
            let _ = write_error(&mut conn.stream, 413, "Payload Too Large", &msg, false);
            return Next::Close;
        }
        Err(ReadError::Bad(msg)) => {
            shared.stats.requests_failed.fetch_add(1, Ordering::Relaxed);
            let _ = write_error(&mut conn.stream, 400, "Bad Request", &msg, false);
            return Next::Close;
        }
        Err(ReadError::TooSlow) => {
            shared.stats.requests_failed.fetch_add(1, Ordering::Relaxed);
            let _ =
                write_error(&mut conn.stream, 408, "Request Timeout", "request too slow", false);
            return Next::Close;
        }
        Err(_) => return Next::Close,
    };

    // From here the request is fully buffered: route it through the same
    // Handler core the reactor and the balancer's test backends use.
    let keep_policy = cfg.keep_alive && !shared.shutting_down();
    let req = HttpRequest::from_head(&head, body);
    let handler = EngineHandler { shared, lifecycle, cfg };
    let resp = apply_keep_policy(handler.handle(&req), keep_policy);
    let severs = matches!(resp, HttpResponse::RawThenClose(_) | HttpResponse::Hangup);
    match write_http_response(&mut conn.stream, &resp, req.keep_alive) {
        Ok(true) => Next::Served,
        Ok(false) => {
            if severs {
                let _ = conn.stream.shutdown(std::net::Shutdown::Both);
            }
            Next::Close
        }
        Err(_) => Next::Close,
    }
}

// ------------------------------------------------------------ handler core

/// The daemon's request→response core: every topology (and nothing else)
/// routes buffered requests through this [`Handler`]. Paths are matched
/// after [`canonical_path`], so `/v1/...` and legacy unprefixed routes
/// behave identically — except that a known route reached through its
/// deprecated unprefixed alias is counted in `legacy_route_hits` and
/// answered with a `Deprecation: true` header.
struct EngineHandler<'s> {
    shared: &'s Shared,
    lifecycle: &'s Lifecycle,
    cfg: &'s ServeConfig,
}

impl<'s> EngineHandler<'s> {
    /// Routes one request; `None` means no such route (404).
    fn route(&self, req: &HttpRequest) -> Option<HttpResponse> {
        let (shared, lifecycle, cfg) = (self.shared, self.lifecycle, self.cfg);
        match (req.method.as_str(), canonical_path(&req.path)) {
            // Liveness: always 200 while the process can answer at all.
            // The `ready` field mirrors `/readyz` for humans; probes that
            // gate traffic admission must use `/readyz` (which flips to
            // 503).
            ("GET", "/healthz") => {
                let ready = shared.ready.load(Ordering::SeqCst) && !shared.shutting_down();
                Some(HttpResponse::json(
                    200,
                    format!(
                        "{{\"status\":\"ok\",\"ready\":{ready},\"uptime_secs\":{:.3}}}\n",
                        shared.started.elapsed().as_secs_f64()
                    ),
                ))
            }
            // Readiness: 200 only while the daemon should receive new
            // traffic (engine up, not shutting down, queue below
            // capacity). The balancer re-admits a restarted replica only
            // after this passes.
            ("GET", "/readyz") => {
                let ready = shared.ready.load(Ordering::SeqCst)
                    && !shared.shutting_down()
                    && shared.queue.depth() < cfg.policy.max_queue_jobs;
                Some(if ready {
                    HttpResponse::json(200, "{\"status\":\"ready\"}\n")
                } else {
                    HttpResponse::unavailable("not_ready", "not ready", RETRY_AFTER_SECS)
                })
            }
            ("GET", "/stats") => {
                let engine = lifecycle.current();
                let journal = lifecycle.journal();
                let model = ModelStatus {
                    model_version: engine.label(),
                    swaps: lifecycle.slot().swaps(),
                    feedback_accepted: journal.accepted(),
                    feedback_dropped: journal.dropped(),
                    feedback_pending: journal.pending() as u64,
                    finetunes: journal.finetunes(),
                };
                Some(HttpResponse::json(
                    200,
                    shared.stats.to_json(
                        shared.started.elapsed(),
                        shared.queue.depth(),
                        engine.engine().cache_stats().hit_rate(),
                        &model,
                    ),
                ))
            }
            ("POST", "/shutdown") => {
                shared.request_shutdown();
                Some(HttpResponse::json(200, "{\"status\":\"shutting down\"}\n").close())
            }
            ("POST", "/annotate") => Some(annotate_response(shared, lifecycle, &req.body)),
            ("POST", "/model") => Some(model_swap_response(shared, lifecycle, &req.body)),
            ("POST", "/feedback") => Some(feedback_response(shared, lifecycle, &req.body)),
            _ => None,
        }
    }
}

impl<'s> Handler for EngineHandler<'s> {
    fn handle(&self, req: &HttpRequest) -> HttpResponse {
        match self.route(req) {
            Some(resp) if !req.path.starts_with("/v1") => {
                // A known route reached through its deprecated unprefixed
                // alias: count it and flag the response, so clients that
                // never migrated are measurable instead of invisible.
                self.shared.stats.legacy_route_hits.fetch_add(1, Ordering::Relaxed);
                resp.with_header("deprecation", "true")
            }
            Some(resp) => resp,
            None => {
                self.shared.stats.requests_failed.fetch_add(1, Ordering::Relaxed);
                HttpResponse::error(404, &format!("no route for {} {}", req.method, req.path))
            }
        }
    }
}

// -------------------------------------------------------------- lifecycle

/// `POST /model`: CRC-check and strict-load the uploaded checkpoint blob,
/// build the replacement engine off the hot path, and swap it in between
/// micro-batch flushes. In-flight requests finish on the model they
/// captured; everything admitted after the swap serves the new one.
fn model_swap_response(shared: &Shared, lifecycle: &Lifecycle, body: &[u8]) -> HttpResponse {
    let previous = lifecycle.current().label();
    match lifecycle.slot().swap_blob(body) {
        Ok(engine) => {
            eprintln!("[served] model hot-swap: {} -> {}", previous, engine.label());
            HttpResponse::json(
                200,
                format!(
                    "{{\"status\":\"swapped\",\"model_version\":\"{}\",\"previous\":\"{}\"}}\n",
                    engine.label(),
                    previous
                ),
            )
            .with_header("x-model-version", &engine.label())
        }
        Err(e) => {
            shared.stats.requests_failed.fetch_add(1, Ordering::Relaxed);
            HttpResponse::error_code(400, "bad_bundle", &format!("checkpoint rejected: {e}"))
        }
    }
}

/// `POST /feedback`: validate one corrected-label observation
/// (`{"table": {...}, "types": [[label, ...], ...]}`, one label list per
/// column, labels from the serving type vocabulary) and append it to the
/// journal. The entry only trains a model when the daemon runs with
/// `--feedback-finetune`; otherwise the journal is a bounded audit buffer.
fn feedback_response(shared: &Shared, lifecycle: &Lifecycle, body: &[u8]) -> HttpResponse {
    let fail = |msg: &str| {
        shared.stats.requests_failed.fetch_add(1, Ordering::Relaxed);
        HttpResponse::error(400, msg)
    };
    let body = match std::str::from_utf8(body) {
        Ok(s) => s,
        Err(_) => return fail("body is not valid UTF-8"),
    };
    let v = match Json::parse(body) {
        Ok(v) => v,
        Err(msg) => return fail(&msg),
    };
    let Some(tv) = v.get("table") else {
        return fail("missing \"table\"");
    };
    let table: Table = match table_from_json(tv) {
        Ok(t) => t,
        Err(msg) => return fail(&msg),
    };
    let Some(types) = v.get("types").and_then(Json::as_array) else {
        return fail("missing \"types\" (one label list per column)");
    };
    if types.len() != table.n_cols() {
        return fail(&format!(
            "\"types\" has {} entries but table {:?} has {} columns",
            types.len(),
            table.id,
            table.n_cols()
        ));
    }
    let engine = lifecycle.current();
    let vocab = &engine.engine().bundle().type_vocab;
    let mut labels: Vec<Vec<String>> = Vec::with_capacity(types.len());
    for (ci, col) in types.iter().enumerate() {
        let Some(list) = col.as_array() else {
            return fail(&format!("\"types\"[{ci}] is not an array of labels"));
        };
        let mut out = Vec::with_capacity(list.len());
        for l in list {
            let Some(name) = l.as_str() else {
                return fail(&format!("\"types\"[{ci}] contains a non-string label"));
            };
            if vocab.id(name).is_none() {
                return fail(&format!("unknown type label {name:?} in column {ci}"));
            }
            out.push(name.to_string());
        }
        labels.push(out);
    }
    let pending = lifecycle.journal().push(FeedbackEntry { table, types: labels });
    HttpResponse::json(200, format!("{{\"status\":\"accepted\",\"pending\":{pending}}}\n"))
        .with_header("x-model-version", &engine.label())
}

// --------------------------------------------------------------- annotate

/// Decodes one stream-element document into a serialized group plus its
/// queue cost, applying the same validation as `/annotate`.
fn decode_stream_table(
    engine: &BatchAnnotator,
    doc: &str,
) -> Result<(Vec<SerializedTable>, usize, usize), String> {
    let v = Json::parse(doc)?;
    let table: Table = table_from_json(&v)?;
    let max_cols = engine.annotator().model.config().serialize.max_supported_cols();
    if table.n_cols() > max_cols {
        return Err(format!(
            "table {:?} has {} columns; this model serves at most {max_cols}",
            table.id,
            table.n_cols()
        ));
    }
    let group = engine.serialize_table(&table);
    let seqs = group.len();
    let tokens = group.iter().map(SerializedTable::len).sum();
    Ok((group, seqs, tokens))
}

/// `POST /annotate_stream`: multiplexes body reads, queue pushes, and
/// in-order result writes on the handling worker's thread. The connection
/// always closes afterwards (the chunked response is terminated either
/// cleanly or after an in-band `{"error": ...}` object).
fn handle_stream(
    conn: &mut Conn,
    shared: &Shared,
    lifecycle: &Lifecycle,
    cfg: &ServeConfig,
    head: &Head,
) -> Next {
    let Conn { stream, reader, .. } = conn;
    let _ = stream_session(stream, reader, shared, lifecycle, cfg, head);
    let _ = conn.stream.set_read_timeout(Some(cfg.read_timeout));
    Next::Close
}

/// The streaming session body, generic over the input reader so the pool
/// path (buffered socket) and the epoll takeover path (reactor leftovers
/// replayed via [`Prefixed`] in front of the socket) share it.
fn stream_session(
    stream: &mut TcpStream,
    reader: &mut impl BufRead,
    shared: &Shared,
    lifecycle: &Lifecycle,
    cfg: &ServeConfig,
    head: &Head,
) -> std::io::Result<()> {
    // One engine per stream, captured up front: a hot-swap mid-stream must
    // not change the model under a session, so every table of a stream is
    // annotated by the model that was serving when the stream began. (The
    // chunked response head has already committed by the time results
    // flow, so deprecation is counted but not headered here.)
    let engine = lifecycle.current();
    if !head.path.starts_with("/v1") {
        shared.stats.legacy_route_hits.fetch_add(1, Ordering::Relaxed);
    }
    if head.framing == BodyFraming::None {
        shared.stats.requests_failed.fetch_add(1, Ordering::Relaxed);
        shared.stats.record_stream(0, false);
        return write_error(
            stream,
            400,
            "Bad Request",
            "streaming requires a chunked or content-length body",
            false,
        );
    }
    if head.expect_continue {
        write_continue(stream)?;
    }
    write_chunked_head(stream, 200, "OK", "application/x-ndjson")?;
    // Short poll timeout: the loop below alternates between reading input
    // and flushing results, so neither side can stall the other for long.
    let _ = stream.set_read_timeout(Some(STREAM_POLL));

    let (tx, rx) = mpsc::channel::<(usize, TableAnnotation)>();
    // Unbounded total length: a stream may legitimately carry any number
    // of tables. Memory stays bounded by the per-document cap below and
    // the STREAM_WINDOW read-ahead limit.
    let mut body = BodyReader::unbounded(head.framing);
    let mut splitter = StreamSplitter::new(MAX_BODY_BYTES);
    let mut pending: VecDeque<(usize, Vec<SerializedTable>, usize, usize)> = VecDeque::new();
    let mut done: BTreeMap<usize, TableAnnotation> = BTreeMap::new();
    let mut parsed = 0usize;
    let mut emitted = 0usize;
    let (mut seqs_total, mut tokens_total) = (0u64, 0u64);
    let mut input_done = false;
    // A decode/validation error ends intake but lets every table parsed
    // before it finish, so the client gets all usable results before the
    // in-band error object; a fatal error (dead queue, idle timeout, lost
    // connection) stops the loop immediately.
    let mut error: Option<String> = None;
    let mut fatal = false;
    let mut last_progress = Instant::now();
    let mut buf = [0u8; 8 * 1024];

    loop {
        // 1. Flush finished annotations, in input order.
        while let Ok((i, ann)) = rx.try_recv() {
            done.insert(i, ann);
        }
        while let Some(ann) = done.remove(&emitted) {
            let mut line = annotation_to_json(&ann);
            line.push('\n');
            write_chunk(stream, line.as_bytes())?;
            emitted += 1;
            last_progress = Instant::now();
        }

        // 2. Submit parsed tables, respecting queue backpressure (a full
        //    queue simply pauses the stream's intake; the rejected job is
        //    handed back, so retries never clone the serialized group).
        while let Some((index, group, seqs, tokens)) = pending.pop_front() {
            let job = Job {
                groups: vec![group],
                engine: Arc::clone(&engine),
                reply: Reply::Stream { index, tx: tx.clone() },
            };
            match shared.queue.push(job, seqs, tokens) {
                Ok(()) => {
                    seqs_total += seqs as u64;
                    tokens_total += tokens as u64;
                    last_progress = Instant::now();
                }
                Err((PushRejected::Full, mut job)) => {
                    let group = job.groups.pop().expect("stream job has one group");
                    pending.push_front((index, group, seqs, tokens));
                    break;
                }
                Err((PushRejected::Closed, _)) => {
                    error = Some("server is shutting down".into());
                    fatal = true;
                    break;
                }
            }
        }
        if fatal {
            break;
        }
        if input_done && pending.is_empty() && emitted == parsed {
            break;
        }
        // Shutdown is fatal for streams: their worker must exit so
        // `Server::run`'s scoped join can complete. What was already
        // submitted is still drained and flushed below.
        if shared.shutting_down() {
            error = Some("server is shutting down".into());
            break;
        }
        if last_progress.elapsed() > cfg.stream_idle_timeout {
            error = Some("stream idle timeout".into());
            break;
        }

        // 3. Pull more input (bounded read-ahead), or wait for results.
        if !input_done && pending.len() < STREAM_WINDOW {
            match body.read_some(reader, &mut buf) {
                Ok(0) => {
                    input_done = true;
                    if splitter.mid_document() {
                        error = Some("stream ended mid-table".into());
                    }
                }
                Ok(n) => {
                    // Deliberately NOT progress by itself: only a completed
                    // document (below) resets the idle clock, so a client
                    // dribbling meaningless bytes cannot pin this worker
                    // past stream_idle_timeout.
                    match splitter.push(&buf[..n]) {
                        Ok(docs) => {
                            for doc in docs {
                                last_progress = Instant::now();
                                match decode_stream_table(engine.engine(), &doc) {
                                    Ok((group, seqs, tokens)) => {
                                        pending.push_back((parsed, group, seqs, tokens));
                                        parsed += 1;
                                    }
                                    Err(msg) => {
                                        error = Some(msg);
                                        break;
                                    }
                                }
                            }
                        }
                        Err(msg) => error = Some(msg),
                    }
                    if error.is_some() {
                        input_done = true; // finish prior tables, then report
                    }
                }
                Err(ReadError::TimedOut) => {}
                Err(ReadError::Eof) => {
                    error = Some("connection closed mid-stream".into());
                    break;
                }
                Err(ReadError::Bad(msg)) | Err(ReadError::TooLarge(msg)) => {
                    error = Some(msg);
                    input_done = true;
                }
                Err(ReadError::TooSlow) => {
                    error = Some("stream too slow".into());
                    input_done = true;
                }
                Err(ReadError::Io(e)) => return Err(e),
            }
        } else {
            match rx.recv_timeout(Duration::from_millis(10)) {
                Ok((i, ann)) => {
                    done.insert(i, ann);
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => unreachable!("tx held locally"),
            }
        }
    }

    // A fatal exit may leave submitted jobs in flight; they are still
    // drained (the queue closes before the dispatcher stops), so wait
    // briefly and flush them — the error object lands after every result
    // the client can still use.
    if error.is_some() {
        let submitted = parsed - pending.len();
        let give_up = Instant::now() + Duration::from_secs(5);
        while emitted < submitted && Instant::now() < give_up {
            if let Ok((i, ann)) = rx.recv_timeout(Duration::from_millis(50)) {
                done.insert(i, ann);
            }
            while let Some(ann) = done.remove(&emitted) {
                let mut line = annotation_to_json(&ann);
                line.push('\n');
                write_chunk(stream, line.as_bytes())?;
                emitted += 1;
            }
        }
    }
    shared.stats.seqs.fetch_add(seqs_total, Ordering::Relaxed);
    shared.stats.tokens.fetch_add(tokens_total, Ordering::Relaxed);
    shared.stats.record_stream(emitted as u64, error.is_none());
    if let Some(msg) = error {
        shared.stats.requests_failed.fetch_add(1, Ordering::Relaxed);
        // Same envelope shape as HTTP-level errors, delivered in-band as
        // the stream's final NDJSON object (the status line already went
        // out as 200).
        let code = match msg.as_str() {
            "server is shutting down" => "shutting_down",
            "stream idle timeout" => "timeout",
            _ => "stream_error",
        };
        let line = crate::http::error_envelope(code, &msg, None);
        write_chunk(stream, line.as_bytes())?;
    } else {
        shared.stats.requests_ok.fetch_add(1, Ordering::Relaxed);
    }
    write_last_chunk(stream)
}

/// A decoded, tokenized `/annotate` request ready for the batching queue.
struct PreparedAnnotate {
    groups: Vec<Vec<SerializedTable>>,
    /// Echo the client's `{"tables": [...]}` framing in the response.
    wrapped: bool,
    seqs: usize,
    tokens: usize,
}

/// The decode/validate/tokenize prefix shared by both `/annotate` paths
/// (blocking worker and reactor-completed). Tokenizing on the calling
/// worker thread warms the shared LRU cache and lets the queue count real
/// tokens, keeping the dispatcher compute-only; errors come back as
/// ready-to-send responses with the failure already counted.
fn prepare_annotate(
    shared: &Shared,
    engine: &BatchAnnotator,
    body: &[u8],
) -> Result<PreparedAnnotate, HttpResponse> {
    let fail = |msg: &str| {
        shared.stats.requests_failed.fetch_add(1, Ordering::Relaxed);
        HttpResponse::error(400, msg)
    };
    let body = match std::str::from_utf8(body) {
        Ok(s) => s,
        Err(_) => return Err(fail("body is not valid UTF-8")),
    };
    let (tables, wrapped) = match crate::json::tables_from_request(body) {
        Ok(t) => t,
        Err(msg) => return Err(fail(&msg)),
    };
    // Oversized tables would serialize past the encoder's max_seq; reject
    // rather than panic the dispatcher.
    let max_cols = engine.annotator().model.config().serialize.max_supported_cols();
    if let Some(t) = tables.iter().find(|t| t.n_cols() > max_cols) {
        let msg = format!(
            "table {:?} has {} columns; this model serves at most {max_cols}",
            t.id,
            t.n_cols()
        );
        return Err(fail(&msg));
    }
    let groups: Vec<Vec<SerializedTable>> =
        tables.iter().map(|t| engine.serialize_table(t)).collect();
    let seqs: usize = groups.iter().map(Vec::len).sum();
    let tokens: usize = groups.iter().flat_map(|g| g.iter()).map(SerializedTable::len).sum();
    Ok(PreparedAnnotate { groups, wrapped, seqs, tokens })
}

/// The shared 503 shape for queue backpressure and shutdown.
fn annotate_unavailable(shared: &Shared, code: &str, msg: &str) -> HttpResponse {
    shared.stats.requests_failed.fetch_add(1, Ordering::Relaxed);
    HttpResponse::unavailable(code, msg, RETRY_AFTER_SECS)
}

/// `POST /annotate`: decode, tokenize, submit to the batching queue, and
/// wait for the flushed result. Runs on a blocking worker thread (the
/// pool and thread-per-connection topologies, plus chaos-configured epoll
/// daemons — injected stalls must block one request's thread, never an
/// engine callback). The engine is captured once, before the queue push:
/// the response is produced by exactly that model and says so in its
/// `x-model-version` header, however many swaps land while the job waits.
fn annotate_response(shared: &Shared, lifecycle: &Lifecycle, body: &[u8]) -> HttpResponse {
    let t0 = Instant::now();
    let engine = lifecycle.current();
    // Decide this request's injected faults up front: a crash fault fires
    // before any byte of a response exists, which is exactly the failure a
    // balancer may safely retry.
    let plan: Option<ChaosPlan> = shared.chaos.as_ref().map(ChaosState::on_annotate);
    if plan.is_some_and(|p| p.crash) {
        eprintln!("[served] chaos: crash_after reached; exiting before response");
        std::process::exit(86);
    }
    let prep = match prepare_annotate(shared, engine.engine(), body) {
        Ok(p) => p,
        Err(resp) => return resp,
    };
    let n_tables = prep.groups.len() as u64;
    let (seqs, tokens, wrapped) = (prep.seqs, prep.tokens, prep.wrapped);

    let (tx, rx) = mpsc::channel();
    let job = Job { groups: prep.groups, engine: Arc::clone(&engine), reply: Reply::Batch(tx) };
    match shared.queue.push(job, seqs, tokens) {
        Ok(()) => {}
        Err((PushRejected::Closed, _)) => {
            return annotate_unavailable(shared, "shutting_down", "server is shutting down");
        }
        Err((PushRejected::Full, _)) => {
            shared.stats.rejected_full.fetch_add(1, Ordering::Relaxed);
            return annotate_unavailable(shared, "queue_full", "annotation queue is full");
        }
    }
    // An accepted push is always drained (the queue closes before the
    // dispatcher stops); the timeout is a belt-and-braces guard against a
    // panicked dispatcher.
    let anns = match rx.recv_timeout(Duration::from_secs(30)) {
        Ok(a) => a,
        Err(_) => return annotate_unavailable(shared, "timeout", "annotation timed out"),
    };
    shared.stats.record_request(t0.elapsed(), n_tables, seqs as u64, tokens as u64);
    let body = annotations_response(&anns, wrapped);
    if let Some(p) = plan {
        if let Some(d) = p.delay {
            std::thread::sleep(d);
        }
        if p.reset {
            eprintln!("[served] chaos: severing connection after a partial response");
            return HttpResponse::RawThenClose(render_torn_response(&body));
        }
    }
    HttpResponse::json(200, body).with_header("x-model-version", &engine.label())
}

/// `POST /annotate` under the epoll topology: same decode/tokenize/
/// admission as [`annotate_response`], but the job carries the
/// connection's reactor ticket instead of a blocking reply channel — the
/// dispatcher's engine callback renders and routes the response when the
/// last table completes, and this worker is free for the next request the
/// moment the push succeeds. In-flight annotate requests are then bounded
/// by connections rather than worker count, which keeps micro-batches
/// full at high fan-in (and drops two thread hand-offs per request).
/// Returns a response only when the request must be answered immediately
/// (validation failure or queue backpressure).
fn annotate_submit(
    shared: &Shared,
    lifecycle: &Lifecycle,
    router: &Arc<Router>,
    ticket: Ticket,
    legacy: bool,
    body: &[u8],
) -> Option<HttpResponse> {
    let t0 = Instant::now();
    let engine = lifecycle.current();
    let prep = match prepare_annotate(shared, engine.engine(), body) {
        Ok(p) => p,
        Err(resp) => return Some(resp),
    };
    let counts = (prep.groups.len() as u64, prep.seqs as u64, prep.tokens as u64);
    let (seqs, tokens) = (prep.seqs, prep.tokens);
    let job = Job {
        groups: prep.groups,
        engine,
        reply: Reply::Reactor {
            ticket,
            router: Arc::clone(router),
            wrapped: prep.wrapped,
            t0,
            counts,
            legacy,
        },
    };
    match shared.queue.push(job, seqs, tokens) {
        Ok(()) => None,
        Err((PushRejected::Closed, _)) => {
            Some(annotate_unavailable(shared, "shutting_down", "server is shutting down"))
        }
        Err((PushRejected::Full, _)) => {
            shared.stats.rejected_full.fetch_add(1, Ordering::Relaxed);
            Some(annotate_unavailable(shared, "queue_full", "annotation queue is full"))
        }
    }
}

/// Chaos `reset_prob` execution: advertise the full `content-length`,
/// write only half the body, then sever the connection. From the client's
/// side response bytes *did* start flowing, so this failure must never be
/// retried by the balancer — the test suites assert exactly that.
fn render_torn_response(body: &str) -> Vec<u8> {
    let mut out = format!(
        "HTTP/1.1 200 OK\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: \
         keep-alive\r\n\r\n",
        body.len()
    )
    .into_bytes();
    out.extend_from_slice(&body.as_bytes()[..body.len() / 2]);
    out
}
