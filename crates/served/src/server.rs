//! The daemon: a `TcpListener` accept loop, one handler thread per
//! connection, and a single dispatcher thread that drains the batching
//! queue into the batched annotation engine.
//!
//! ## Thread topology
//!
//! ```text
//! accept loop (caller's thread, non-blocking poll)
//!   ├── conn handler × N   parse HTTP → decode tables → serialize (cache)
//!   │                      → push job → block on response channel
//!   └── dispatcher × 1     wait for budget/deadline → annotate_groups
//!                          (fans micro-batches across engine threads)
//!                          → send annotations back per job
//! ```
//!
//! Handlers do the per-request work (parsing, tokenization through the
//! LRU cache) so the dispatcher's serial section is just the packed forward
//! passes. All threads are scoped: [`Server::run`] returns only after every
//! handler and the dispatcher have exited, so shutdown is a real barrier —
//! in-flight requests get answers, queued jobs get drained, and the process
//! can exit 0.
//!
//! ## Shutdown
//!
//! `POST /shutdown` (or [`ServerHandle::shutdown`]) sets one atomic flag.
//! The accept loop stops accepting; handlers notice at their next read
//! timeout (or after the in-flight response) and close; the dispatcher
//! drains what is queued, answers it, and exits.

use crate::http::{read_request, write_error, write_response, ReadError, Request};
use crate::json::{annotations_response, tables_from_request};
use crate::queue::{BatchPolicy, PushRejected, SharedBatcher};
use crate::stats::ServerStats;
use doduo_core::{AnnotatorBundle, TableAnnotation};
use doduo_serve::{BatchAnnotator, BatchConfig};
use doduo_table::SerializedTable;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (port 0 picks a free port).
    pub addr: String,
    /// Dynamic micro-batching policy.
    pub policy: BatchPolicy,
    /// Engine knobs (micro-batch cuts, worker threads, tokenization cache).
    pub engine: BatchConfig,
    /// Socket read timeout; also the granularity at which idle handler
    /// threads notice shutdown.
    pub read_timeout: Duration,
    /// Maximum concurrent connections; beyond it new ones get 503+close.
    pub max_connections: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7878".into(),
            policy: BatchPolicy::default(),
            engine: BatchConfig::default(),
            read_timeout: Duration::from_millis(200),
            max_connections: 256,
        }
    }
}

/// One queued annotation job: a request's serialized tables plus the
/// channel its handler thread is blocked on.
struct Job {
    groups: Vec<Vec<SerializedTable>>,
    reply: mpsc::Sender<Vec<TableAnnotation>>,
}

struct Shared {
    shutdown: AtomicBool,
    connections: AtomicUsize,
    queue: SharedBatcher<Job>,
    stats: ServerStats,
    started: Instant,
}

/// A clonable remote control for a running server (shutdown + stats).
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Requests graceful shutdown; [`Server::run`] returns once all threads
    /// finish.
    pub fn shutdown(&self) {
        // Order matters: close the queue *before* raising the flag the
        // dispatcher polls, so every job that was accepted is also drained.
        self.shared.queue.close();
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue.notify();
    }

    /// True once shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Aggregate serving counters.
    pub fn stats(&self) -> &ServerStats {
        &self.shared.stats
    }
}

/// A bound (but not yet serving) daemon.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    cfg: ServeConfig,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener. Serving starts with [`Server::run`].
    pub fn bind(cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            shutdown: AtomicBool::new(false),
            connections: AtomicUsize::new(0),
            queue: SharedBatcher::new(cfg.policy.clone()),
            stats: ServerStats::default(),
            started: Instant::now(),
        });
        Ok(Server { listener, addr, cfg, shared })
    }

    /// The actually-bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A remote control usable from other threads.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { shared: Arc::clone(&self.shared) }
    }

    /// Serves until shutdown. Blocks the calling thread; all worker threads
    /// are scoped inside, so when this returns the daemon is fully stopped.
    pub fn run(&self, bundle: &AnnotatorBundle) {
        let engine = BatchAnnotator::with_config(bundle.annotator(), self.cfg.engine.clone());
        self.listener.set_nonblocking(true).expect("nonblocking listener");
        let shared = &self.shared;
        let engine = &engine;
        std::thread::scope(|scope| {
            scope.spawn(move || dispatcher_loop(shared, engine));
            while !shared.shutdown.load(Ordering::SeqCst) {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        let cfg = &self.cfg;
                        scope.spawn(move || handle_connection(stream, shared, engine, cfg));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(e) => {
                        eprintln!("[served] accept error: {e}");
                        std::thread::sleep(Duration::from_millis(50));
                    }
                }
            }
            shared.queue.notify();
        });
    }
}

/// The dispatcher: waits until the queue policy releases a batch, runs the
/// packed forward passes, and fans annotations back to the blocked
/// handlers. Exits when shutdown is set and the queue is drained.
fn dispatcher_loop(shared: &Shared, engine: &BatchAnnotator<'_>) {
    let stop = || shared.shutdown.load(Ordering::SeqCst);
    while let Some((mut jobs, reason)) = shared.queue.wait_for_batch(stop) {
        let counts: Vec<usize> = jobs.iter().map(|j| j.groups.len()).collect();
        // Move (not clone) the serialized groups out of the jobs: this is
        // the daemon's one serial section, and it should only compute.
        let flat: Vec<Vec<SerializedTable>> =
            jobs.iter_mut().flat_map(|j| j.groups.drain(..)).collect();
        shared.stats.record_batch(reason, flat.len() as u64);
        let mut anns = engine.annotate_groups(&flat);
        // Split back per job, front to back (annotations are in input order).
        let mut rest = anns.drain(..);
        for (job, n) in jobs.iter().zip(counts) {
            let part: Vec<TableAnnotation> = rest.by_ref().take(n).collect();
            // A dead receiver means the handler gave up (client vanished);
            // dropping its annotations is the right outcome.
            let _ = job.reply.send(part);
        }
    }
}

/// Per-connection keep-alive loop.
fn handle_connection(
    stream: TcpStream,
    shared: &Shared,
    engine: &BatchAnnotator<'_>,
    cfg: &ServeConfig,
) {
    shared.connections.fetch_add(1, Ordering::SeqCst);
    serve_connection(stream, shared, engine, cfg);
    shared.connections.fetch_sub(1, Ordering::SeqCst);
}

fn serve_connection(
    stream: TcpStream,
    shared: &Shared,
    engine: &BatchAnnotator<'_>,
    cfg: &ServeConfig,
) {
    let mut stream = stream;
    if stream.set_nonblocking(false).is_err()
        || stream.set_read_timeout(Some(cfg.read_timeout)).is_err()
        || stream.set_nodelay(true).is_err()
    {
        return;
    }
    if shared.connections.load(Ordering::SeqCst) > cfg.max_connections {
        let _ = write_error(&mut stream, 503, "Service Unavailable", "too many connections", false);
        return;
    }
    let Ok(clone) = stream.try_clone() else { return };
    let mut reader = BufReader::new(clone);
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let req = match read_request(&mut reader) {
            Ok(r) => r,
            Err(ReadError::TimedOut) => continue, // idle keep-alive; re-check shutdown
            Err(ReadError::Eof) => return,
            Err(ReadError::Bad(msg)) => {
                shared.stats.requests_failed.fetch_add(1, Ordering::Relaxed);
                let _ = write_error(&mut stream, 400, "Bad Request", &msg, false);
                return;
            }
            Err(ReadError::Io(_)) => return,
        };
        let keep_alive = req.keep_alive && !shared.shutdown.load(Ordering::SeqCst);
        let ok = match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => {
                let body = format!(
                    "{{\"status\":\"ok\",\"uptime_secs\":{:.3}}}\n",
                    shared.started.elapsed().as_secs_f64()
                );
                write_response(&mut stream, 200, "OK", "application/json", &body, keep_alive)
            }
            ("GET", "/stats") => {
                let body = shared.stats.to_json(
                    shared.started.elapsed(),
                    shared.queue.depth(),
                    engine.cache_stats().hit_rate(),
                );
                write_response(&mut stream, 200, "OK", "application/json", &body, keep_alive)
            }
            ("POST", "/shutdown") => {
                let body = "{\"status\":\"shutting down\"}\n";
                let r = write_response(&mut stream, 200, "OK", "application/json", body, false);
                // Close-before-flag, as in ServerHandle::shutdown.
                shared.queue.close();
                shared.shutdown.store(true, Ordering::SeqCst);
                shared.queue.notify();
                let _ = r;
                return;
            }
            ("POST", "/annotate") => handle_annotate(&mut stream, shared, engine, &req, keep_alive),
            _ => {
                shared.stats.requests_failed.fetch_add(1, Ordering::Relaxed);
                write_error(
                    &mut stream,
                    404,
                    "Not Found",
                    &format!("no route for {} {}", req.method, req.path),
                    keep_alive,
                )
            }
        };
        if ok.is_err() || !keep_alive {
            return;
        }
    }
}

fn handle_annotate(
    stream: &mut TcpStream,
    shared: &Shared,
    engine: &BatchAnnotator<'_>,
    req: &Request,
    keep_alive: bool,
) -> std::io::Result<()> {
    let t0 = Instant::now();
    let fail = |stream: &mut TcpStream, status, reason, msg: &str| {
        shared.stats.requests_failed.fetch_add(1, Ordering::Relaxed);
        write_error(stream, status, reason, msg, keep_alive)
    };
    let body = match std::str::from_utf8(&req.body) {
        Ok(s) => s,
        Err(_) => return fail(stream, 400, "Bad Request", "body is not valid UTF-8"),
    };
    let (tables, wrapped) = match tables_from_request(body) {
        Ok(t) => t,
        Err(msg) => return fail(stream, 400, "Bad Request", &msg),
    };
    // Oversized tables would serialize past the encoder's max_seq; reject
    // rather than panic the dispatcher.
    let max_cols = engine.annotator().model.config().serialize.max_supported_cols();
    if let Some(t) = tables.iter().find(|t| t.n_cols() > max_cols) {
        let msg = format!(
            "table {:?} has {} columns; this model serves at most {max_cols}",
            t.id,
            t.n_cols()
        );
        return fail(stream, 400, "Bad Request", &msg);
    }

    // Tokenize on the handler thread (warms the shared LRU cache) so the
    // queue can count real tokens and the dispatcher stays compute-only.
    let groups: Vec<Vec<SerializedTable>> =
        tables.iter().map(|t| engine.serialize_table(t)).collect();
    let n_tables = groups.len() as u64;
    let seqs: usize = groups.iter().map(Vec::len).sum();
    let tokens: usize = groups.iter().flat_map(|g| g.iter()).map(SerializedTable::len).sum();

    let (tx, rx) = mpsc::channel();
    match shared.queue.push(Job { groups, reply: tx }, seqs, tokens) {
        Ok(()) => {}
        Err(PushRejected::Closed) => {
            return fail(stream, 503, "Service Unavailable", "server is shutting down");
        }
        Err(PushRejected::Full) => {
            shared.stats.rejected_full.fetch_add(1, Ordering::Relaxed);
            return fail(stream, 503, "Service Unavailable", "annotation queue is full");
        }
    }
    // An accepted push is always drained (the queue closes before the
    // dispatcher stops); the timeout is a belt-and-braces guard against a
    // panicked dispatcher.
    let anns = match rx.recv_timeout(Duration::from_secs(30)) {
        Ok(a) => a,
        Err(_) => return fail(stream, 503, "Service Unavailable", "annotation timed out"),
    };
    shared.stats.record_request(t0.elapsed(), n_tables, seqs as u64, tokens as u64);
    let body = annotations_response(&anns, wrapped);
    write_response(stream, 200, "OK", "application/json", &body, keep_alive)
}
