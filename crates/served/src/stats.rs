//! Serving statistics: per-request latency percentiles and aggregate
//! counters, exposed by the daemon at `/stats`.
//!
//! Latencies go into a fixed-size ring (most recent `CAP` requests) so the
//! daemon's memory stays bounded no matter how long it runs; counters are
//! plain atomics so the hot path never takes the ring lock unless it is
//! recording a completed request.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

const CAP: usize = 16 * 1024;

/// Aggregate serving counters plus a latency ring.
#[derive(Default)]
pub struct ServerStats {
    /// Annotation requests answered with 200.
    pub requests_ok: AtomicU64,
    /// Requests rejected (4xx) or failed (5xx).
    pub requests_failed: AtomicU64,
    /// Tables annotated (a multi-table request counts all of them).
    pub tables: AtomicU64,
    /// Sequences (tables in table-wise mode, columns in single-column mode).
    pub seqs: AtomicU64,
    /// Tokens pushed through the encoder.
    pub tokens: AtomicU64,
    /// Batches flushed because a budget was reached.
    pub flush_budget: AtomicU64,
    /// Batches flushed because the deadline expired.
    pub flush_deadline: AtomicU64,
    /// Batches flushed by shutdown drain.
    pub flush_shutdown: AtomicU64,
    /// Jobs bounced off the full queue (HTTP 503).
    pub rejected_full: AtomicU64,
    /// Connections accepted into the pool (or handler threads).
    pub conns_accepted: AtomicU64,
    /// Connections turned away with 503 at the accept loop.
    pub conns_rejected: AtomicU64,
    /// Requests served on an already-used connection (keep-alive reuse).
    pub keepalive_reused: AtomicU64,
    /// Requests that arrived on a deprecated unprefixed route (the `/v1`
    /// aliases) — the migration-progress counter the deprecation headers
    /// point at.
    pub legacy_route_hits: AtomicU64,
    /// `/annotate_stream` streams completed without a stream-level error.
    pub streams_ok: AtomicU64,
    /// Streams that ended with an in-band error object.
    pub streams_failed: AtomicU64,
    /// Tables annotated through streams (also counted in `tables`).
    pub stream_tables: AtomicU64,
    /// Requests handled per pool worker (empty in thread-per-connection
    /// mode).
    worker_requests: Vec<AtomicU64>,
    /// Connection-handling topology name reported in `/stats`
    /// (`"epoll"`, `"pool"`, `"thread_per_conn"`).
    topology: &'static str,
    latencies_us: Mutex<Ring>,
    batch_tables: Mutex<Ring>,
}

#[derive(Default)]
struct Ring {
    buf: Vec<u64>,
    next: usize,
    total: u64,
}

impl Ring {
    fn push(&mut self, v: u64) {
        if self.buf.len() < CAP {
            self.buf.push(v);
        } else {
            self.buf[self.next] = v;
            self.next = (self.next + 1) % CAP;
        }
        self.total += 1;
    }

    fn snapshot(&self) -> Vec<u64> {
        self.buf.clone()
    }

    /// `(retained_window_len, lifetime_push_count)` — the ring only keeps
    /// the most recent `CAP` samples, but `total` counts every push, so
    /// `/stats` can report both without pretending the window is complete.
    fn counts(&self) -> (usize, u64) {
        (self.buf.len(), self.total)
    }
}

/// The live-model snapshot `/stats` folds into its JSON body: the
/// lifecycle layer owns these values (`crate::lifecycle`), stats just
/// renders them.
#[derive(Clone, Debug, Default)]
pub struct ModelStatus {
    /// Current engine label, `"{version}-{crc:08x}"`.
    pub model_version: String,
    /// Completed hot-swaps since boot.
    pub swaps: u64,
    /// Feedback entries ever accepted into the journal.
    pub feedback_accepted: u64,
    /// Feedback entries evicted unprocessed (journal overflow).
    pub feedback_dropped: u64,
    /// Feedback entries currently awaiting a fine-tune cycle.
    pub feedback_pending: u64,
    /// Completed fine-tune + self-swap cycles.
    pub finetunes: u64,
}

/// A percentile summary of one metric window.
#[derive(Clone, Copy, Debug, Default)]
pub struct Percentiles {
    /// Samples in the window.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// 50th percentile.
    pub p50: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

/// Nearest-rank percentiles over raw samples.
pub fn percentiles(samples: &[u64]) -> Percentiles {
    if samples.is_empty() {
        return Percentiles::default();
    }
    let mut s: Vec<u64> = samples.to_vec();
    s.sort_unstable();
    let rank = |p: f64| -> f64 {
        let idx = ((p / 100.0) * s.len() as f64).ceil() as usize;
        s[idx.clamp(1, s.len()) - 1] as f64
    };
    Percentiles {
        count: s.len(),
        mean: s.iter().sum::<u64>() as f64 / s.len() as f64,
        p50: rank(50.0),
        p99: rank(99.0),
        max: *s.last().expect("non-empty") as f64,
    }
}

impl ServerStats {
    /// Stats for a daemon running `topology` with `workers` request
    /// workers (0 for the thread-per-connection topology).
    pub fn with_topology(topology: &'static str, workers: usize) -> ServerStats {
        ServerStats {
            worker_requests: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            topology,
            ..ServerStats::default()
        }
    }

    /// Credits one handled request to pool worker `id` (no-op when out of
    /// range, i.e. in thread-per-connection mode).
    pub fn record_worker(&self, id: usize) {
        if let Some(w) = self.worker_requests.get(id) {
            w.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Per-worker handled-request counts (empty in thread-per-connection
    /// mode).
    pub fn worker_requests(&self) -> Vec<u64> {
        self.worker_requests.iter().map(|w| w.load(Ordering::Relaxed)).collect()
    }

    /// Records one completed (or failed) `/annotate_stream` stream of
    /// `tables` annotated tables.
    pub fn record_stream(&self, tables: u64, ok: bool) {
        if ok { &self.streams_ok } else { &self.streams_failed }.fetch_add(1, Ordering::Relaxed);
        self.stream_tables.fetch_add(tables, Ordering::Relaxed);
        self.tables.fetch_add(tables, Ordering::Relaxed);
    }

    /// Records one successfully answered annotation request.
    pub fn record_request(&self, latency: Duration, tables: u64, seqs: u64, tokens: u64) {
        self.requests_ok.fetch_add(1, Ordering::Relaxed);
        self.tables.fetch_add(tables, Ordering::Relaxed);
        self.seqs.fetch_add(seqs, Ordering::Relaxed);
        self.tokens.fetch_add(tokens, Ordering::Relaxed);
        self.latencies_us.lock().expect("stats lock").push(latency.as_micros() as u64);
    }

    /// Records one flushed batch of `tables` tables.
    pub fn record_batch(&self, reason: crate::queue::FlushReason, tables: u64) {
        use crate::queue::FlushReason;
        match reason {
            FlushReason::Budget => &self.flush_budget,
            FlushReason::Deadline => &self.flush_deadline,
            FlushReason::Shutdown => &self.flush_shutdown,
        }
        .fetch_add(1, Ordering::Relaxed);
        self.batch_tables.lock().expect("stats lock").push(tables);
    }

    /// Latency percentiles over the retained window, in milliseconds.
    pub fn latency_ms(&self) -> Percentiles {
        let p = percentiles(&self.latencies_us.lock().expect("stats lock").snapshot());
        Percentiles {
            count: p.count,
            mean: p.mean / 1e3,
            p50: p.p50 / 1e3,
            p99: p.p99 / 1e3,
            max: p.max / 1e3,
        }
    }

    /// Batch-size (tables per flush) percentiles over the retained window.
    pub fn batch_tables_stats(&self) -> Percentiles {
        percentiles(&self.batch_tables.lock().expect("stats lock").snapshot())
    }

    /// Renders the `/stats` JSON body. `model` is the lifecycle snapshot
    /// (current version label, swap count, feedback journal counters).
    pub fn to_json(
        &self,
        uptime: Duration,
        queue_depth: usize,
        cache_hit_rate: f64,
        model: &ModelStatus,
    ) -> String {
        let lat = self.latency_ms();
        let bat = self.batch_tables_stats();
        // The percentile window is the retained ring; the `total_count`
        // beside it is the lifetime sample count, so a reader can tell
        // "p99 over the last 16384 requests of 2 million" from "p99 over
        // all 40 requests ever" — the ring used to track the total but
        // never report it.
        let (lat_window, lat_total) = self.latencies_us.lock().expect("stats lock").counts();
        let (bat_window, bat_total) = self.batch_tables.lock().expect("stats lock").counts();
        let workers = self.worker_requests();
        let worker_json = workers.iter().map(u64::to_string).collect::<Vec<_>>().join(",");
        let mut model_version = String::new();
        crate::json::push_escaped(&mut model_version, &model.model_version);
        format!(
            "{{\"topology\":\"{}\",\"uptime_secs\":{:.3},\"requests_ok\":{},\"requests_failed\":{},\
             \"rejected_queue_full\":{},\"tables\":{},\"sequences\":{},\"tokens\":{},\
             \"queue_depth\":{queue_depth},\"cache_hit_rate\":{cache_hit_rate:.4},\
             \"legacy_route_hits\":{},\
             \"model\":{{\"version\":{model_version},\"swaps\":{},\
             \"feedback\":{{\"accepted\":{},\"dropped\":{},\"pending\":{},\"finetunes\":{}}}}},\
             \"connections\":{{\"accepted\":{},\"rejected\":{},\"keepalive_reused\":{}}},\
             \"streams\":{{\"ok\":{},\"failed\":{},\"tables\":{}}},\
             \"workers\":{{\"count\":{},\"requests\":[{worker_json}]}},\
             \"flushes\":{{\"budget\":{},\"deadline\":{},\"shutdown\":{}}},\
             \"latency_ms\":{{\"window_count\":{lat_window},\"total_count\":{lat_total},\
             \"mean\":{:.3},\"p50\":{:.3},\"p99\":{:.3},\"max\":{:.3}}},\
             \"batch_tables\":{{\"window_count\":{bat_window},\"total_count\":{bat_total},\
             \"mean\":{:.3},\"p50\":{:.0},\"p99\":{:.0}}}}}\n",
            if self.topology.is_empty() { "unknown" } else { self.topology },
            uptime.as_secs_f64(),
            self.requests_ok.load(Ordering::Relaxed),
            self.requests_failed.load(Ordering::Relaxed),
            self.rejected_full.load(Ordering::Relaxed),
            self.tables.load(Ordering::Relaxed),
            self.seqs.load(Ordering::Relaxed),
            self.tokens.load(Ordering::Relaxed),
            self.legacy_route_hits.load(Ordering::Relaxed),
            model.swaps,
            model.feedback_accepted,
            model.feedback_dropped,
            model.feedback_pending,
            model.finetunes,
            self.conns_accepted.load(Ordering::Relaxed),
            self.conns_rejected.load(Ordering::Relaxed),
            self.keepalive_reused.load(Ordering::Relaxed),
            self.streams_ok.load(Ordering::Relaxed),
            self.streams_failed.load(Ordering::Relaxed),
            self.stream_tables.load(Ordering::Relaxed),
            workers.len(),
            self.flush_budget.load(Ordering::Relaxed),
            self.flush_deadline.load(Ordering::Relaxed),
            self.flush_shutdown.load(Ordering::Relaxed),
            lat.mean,
            lat.p50,
            lat.p99,
            lat.max,
            bat.mean,
            bat.p50,
            bat.p99,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::FlushReason;

    #[test]
    fn percentiles_match_nearest_rank() {
        let s: Vec<u64> = (1..=100).collect();
        let p = percentiles(&s);
        assert_eq!(p.count, 100);
        assert_eq!(p.p50, 50.0);
        assert_eq!(p.p99, 99.0);
        assert_eq!(p.max, 100.0);
        assert_eq!(percentiles(&[]).count, 0);
        assert_eq!(percentiles(&[7]).p99, 7.0);
    }

    #[test]
    fn stats_json_is_valid_json() {
        let s = ServerStats::default();
        s.record_request(Duration::from_micros(1500), 1, 1, 40);
        s.record_batch(FlushReason::Deadline, 1);
        s.legacy_route_hits.fetch_add(3, Ordering::Relaxed);
        let model = ModelStatus {
            model_version: "2-0badf00d".into(),
            swaps: 1,
            feedback_accepted: 5,
            feedback_dropped: 1,
            feedback_pending: 4,
            finetunes: 0,
        };
        let body = s.to_json(Duration::from_secs(3), 2, 0.5, &model);
        let v = crate::json::Json::parse(body.trim()).expect("stats body parses");
        assert_eq!(v.get("requests_ok").and_then(|j| j.as_f64()), Some(1.0));
        assert_eq!(v.get("queue_depth").and_then(|j| j.as_f64()), Some(2.0));
        assert_eq!(v.get("legacy_route_hits").and_then(|j| j.as_f64()), Some(3.0));
        let m = v.get("model").expect("model");
        assert_eq!(m.get("version").and_then(|j| j.as_str()), Some("2-0badf00d"));
        assert_eq!(m.get("swaps").and_then(|j| j.as_f64()), Some(1.0));
        let fb = m.get("feedback").expect("feedback");
        assert_eq!(fb.get("accepted").and_then(|j| j.as_f64()), Some(5.0));
        assert_eq!(fb.get("pending").and_then(|j| j.as_f64()), Some(4.0));
        let fl = v.get("flushes").expect("flushes");
        assert_eq!(fl.get("deadline").and_then(|j| j.as_f64()), Some(1.0));
        assert!(v.get("latency_ms").unwrap().get("p50").unwrap().as_f64().unwrap() > 1.0);
    }

    #[test]
    fn ring_stays_bounded() {
        let mut r = Ring::default();
        for i in 0..(CAP as u64 + 10) {
            r.push(i);
        }
        assert_eq!(r.buf.len(), CAP);
        assert_eq!(r.total, CAP as u64 + 10);
    }

    /// The `/stats` misreporting fix: once the latency ring wraps, the
    /// percentile window and the lifetime request count diverge, and the
    /// JSON must expose both instead of silently presenting a truncated
    /// window as the whole history.
    #[test]
    fn overflowed_ring_reports_window_and_total_separately() {
        let s = ServerStats::default();
        for _ in 0..(CAP + 10) {
            s.record_request(Duration::from_micros(100), 1, 1, 1);
        }
        let body = s.to_json(Duration::from_secs(1), 0, 0.0, &ModelStatus::default());
        let v = crate::json::Json::parse(body.trim()).expect("stats body parses");
        let lat = v.get("latency_ms").expect("latency_ms");
        assert_eq!(lat.get("window_count").and_then(|j| j.as_f64()), Some(CAP as f64));
        assert_eq!(
            lat.get("total_count").and_then(|j| j.as_f64()),
            Some((CAP + 10) as f64),
            "total pushes must survive the ring wrapping"
        );
    }
}
