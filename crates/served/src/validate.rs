//! Checkpoint-serving validation hooks.
//!
//! The daemon's correctness contract is *byte-identity to offline*: a
//! `/annotate` response must match what [`doduo_core::Annotator::annotate`]
//! produces through the same JSON codec, byte for byte. This module is the
//! library form of that check — [`offline_response`] is the reference the
//! `--oneshot` flag prints and the repro harness diffs live responses
//! against, and [`check_online_equivalence`] runs the comparison over a
//! real TCP connection.
//!
//! It also hosts the decode side of the quality gate: the daemon answers
//! with sigmoid-scored label lists, and [`decode_annotation`] reconstructs
//! the trainer's prediction *sets* from them (every label scoring above
//! 0.5, falling back to the top-scored one — exactly the trainer's
//! `z > 0` / argmax rule, since `sigmoid(z) > 0.5 ⇔ z > 0`). That lets the
//! repro harness compute micro-F1 from daemon responses alone and re-run
//! the Table-3 qualitative checks against a *served* checkpoint.

use crate::http::Client;
use crate::json::{annotations_response, tables_from_request, Json};
use doduo_core::AnnotatorBundle;
use std::time::Duration;

/// Annotates a request body offline through the same codec the HTTP path
/// uses and returns the exact bytes `/annotate` would respond with. This
/// is what `doduo-served --oneshot` prints.
pub fn offline_response(bundle: &AnnotatorBundle, body: &str) -> Result<String, String> {
    let (tables, wrapped) = tables_from_request(body)?;
    let ann = bundle.annotator();
    let anns: Vec<_> = tables.iter().map(|t| ann.annotate(t)).collect();
    Ok(annotations_response(&anns, wrapped))
}

/// [`offline_response`] through the int8 tier: the reference a daemon
/// running with `--quant int8` is compared against. Quantized annotation is
/// batch-composition invariant (per-row activation scales, exact integer
/// accumulation), so annotating one table at a time here is bit-identical
/// to whatever micro-batches the daemon cut.
pub fn offline_response_quant(bundle: &AnnotatorBundle, body: &str) -> Result<String, String> {
    let (tables, wrapped) = tables_from_request(body)?;
    let ann = bundle.annotator();
    let qm = bundle.quantized();
    let anns: Vec<_> = tables
        .iter()
        .map(|t| {
            let groups = [bundle.model.serialize_for_types(t, &bundle.tokenizer)];
            let refs: Vec<&[_]> = groups.iter().map(Vec::as_slice).collect();
            qm.annotate_serialized(&ann, &refs).into_iter().next().expect("one table in")
        })
        .collect();
    Ok(annotations_response(&anns, wrapped))
}

/// POSTs each body to a live daemon's `/v1/annotate` and verifies every
/// response is byte-identical to [`offline_response`] over the same
/// bundle. Returns the number of bodies checked; the error names the first
/// diverging request.
pub fn check_online_equivalence(
    addr: &str,
    bundle: &AnnotatorBundle,
    bodies: &[String],
) -> Result<usize, String> {
    let mut client = Client::connect(addr, Some(Duration::from_secs(60)))
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    for (i, body) in bodies.iter().enumerate() {
        let resp = client
            .request("POST", "/v1/annotate", body.as_bytes())
            .map_err(|e| format!("request {i}: {e}"))?;
        if resp.status != 200 {
            return Err(format!("request {i}: HTTP {}", resp.status));
        }
        let offline = offline_response(bundle, body)?;
        if resp.body != offline.as_bytes() {
            return Err(format!(
                "request {i}: daemon response ({} bytes) diverges from offline ({} bytes)",
                resp.body.len(),
                offline.len()
            ));
        }
    }
    Ok(bodies.len())
}

/// The prediction sets decoded from one table's `/annotate` response.
#[derive(Debug)]
pub struct DecodedAnnotation {
    /// Chosen type label names per annotated column, in response order as
    /// `(column index, labels)`.
    pub col_types: Vec<(usize, Vec<String>)>,
    /// Chosen relation label names per `(subject, object)` column pair.
    pub relations: Vec<(usize, usize, Vec<String>)>,
}

/// Decodes the prediction sets out of one table's annotation JSON (the
/// unwrapped single-table `/annotate` response body) using the trainer's
/// rule: every label with score > 0.5; the top-scored label when none
/// clears the threshold.
pub fn decode_annotation(body: &str) -> Result<DecodedAnnotation, String> {
    decode_annotation_value(&Json::parse(body)?)
}

fn decode_annotation_value(v: &Json) -> Result<DecodedAnnotation, String> {
    let mut col_types = Vec::new();
    for t in v.get("types").and_then(Json::as_array).ok_or("response has no \"types\" array")? {
        let col = t.get("column").and_then(Json::as_f64).ok_or("type entry has no column")?;
        col_types.push((col as usize, chosen_labels(t)?));
    }
    let mut relations = Vec::new();
    if let Some(rels) = v.get("relations").and_then(Json::as_array) {
        for r in rels {
            let s = r.get("subject").and_then(Json::as_f64).ok_or("relation has no subject")?;
            let o = r.get("object").and_then(Json::as_f64).ok_or("relation has no object")?;
            relations.push((s as usize, o as usize, chosen_labels(r)?));
        }
    }
    Ok(DecodedAnnotation { col_types, relations })
}

/// Verifies two `/annotate` response bodies (single-table or wrapped
/// multi-table) decode to identical prediction sets under the trainer's
/// threshold/argmax rule. This is the int8 serving gate: a `--quant int8`
/// daemon need not be byte-identical to f32 (scores differ in low bits),
/// but the *labels it commits to* must not flip. Label lists are compared
/// as sets, so score-driven reordering within a prediction set is not a
/// divergence. Returns the number of tables compared.
pub fn check_label_equivalence(a: &str, b: &str) -> Result<usize, String> {
    let (va, vb) = (Json::parse(a)?, Json::parse(b)?);
    let (ta, tb) = (table_entries(&va), table_entries(&vb));
    if ta.len() != tb.len() {
        return Err(format!("responses cover {} vs {} tables", ta.len(), tb.len()));
    }
    for (i, (x, y)) in ta.iter().zip(&tb).enumerate() {
        let (mut dx, mut dy) = (decode_annotation_value(x)?, decode_annotation_value(y)?);
        for (_, labels) in dx.col_types.iter_mut().chain(dy.col_types.iter_mut()) {
            labels.sort();
        }
        for (_, _, labels) in dx.relations.iter_mut().chain(dy.relations.iter_mut()) {
            labels.sort();
        }
        if dx.col_types != dy.col_types {
            return Err(format!(
                "table {i}: column-type labels diverge ({:?} vs {:?})",
                dx.col_types, dy.col_types
            ));
        }
        if dx.relations != dy.relations {
            return Err(format!(
                "table {i}: relation labels diverge ({:?} vs {:?})",
                dx.relations, dy.relations
            ));
        }
    }
    Ok(ta.len())
}

/// The per-table annotation objects inside a response body: the elements of
/// the `annotations` array for wrapped multi-table responses, the document
/// itself for single-table ones.
fn table_entries(v: &Json) -> Vec<&Json> {
    match v.get("annotations").and_then(Json::as_array) {
        Some(arr) => arr.iter().collect(),
        None => vec![v],
    }
}

/// Applies the threshold/argmax rule to one entry's scored label list
/// (sorted descending by score, by construction).
fn chosen_labels(entry: &Json) -> Result<Vec<String>, String> {
    let labels =
        entry.get("labels").and_then(Json::as_array).ok_or("entry has no \"labels\" array")?;
    let mut out = Vec::new();
    for l in labels {
        let name = l.get("label").and_then(Json::as_str).ok_or("label entry has no name")?;
        let score = l.get("score").and_then(Json::as_f64).ok_or("label entry has no score")?;
        if score > 0.5 {
            out.push(name.to_string());
        }
    }
    if out.is_empty() {
        if let Some(first) = labels.first() {
            let name = first.get("label").and_then(Json::as_str).ok_or("label has no name")?;
            out.push(name.to_string());
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bootstrap::synthetic_world;
    use crate::json::table_to_json;

    #[test]
    fn offline_response_matches_oneshot_shape() {
        let w = synthetic_world(true, 42);
        let body = table_to_json(&w.tables[0]);
        let resp = offline_response(&w.bundle, &body).expect("annotates");
        assert!(resp.ends_with('\n'));
        assert!(resp.contains("\"types\""));
        let wrapped = format!("{{\"tables\": [{}]}}", body.trim_end());
        let multi = offline_response(&w.bundle, &wrapped).expect("annotates wrapped");
        assert!(multi.starts_with("{\"annotations\""));
    }

    #[test]
    fn decode_applies_threshold_with_argmax_fallback() {
        let body = r#"{
            "types": [
                {"column": 0, "labels": [
                    {"label": "a", "score": 0.9},
                    {"label": "b", "score": 0.6},
                    {"label": "c", "score": 0.2}
                ]},
                {"column": 1, "labels": [
                    {"label": "x", "score": 0.4},
                    {"label": "y", "score": 0.1}
                ]}
            ],
            "relations": [
                {"subject": 0, "object": 1, "labels": [{"label": "r", "score": 0.3}]}
            ]
        }"#;
        let d = decode_annotation(body).expect("decodes");
        assert_eq!(d.col_types[0], (0, vec!["a".to_string(), "b".to_string()]));
        assert_eq!(d.col_types[1], (1, vec!["x".to_string()]), "argmax fallback below threshold");
        assert_eq!(d.relations, vec![(0, 1, vec!["r".to_string()])]);
    }

    /// The int8 offline path is well-formed, decodable, and deterministic.
    /// It is NOT asserted label-identical to f32 here: this world's model is
    /// randomly initialized, so half the vocabulary sits at sigmoid ≈ 0.5
    /// where any numeric tier disagrees on threshold membership. Label
    /// identity is a *trained-model* contract, gated by the repro harness
    /// and the CI serve-smoke over a fine-tuned checkpoint.
    #[test]
    fn quant_offline_response_is_well_formed_and_deterministic() {
        let w = synthetic_world(true, 42);
        for t in w.tables.iter().take(4) {
            let body = table_to_json(t);
            let q = offline_response_quant(&w.bundle, &body).expect("int8 annotates");
            assert!(q.contains("\"types\""));
            assert!(q.ends_with('\n'));
            decode_annotation(&q).expect("int8 response decodes");
            let again = offline_response_quant(&w.bundle, &body).expect("int8 annotates again");
            assert_eq!(q, again, "int8 tier is bit-stable run to run");
            let f = offline_response(&w.bundle, &body).expect("f32 annotates");
            assert_eq!(
                decode_annotation(&q).expect("decodes").col_types.len(),
                decode_annotation(&f).expect("decodes").col_types.len(),
                "both tiers annotate every column"
            );
        }
    }

    #[test]
    fn label_equivalence_accepts_score_drift_and_rejects_flips() {
        let a = r#"{"types": [{"column": 0, "labels": [
            {"label": "a", "score": 0.91}, {"label": "b", "score": 0.62}]}]}"#;
        let drifted = r#"{"types": [{"column": 0, "labels": [
            {"label": "b", "score": 0.63}, {"label": "a", "score": 0.89}]}]}"#;
        let flipped = r#"{"types": [{"column": 0, "labels": [
            {"label": "a", "score": 0.91}, {"label": "b", "score": 0.44}]}]}"#;
        assert_eq!(check_label_equivalence(a, drifted).expect("same sets"), 1);
        assert!(check_label_equivalence(a, flipped).is_err(), "b dropped below threshold");
    }

    #[test]
    fn decode_round_trips_a_real_response() {
        let w = synthetic_world(true, 7);
        let body = table_to_json(&w.tables[1]);
        let resp = offline_response(&w.bundle, &body).expect("annotates");
        let d = decode_annotation(&resp).expect("decodes the daemon's own output");
        assert_eq!(d.col_types.len(), w.tables[1].columns.len());
        for (_, labels) in &d.col_types {
            assert!(!labels.is_empty(), "threshold/argmax rule always picks at least one");
        }
    }
}
