//! Minimal HTTP/1.1 on blocking std sockets — just enough of RFC 9112 for
//! the daemon's four endpoints: request-line + header parsing,
//! `Content-Length` bodies, keep-alive, and response writing. Hand-rolled
//! because the workspace is offline-only (no hyper/axum); the surface is
//! deliberately tiny and strict (no chunked encoding, no pipelining
//! guarantees beyond serial request/response per connection).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Upper bound on the request line + headers (DoS guard).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a request body (DoS guard).
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, ...).
    pub method: String,
    /// Request target path (query string stripped).
    pub path: String,
    /// Raw query string (without `?`), empty if absent.
    pub query: String,
    /// Body bytes (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
}

/// Why reading a request failed.
#[derive(Debug)]
pub enum ReadError {
    /// Peer closed (or half-closed) before a request line — normal at the
    /// end of a keep-alive connection.
    Eof,
    /// Read timed out (the caller decides whether to keep waiting).
    TimedOut,
    /// Malformed request; the payload is a human-readable reason to send
    /// back as 400.
    Bad(String),
    /// Underlying socket error.
    Io(std::io::Error),
}

fn io_err(e: std::io::Error) -> ReadError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => ReadError::TimedOut,
        std::io::ErrorKind::UnexpectedEof => ReadError::Eof,
        _ => ReadError::Io(e),
    }
}

/// Reads one request from a buffered stream. With a read timeout set on the
/// underlying socket, returns [`ReadError::TimedOut`] when the peer is idle
/// so callers can poll a shutdown flag between requests.
pub fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Request, ReadError> {
    let mut line = String::new();
    let mut head_bytes = 0usize;
    let n = match read_line_capped(reader, &mut line, &mut head_bytes) {
        Ok(n) => n,
        // A timeout before any byte of the request line is an idle
        // keep-alive connection — retryable. A timeout after partial data
        // is not (the bytes are consumed), so surface it as an I/O error
        // and let the caller close the connection.
        Err(ReadError::TimedOut) if !line.is_empty() => {
            return Err(ReadError::Io(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "timed out mid-request",
            )))
        }
        Err(e) => return Err(e),
    };
    if n == 0 {
        return Err(ReadError::Eof);
    }
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("").to_ascii_uppercase();
    let target = parts.next().unwrap_or("");
    let version = parts.next().unwrap_or("");
    if method.is_empty() || target.is_empty() || !version.starts_with("HTTP/1.") {
        return Err(ReadError::Bad(format!("malformed request line: {}", line.trim_end())));
    }
    let http11 = version == "HTTP/1.1";
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    // From here on a timeout is always mid-request: fatal for the
    // connection, never retryable.
    let fatal_timeout = |e: ReadError| match e {
        ReadError::TimedOut => ReadError::Io(std::io::Error::new(
            std::io::ErrorKind::TimedOut,
            "timed out mid-request",
        )),
        other => other,
    };
    let mut content_length = 0usize;
    let mut keep_alive = http11; // HTTP/1.1 defaults to persistent.
    loop {
        line.clear();
        read_line_capped(reader, &mut line, &mut head_bytes).map_err(&fatal_timeout)?;
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        let Some((name, value)) = trimmed.split_once(':') else {
            return Err(ReadError::Bad(format!("malformed header: {trimmed}")));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| ReadError::Bad(format!("bad content-length: {value}")))?;
        } else if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(ReadError::Bad("transfer-encoding is not supported".into()));
        }
    }

    if content_length > MAX_BODY_BYTES {
        return Err(ReadError::Bad(format!("body of {content_length} bytes exceeds limit")));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| fatal_timeout(io_err(e)))?;
    Ok(Request { method, path, query, body, keep_alive })
}

/// `read_line` with the head cap enforced *incrementally*: a peer that
/// streams an endless header line without `\n` is cut off at
/// [`MAX_HEAD_BYTES`] instead of buffering unbounded memory. On timeout,
/// bytes consumed so far are preserved in `line` so the caller can tell an
/// idle connection (empty) from a stalled mid-request one.
fn read_line_capped(
    reader: &mut BufReader<TcpStream>,
    line: &mut String,
    head_bytes: &mut usize,
) -> Result<usize, ReadError> {
    let mut bytes: Vec<u8> = Vec::new();
    let total = loop {
        let (used, done) = {
            let buf = match reader.fill_buf() {
                Ok(b) => b,
                Err(e) => {
                    line.push_str(&String::from_utf8_lossy(&bytes));
                    return Err(io_err(e));
                }
            };
            if buf.is_empty() {
                break bytes.len(); // EOF
            }
            match buf.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    bytes.extend_from_slice(&buf[..=pos]);
                    (pos + 1, true)
                }
                None => {
                    bytes.extend_from_slice(buf);
                    (buf.len(), false)
                }
            }
        };
        reader.consume(used);
        *head_bytes += used;
        if *head_bytes > MAX_HEAD_BYTES {
            return Err(ReadError::Bad("request head too large".into()));
        }
        if done {
            break bytes.len();
        }
    };
    line.push_str(
        std::str::from_utf8(&bytes)
            .map_err(|_| ReadError::Bad("request head is not valid UTF-8".into()))?,
    );
    Ok(total)
}

/// Writes one `text` response (JSON or plain) with standard headers.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: {content_type}\r\ncontent-length: \
         {}\r\nconnection: {}\r\n\r\n",
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Convenience wrapper: a JSON error body `{"error": "..."}`.
pub fn write_error(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    message: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut body = String::from("{\"error\":");
    crate::json::push_escaped(&mut body, message);
    body.push_str("}\n");
    write_response(stream, status, reason, "application/json", &body, keep_alive)
}

/// A very small blocking HTTP client — shared by the `serve_load` bench and
/// the integration tests so they exercise the daemon over real sockets.
pub struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

/// A decoded client-side response.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Client {
    /// Connects with an optional read timeout.
    pub fn connect(addr: &str, timeout: Option<Duration>) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(timeout)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client { stream, reader })
    }

    /// Issues one request on the persistent connection and reads the full
    /// response.
    pub fn request(&mut self, method: &str, path: &str, body: &[u8]) -> std::io::Result<Response> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: localhost\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body)?;
        self.stream.flush()?;

        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        let status: u16 = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| std::io::Error::other(format!("bad status line: {line:?}")))?;
        let mut content_length = 0usize;
        loop {
            line.clear();
            let n = self.reader.read_line(&mut line)?;
            if n == 0 {
                return Err(std::io::Error::other("connection closed mid-headers"));
            }
            let t = line.trim_end();
            if t.is_empty() {
                break;
            }
            if let Some((name, value)) = t.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().unwrap_or(0);
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        Ok(Response { status, body })
    }
}
