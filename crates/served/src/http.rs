//! Minimal HTTP/1.1 on blocking std sockets — just enough of RFC 9112 for
//! the daemon's endpoints: request-line + header parsing, `Content-Length`
//! *and* chunked transfer-encoded bodies, keep-alive, `Expect:
//! 100-continue`, and response writing (fixed-length and chunked).
//! Hand-rolled because the workspace is offline-only (no hyper/axum); the
//! surface is deliberately tiny and strict.
//!
//! The parser is split head/body so the daemon can route *before* buffering
//! a body: `/annotate_stream` consumes its (usually chunked) body
//! incrementally through [`BodyReader`] while results stream back, whereas
//! the plain endpoints read the whole body with [`read_body`]. Size limits
//! are enforced incrementally ([`MAX_HEAD_BYTES`], [`MAX_BODY_BYTES`] →
//! HTTP 413) and every read carries a wall-clock deadline so a byte-dripping
//! client cannot pin a pool worker (→ HTTP 408).
//!
//! Two parsing styles share one grammar: the blocking readers
//! ([`read_head`], [`BodyReader`]) pull from a `BufRead`, while the sans-IO
//! forms ([`parse_head`], [`BodyDecoder`]) consume from a caller-owned byte
//! buffer — that is what the epoll reactor feeds from non-blocking reads.
//! Both route through the same request-line/header functions, so the
//! hardening guarantees (smuggling rejections, size caps) hold identically
//! under every topology.
//!
//! Every 4xx/5xx body uses one JSON error envelope (see
//! [`error_envelope`]): `{"error": {"code", "message", "retry_after_ms"?}}`
//! — shared verbatim by `doduo-balance`, so clients parse one shape no
//! matter which tier rejected them.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Upper bound on the request line + headers (DoS guard → 413).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a request body (DoS guard → 413).
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// How a request's body bytes are framed on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BodyFraming {
    /// No body (no `Content-Length`, no `Transfer-Encoding`).
    None,
    /// `Content-Length: n`.
    Length(usize),
    /// `Transfer-Encoding: chunked`.
    Chunked,
}

/// One parsed request head (everything before the body).
#[derive(Debug)]
pub struct Head {
    /// Upper-cased method (`GET`, `POST`, ...).
    pub method: String,
    /// Request target path (query string stripped).
    pub path: String,
    /// Raw query string (without `?`), empty if absent.
    pub query: String,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
    /// Whether the client sent `Expect: 100-continue` and is waiting for an
    /// interim response before transmitting the body.
    pub expect_continue: bool,
    /// How the body is framed.
    pub framing: BodyFraming,
}

/// One parsed HTTP request (head + fully buffered body).
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, ...).
    pub method: String,
    /// Request target path (query string stripped).
    pub path: String,
    /// Raw query string (without `?`), empty if absent.
    pub query: String,
    /// Body bytes.
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
}

/// Why reading a request failed.
#[derive(Debug)]
pub enum ReadError {
    /// Peer closed (or half-closed) before a request line — normal at the
    /// end of a keep-alive connection.
    Eof,
    /// Read timed out (the caller decides whether to keep waiting).
    TimedOut,
    /// Malformed request; the payload is a human-readable reason to send
    /// back as 400.
    Bad(String),
    /// The head or body exceeded a size limit; send back 413.
    TooLarge(String),
    /// The request dribbled in past its wall-clock deadline; send back 408.
    TooSlow,
    /// Underlying socket error.
    Io(std::io::Error),
}

fn io_err(e: std::io::Error) -> ReadError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => ReadError::TimedOut,
        std::io::ErrorKind::UnexpectedEof => ReadError::Eof,
        _ => ReadError::Io(e),
    }
}

/// A request head mid-construction while header lines are applied.
struct HeadBuilder {
    method: String,
    path: String,
    query: String,
    keep_alive: bool,
    expect_continue: bool,
    framing: BodyFraming,
}

impl HeadBuilder {
    /// Parses the request line (`METHOD /target HTTP/1.x`).
    fn from_request_line(line: &str) -> Result<HeadBuilder, ReadError> {
        let mut parts = line.split_whitespace();
        let method = parts.next().unwrap_or("").to_ascii_uppercase();
        let target = parts.next().unwrap_or("");
        let version = parts.next().unwrap_or("");
        if method.is_empty() || target.is_empty() || !version.starts_with("HTTP/1.") {
            return Err(ReadError::Bad(format!("malformed request line: {}", line.trim_end())));
        }
        let http11 = version == "HTTP/1.1";
        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p.to_string(), q.to_string()),
            None => (target.to_string(), String::new()),
        };
        Ok(HeadBuilder {
            method,
            path,
            query,
            keep_alive: http11, // HTTP/1.1 defaults to persistent.
            expect_continue: false,
            framing: BodyFraming::None,
        })
    }

    /// Applies one (already `trim_end`ed, non-empty) header line.
    fn apply_header(&mut self, trimmed: &str) -> Result<(), ReadError> {
        let Some((name, value)) = trimmed.split_once(':') else {
            return Err(ReadError::Bad(format!("malformed header: {trimmed}")));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            // Ambiguous framing is a request-smuggling vector (the peer
            // and any intermediary may disagree on where the body ends),
            // so chunked + Content-Length and repeated Content-Length are
            // rejected outright rather than resolved.
            match self.framing {
                BodyFraming::Chunked => {
                    return Err(ReadError::Bad(
                        "both transfer-encoding and content-length present".into(),
                    ))
                }
                BodyFraming::Length(_) => {
                    return Err(ReadError::Bad("duplicate content-length header".into()))
                }
                BodyFraming::None => {}
            }
            let n: usize = value
                .parse()
                .map_err(|_| ReadError::Bad(format!("bad content-length: {value}")))?;
            self.framing = BodyFraming::Length(n);
        } else if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                self.keep_alive = false;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                self.keep_alive = true;
            }
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            if !value.eq_ignore_ascii_case("chunked") {
                return Err(ReadError::Bad(format!("unsupported transfer-encoding: {value}")));
            }
            if matches!(self.framing, BodyFraming::Length(_)) {
                return Err(ReadError::Bad(
                    "both transfer-encoding and content-length present".into(),
                ));
            }
            self.framing = BodyFraming::Chunked;
        } else if name.eq_ignore_ascii_case("expect") {
            if !value.eq_ignore_ascii_case("100-continue") {
                return Err(ReadError::Bad(format!("unsupported expectation: {value}")));
            }
            self.expect_continue = true;
        }
        Ok(())
    }

    fn finish(self) -> Head {
        Head {
            method: self.method,
            path: self.path,
            query: self.query,
            keep_alive: self.keep_alive,
            expect_continue: self.expect_continue,
            framing: self.framing,
        }
    }
}

/// Reads one request head. With a read timeout set on the underlying
/// socket, returns [`ReadError::TimedOut`] when the peer is idle *before
/// the first byte* so callers can poll a shutdown flag between requests; a
/// timeout after partial data is fatal for the connection. `deadline`
/// bounds the total wall time the head may take once its first byte has
/// arrived.
pub fn read_head(reader: &mut impl BufRead, deadline: Instant) -> Result<Head, ReadError> {
    let mut line = String::new();
    let mut head_bytes = 0usize;
    let n = match read_line_capped(reader, &mut line, &mut head_bytes, deadline) {
        Ok(n) => n,
        // A timeout before any byte of the request line is an idle
        // keep-alive connection — retryable. A timeout after partial data
        // is not (the bytes are consumed), so surface it as an I/O error
        // and let the caller close the connection.
        Err(ReadError::TimedOut) if !line.is_empty() => {
            return Err(ReadError::Io(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "timed out mid-request",
            )))
        }
        Err(e) => return Err(e),
    };
    if n == 0 {
        return Err(ReadError::Eof);
    }
    let mut head = HeadBuilder::from_request_line(&line)?;

    // From here on a timeout is always mid-request: fatal for the
    // connection, never retryable.
    let fatal_timeout = |e: ReadError| match e {
        ReadError::TimedOut => ReadError::Io(std::io::Error::new(
            std::io::ErrorKind::TimedOut,
            "timed out mid-request",
        )),
        other => other,
    };
    loop {
        line.clear();
        read_line_capped(reader, &mut line, &mut head_bytes, deadline).map_err(&fatal_timeout)?;
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        head.apply_header(trimmed)?;
    }
    Ok(head.finish())
}

/// Sans-IO form of [`read_head`]: parses one request head from the front of
/// `buf` (bytes accumulated by a non-blocking reader). Returns
/// `Ok(Some((head, consumed)))` when a complete head is present,
/// `Ok(None)` when more bytes are needed, and the same [`ReadError::Bad`] /
/// [`ReadError::TooLarge`] classifications as the blocking reader —
/// including the incremental [`MAX_HEAD_BYTES`] cap, which fires even
/// before the head terminator arrives.
pub fn parse_head(buf: &[u8]) -> Result<Option<(Head, usize)>, ReadError> {
    // Find the blank line ending the head: the first "\n" followed by an
    // optionally-\r'd "\n" (the line readers accept bare-LF lines too).
    let mut end = None;
    let mut i = 0usize;
    while let Some(pos) = buf[i..].iter().position(|&b| b == b'\n') {
        let line_start = i;
        i += pos + 1;
        let line = &buf[line_start..i];
        let is_blank = line == b"\n" || line == b"\r\n";
        if is_blank && line_start > 0 {
            end = Some(i);
            break;
        }
    }
    let Some(end) = end else {
        if buf.len() > MAX_HEAD_BYTES {
            return Err(ReadError::TooLarge("request head too large".into()));
        }
        return Ok(None);
    };
    if end > MAX_HEAD_BYTES {
        return Err(ReadError::TooLarge("request head too large".into()));
    }
    let text = std::str::from_utf8(&buf[..end])
        .map_err(|_| ReadError::Bad("request head is not valid UTF-8".into()))?;
    let mut lines = text.split('\n');
    let request_line = lines.next().unwrap_or("");
    let mut head = HeadBuilder::from_request_line(request_line)?;
    for line in lines {
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        head.apply_header(trimmed)?;
    }
    Ok(Some((head.finish(), end)))
}

/// Reads one full request (head + buffered body) — the convenience form
/// used by tests and simple callers. Does **not** send `100 Continue`; the
/// daemon handles that itself because it needs the write half.
pub fn read_request(reader: &mut impl BufRead) -> Result<Request, ReadError> {
    let deadline = Instant::now() + Duration::from_secs(10);
    let head = read_head(reader, deadline)?;
    let body = read_body(reader, head.framing, deadline)?;
    Ok(Request {
        method: head.method,
        path: head.path,
        query: head.query,
        body,
        keep_alive: head.keep_alive,
    })
}

/// Buffers a whole request body under [`MAX_BODY_BYTES`]. Mid-body
/// timeouts are fatal (the connection is out of sync); `deadline` bounds
/// total wall time.
pub fn read_body(
    reader: &mut impl BufRead,
    framing: BodyFraming,
    deadline: Instant,
) -> Result<Vec<u8>, ReadError> {
    if let BodyFraming::Length(n) = framing {
        // Reject a declared-oversized body before buffering any of it.
        if n > MAX_BODY_BYTES {
            return Err(ReadError::TooLarge(format!("body of {n} bytes exceeds limit")));
        }
    }
    let mut body = Vec::new();
    let mut r = BodyReader::new(framing);
    let mut buf = [0u8; 8 * 1024];
    loop {
        match r.read_some(reader, &mut buf) {
            Ok(0) => return Ok(body),
            Ok(n) => {
                if body.len() + n > MAX_BODY_BYTES {
                    return Err(ReadError::TooLarge("body exceeds limit".into()));
                }
                body.extend_from_slice(&buf[..n]);
                if Instant::now() > deadline {
                    return Err(ReadError::TooSlow);
                }
            }
            Err(ReadError::TimedOut) => {
                return Err(ReadError::Io(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "timed out mid-body",
                )))
            }
            Err(e) => return Err(e),
        }
    }
}

/// Incremental request-body reader: decodes `Content-Length` or chunked
/// framing one slice at a time, preserving its state across socket read
/// timeouts so a caller can interleave other work (the streaming endpoint
/// polls annotation results between reads). `Ok(0)` means the body is
/// complete; [`ReadError::TimedOut`] is always retryable here.
#[derive(Debug)]
pub struct BodyReader {
    framing: BodyFraming,
    /// Bytes left in the current content-length body or chunk payload.
    remaining: usize,
    /// Chunked state machine position.
    state: ChunkState,
    /// Partial chunk-header line carried across timeouts.
    partial: Vec<u8>,
    /// Total body bytes produced so far.
    produced: usize,
    /// Cap on `produced` (→ 413), or `None` for endpoints that consume the
    /// body incrementally and bound their memory another way (the
    /// streaming endpoint caps per-document size and read-ahead instead —
    /// a stream's *total* length is legitimately unbounded).
    total_cap: Option<usize>,
}

#[derive(Debug, PartialEq, Eq)]
enum ChunkState {
    /// Expecting a `<hex-size>\r\n` line.
    Size,
    /// Mid-payload (`remaining` bytes left, then a CRLF).
    Data,
    /// Expecting the CRLF that terminates a chunk payload.
    DataEnd,
    /// Expecting trailer lines after the `0` chunk (ended by a blank line).
    Trailer,
    /// Body fully consumed.
    Done,
}

impl BodyReader {
    /// A reader at the start of a body framed as `framing`, capped at
    /// [`MAX_BODY_BYTES`] total (the right default for buffered bodies).
    pub fn new(framing: BodyFraming) -> BodyReader {
        Self::with_cap(framing, Some(MAX_BODY_BYTES))
    }

    /// A reader without the total-size cap, for callers that consume the
    /// body incrementally and bound memory themselves.
    pub fn unbounded(framing: BodyFraming) -> BodyReader {
        Self::with_cap(framing, None)
    }

    fn with_cap(framing: BodyFraming, total_cap: Option<usize>) -> BodyReader {
        let (remaining, state) = match framing {
            BodyFraming::None => (0, ChunkState::Done),
            BodyFraming::Length(n) => (n, if n == 0 { ChunkState::Done } else { ChunkState::Data }),
            BodyFraming::Chunked => (0, ChunkState::Size),
        };
        BodyReader { framing, remaining, state, partial: Vec::new(), produced: 0, total_cap }
    }

    /// True once the body has been fully consumed.
    pub fn is_done(&self) -> bool {
        self.state == ChunkState::Done
    }

    /// Reads some body bytes into `buf`. Returns `Ok(0)` when the body is
    /// complete. [`ReadError::TimedOut`] leaves the reader in a resumable
    /// state (call again later); other errors are fatal.
    pub fn read_some(
        &mut self,
        reader: &mut impl BufRead,
        buf: &mut [u8],
    ) -> Result<usize, ReadError> {
        loop {
            match self.state {
                ChunkState::Done => return Ok(0),
                ChunkState::Data => {
                    let want = self.remaining.min(buf.len());
                    let n = match reader.read(&mut buf[..want]) {
                        Ok(0) => return Err(ReadError::Eof),
                        Ok(n) => n,
                        Err(e) => return Err(io_err(e)),
                    };
                    self.remaining -= n;
                    self.produced += n;
                    if self.total_cap.is_some_and(|cap| self.produced > cap) {
                        return Err(ReadError::TooLarge("body exceeds limit".into()));
                    }
                    if self.remaining == 0 {
                        self.state = match self.framing {
                            BodyFraming::Length(_) => ChunkState::Done,
                            BodyFraming::Chunked => ChunkState::DataEnd,
                            BodyFraming::None => unreachable!("no-body framing has no data"),
                        };
                    }
                    return Ok(n);
                }
                ChunkState::Size => {
                    let Some(line) = self.try_line(reader)? else { continue };
                    let hex = line.split(';').next().unwrap_or("").trim();
                    let size = usize::from_str_radix(hex, 16)
                        .map_err(|_| ReadError::Bad(format!("bad chunk size: {hex:?}")))?;
                    if size == 0 {
                        self.state = ChunkState::Trailer;
                    } else {
                        if self.total_cap.is_some_and(|cap| self.produced + size > cap) {
                            return Err(ReadError::TooLarge("chunked body exceeds limit".into()));
                        }
                        self.remaining = size;
                        self.state = ChunkState::Data;
                    }
                }
                ChunkState::DataEnd => {
                    let Some(line) = self.try_line(reader)? else { continue };
                    if !line.is_empty() {
                        return Err(ReadError::Bad("missing CRLF after chunk data".into()));
                    }
                    self.state = ChunkState::Size;
                }
                ChunkState::Trailer => {
                    let Some(line) = self.try_line(reader)? else { continue };
                    if line.is_empty() {
                        self.state = ChunkState::Done;
                        return Ok(0);
                    }
                    // Trailer fields are read and discarded.
                }
            }
        }
    }

    /// Reads one CRLF-terminated framing line, accumulating partial bytes
    /// across timeouts. `Ok(None)` never happens (loops internally until a
    /// full line, timeout, or error) — it returns `Some(line)` without the
    /// terminator.
    fn try_line(&mut self, reader: &mut impl BufRead) -> Result<Option<String>, ReadError> {
        loop {
            let (used, done) = {
                let chunk = match reader.fill_buf() {
                    Ok(b) => b,
                    Err(e) => return Err(io_err(e)),
                };
                if chunk.is_empty() {
                    return Err(ReadError::Eof);
                }
                match chunk.iter().position(|&b| b == b'\n') {
                    Some(pos) => {
                        self.partial.extend_from_slice(&chunk[..=pos]);
                        (pos + 1, true)
                    }
                    None => {
                        self.partial.extend_from_slice(chunk);
                        (chunk.len(), false)
                    }
                }
            };
            reader.consume(used);
            if self.partial.len() > 256 {
                return Err(ReadError::Bad("chunk framing line too long".into()));
            }
            if done {
                let line = std::str::from_utf8(&self.partial)
                    .map_err(|_| ReadError::Bad("chunk framing is not valid UTF-8".into()))?
                    .trim_end()
                    .to_string();
                self.partial.clear();
                return Ok(Some(line));
            }
        }
    }
}

/// Sans-IO counterpart of [`BodyReader`]: decodes `Content-Length` or
/// chunked framing from caller-owned buffers instead of a socket. The epoll
/// reactor appends whatever its non-blocking reads return and feeds it
/// here; the decoder consumes what it can, appends decoded body bytes to
/// `out`, and remembers its position across calls. Error classification
/// (bad chunk framing → 400, size caps → 413) matches the blocking reader
/// exactly, so the hardening suite holds under both topologies.
#[derive(Debug)]
pub struct BodyDecoder {
    framing: BodyFraming,
    /// Bytes left in the current content-length body or chunk payload.
    remaining: usize,
    state: ChunkState,
    /// Partial chunk-header line carried across feeds.
    partial: Vec<u8>,
    /// Total body bytes produced so far (cap → 413).
    produced: usize,
}

impl BodyDecoder {
    /// A decoder at the start of a body framed as `framing`, capped at
    /// [`MAX_BODY_BYTES`] total. A declared-oversized `Content-Length` is
    /// rejected on the first [`BodyDecoder::push`], before buffering.
    pub fn new(framing: BodyFraming) -> BodyDecoder {
        let (remaining, state) = match framing {
            BodyFraming::None => (0, ChunkState::Done),
            BodyFraming::Length(n) => (n, if n == 0 { ChunkState::Done } else { ChunkState::Data }),
            BodyFraming::Chunked => (0, ChunkState::Size),
        };
        BodyDecoder { framing, remaining, state, partial: Vec::new(), produced: 0 }
    }

    /// True once the body has been fully decoded.
    pub fn is_done(&self) -> bool {
        self.state == ChunkState::Done
    }

    /// Consumes as much of `input` as possible, appending decoded body
    /// bytes to `out`. Returns the number of input bytes consumed; check
    /// [`BodyDecoder::is_done`] to see whether the body is complete (a
    /// short consume with `is_done() == false` means more wire bytes are
    /// needed).
    pub fn push(&mut self, input: &[u8], out: &mut Vec<u8>) -> Result<usize, ReadError> {
        if let BodyFraming::Length(n) = self.framing {
            if n > MAX_BODY_BYTES {
                return Err(ReadError::TooLarge(format!("body of {n} bytes exceeds limit")));
            }
        }
        let mut used = 0usize;
        loop {
            let rest = &input[used..];
            match self.state {
                ChunkState::Done => return Ok(used),
                ChunkState::Data => {
                    if rest.is_empty() {
                        return Ok(used);
                    }
                    let take = self.remaining.min(rest.len());
                    if self.produced + take > MAX_BODY_BYTES {
                        return Err(ReadError::TooLarge("body exceeds limit".into()));
                    }
                    out.extend_from_slice(&rest[..take]);
                    self.produced += take;
                    self.remaining -= take;
                    used += take;
                    if self.remaining == 0 {
                        self.state = match self.framing {
                            BodyFraming::Length(_) => ChunkState::Done,
                            BodyFraming::Chunked => ChunkState::DataEnd,
                            BodyFraming::None => unreachable!("no-body framing has no data"),
                        };
                    }
                }
                ChunkState::Size => {
                    let Some(line) = self.take_line(rest, &mut used)? else { return Ok(used) };
                    let hex = line.split(';').next().unwrap_or("").trim();
                    let size = usize::from_str_radix(hex, 16)
                        .map_err(|_| ReadError::Bad(format!("bad chunk size: {hex:?}")))?;
                    if size == 0 {
                        self.state = ChunkState::Trailer;
                    } else {
                        if self.produced + size > MAX_BODY_BYTES {
                            return Err(ReadError::TooLarge("chunked body exceeds limit".into()));
                        }
                        self.remaining = size;
                        self.state = ChunkState::Data;
                    }
                }
                ChunkState::DataEnd => {
                    let Some(line) = self.take_line(rest, &mut used)? else { return Ok(used) };
                    if !line.is_empty() {
                        return Err(ReadError::Bad("missing CRLF after chunk data".into()));
                    }
                    self.state = ChunkState::Size;
                }
                ChunkState::Trailer => {
                    let Some(line) = self.take_line(rest, &mut used)? else { return Ok(used) };
                    if line.is_empty() {
                        self.state = ChunkState::Done;
                        return Ok(used);
                    }
                    // Trailer fields are read and discarded.
                }
            }
        }
    }

    /// Pulls one framing line out of `rest`, accumulating partial bytes
    /// across feeds. `Ok(None)` = need more input.
    fn take_line(&mut self, rest: &[u8], used: &mut usize) -> Result<Option<String>, ReadError> {
        match rest.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                self.partial.extend_from_slice(&rest[..=pos]);
                *used += pos + 1;
            }
            None => {
                self.partial.extend_from_slice(rest);
                *used += rest.len();
            }
        }
        if self.partial.len() > 256 {
            return Err(ReadError::Bad("chunk framing line too long".into()));
        }
        if self.partial.last() != Some(&b'\n') {
            return Ok(None);
        }
        let line = std::str::from_utf8(&self.partial)
            .map_err(|_| ReadError::Bad("chunk framing is not valid UTF-8".into()))?
            .trim_end()
            .to_string();
        self.partial.clear();
        Ok(Some(line))
    }
}

/// A reader that replays `prefix` bytes before delegating to `inner` — how
/// the reactor hands a streaming connection (whose head and early body
/// bytes it already consumed into its buffer) to a blocking stream handler
/// without losing a byte.
pub struct Prefixed<R> {
    prefix: Vec<u8>,
    pos: usize,
    inner: R,
}

impl<R: Read> Prefixed<R> {
    /// Wraps `inner`, yielding `prefix` first.
    pub fn new(prefix: Vec<u8>, inner: R) -> Prefixed<R> {
        Prefixed { prefix, pos: 0, inner }
    }
}

impl<R: Read> Read for Prefixed<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos < self.prefix.len() {
            let n = (self.prefix.len() - self.pos).min(buf.len());
            buf[..n].copy_from_slice(&self.prefix[self.pos..self.pos + n]);
            self.pos += n;
            return Ok(n);
        }
        self.inner.read(buf)
    }
}

/// `read_line` with the head cap enforced *incrementally*: a peer that
/// streams an endless header line without `\n` is cut off at
/// [`MAX_HEAD_BYTES`] instead of buffering unbounded memory. On timeout,
/// bytes consumed so far are preserved in `line` so the caller can tell an
/// idle connection (empty) from a stalled mid-request one. `deadline`
/// bounds total wall time across reads.
fn read_line_capped(
    reader: &mut impl BufRead,
    line: &mut String,
    head_bytes: &mut usize,
    deadline: Instant,
) -> Result<usize, ReadError> {
    let mut bytes: Vec<u8> = Vec::new();
    let total = loop {
        let (used, done) = {
            let buf = match reader.fill_buf() {
                Ok(b) => b,
                Err(e) => {
                    line.push_str(&String::from_utf8_lossy(&bytes));
                    return Err(io_err(e));
                }
            };
            if buf.is_empty() {
                break bytes.len(); // EOF
            }
            match buf.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    bytes.extend_from_slice(&buf[..=pos]);
                    (pos + 1, true)
                }
                None => {
                    bytes.extend_from_slice(buf);
                    (buf.len(), false)
                }
            }
        };
        reader.consume(used);
        *head_bytes += used;
        if *head_bytes > MAX_HEAD_BYTES {
            return Err(ReadError::TooLarge("request head too large".into()));
        }
        if Instant::now() > deadline {
            return Err(ReadError::TooSlow);
        }
        if done {
            break bytes.len();
        }
    };
    line.push_str(
        std::str::from_utf8(&bytes)
            .map_err(|_| ReadError::Bad("request head is not valid UTF-8".into()))?,
    );
    Ok(total)
}

/// The canonical reason phrase for the status codes this workspace emits.
pub fn reason_for(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// The machine-readable error `code` the unified envelope carries for a
/// given status, used when a caller only has a status + human message.
pub fn code_for_status(status: u16) -> &'static str {
    match status {
        400 => "bad_request",
        404 => "not_found",
        408 => "request_timeout",
        413 => "payload_too_large",
        500 => "internal",
        501 => "not_implemented",
        502 => "bad_gateway",
        503 => "unavailable",
        _ => "error",
    }
}

/// Renders the unified error envelope shared by `doduo-served` and
/// `doduo-balance`:
/// `{"error":{"code":"...","message":"...","retry_after_ms":N}}` (the
/// `retry_after_ms` field appears only when a retry hint is given).
pub fn error_envelope(code: &str, message: &str, retry_after_ms: Option<u64>) -> String {
    let mut body = String::from("{\"error\":{\"code\":");
    crate::json::push_escaped(&mut body, code);
    body.push_str(",\"message\":");
    crate::json::push_escaped(&mut body, message);
    if let Some(ms) = retry_after_ms {
        body.push_str(&format!(",\"retry_after_ms\":{ms}"));
    }
    body.push_str("}}\n");
    body
}

/// Formats a full response (head + body) into one byte buffer — the
/// building block the epoll reactor queues on a connection's outbox, and
/// the body of the blocking writers below.
pub fn render_response(
    status: u16,
    reason: &str,
    content_type: &str,
    extra: &str,
    body: &str,
    keep_alive: bool,
) -> Vec<u8> {
    let mut out = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: {content_type}\r\ncontent-length: \
         {}\r\nconnection: {}\r\n{extra}\r\n",
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )
    .into_bytes();
    out.extend_from_slice(body.as_bytes());
    out
}

/// Writes one `text` response (JSON or plain) with standard headers.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    write_response_extra(stream, status, reason, content_type, "", body, keep_alive)
}

/// [`write_response`] with extra pre-formatted header lines (each
/// `name: value\r\n`) spliced in before the blank line.
fn write_response_extra(
    stream: &mut impl Write,
    status: u16,
    reason: &str,
    content_type: &str,
    extra: &str,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    stream.write_all(&render_response(status, reason, content_type, extra, body, keep_alive))?;
    stream.flush()
}

/// Writes the unified error envelope with the code derived from the
/// status via [`code_for_status`].
pub fn write_error(
    stream: &mut impl Write,
    status: u16,
    reason: &str,
    message: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    write_error_code(stream, status, reason, code_for_status(status), message, keep_alive)
}

/// [`write_error`] with an explicit envelope `code` when the default
/// status-derived one is too coarse.
pub fn write_error_code(
    stream: &mut impl Write,
    status: u16,
    reason: &str,
    code: &str,
    message: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    let body = error_envelope(code, message, None);
    write_response(stream, status, reason, "application/json", &body, keep_alive)
}

/// The daemon's standard backpressure response: `503 Service Unavailable`
/// with a `Retry-After` header plus the matching `retry_after_ms`
/// envelope field, so well-behaved clients (the balancer, the
/// `serve_load` closed-loop clients) back off instead of hammering.
pub fn write_unavailable(
    stream: &mut impl Write,
    code: &str,
    message: &str,
    keep_alive: bool,
    retry_after_secs: u64,
) -> std::io::Result<()> {
    let body = error_envelope(code, message, Some(retry_after_secs * 1000));
    let extra = format!("retry-after: {retry_after_secs}\r\n");
    write_response_extra(
        stream,
        503,
        "Service Unavailable",
        "application/json",
        &extra,
        &body,
        keep_alive,
    )
}

/// Sends the `100 Continue` interim response an `Expect: 100-continue`
/// client waits for before transmitting its body.
pub fn write_continue(stream: &mut impl Write) -> std::io::Result<()> {
    stream.write_all(b"HTTP/1.1 100 Continue\r\n\r\n")?;
    stream.flush()
}

/// Starts a chunked (streaming) response: status line + headers, no body
/// yet. Follow with [`write_chunk`] calls and one [`write_last_chunk`].
pub fn write_chunked_head(
    stream: &mut impl Write,
    status: u16,
    reason: &str,
    content_type: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: {content_type}\r\ntransfer-encoding: \
         chunked\r\nconnection: close\r\n\r\n"
    );
    stream.write_all(head.as_bytes())?;
    stream.flush()
}

/// Writes one response chunk (no-op for empty data, which would terminate
/// the stream early).
pub fn write_chunk(stream: &mut impl Write, data: &[u8]) -> std::io::Result<()> {
    if data.is_empty() {
        return Ok(());
    }
    write!(stream, "{:x}\r\n", data.len())?;
    stream.write_all(data)?;
    stream.write_all(b"\r\n")?;
    stream.flush()
}

/// Terminates a chunked response (`0\r\n\r\n`).
pub fn write_last_chunk(stream: &mut impl Write) -> std::io::Result<()> {
    stream.write_all(b"0\r\n\r\n")?;
    stream.flush()
}

/// A very small blocking HTTP client — shared by the `serve_load` bench and
/// the integration tests so they exercise the daemon over real sockets.
/// One persistent connection; [`Client::request`] for plain
/// request/response, the `stream_*` family for chunked uploads with
/// incrementally read chunked responses.
pub struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    /// Dechunking state for an in-flight streaming response.
    resp_chunk_left: usize,
    resp_done: bool,
    resp_buf: Vec<u8>,
}

/// A decoded client-side response.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Body bytes.
    pub body: Vec<u8>,
    /// Seconds from a `Retry-After` header, if the server sent one (the
    /// backoff hint on 503 backpressure responses).
    pub retry_after: Option<u64>,
    /// The `x-model-version` header, if the server sent one — the
    /// `"{version}-{crc:08x}"` label of the model that produced this
    /// response.
    pub model_version: Option<String>,
    /// True when the response carried a `Deprecation` header (the request
    /// used a legacy unprefixed route).
    pub deprecated: bool,
}

/// Parsed response head fields [`Client::read_response_head`] extracts.
#[derive(Debug, Default)]
struct RespHead {
    status: u16,
    content_length: usize,
    chunked: bool,
    retry_after: Option<u64>,
    model_version: Option<String>,
    deprecated: bool,
}

impl Client {
    /// Connects with an optional read timeout.
    pub fn connect(addr: &str, timeout: Option<Duration>) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(timeout)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client { stream, reader, resp_chunk_left: 0, resp_done: true, resp_buf: Vec::new() })
    }

    /// Issues one request on the persistent connection and reads the full
    /// response.
    pub fn request(&mut self, method: &str, path: &str, body: &[u8]) -> std::io::Result<Response> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: localhost\r\nconnection: keep-alive\r\n\
             content-length: {}\r\n\r\n",
            body.len()
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body)?;
        self.stream.flush()?;

        let head = self.read_response_head()?;
        let mut body = vec![0u8; head.content_length];
        self.reader.read_exact(&mut body)?;
        Ok(Response {
            status: head.status,
            body,
            retry_after: head.retry_after,
            model_version: head.model_version,
            deprecated: head.deprecated,
        })
    }

    fn read_response_head(&mut self) -> std::io::Result<RespHead> {
        let mut line = String::new();
        // Skip interim 1xx responses (100 Continue) transparently.
        let head = loop {
            line.clear();
            self.reader.read_line(&mut line)?;
            let status: u16 = line
                .split_whitespace()
                .nth(1)
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| std::io::Error::other(format!("bad status line: {line:?}")))?;
            let interim = (100..200).contains(&status);
            // Headers (1xx interim responses have none of interest).
            let mut head = RespHead { status, ..RespHead::default() };
            loop {
                line.clear();
                let n = self.reader.read_line(&mut line)?;
                if n == 0 {
                    return Err(std::io::Error::other("connection closed mid-headers"));
                }
                let t = line.trim_end();
                if t.is_empty() {
                    break;
                }
                if let Some((name, value)) = t.split_once(':') {
                    if name.eq_ignore_ascii_case("content-length") {
                        head.content_length = value.trim().parse().unwrap_or(0);
                    } else if name.eq_ignore_ascii_case("transfer-encoding")
                        && value.trim().eq_ignore_ascii_case("chunked")
                    {
                        head.chunked = true;
                    } else if name.eq_ignore_ascii_case("retry-after") {
                        head.retry_after = value.trim().parse().ok();
                    } else if name.eq_ignore_ascii_case("x-model-version") {
                        head.model_version = Some(value.trim().to_string());
                    } else if name.eq_ignore_ascii_case("deprecation") {
                        head.deprecated = true;
                    }
                }
            }
            if !interim {
                break head;
            }
        };
        Ok(head)
    }

    /// Opens a chunked-upload request (e.g. to `/annotate_stream`). Send
    /// body pieces with [`Client::stream_send`], end the upload with
    /// [`Client::stream_finish`], and read results with
    /// [`Client::stream_status`] / [`Client::stream_next_line`] — reading
    /// may be interleaved with sending to observe true streaming.
    pub fn stream_open(&mut self, path: &str) -> std::io::Result<()> {
        let head = format!(
            "POST {path} HTTP/1.1\r\nhost: localhost\r\ntransfer-encoding: chunked\r\n\r\n"
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.flush()?;
        self.resp_chunk_left = 0;
        self.resp_done = false;
        self.resp_buf.clear();
        Ok(())
    }

    /// Sends one request-body chunk.
    pub fn stream_send(&mut self, data: &[u8]) -> std::io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.stream, "{:x}\r\n", data.len())?;
        self.stream.write_all(data)?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Terminates the chunked upload.
    pub fn stream_finish(&mut self) -> std::io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }

    /// Reads the streaming response's status line + headers (call once,
    /// any time after [`Client::stream_open`]).
    pub fn stream_status(&mut self) -> std::io::Result<u16> {
        let head = self.read_response_head()?;
        if !head.chunked {
            self.resp_done = true;
        }
        Ok(head.status)
    }

    /// Returns the next newline-terminated line of the dechunked response
    /// body (with its `\n`), or `None` once the final chunk has been read.
    /// Call after [`Client::stream_status`].
    pub fn stream_next_line(&mut self) -> std::io::Result<Option<String>> {
        loop {
            if let Some(pos) = self.resp_buf.iter().position(|&b| b == b'\n') {
                let rest = self.resp_buf.split_off(pos + 1);
                let line = std::mem::replace(&mut self.resp_buf, rest);
                let line = String::from_utf8(line)
                    .map_err(|_| std::io::Error::other("response is not valid UTF-8"))?;
                return Ok(Some(line));
            }
            if self.resp_done {
                if self.resp_buf.is_empty() {
                    return Ok(None);
                }
                let line = String::from_utf8(std::mem::take(&mut self.resp_buf))
                    .map_err(|_| std::io::Error::other("response is not valid UTF-8"))?;
                return Ok(Some(line));
            }
            if self.resp_chunk_left == 0 {
                let mut line = String::new();
                self.reader.read_line(&mut line)?;
                let hex = line.trim();
                let size = usize::from_str_radix(hex, 16).map_err(|_| {
                    std::io::Error::other(format!("bad response chunk size: {hex:?}"))
                })?;
                if size == 0 {
                    // Trailer: consume through the blank line.
                    loop {
                        line.clear();
                        self.reader.read_line(&mut line)?;
                        if line.trim_end().is_empty() {
                            break;
                        }
                    }
                    self.resp_done = true;
                    continue;
                }
                self.resp_chunk_left = size;
            }
            let mut buf = vec![0u8; self.resp_chunk_left];
            self.reader.read_exact(&mut buf)?;
            self.resp_buf.extend_from_slice(&buf);
            self.resp_chunk_left = 0;
            let mut crlf = [0u8; 2];
            self.reader.read_exact(&mut crlf)?;
            if &crlf != b"\r\n" {
                return Err(std::io::Error::other("missing CRLF after response chunk"));
            }
        }
    }

    /// Drains a whole streaming response: status plus every dechunked line.
    pub fn stream_collect(&mut self) -> std::io::Result<(u16, Vec<String>)> {
        let status = self.stream_status()?;
        let mut lines = Vec::new();
        while let Some(line) = self.stream_next_line()? {
            lines.push(line);
        }
        Ok((status, lines))
    }
}
