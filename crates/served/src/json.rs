//! Hand-rolled JSON, matching the workspace's offline-only dependency
//! policy: a [`Json`] value type with a recursive-descent parser, plus the
//! daemon's wire codecs (tables in, annotations out).
//!
//! Encoding floats uses Rust's shortest-round-trip `Display`, so two `f32`
//! scores render to the same bytes iff they are bit-identical — which is
//! what lets the serve smoke assert *byte*-equality between daemon
//! responses and offline [`Annotator::annotate`](doduo_core::Annotator)
//! output.

use doduo_core::TableAnnotation;
use doduo_table::{Column, Table};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value. Objects preserve no duplicate keys (last wins) and
/// are stored sorted, which is fine for the daemon's schemas.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses a complete JSON document (rejects trailing garbage).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut p = Parser { b: bytes, i: 0, depth: 0 };
        p.ws();
        let v = p.value()?;
        p.ws();
        if p.i != bytes.len() {
            return Err(format!("trailing characters at byte {}", p.i));
        }
        Ok(v)
    }

    /// Object field lookup (`None` on non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The key/value map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Encodes this value back to compact JSON text. Numbers use Rust's
    /// shortest-round-trip `Display`, so `parse(encode(v)) == v` and
    /// `encode(parse(s))` is a canonical form that is byte-stable under
    /// further round trips (the property the daemon's byte-identity
    /// contract rests on).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                write!(out, "{n}").expect("write to String");
            }
            Json::Str(s) => push_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.encode_into(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_escaped(out, k);
                    out.push(':');
                    v.encode_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Splits a byte stream into complete top-level JSON objects, fed
/// incrementally in arbitrarily small pieces (the `/annotate_stream` body
/// arrives in whatever chunks the client sent). Purely structural: it
/// tracks brace/bracket depth and string/escape state, leaving validation
/// of each completed document to [`Json::parse`]. Documents may be
/// separated by any amount of whitespace (newline-delimited JSON works).
#[derive(Debug)]
pub struct StreamSplitter {
    buf: Vec<u8>,
    depth: usize,
    in_str: bool,
    escaped: bool,
    max_doc: usize,
}

impl StreamSplitter {
    /// A splitter rejecting any single document larger than `max_doc`
    /// bytes.
    pub fn new(max_doc: usize) -> StreamSplitter {
        StreamSplitter { buf: Vec::new(), depth: 0, in_str: false, escaped: false, max_doc }
    }

    /// Feeds more bytes; returns every document completed by them, in
    /// order. Errors (non-object top level, oversized document, invalid
    /// UTF-8) are fatal for the stream.
    pub fn push(&mut self, bytes: &[u8]) -> Result<Vec<String>, String> {
        let mut out = Vec::new();
        for &b in bytes {
            if self.depth == 0 {
                if b.is_ascii_whitespace() {
                    continue;
                }
                if b != b'{' {
                    return Err(format!(
                        "stream elements must be JSON objects (got {:?})",
                        b as char
                    ));
                }
                self.buf.push(b);
                self.depth = 1;
                continue;
            }
            self.buf.push(b);
            if self.buf.len() > self.max_doc {
                return Err(format!("stream element exceeds {} bytes", self.max_doc));
            }
            if self.in_str {
                if self.escaped {
                    self.escaped = false;
                } else if b == b'\\' {
                    self.escaped = true;
                } else if b == b'"' {
                    self.in_str = false;
                }
            } else {
                match b {
                    b'"' => self.in_str = true,
                    b'{' | b'[' => self.depth += 1,
                    b'}' | b']' => {
                        // Mismatched closers (e.g. `{]`) still balance here;
                        // Json::parse rejects the completed document.
                        self.depth -= 1;
                        if self.depth == 0 {
                            let doc = String::from_utf8(std::mem::take(&mut self.buf))
                                .map_err(|_| "stream element is not valid UTF-8".to_string())?;
                            out.push(doc);
                        }
                    }
                    _ => {}
                }
            }
        }
        Ok(out)
    }

    /// True when bytes of an unfinished document are pending — EOF in this
    /// state means the stream was truncated.
    pub fn mid_document(&self) -> bool {
        self.depth > 0
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
    depth: usize,
}

/// Nesting bound for untrusted documents: recursion is O(depth), so without
/// a cap a body of a few hundred KB of `[` would overflow the handler
/// thread's stack and abort the whole process.
const MAX_DEPTH: usize = 128;

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.nested(Self::object),
            Some(b'[') => self.nested(Self::array),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected '{}' at byte {}", c as char, self.i)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn nested(
        &mut self,
        f: impl FnOnce(&mut Self) -> Result<Json, String>,
    ) -> Result<Json, String> {
        if self.depth >= MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH} at byte {}", self.i));
        }
        self.depth += 1;
        let v = f(self);
        self.depth -= 1;
        v
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.i += 1;
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).expect("ascii number");
        text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("bad low surrogate".into());
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c).ok_or("bad surrogate pair")?
                            } else {
                                char::from_u32(cp).ok_or("bad \\u escape")?
                            };
                            out.push(ch);
                        }
                        c => return Err(format!("bad escape '\\{}'", c as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing
                    // at char boundaries is safe).
                    let rest = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|_| "invalid UTF-8".to_string())?;
                    let ch = rest.chars().next().expect("peeked non-empty");
                    if (ch as u32) < 0x20 {
                        return Err("unescaped control character in string".into());
                    }
                    out.push(ch);
                    self.i += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.i + 4 > self.b.len() {
            return Err("truncated \\u escape".into());
        }
        let s = std::str::from_utf8(&self.b[self.i..self.i + 4])
            .map_err(|_| "bad \\u escape".to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.i += 4;
        Ok(v)
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.ws();
            out.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut out = BTreeMap::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            let val = self.value()?;
            out.insert(key, val);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }
}

/// Appends a JSON string literal (with escaping) to `out`.
pub fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).expect("write to String");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------ wire codecs

/// Decodes one table object:
/// `{"id": "...", "columns": [{"name": "...", "values": ["...", ...]}, ...]}`.
/// `id` and `name` are optional; a column may also be a bare array of cell
/// strings.
pub fn table_from_json(v: &Json) -> Result<Table, String> {
    let id = match v.get("id") {
        None | Some(Json::Null) => "request",
        Some(Json::Str(s)) => s.as_str(),
        Some(_) => return Err("table \"id\" must be a string".into()),
    };
    let cols =
        v.get("columns").and_then(Json::as_array).ok_or("table must have a \"columns\" array")?;
    if cols.is_empty() {
        return Err("table must have at least one column".into());
    }
    let mut columns = Vec::with_capacity(cols.len());
    for (i, c) in cols.iter().enumerate() {
        let (name, values) = match c {
            Json::Arr(_) => (None, c),
            Json::Obj(_) => {
                let name = match c.get("name") {
                    None | Some(Json::Null) => None,
                    Some(Json::Str(s)) => Some(s.clone()),
                    Some(_) => return Err(format!("column {i} \"name\" must be a string")),
                };
                let values = c
                    .get("values")
                    .ok_or_else(|| format!("column {i} must have a \"values\" array"))?;
                (name, values)
            }
            _ => return Err(format!("column {i} must be an object or an array")),
        };
        let values = values
            .as_array()
            .ok_or_else(|| format!("column {i} \"values\" must be an array"))?
            .iter()
            .map(|v| match v {
                Json::Str(s) => Ok(s.clone()),
                Json::Num(n) => Ok(format!("{n}")),
                Json::Bool(b) => Ok(format!("{b}")),
                _ => Err(format!("column {i} cells must be strings, numbers or booleans")),
            })
            .collect::<Result<Vec<String>, String>>()?;
        columns.push(Column { name, values });
    }
    Ok(Table::new(id, columns))
}

/// Encodes one table as an `/annotate` request body —
/// [`table_from_json`]'s inverse (up to the `id` default). The load bench
/// and the integration tests build their requests with this, so they
/// exercise exactly the codec the daemon decodes.
pub fn table_to_json(t: &Table) -> String {
    let mut out = String::from("{\"id\":");
    push_escaped(&mut out, &t.id);
    out.push_str(",\"columns\":[");
    for (i, c) in t.columns.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        if let Some(name) = &c.name {
            out.push_str("\"name\":");
            push_escaped(&mut out, name);
            out.push(',');
        }
        out.push_str("\"values\":[");
        for (j, v) in c.values.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            push_escaped(&mut out, v);
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// Decodes an `/annotate` request body: either one table object or
/// `{"tables": [table, ...]}`. The boolean reports which form was used so
/// the response can mirror it.
pub fn tables_from_request(body: &str) -> Result<(Vec<Table>, bool), String> {
    let v = Json::parse(body)?;
    match v.get("tables") {
        Some(ts) => {
            let arr = ts.as_array().ok_or("\"tables\" must be an array")?;
            if arr.is_empty() {
                return Err("\"tables\" must not be empty".into());
            }
            Ok((arr.iter().map(table_from_json).collect::<Result<_, _>>()?, true))
        }
        None => Ok((vec![table_from_json(&v)?], false)),
    }
}

/// Encodes one annotation. The exact same function renders offline
/// (`--oneshot`) and online responses, so equality of annotations implies
/// equality of bytes.
pub fn annotation_to_json(ann: &TableAnnotation) -> String {
    let mut out = String::from("{\"types\":[");
    for (i, t) in ann.types.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write!(out, "{{\"column\":{},\"labels\":[", t.column).expect("write to String");
        for (j, (name, score)) in t.labels.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str("{\"label\":");
            push_escaped(&mut out, name);
            write!(out, ",\"score\":{score}}}").expect("write to String");
        }
        out.push_str("]}");
    }
    out.push_str("],\"relations\":[");
    for (i, r) in ann.relations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write!(out, "{{\"subject\":{},\"object\":{},\"labels\":[", r.subject, r.object)
            .expect("write to String");
        for (j, (name, score)) in r.labels.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str("{\"label\":");
            push_escaped(&mut out, name);
            write!(out, ",\"score\":{score}}}").expect("write to String");
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// Encodes a full `/annotate` response body: a single annotation object for
/// single-table requests, `{"annotations": [...]}` for multi-table ones.
/// `wrapped` mirrors whether the request used the `{"tables": ...}` form.
pub fn annotations_response(anns: &[TableAnnotation], wrapped: bool) -> String {
    if !wrapped && anns.len() == 1 {
        let mut s = annotation_to_json(&anns[0]);
        s.push('\n');
        return s;
    }
    let mut out = String::from("{\"annotations\":[");
    for (i, a) in anns.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&annotation_to_json(a));
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_arrays_objects() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-12.5e1").unwrap(), Json::Num(-125.0));
        assert_eq!(Json::parse("\"a\\nb\\u0041\"").unwrap(), Json::Str("a\nbA".into()));
        let v = Json::parse(r#"{"a": [1, 2], "b": {"c": "d"}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("d"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "\"unterminated", "1 2", "{\"a\":1,}"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn escape_round_trips() {
        let original = "quote \" backslash \\ newline \n tab \t unicode ☃";
        let mut enc = String::new();
        push_escaped(&mut enc, original);
        assert_eq!(Json::parse(&enc).unwrap(), Json::Str(original.into()));
    }

    #[test]
    fn table_codec_accepts_both_column_forms() {
        let body = r#"{"id": "t1", "columns": [
            {"name": "film", "values": ["Happy Feet", "Cars"]},
            ["2006", "2006"]
        ]}"#;
        let (tables, wrapped) = tables_from_request(body).unwrap();
        assert_eq!(tables.len(), 1);
        assert!(!wrapped);
        let t = &tables[0];
        assert_eq!(t.id, "t1");
        assert_eq!(t.n_cols(), 2);
        assert_eq!(t.columns[0].name.as_deref(), Some("film"));
        assert_eq!(t.columns[1].name, None);
        assert_eq!(t.columns[1].values, vec!["2006".to_string(), "2006".to_string()]);
    }

    #[test]
    fn table_codec_rejects_bad_requests() {
        for bad in [
            "{}",
            r#"{"columns": []}"#,
            r#"{"columns": [{"name": "x"}]}"#,
            r#"{"columns": [{"values": [null]}]}"#,
            r#"{"tables": []}"#,
            "[1,2]",
        ] {
            assert!(tables_from_request(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn deep_nesting_is_rejected_not_crashed() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(Json::parse(&deep).is_err(), "must reject, not overflow the stack");
        // Sane nesting still parses.
        let ok = "[".repeat(40) + &"]".repeat(40);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn table_codec_round_trips() {
        let t = Table::new(
            "t \"quoted\"",
            vec![
                Column { name: Some("film\n".into()), values: vec!["Happy Feet".into()] },
                Column { name: None, values: vec!["2006".into(), "\\".into()] },
            ],
        );
        let body = table_to_json(&t);
        let (parsed, wrapped) = tables_from_request(&body).unwrap();
        assert!(!wrapped);
        assert_eq!(parsed, vec![t]);
    }

    #[test]
    fn multi_table_request_parses() {
        let body = r#"{"tables": [{"columns": [["a"]]}, {"columns": [["b"], ["c"]]}]}"#;
        let (tables, wrapped) = tables_from_request(body).unwrap();
        assert!(wrapped);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[1].n_cols(), 2);
    }

    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A finite random double drawn from raw bit patterns, so the whole
    /// representable range (subnormals, extremes, negative zero) stresses
    /// the shortest-round-trip formatter — not just [0, 1) uniforms.
    fn arb_finite_f64(rng: &mut StdRng) -> f64 {
        loop {
            let v = f64::from_bits(rng.gen::<u64>());
            if v.is_finite() {
                return v;
            }
        }
    }

    fn arb_string(rng: &mut StdRng) -> String {
        let len = rng.gen_range(0..12usize);
        (0..len)
            .map(|_| match rng.gen_range(0..6u32) {
                0 => char::from(rng.gen_range(0x20u8..0x7f)), // printable ASCII
                1 => ['"', '\\', '/', '\n', '\r', '\t'][rng.gen_range(0..6usize)],
                2 => char::from(rng.gen_range(0u8..0x20)), // control chars
                3 => '☃',
                4 => '𝄞', // astral plane: needs a surrogate pair in \u form
                _ => char::from(rng.gen_range(b'a'..b'z' + 1)),
            })
            .collect()
    }

    fn arb_json(rng: &mut StdRng, depth: usize) -> Json {
        let top = if depth == 0 { 4 } else { 6 };
        match rng.gen_range(0..top) {
            0 => Json::Null,
            1 => Json::Bool(rng.gen::<bool>()),
            2 => Json::Num(match rng.gen_range(0..3u32) {
                0 => rng.gen_range(-1000i64..1000) as f64,
                1 => rng.gen::<f64>(),
                _ => arb_finite_f64(rng),
            }),
            3 => Json::Str(arb_string(rng)),
            4 => {
                Json::Arr((0..rng.gen_range(0..4usize)).map(|_| arb_json(rng, depth - 1)).collect())
            }
            _ => Json::Obj(
                (0..rng.gen_range(0..4usize))
                    .map(|_| (arb_string(rng), arb_json(rng, depth - 1)))
                    .collect(),
            ),
        }
    }

    /// Property: `parse(encode(v)) == v` for arbitrary value trees, and the
    /// encoding is byte-stable under a second round trip — the foundation
    /// of the daemon's byte-identity contract.
    #[test]
    fn prop_round_trip_is_identity_and_byte_stable() {
        let mut rng = StdRng::seed_from_u64(0xD0D0);
        for case in 0..256 {
            let v = arb_json(&mut rng, 3);
            let enc = v.encode();
            let back = Json::parse(&enc).unwrap_or_else(|e| panic!("case {case}: {e}\n{enc}"));
            assert_eq!(back, v, "case {case}: round trip changed the value\n{enc}");
            assert_eq!(back.encode(), enc, "case {case}: re-encoding changed bytes\n{enc}");
        }
    }

    /// Property: shortest-round-trip float formatting is bit-faithful for
    /// arbitrary finite doubles (not just friendly ones).
    #[test]
    fn prop_float_format_round_trips_bits() {
        let mut rng = StdRng::seed_from_u64(0xF10A7);
        for _ in 0..512 {
            let x = arb_finite_f64(&mut rng);
            let s = format!("{x}");
            let y: f64 = s.parse().expect("formatted float parses");
            assert_eq!(x.to_bits(), y.to_bits(), "{x:?} -> {s} -> {y:?}");
        }
    }

    /// Property: every strict prefix of a well-formed top-level object
    /// document is rejected with an error — never accepted, never a panic.
    /// (Truncation mid-stream must surface as a clean 400/stream error.)
    #[test]
    fn prop_truncated_documents_error_at_every_prefix() {
        let mut rng = StdRng::seed_from_u64(0x7245);
        for case in 0..64 {
            // Top-level object: strict prefixes cannot themselves be
            // complete documents (unbalanced brace).
            let v = Json::Obj(
                (0..rng.gen_range(1..4usize))
                    .map(|_| (arb_string(&mut rng), arb_json(&mut rng, 2)))
                    .collect(),
            );
            let enc = v.encode();
            for (i, _) in enc.char_indices() {
                assert!(
                    Json::parse(&enc[..i]).is_err(),
                    "case {case}: prefix of {i} bytes of {enc:?} parsed"
                );
            }
            assert!(Json::parse(&enc).is_ok(), "case {case}: full document parses");
        }
    }

    #[test]
    fn stream_splitter_handles_arbitrary_chunking() {
        let mut rng = StdRng::seed_from_u64(0x57EA);
        for case in 0..64 {
            // A stream of 1–5 random top-level objects with random
            // whitespace between, pushed in random-size pieces.
            let n = rng.gen_range(1..6usize);
            let docs: Vec<String> = (0..n)
                .map(|_| {
                    Json::Obj(
                        (0..rng.gen_range(0..3usize))
                            .map(|_| (arb_string(&mut rng), arb_json(&mut rng, 2)))
                            .collect(),
                    )
                    .encode()
                })
                .collect();
            let mut wire = String::new();
            for d in &docs {
                wire.push_str(d);
                wire.push_str([" ", "\n", "\r\n", "\t"][rng.gen_range(0..4usize)]);
            }
            let mut splitter = StreamSplitter::new(1 << 20);
            let mut got: Vec<String> = Vec::new();
            let bytes = wire.as_bytes();
            let mut i = 0;
            while i < bytes.len() {
                let step = rng.gen_range(1..8usize).min(bytes.len() - i);
                got.extend(splitter.push(&bytes[i..i + step]).expect("split ok"));
                i += step;
            }
            assert!(!splitter.mid_document(), "case {case}: stream ended cleanly");
            assert_eq!(got, docs, "case {case}: split documents match");
        }
    }

    #[test]
    fn stream_splitter_rejects_garbage_and_oversize() {
        let mut s = StreamSplitter::new(1 << 20);
        assert!(s.push(b"[1, 2]").is_err(), "top-level arrays are not tables");
        let mut s = StreamSplitter::new(16);
        assert!(s.push(b"{\"k\": \"0123456789abcdef...\"}").is_err(), "oversized doc");
        // Braces inside strings never affect depth.
        let mut s = StreamSplitter::new(1 << 20);
        let docs = s.push(b"{\"k\": \"}}{{\"} {\"j\": 1}").expect("split ok");
        assert_eq!(docs, vec!["{\"k\": \"}}{{\"}".to_string(), "{\"j\": 1}".to_string()]);
    }

    #[test]
    fn float_display_is_bit_faithful() {
        // Two different bit patterns that print differently, and a pair of
        // equal bits that must print identically.
        let a = 0.1f32;
        let b = f32::from_bits(a.to_bits() + 1);
        assert_ne!(format!("{a}"), format!("{b}"));
        assert_eq!(format!("{a}"), format!("{}", f32::from_bits(a.to_bits())));
    }
}
