use doduo_core::*;
use doduo_datagen::*;
use doduo_table::SerializeConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

#[test]
#[ignore]
fn debug_training() {
    let t0 = Instant::now();
    let kb = KnowledgeBase::generate(&KbConfig::default(), 42);
    let corpus = generate_corpus(&kb, &CorpusConfig::default());
    eprintln!("corpus: {} sentences", corpus.len());
    let mut recipe = PretrainRecipe::tiny();
    recipe.mlm.epochs = 6;
    let lm = pretrain_lm(&corpus[..5000.min(corpus.len())], &recipe, 42);
    eprintln!(
        "[{:?}] pretrained: vocab={} losses={:?}",
        t0.elapsed(),
        lm.tokenizer.vocab_size(),
        lm.losses
    );

    let ds = generate_wikitable(
        &kb,
        &WikiTableConfig { n_tables: 150, min_rows: 2, max_rows: 4, seed: 7 },
    );
    let mut rng = StdRng::seed_from_u64(1);
    let (train_ds, valid_ds, _) = ds.split(0.8, 0.2, &mut rng);
    let (mut store, model) = build_finetune_model(
        &lm,
        |enc| {
            let ms = enc.max_seq;
            DoduoConfig::new(enc, train_ds.type_vocab.len(), train_ds.rel_vocab.len(), true)
                .with_serialize(SerializeConfig::new(8, ms))
        },
        3,
    );
    let train_p = prepare(&model, &train_ds, &lm.tokenizer);
    let valid_p = prepare(&model, &valid_ds, &lm.tokenizer);
    let report = train(
        &model,
        &mut store,
        &train_p,
        &valid_p,
        &[Task::ColumnType, Task::ColumnRelation],
        &TrainConfig {
            epochs: 45,
            batch_size: 8,
            lr: 5e-3,
            threads: 16,
            select_best: false,
            ..Default::default()
        },
    );
    for (i, e) in report.epochs.iter().enumerate().filter(|(i, _)| i % 5 == 0 || *i == 44) {
        eprintln!(
            "epoch {i}: losses {:?} valid type F1 {:.3} rel F1 {:?}",
            e.task_losses,
            e.valid.type_micro.f1,
            e.valid.rel_micro.map(|r| r.f1)
        );
    }
    eprintln!("[{:?}] done", t0.elapsed());
}
