//! Corruption tests for `AnnotatorBundle` checkpoints: truncating or
//! bit-flipping any section of a saved blob must fail `load` with a clean,
//! section-naming error — never a panic, never a silently different model.
//! Bit flips in raw weight floats have no structure to trip over, so the
//! payload CRC is what turns "loads fine, annotates differently" into an
//! error.

use doduo_core::{AnnotatorBundle, BundleError, DoduoConfig, DoduoModel};
use doduo_table::{Column, LabelVocab, SerializeConfig, Table};
use doduo_tensor::ParamStore;
use doduo_tokenizer::{TrainConfig as TokTrain, WordPiece};
use doduo_transformer::EncoderConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bundle() -> AnnotatorBundle {
    let tok = WordPiece::train(
        ["alpha beta gamma one two three"],
        &TokTrain { merges: 60, min_pair_count: 1, max_word_len: 16 },
    );
    let mut tv = LabelVocab::new();
    tv.intern("t.a");
    tv.intern("t.b");
    let mut rv = LabelVocab::new();
    rv.intern("r.x");
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(7);
    let enc = EncoderConfig::tiny(tok.vocab_size());
    let max_seq = enc.max_seq;
    let cfg = DoduoConfig::new(enc, 2, 1, true)
        .with_serialize(SerializeConfig::new(8, max_seq).with_metadata());
    let model = DoduoModel::new(&mut store, cfg, "m", &mut rng);
    AnnotatorBundle::new(store, model, tok, tv, rv, "m")
}

fn table() -> Table {
    Table::new(
        "t",
        vec![
            Column::with_name("letters", vec!["alpha".into(), "beta".into()]),
            Column::new(vec!["one".into(), "two".into()]),
        ],
    )
}

/// Byte ranges of each checkpoint section, reconstructed from the bundle's
/// own parts (mirrors the save layout: magic, crc, config scalars, prefix
/// blob, tokenizer, label vocabularies, weights blob).
fn section_ranges(b: &AnnotatorBundle, blob_len: usize) -> Vec<(&'static str, usize, usize)> {
    let vocab_len = |v: &LabelVocab| 4 + v.iter().map(|(_, n)| 4 + n.len()).sum::<usize>();
    let mut out = Vec::new();
    let mut pos = 0usize;
    let mut push = |name: &'static str, len: usize, pos: &mut usize| {
        out.push((name, *pos, *pos + len));
        *pos += len;
    };
    push("header", 8 + 4, &mut pos); // magic + crc
    push("config", 4 + 10 * 4 + 4, &mut pos); // 4 tag bytes, 10 u32s, dropout f32
    push("prefix", 4 + 1, &mut pos); // "m"
    let vocab_text = b.tokenizer.vocab().to_text();
    push("tokenizer", 4 + 4 + vocab_text.len(), &mut pos);
    push("type_vocab", vocab_len(&b.type_vocab), &mut pos);
    push("rel_vocab", vocab_len(&b.rel_vocab), &mut pos);
    push("weights", blob_len - pos, &mut pos);
    out
}

/// A structural (section-naming) failure — what truncation must produce.
fn is_structural(e: &BundleError) -> bool {
    matches!(
        e,
        BundleError::BadMagic
            | BundleError::Truncated(_)
            | BundleError::BadString(_)
            | BundleError::BadVocab
            | BundleError::BadTag { .. }
            | BundleError::BadLength(_)
    )
}

#[test]
fn clean_blob_round_trips() {
    let b = bundle();
    let blob = b.save();
    let loaded = AnnotatorBundle::load(&blob).expect("clean blob loads");
    let a = b.annotator().annotate(&table());
    let c = loaded.annotator().annotate(&table());
    for (x, y) in a.types.iter().zip(&c.types) {
        for ((n1, s1), (n2, s2)) in x.labels.iter().zip(&y.labels) {
            assert_eq!(n1, n2);
            assert_eq!(s1.to_bits(), s2.to_bits());
        }
    }
    // The layout map below must cover the blob exactly, or the per-section
    // assertions are aimed at the wrong bytes.
    let ranges = section_ranges(&b, blob.len());
    assert_eq!(ranges.last().expect("sections").2, blob.len());
}

#[test]
fn truncation_in_every_section_names_a_section() {
    let b = bundle();
    let blob = b.save();
    for (name, lo, hi) in section_ranges(&b, blob.len()) {
        let cut = (lo + hi) / 2; // mid-section
        let err = AnnotatorBundle::load(&blob[..cut])
            .err()
            .unwrap_or_else(|| panic!("truncation at {cut} (in {name}) must fail"));
        assert!(is_structural(&err), "truncation in {name} must be a structural error, got: {err}");
        let msg = err.to_string();
        assert!(
            msg.contains("section") || msg.contains("magic") || msg.contains("vocabulary"),
            "error for {name} should name what broke: {msg}"
        );
    }
}

#[test]
fn truncation_at_every_sampled_length_is_an_error_not_a_panic() {
    let b = bundle();
    let blob = b.save();
    let step = (blob.len() / 257).max(1);
    for cut in (0..blob.len()).step_by(step) {
        assert!(AnnotatorBundle::load(&blob[..cut]).is_err(), "prefix of {cut} bytes loaded");
    }
}

#[test]
fn bit_flip_in_every_section_is_rejected() {
    let b = bundle();
    let blob = b.save();
    for (name, lo, hi) in section_ranges(&b, blob.len()) {
        // Flip a bit at the start, middle, and end of the section.
        for pos in [lo, (lo + hi) / 2, hi - 1] {
            for bit in [0u8, 7] {
                let mut bad = blob.clone();
                bad[pos] ^= 1 << bit;
                let err = AnnotatorBundle::load(&bad).err().unwrap_or_else(|| {
                    panic!("bit {bit} of byte {pos} ({name}) flipped but the bundle loaded")
                });
                // Any error is acceptable as long as it is an error (the
                // CRC backstops sections with no structure of their own).
                let _ = err.to_string(); // and it must render
            }
        }
    }
}

#[test]
fn weight_bit_flips_cannot_silently_change_the_model() {
    let b = bundle();
    let blob = b.save();
    let (_, lo, hi) = *section_ranges(&b, blob.len()).last().expect("weights section");
    // Raw float data: every flip decodes "cleanly", so only the checksum
    // stands between this and a silently different model.
    let mut rng = StdRng::seed_from_u64(99);
    use rand::Rng;
    for _ in 0..32 {
        let pos = rng.gen_range(lo + 16..hi); // skip the record framing
        let mut bad = blob.clone();
        bad[pos] ^= 1 << rng.gen_range(0..8u8);
        match AnnotatorBundle::load(&bad) {
            Err(BundleError::ChecksumMismatch { .. }) => {}
            Err(other) => {
                // Flips that land in record framing may fail structurally
                // first; that is fine too.
                assert!(is_structural(&other) || matches!(other, BundleError::Weights(_)));
            }
            Ok(_) => panic!("weight flip at byte {pos} loaded without an error"),
        }
    }
}

/// The int8 serving path (`load` then [`AnnotatorBundle::quantized`]) must
/// reject exactly what the f32 path rejects: quantization happens strictly
/// after the structural checks and the payload CRC, so no corrupted blob
/// can ever reach the weight-quantization step. This asserts the coupling
/// — every truncation and bit flip that fails `load` fails the quantized
/// pipeline with the *same* error, before `quantized()` runs.
#[test]
fn quantized_mode_rejects_the_same_corruptions() {
    let b = bundle();
    let blob = b.save();
    // The quantized load pipeline: same entry point, quantize on success.
    let quant_load = |bytes: &[u8]| AnnotatorBundle::load(bytes).map(|b| b.quantized());
    for (name, lo, hi) in section_ranges(&b, blob.len()) {
        let cut = (lo + hi) / 2;
        let f32_err = AnnotatorBundle::load(&blob[..cut]).err();
        let quant_err = quant_load(&blob[..cut]).err();
        assert_eq!(
            f32_err.map(|e| e.to_string()),
            quant_err.map(|e| e.to_string()),
            "truncation in {name}: quantized load must fail exactly like f32"
        );
        for pos in [lo, (lo + hi) / 2, hi - 1] {
            let mut bad = blob.clone();
            bad[pos] ^= 1 << 3;
            let f32_err = AnnotatorBundle::load(&bad).err();
            let quant_err = quant_load(&bad).err();
            assert!(quant_err.is_some(), "flip at byte {pos} ({name}) reached quantization");
            assert_eq!(
                f32_err.map(|e| e.to_string()),
                quant_err.map(|e| e.to_string()),
                "flip in {name}: quantized load must fail exactly like f32"
            );
        }
    }
}

/// A clean blob quantizes identically whether the bundle was freshly built
/// or round-tripped through checkpoint bytes: the weights the CRC protects
/// are the weights the int8 packer reads.
#[test]
fn clean_blob_quantizes_identically_after_round_trip() {
    let b = bundle();
    let loaded = AnnotatorBundle::load(&b.save()).expect("clean blob loads");
    let t = table();
    let groups = [b.model.serialize_for_types(&t, &b.tokenizer)];
    let refs: Vec<&[_]> = groups.iter().map(Vec::as_slice).collect();
    let fresh = b.quantized().annotate_serialized(&b.annotator(), &refs);
    let reloaded = loaded.quantized().annotate_serialized(&loaded.annotator(), &refs);
    for (x, y) in fresh.iter().zip(&reloaded) {
        assert_eq!(x.types.len(), y.types.len());
        for (p, q) in x.types.iter().zip(&y.types) {
            for ((n1, s1), (n2, s2)) in p.labels.iter().zip(&q.labels) {
                assert_eq!(n1, n2);
                assert_eq!(s1.to_bits(), s2.to_bits(), "int8 scores must survive the round trip");
            }
        }
    }
}

#[test]
fn sampled_bit_flips_never_panic() {
    let b = bundle();
    let blob = b.save();
    let step = (blob.len() / 509).max(1);
    for pos in (0..blob.len()).step_by(step) {
        let mut bad = blob.clone();
        bad[pos] ^= 0x10;
        assert!(AnnotatorBundle::load(&bad).is_err(), "flip at byte {pos} loaded");
    }
}
