//! The Doduo model (§4, Figure 1).
//!
//! A shared Transformer encoder over the serialized table plus two output
//! heads (hard parameter sharing):
//!
//! * **column-type head** — dense layer over each column's `[CLS]`
//!   embedding, `softmax(g_type(LM(T)_{i_j}))` (eq. 1);
//! * **column-relation head** — dense layer over the *concatenation* of two
//!   column `[CLS]` embeddings, `softmax(g_rel(LM(T)_{i_j} ⊕ LM(T)_{i_k}))`
//!   (eq. 2).
//!
//! The same struct also covers the paper's ablations: `Dosolo` is this model
//! trained on one task only; `DosoloSCol` sets [`InputMode::SingleColumn`]
//! (per-column / per-pair serialization, §4.1); the TURL baseline sets
//! [`AttentionMode::ColumnVisibility`] which restricts self-attention with
//! TURL's visibility matrix (§5.4).

use doduo_table::{
    serialize_column_pair, serialize_single_column, serialize_table, SerializeConfig,
    SerializedTable, Table, NO_COLUMN,
};
use doduo_tensor::{AttnMask, NodeId, ParamId, ParamStore, Tape};
use doduo_tokenizer::WordPiece;
use doduo_transformer::{mask_from_fn, Encoder, EncoderConfig};
use rand::Rng;

/// How tables are presented to the encoder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InputMode {
    /// Doduo's table-wise serialization: the whole table in one sequence,
    /// one `[CLS]` per column (§4.2).
    TableWise,
    /// The single-column baseline (§4.1, `DosoloSCol`): each column (or
    /// column pair) is its own sequence.
    SingleColumn,
}

/// Self-attention connectivity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AttentionMode {
    /// Doduo: full self-attention across the serialized table.
    Full,
    /// TURL's visibility matrix: cell tokens see only their own column (plus
    /// `[SEP]`); `[CLS]` column markers see each other (§5.4).
    ColumnVisibility,
}

/// Model + task configuration.
#[derive(Clone, Debug)]
pub struct DoduoConfig {
    /// Shape of the shared encoder.
    pub encoder: EncoderConfig,
    /// Size of the column-type label space `|C_type|`.
    pub n_types: usize,
    /// Size of the column-relation label space `|C_rel|`.
    pub n_rels: usize,
    /// `true` for WikiTable-style multi-label tasks (BCE loss, §5.3);
    /// `false` for VizNet-style multi-class (cross-entropy).
    pub multi_label: bool,
    /// Table-serialization policy (§4.2 token budgets, `+metadata`).
    pub serialize: SerializeConfig,
    /// Table-wise vs single-column serialization (§4.1-4.2).
    pub input_mode: InputMode,
    /// Full vs TURL-style visibility-restricted attention (§5.4).
    pub attention: AttentionMode,
}

impl DoduoConfig {
    /// Doduo with sensible experiment defaults on top of a given encoder.
    pub fn new(encoder: EncoderConfig, n_types: usize, n_rels: usize, multi_label: bool) -> Self {
        let max_seq = encoder.max_seq;
        DoduoConfig {
            encoder,
            n_types,
            n_rels,
            multi_label,
            serialize: SerializeConfig::new(32, max_seq),
            input_mode: InputMode::TableWise,
            attention: AttentionMode::Full,
        }
    }

    /// Switches the serialization/input mode (builder style).
    pub fn with_input_mode(mut self, mode: InputMode) -> Self {
        self.input_mode = mode;
        self
    }

    /// Switches the attention connectivity (builder style).
    pub fn with_attention(mut self, attention: AttentionMode) -> Self {
        self.attention = attention;
        self
    }

    /// Replaces the serialization policy (builder style).
    pub fn with_serialize(mut self, s: SerializeConfig) -> Self {
        self.serialize = s;
        self
    }
}

/// The Doduo annotation model `M = (LM, {g_type, g_rel})`.
pub struct DoduoModel {
    cfg: DoduoConfig,
    /// The shared Transformer encoder (`LM` in `M = (LM, {g_type, g_rel})`).
    pub encoder: Encoder,
    pub(crate) type_dense_w: ParamId,
    pub(crate) type_dense_b: ParamId,
    pub(crate) type_out_w: ParamId,
    pub(crate) type_out_b: ParamId,
    pub(crate) rel_dense_w: ParamId,
    pub(crate) rel_dense_b: ParamId,
    pub(crate) rel_out_w: ParamId,
    pub(crate) rel_out_b: ParamId,
}

impl DoduoModel {
    /// Registers encoder + head parameters. The relation head consumes `2d`
    /// (a pair of column embeddings) in table-wise mode and `d` (the single
    /// `[CLS]` of a serialized pair) in single-column mode.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        cfg: DoduoConfig,
        prefix: &str,
        rng: &mut R,
    ) -> Self {
        let encoder = Encoder::new(store, cfg.encoder.clone(), prefix, rng);
        let d = cfg.encoder.hidden;
        let rel_in = match cfg.input_mode {
            InputMode::TableWise => 2 * d,
            InputMode::SingleColumn => d,
        };
        DoduoModel {
            encoder,
            type_dense_w: store.add_randn(format!("{prefix}.type.dense.w"), d, d, 0.02, rng),
            type_dense_b: store.add_zeros(format!("{prefix}.type.dense.b"), 1, d),
            type_out_w: store.add_randn(format!("{prefix}.type.out.w"), d, cfg.n_types, 0.02, rng),
            type_out_b: store.add_zeros(format!("{prefix}.type.out.b"), 1, cfg.n_types),
            rel_dense_w: store.add_randn(format!("{prefix}.rel.dense.w"), rel_in, d, 0.02, rng),
            rel_dense_b: store.add_zeros(format!("{prefix}.rel.dense.b"), 1, d),
            rel_out_w: store.add_randn(
                format!("{prefix}.rel.out.w"),
                d,
                cfg.n_rels.max(1),
                0.02,
                rng,
            ),
            rel_out_b: store.add_zeros(format!("{prefix}.rel.out.b"), 1, cfg.n_rels.max(1)),
            cfg,
        }
    }

    /// The model's configuration.
    pub fn config(&self) -> &DoduoConfig {
        &self.cfg
    }

    /// Builds TURL's visibility mask for a serialized table: token `i` sees
    /// token `j` iff they share a column, `j` is `[SEP]`, or both are
    /// column `[CLS]` markers.
    pub fn visibility_mask(&self, st: &SerializedTable) -> Option<AttnMask> {
        match self.cfg.attention {
            AttentionMode::Full => None,
            AttentionMode::ColumnVisibility => {
                let col = st.col_of_token.clone();
                let is_cls: Vec<bool> = {
                    let mut v = vec![false; st.ids.len()];
                    for &p in &st.cls_positions {
                        v[p as usize] = true;
                    }
                    v
                };
                Some(mask_from_fn(st.ids.len(), move |i, j| {
                    col[i] == col[j]
                        || col[j] == NO_COLUMN
                        || col[i] == NO_COLUMN
                        || (is_cls[i] && is_cls[j])
                }))
            }
        }
    }

    /// Encodes a serialized table and returns the `[n_cols, d]` matrix of
    /// contextualized column representations (the `[CLS]` rows, §4.3).
    pub fn column_embeddings<R: Rng + ?Sized>(
        &self,
        tape: &mut Tape<'_>,
        st: &SerializedTable,
        rng: &mut R,
    ) -> NodeId {
        let mask = self.visibility_mask(st);
        let enc = self.encoder.forward(tape, &st.ids, mask.as_ref(), rng);
        tape.row_select(enc, &st.cls_positions)
    }

    /// Column-type logits `[n_cols, |C_type|]` from column embeddings.
    pub fn type_logits_from_embeddings(&self, tape: &mut Tape<'_>, cols: NodeId) -> NodeId {
        let h = tape.linear(cols, self.type_dense_w, self.type_dense_b);
        let a = tape.gelu(h);
        tape.linear(a, self.type_out_w, self.type_out_b)
    }

    /// Column-type logits for every column of a serialized table.
    pub fn type_logits<R: Rng + ?Sized>(
        &self,
        tape: &mut Tape<'_>,
        st: &SerializedTable,
        rng: &mut R,
    ) -> NodeId {
        let cols = self.column_embeddings(tape, st, rng);
        self.type_logits_from_embeddings(tape, cols)
    }

    /// Relation logits `[n_pairs, |C_rel|]` for the given `(subject,
    /// object)` column-index pairs of a table-wise serialization (eq. 2).
    pub fn rel_logits<R: Rng + ?Sized>(
        &self,
        tape: &mut Tape<'_>,
        st: &SerializedTable,
        pairs: &[(usize, usize)],
        rng: &mut R,
    ) -> NodeId {
        assert_eq!(
            self.cfg.input_mode,
            InputMode::TableWise,
            "pairwise logits need table-wise mode"
        );
        assert!(!pairs.is_empty(), "no relation pairs requested");
        let cols = self.column_embeddings(tape, st, rng);
        let subj: Vec<u32> = pairs.iter().map(|p| p.0 as u32).collect();
        let obj: Vec<u32> = pairs.iter().map(|p| p.1 as u32).collect();
        self.rel_logits_from_embeddings(tape, cols, &subj, &obj)
    }

    /// Relation logits from a `[n, d]` column-embedding node and parallel
    /// subject/object row indices into it (eq. 2's
    /// `g_rel(LM(T)_{i_j} ⊕ LM(T)_{i_k})`). The batched annotation path
    /// selects rows out of a whole batch's packed column matrix here.
    pub fn rel_logits_from_embeddings(
        &self,
        tape: &mut Tape<'_>,
        cols: NodeId,
        subj: &[u32],
        obj: &[u32],
    ) -> NodeId {
        assert_eq!(subj.len(), obj.len(), "subject/object index count mismatch");
        assert!(!subj.is_empty(), "no relation pairs requested");
        let a = tape.row_select(cols, subj);
        let b = tape.row_select(cols, obj);
        let pair = tape.concat_cols(a, b);
        let h = tape.linear(pair, self.rel_dense_w, self.rel_dense_b);
        let act = tape.gelu(h);
        tape.linear(act, self.rel_out_w, self.rel_out_b)
    }

    /// Relation logits for a *single-column-pair* serialization (the
    /// `DosoloSCol` path): the pair's one `[CLS]` embedding feeds the head.
    pub fn rel_logits_single<R: Rng + ?Sized>(
        &self,
        tape: &mut Tape<'_>,
        st: &SerializedTable,
        rng: &mut R,
    ) -> NodeId {
        assert_eq!(
            self.cfg.input_mode,
            InputMode::SingleColumn,
            "single-pair logits need single-column mode"
        );
        let cols = self.column_embeddings(tape, st, rng);
        let h = tape.linear(cols, self.rel_dense_w, self.rel_dense_b);
        let act = tape.gelu(h);
        tape.linear(act, self.rel_out_w, self.rel_out_b)
    }

    /// Serializes `table` according to this model's input mode for the
    /// *type* task: table-wise → one sequence; single-column → one sequence
    /// per column.
    pub fn serialize_for_types(&self, table: &Table, tok: &WordPiece) -> Vec<SerializedTable> {
        match self.cfg.input_mode {
            InputMode::TableWise => vec![serialize_table(table, tok, &self.cfg.serialize)],
            InputMode::SingleColumn => (0..table.n_cols())
                .map(|c| serialize_single_column(table, c, tok, &self.cfg.serialize))
                .collect(),
        }
    }

    /// Serializes a column pair for the relation task in single-column mode.
    pub fn serialize_pair(
        &self,
        table: &Table,
        a: usize,
        b: usize,
        tok: &WordPiece,
    ) -> SerializedTable {
        serialize_column_pair(table, a, b, tok, &self.cfg.serialize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doduo_table::{Column, Table};
    use doduo_tokenizer::{TrainConfig, WordPiece};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tok() -> WordPiece {
        WordPiece::train(
            ["alpha beta gamma delta epsilon one two three four"],
            &TrainConfig { merges: 100, min_pair_count: 1, max_word_len: 16 },
        )
    }

    fn table() -> Table {
        Table::new(
            "t",
            vec![
                Column::new(vec!["alpha".into(), "beta".into()]),
                Column::new(vec!["one".into(), "two".into()]),
                Column::new(vec!["gamma delta".into(), "epsilon".into()]),
            ],
        )
    }

    fn build(mode: InputMode, attention: AttentionMode) -> (ParamStore, DoduoModel, WordPiece) {
        let t = tok();
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = DoduoConfig::new(EncoderConfig::tiny(t.vocab_size()), 7, 4, true)
            .with_input_mode(mode)
            .with_attention(attention);
        let m = DoduoModel::new(&mut store, cfg, "doduo", &mut rng);
        (store, m, t)
    }

    #[test]
    fn type_logits_shape_table_wise() {
        let (store, m, t) = build(InputMode::TableWise, AttentionMode::Full);
        let st = &m.serialize_for_types(&table(), &t)[0];
        let mut rng = StdRng::seed_from_u64(1);
        let mut tape = Tape::inference(&store);
        let logits = m.type_logits(&mut tape, st, &mut rng);
        assert_eq!(tape.value(logits).shape(), (3, 7));
    }

    #[test]
    fn type_logits_shape_single_column() {
        let (store, m, t) = build(InputMode::SingleColumn, AttentionMode::Full);
        let sts = m.serialize_for_types(&table(), &t);
        assert_eq!(sts.len(), 3, "one sequence per column");
        let mut rng = StdRng::seed_from_u64(1);
        for st in &sts {
            let mut tape = Tape::inference(&store);
            let logits = m.type_logits(&mut tape, st, &mut rng);
            assert_eq!(tape.value(logits).shape(), (1, 7));
        }
    }

    #[test]
    fn rel_logits_shape() {
        let (store, m, t) = build(InputMode::TableWise, AttentionMode::Full);
        let st = &m.serialize_for_types(&table(), &t)[0];
        let mut rng = StdRng::seed_from_u64(1);
        let mut tape = Tape::inference(&store);
        let logits = m.rel_logits(&mut tape, st, &[(0, 1), (0, 2)], &mut rng);
        assert_eq!(tape.value(logits).shape(), (2, 4));
    }

    #[test]
    fn rel_logits_single_pair() {
        let (store, m, t) = build(InputMode::SingleColumn, AttentionMode::Full);
        let st = m.serialize_pair(&table(), 0, 2, &t);
        let mut rng = StdRng::seed_from_u64(1);
        let mut tape = Tape::inference(&store);
        let logits = m.rel_logits_single(&mut tape, &st, &mut rng);
        assert_eq!(tape.value(logits).shape(), (1, 4));
    }

    #[test]
    fn visibility_mask_blocks_cross_column_cells() {
        let (_store, m, t) = build(InputMode::TableWise, AttentionMode::ColumnVisibility);
        let st = &m.serialize_for_types(&table(), &t)[0];
        let mask = m.visibility_mask(st).expect("visibility mode");
        let s = st.ids.len();
        // A cell token of column 0 (position 1) must NOT see a cell token of
        // column 1 (position right after its CLS).
        let c1_cls = st.cls_positions[1] as usize;
        let cell0 = 1usize;
        let cell1 = c1_cls + 1;
        assert!(mask[cell0 * s + cell1] < -1e8, "cross-column cell edge must be masked");
        // But CLS0 sees CLS1.
        let c0_cls = st.cls_positions[0] as usize;
        assert_eq!(mask[c0_cls * s + c1_cls], 0.0, "CLS-CLS edges stay visible");
        // And everyone sees the final [SEP].
        assert_eq!(mask[cell0 * s + (s - 1)], 0.0);
        // Same-column edges stay visible.
        assert_eq!(mask[cell0 * s + c0_cls], 0.0);
    }

    #[test]
    fn full_attention_has_no_mask() {
        let (_store, m, t) = build(InputMode::TableWise, AttentionMode::Full);
        let st = &m.serialize_for_types(&table(), &t)[0];
        assert!(m.visibility_mask(st).is_none());
    }

    #[test]
    fn turl_and_doduo_differ_in_output() {
        let (store, m_full, t) = build(InputMode::TableWise, AttentionMode::Full);
        let st = &m_full.serialize_for_types(&table(), &t)[0];
        let mut rng = StdRng::seed_from_u64(1);
        let mut tape1 = Tape::inference(&store);
        let full = m_full.type_logits(&mut tape1, st, &mut rng);
        // Same weights, restricted attention.
        let (_s2, m_vis, _t2) = build(InputMode::TableWise, AttentionMode::ColumnVisibility);
        let mut tape2 = Tape::inference(&store);
        let mask = m_vis.visibility_mask(st).unwrap();
        let enc = m_full.encoder.forward(&mut tape2, &st.ids, Some(&mask), &mut rng);
        let cols = tape2.row_select(enc, &st.cls_positions);
        let vis = m_full.type_logits_from_embeddings(&mut tape2, cols);
        let d: f32 = tape1
            .value(full)
            .data()
            .iter()
            .zip(tape2.value(vis).data().iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(d > 1e-4, "visibility restriction must change predictions");
    }
}
