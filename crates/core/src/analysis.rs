//! Attention analysis (Appendix A.4, Figure 6): how much each column type
//! "relies on" other column types for its contextualized representation.
//!
//! Following the paper: take the *last* Transformer layer, aggregate the
//! attention weights of all heads, keep only `[CLS]` → `[CLS]` entries, and
//! average per (type, type) pair over the dataset; the accumulator
//! normalizes by co-occurrence so the reference point is zero.

use crate::model::DoduoModel;
use doduo_eval::DependencyAccumulator;
use doduo_table::Dataset;
use doduo_tensor::Tape;
use doduo_tokenizer::WordPiece;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Computes the inter-column dependency matrix over a dataset. Only tables
/// with at least two columns contribute (the paper uses the multi-column
/// VizNet split). Column types use each column's *primary* (first) label.
pub fn attention_dependency(
    model: &DoduoModel,
    store: &doduo_tensor::ParamStore,
    ds: &Dataset,
    tok: &WordPiece,
) -> DependencyAccumulator {
    let mut acc = DependencyAccumulator::new(ds.type_vocab.len());
    let mut rng = StdRng::seed_from_u64(0);
    for at in &ds.tables {
        if at.table.n_cols() < 2 {
            continue;
        }
        let st = model.serialize_for_types(&at.table, tok).remove(0);
        let mask = model.visibility_mask(&st);
        let mut tape = Tape::inference(store);
        let mut attn_nodes = Vec::new();
        model.encoder.forward_collect_attn(
            &mut tape,
            &st.ids,
            mask.as_ref(),
            &mut rng,
            &mut attn_nodes,
        );
        let last = *attn_nodes.last().expect("at least one layer");
        let (probs, heads) = tape.mha_probs(last).expect("mha node");
        let s = st.ids.len();
        for (ci, &pi) in st.cls_positions.iter().enumerate() {
            for (cj, &pj) in st.cls_positions.iter().enumerate() {
                if ci == cj {
                    continue;
                }
                // Average attention of CLS_i -> CLS_j across heads.
                let mut w = 0.0f64;
                for h in 0..heads {
                    w += probs[h * s * s + (pi as usize) * s + pj as usize] as f64;
                }
                w /= heads as f64;
                let ty_i = at.col_types[ci][0] as usize;
                let ty_j = at.col_types[cj][0] as usize;
                acc.add(ty_i, ty_j, w);
            }
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AttentionMode, DoduoConfig, DoduoModel};
    use doduo_datagen::{generate_viznet, KbConfig, KnowledgeBase, VizNetConfig};
    use doduo_table::SerializeConfig;
    use doduo_tensor::ParamStore;
    use doduo_tokenizer::{TrainConfig as TokTrain, WordPiece};
    use doduo_transformer::EncoderConfig;

    #[test]
    fn dependency_matrix_covers_cooccurring_types() {
        let kb = KnowledgeBase::generate(&KbConfig::default(), 42);
        let ds = generate_viznet(
            &kb,
            &VizNetConfig { n_tables: 40, single_col_frac: 0.0, ..Default::default() },
        );
        let corpus: Vec<String> = ds
            .tables
            .iter()
            .flat_map(|t| t.table.columns.iter())
            .flat_map(|c| c.values.iter().cloned())
            .collect();
        let tok = WordPiece::train(
            corpus.iter().map(String::as_str),
            &TokTrain { merges: 200, min_pair_count: 3, max_word_len: 24 },
        );
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(5);
        let enc = EncoderConfig::tiny(tok.vocab_size());
        let max_seq = enc.max_seq;
        let cfg = DoduoConfig::new(enc, ds.type_vocab.len(), 1, false)
            .with_attention(AttentionMode::Full)
            .with_serialize(SerializeConfig::new(4, max_seq));
        let model = DoduoModel::new(&mut store, cfg, "m", &mut rng);
        let acc = attention_dependency(&model, &store, &ds, &tok);
        assert_eq!(acc.n_types(), ds.type_vocab.len());
        assert!(acc.observed_pairs() > 10, "pairs: {}", acc.observed_pairs());
        // Observed entries are finite and centered.
        let m = acc.normalized();
        let finite: Vec<f64> = m.iter().copied().filter(|v| v.is_finite()).collect();
        assert!(!finite.is_empty());
        let mean: f64 = finite.iter().sum::<f64>() / finite.len() as f64;
        assert!(mean.abs() < 1e-9, "centered mean {mean}");
    }
}
