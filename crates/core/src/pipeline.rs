//! End-to-end pretrain → fine-tune pipeline.
//!
//! The paper fine-tunes an already-pretrained BERT; its Appendix A.5 shows a
//! randomly-initialized Doduo reaches ~zero F1, i.e. pretraining is
//! load-bearing. This module packages that pipeline: train a WordPiece
//! tokenizer on a corpus, MLM-pretrain an encoder, and hand the frozen
//! checkpoint to any number of fine-tuning model variants (Doduo, Dosolo,
//! DosoloSCol, TURL-style, different token budgets) that all start from the
//! *same* pretrained weights — mirroring how every row of the paper's
//! tables starts from the same BERT-base.

use crate::model::{DoduoConfig, DoduoModel};
use doduo_tensor::serialize::{load_lenient, save_filtered};
use doduo_tensor::ParamStore;
use doduo_tokenizer::{TrainConfig as TokTrainConfig, WordPiece, CLS, SEP};
use doduo_transformer::{pretrain_mlm, Encoder, EncoderConfig, MlmConfig, MlmHead};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Parameter-name prefix shared by every encoder this pipeline produces;
/// checkpoints transfer because fine-tuning models use the same prefix.
pub const ENC_PREFIX: &str = "enc";

/// A pretrained language model: tokenizer + encoder shape + weights.
pub struct PretrainedLm {
    /// The WordPiece tokenizer trained on the pretraining corpus.
    pub tokenizer: WordPiece,
    /// Shape of the pretrained encoder.
    pub config: EncoderConfig,
    /// Checkpoint of the encoder plus its MLM head (the head is skipped by
    /// fine-tuning loads and used by the probing analysis).
    pub weights: bytes::Bytes,
    /// Mean MLM loss per pretraining epoch (for reporting).
    pub losses: Vec<f32>,
}

/// Pretraining recipe.
#[derive(Clone, Debug)]
pub struct PretrainRecipe {
    /// WordPiece training hyper-parameters.
    pub tokenizer: TokTrainConfig,
    /// Encoder hidden width (the trained vocabulary size supplies the
    /// embedding-table height).
    pub hidden: usize,
    /// Number of Transformer blocks.
    pub layers: usize,
    /// Attention heads; must divide `hidden`.
    pub heads: usize,
    /// Feed-forward inner width.
    pub ffn: usize,
    /// Maximum sequence length (bounds fine-tuning serializations too).
    pub max_seq: usize,
    /// Dropout probability during pretraining.
    pub dropout: f32,
    /// Masked-language-model objective hyper-parameters.
    pub mlm: MlmConfig,
    /// Pack multiple sentences (separated by `[SEP]`) into sequences of up
    /// to this many tokens, BERT-style. Crucial: fine-tuning serializes
    /// whole tables into sequences much longer than a single corpus
    /// sentence, and position embeddings only learn up to the pretraining
    /// sequence length. `0` disables packing (one sentence per sequence).
    pub pack_to: usize,
    /// Epochs of the *packed* second phase. Pretraining is a two-phase
    /// curriculum: phase A runs `mlm.epochs` over single sentences (fast
    /// fact learning with strong local context), phase B runs `pack_epochs`
    /// over packed `pack_to`-token sequences so position embeddings and
    /// longer-range attention get trained at fine-tuning lengths. Packed
    /// training from scratch stalls (with uniform initial attention, the
    /// relevant context is diluted 16×), which is why the curriculum order
    /// matters. `0` skips phase B.
    pub pack_epochs: usize,
}

impl Default for PretrainRecipe {
    fn default() -> Self {
        let mini = EncoderConfig::mini(6);
        PretrainRecipe {
            tokenizer: TokTrainConfig::default(),
            hidden: mini.hidden,
            layers: mini.layers,
            heads: mini.heads,
            ffn: mini.ffn,
            max_seq: mini.max_seq,
            dropout: mini.dropout,
            mlm: MlmConfig::default(),
            pack_to: mini.max_seq,
            // Off by default: at miniature scale the packed phase degrades
            // the phase-A weights faster than it teaches long-range
            // structure (see DESIGN.md); fine-tuning adapts position
            // embeddings on its own, as the paper also observes (§6.1).
            pack_epochs: 0,
        }
    }
}

impl PretrainRecipe {
    /// A fast recipe for tests: tiny encoder, few epochs.
    pub fn tiny() -> Self {
        let tiny = EncoderConfig::tiny(6);
        PretrainRecipe {
            tokenizer: TokTrainConfig { merges: 600, min_pair_count: 2, max_word_len: 32 },
            hidden: tiny.hidden,
            layers: tiny.layers,
            heads: tiny.heads,
            ffn: tiny.ffn,
            max_seq: tiny.max_seq,
            dropout: tiny.dropout,
            mlm: MlmConfig { epochs: 15, ..Default::default() },
            pack_to: tiny.max_seq,
            pack_epochs: 0,
        }
    }

    fn encoder_config(&self, vocab_size: usize) -> EncoderConfig {
        EncoderConfig {
            vocab_size,
            hidden: self.hidden,
            layers: self.layers,
            heads: self.heads,
            ffn: self.ffn,
            max_seq: self.max_seq,
            dropout: self.dropout,
        }
    }
}

/// Trains the tokenizer and MLM-pretrains an encoder on `corpus`.
pub fn pretrain_lm(corpus: &[String], recipe: &PretrainRecipe, seed: u64) -> PretrainedLm {
    let tokenizer = WordPiece::train(corpus.iter().map(String::as_str), &recipe.tokenizer);
    let config = recipe.encoder_config(tokenizer.vocab_size());
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let encoder = Encoder::new(&mut store, config.clone(), ENC_PREFIX, &mut rng);
    let head = MlmHead::new(&mut store, &config, ENC_PREFIX, &mut rng);
    let max_body = config.max_seq - 2;

    // Phase A: one sentence per sequence — fast fact learning.
    let sentences: Vec<Vec<u32>> = corpus
        .iter()
        .map(|line| {
            let mut ids = vec![CLS];
            ids.extend(tokenizer.encode_with_budget(line, max_body));
            ids.push(SEP);
            ids
        })
        .collect();
    let mut losses = pretrain_mlm(&encoder, &head, &mut store, &sentences, &recipe.mlm);

    // Phase B: BERT-style packing up to `pack_to` tokens, so position
    // embeddings and longer-range attention are trained at the lengths the
    // fine-tuning serialization uses.
    if recipe.pack_epochs > 0 && recipe.pack_to > 1 {
        let cap = recipe.pack_to.min(config.max_seq);
        let mut packed = Vec::new();
        let mut cur: Vec<u32> = vec![CLS];
        for line in corpus {
            let ids = tokenizer.encode_with_budget(line, max_body);
            // Every sentence ends with its own [SEP]; flush before the
            // sentence that would overflow the cap.
            if cur.len() + ids.len() + 1 > cap && cur.len() > 1 {
                packed.push(std::mem::replace(&mut cur, vec![CLS]));
            }
            cur.extend(ids);
            cur.push(SEP);
            debug_assert!(cur.len() <= cap, "packed sequence overflow: {} > {cap}", cur.len());
        }
        if cur.len() > 1 {
            packed.push(cur);
        }
        let phase_b = MlmConfig {
            epochs: recipe.pack_epochs,
            batch_size: recipe.mlm.batch_size.div_ceil(4).max(4),
            seed: recipe.mlm.seed ^ 0xb,
            ..recipe.mlm.clone()
        };
        losses.extend(pretrain_mlm(&encoder, &head, &mut store, &packed, &phase_b));
    }
    // Keep the MLM head in the checkpoint: fine-tuning models skip it via a
    // lenient load, while the probing analysis (Tables 12-13) needs it.
    let prefix = format!("{ENC_PREFIX}.");
    let weights = save_filtered(&store, |n| n.starts_with(&prefix));
    PretrainedLm { tokenizer, config, weights, losses }
}

/// Instantiates a fine-tuning model whose encoder is initialized from the
/// pretrained checkpoint. `make_cfg` receives the encoder config so callers
/// can attach their task shape / input mode / attention mode / token budget.
pub fn build_finetune_model(
    lm: &PretrainedLm,
    make_cfg: impl FnOnce(EncoderConfig) -> DoduoConfig,
    seed: u64,
) -> (ParamStore, DoduoModel) {
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = make_cfg(lm.config.clone());
    assert_eq!(
        cfg.encoder, lm.config,
        "fine-tune encoder shape must match the pretrained checkpoint"
    );
    let model = DoduoModel::new(&mut store, cfg, ENC_PREFIX, &mut rng);
    let (loaded, _skipped_mlm_head) =
        load_lenient(&mut store, &lm.weights).expect("pretrained weights must load");
    assert!(loaded > 0, "checkpoint was empty");
    (store, model)
}

/// Re-instantiates the pretrained language model (encoder + MLM head) from
/// a checkpoint, e.g. for the perplexity-probing analysis of Tables 12-13.
pub fn instantiate_lm(lm: &PretrainedLm) -> (ParamStore, Encoder, MlmHead) {
    let mut store = ParamStore::new();
    // Seed is irrelevant: every parameter is overwritten by the checkpoint.
    let mut rng = StdRng::seed_from_u64(0);
    let encoder = Encoder::new(&mut store, lm.config.clone(), ENC_PREFIX, &mut rng);
    let head = MlmHead::new(&mut store, &lm.config, ENC_PREFIX, &mut rng);
    let (loaded, skipped) =
        load_lenient(&mut store, &lm.weights).expect("pretrained weights must load");
    assert_eq!(skipped, 0, "LM checkpoint should fully match encoder+head");
    assert_eq!(loaded, store.len(), "every LM parameter must come from the checkpoint");
    (store, encoder, head)
}

/// Builds the same model shape but *without* loading pretrained weights —
/// the paper's random-initialization ablation (Appendix A.5).
pub fn build_scratch_model(
    lm: &PretrainedLm,
    make_cfg: impl FnOnce(EncoderConfig) -> DoduoConfig,
    seed: u64,
) -> (ParamStore, DoduoModel) {
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let model = DoduoModel::new(&mut store, make_cfg(lm.config.clone()), ENC_PREFIX, &mut rng);
    (store, model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use doduo_tensor::Tape;

    fn corpus() -> Vec<String> {
        let mut out = Vec::new();
        for _ in 0..4 {
            out.extend(
                [
                    "george miller is a director",
                    "george miller directed happy feet",
                    "brisbane is a city",
                    "happy feet is a film",
                    "cars is a film",
                    "john lasseter directed cars",
                ]
                .iter()
                .map(|s| s.to_string()),
            );
        }
        out
    }

    #[test]
    fn pretrain_then_finetune_weights_transfer() {
        let lm = pretrain_lm(&corpus(), &PretrainRecipe::tiny(), 42);
        assert!(!lm.losses.is_empty());
        let (store, model) = build_finetune_model(&lm, |enc| DoduoConfig::new(enc, 4, 2, true), 7);
        // The loaded encoder must produce the same embeddings as a second
        // load — i.e. weights really come from the checkpoint, not the RNG.
        let (store2, model2) = build_finetune_model(
            &lm,
            |enc| DoduoConfig::new(enc, 4, 2, true),
            999, // different seed: heads differ, encoder identical
        );
        let ids = [CLS, 7, 8, 9, SEP];
        let mut rng = StdRng::seed_from_u64(0);
        let mut t1 = Tape::inference(&store);
        let a = model.encoder.forward(&mut t1, &ids, None, &mut rng);
        let mut t2 = Tape::inference(&store2);
        let b = model2.encoder.forward(&mut t2, &ids, None, &mut rng);
        for (x, y) in t1.value(a).data().iter().zip(t2.value(b).data().iter()) {
            assert!((x - y).abs() < 1e-6, "encoders must match across loads");
        }
    }

    #[test]
    fn scratch_model_differs_from_pretrained() {
        let lm = pretrain_lm(&corpus(), &PretrainRecipe::tiny(), 42);
        let (store_p, model_p) =
            build_finetune_model(&lm, |enc| DoduoConfig::new(enc, 4, 2, true), 7);
        let (store_s, model_s) =
            build_scratch_model(&lm, |enc| DoduoConfig::new(enc, 4, 2, true), 7);
        let ids = [CLS, 7, 8, 9, SEP];
        let mut rng = StdRng::seed_from_u64(0);
        let mut t1 = Tape::inference(&store_p);
        let a = model_p.encoder.forward(&mut t1, &ids, None, &mut rng);
        let mut t2 = Tape::inference(&store_s);
        let b = model_s.encoder.forward(&mut t2, &ids, None, &mut rng);
        let diff: f32 = t1
            .value(a)
            .data()
            .iter()
            .zip(t2.value(b).data().iter())
            .map(|(x, y)| (x - y).abs())
            .sum();
        assert!(diff > 1e-3);
    }

    #[test]
    #[should_panic(expected = "must match the pretrained checkpoint")]
    fn mismatched_encoder_shape_panics() {
        let lm = pretrain_lm(&corpus(), &PretrainRecipe::tiny(), 42);
        build_finetune_model(
            &lm,
            |mut enc| {
                enc.hidden = 64;
                enc.heads = 4;
                DoduoConfig::new(enc, 4, 2, true)
            },
            7,
        );
    }
}
