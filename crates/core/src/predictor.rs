//! The "toolbox" API (§1: *"can be used with just a few lines of Python
//! code"* — here, Rust): annotate an unseen table with types, relations and
//! contextualized column embeddings.
//!
//! All annotation funnels through one batched inference path:
//! [`Annotator::annotate_serialized`] packs any number of serialized
//! tables into a single ragged forward pass (`Encoder::forward_batch`),
//! selects every `[CLS]` row of the whole batch at once, and runs each
//! classification head exactly once per batch. [`Annotator::annotate`] is
//! the batch of one. Deduplicating tokenization, choosing batch
//! compositions, and fanning batches across worker threads are serving
//! concerns layered on top by `doduo-serve`'s `BatchAnnotator`.

use crate::model::{DoduoModel, InputMode};
use crate::trainer::decode_labels;
use doduo_table::{LabelVocab, SerializedTable, Table};
use doduo_tensor::{softmax_row, AttnMask, ParamStore, Tape};
use doduo_tokenizer::WordPiece;
use doduo_transformer::BatchSeq;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Predicted labels for one column.
#[derive(Clone, Debug)]
pub struct ColumnTypePrediction {
    /// Column index within the table.
    pub column: usize,
    /// `(label name, score)` — sigmoid probabilities in multi-label mode,
    /// softmax probabilities otherwise; sorted descending.
    pub labels: Vec<(String, f32)>,
}

/// Predicted relation between the subject column and one object column.
#[derive(Clone, Debug)]
pub struct RelationPrediction {
    /// Subject column index (the paper always uses column 0).
    pub subject: usize,
    /// Object column index.
    pub object: usize,
    /// `(label name, score)` pairs, sorted descending.
    pub labels: Vec<(String, f32)>,
}

/// Full annotation of a table.
#[derive(Clone, Debug)]
pub struct TableAnnotation {
    /// One prediction per column, in column order.
    pub types: Vec<ColumnTypePrediction>,
    /// One prediction per `(0, j)` column pair (empty in single-column
    /// mode or when the model has no relation vocabulary).
    pub relations: Vec<RelationPrediction>,
}

/// A trained model bundled with everything needed to annotate raw tables.
pub struct Annotator<'a> {
    /// The fine-tuned model.
    pub model: &'a DoduoModel,
    /// The weights backing `model`.
    pub store: &'a ParamStore,
    /// The tokenizer the model was trained with.
    pub tokenizer: &'a WordPiece,
    /// Names for the column-type label ids.
    pub type_vocab: &'a LabelVocab,
    /// Names for the column-relation label ids.
    pub rel_vocab: &'a LabelVocab,
}

fn sigmoid(z: f32) -> f32 {
    1.0 / (1.0 + (-z).exp())
}

/// Scored labels from one logit row, sorted descending, with the set the
/// decision rule would emit placed first: sigmoid probabilities in
/// multi-label mode, softmax probabilities otherwise, truncated to the
/// decision-rule labels plus the next best few for context.
pub fn scored_labels(logits: &[f32], vocab: &LabelVocab, multi_label: bool) -> Vec<(String, f32)> {
    let mut scores: Vec<f32> = logits.to_vec();
    if multi_label {
        for s in scores.iter_mut() {
            *s = sigmoid(*s);
        }
    } else {
        softmax_row(&mut scores);
    }
    let chosen = decode_labels(logits, multi_label);
    let mut rows: Vec<(String, f32)> =
        scores.iter().enumerate().map(|(i, &s)| (vocab.name(i as u32).to_string(), s)).collect();
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite scores"));
    // Keep the decision-rule labels plus the next best few for context.
    let keep = chosen.len().max(3).min(rows.len());
    rows.truncate(keep);
    rows
}

impl Annotator<'_> {
    /// Annotates every column (and, in table-wise mode, every `(0, j)`
    /// column pair) of a table. Delegates to the batched path with a batch
    /// of one, so single-table and batched annotation share one code path
    /// and produce identical results.
    pub fn annotate(&self, table: &Table) -> TableAnnotation {
        self.annotate_all(std::slice::from_ref(table)).pop().expect("one table in, one out")
    }

    /// Annotates a slice of tables in one packed forward pass (one tape,
    /// single-threaded). This is the building block `doduo-serve` composes
    /// into micro-batches and fans across threads.
    pub fn annotate_all(&self, tables: &[Table]) -> Vec<TableAnnotation> {
        let groups: Vec<Vec<SerializedTable>> =
            tables.iter().map(|t| self.model.serialize_for_types(t, self.tokenizer)).collect();
        let borrowed: Vec<&[SerializedTable]> = groups.iter().map(Vec::as_slice).collect();
        self.annotate_serialized(&borrowed)
    }

    /// Annotates pre-serialized tables: each group is the output of
    /// `DoduoModel::serialize_for_types` for one table (one sequence in
    /// table-wise mode, one per column in single-column mode). All
    /// sequences of all groups run through a single
    /// `Encoder::forward_batch` call; the type head runs once over every
    /// `[CLS]` row of the batch and the relation head once over every
    /// `(0, j)` pair of every table. Output order matches input order, and
    /// each annotation is bit-identical to what [`Annotator::annotate`]
    /// produces for that table alone.
    pub fn annotate_serialized(&self, groups: &[&[SerializedTable]]) -> Vec<TableAnnotation> {
        if groups.is_empty() {
            return Vec::new();
        }
        let cfg = self.model.config();
        let ml = cfg.multi_label;
        let table_wise = cfg.input_mode == InputMode::TableWise;

        // Flatten every sequence of every group into one batch.
        let sts: Vec<&SerializedTable> = groups.iter().flat_map(|g| g.iter()).collect();
        assert!(!sts.is_empty(), "every table serializes to at least one sequence");
        let vis: Vec<Option<AttnMask>> =
            sts.iter().map(|st| self.model.visibility_mask(st)).collect();
        let seqs: Vec<BatchSeq<'_>> = sts
            .iter()
            .zip(vis.iter())
            .map(|(st, m)| BatchSeq { ids: &st.ids, mask: m.as_ref() })
            .collect();

        let mut rng = StdRng::seed_from_u64(0);
        let mut tape = Tape::inference(self.store);
        let enc = self.model.encoder.forward_batch(&mut tape, &seqs, &mut rng);

        // Every column's `[CLS]` row across the whole batch, in
        // (sequence, column) order; `col_row0[b]` is sequence b's first row
        // in the resulting `[total_cols, d]` matrix.
        let mut cls_rows: Vec<u32> = Vec::new();
        let mut col_row0: Vec<usize> = Vec::with_capacity(sts.len());
        for (b, st) in sts.iter().enumerate() {
            col_row0.push(cls_rows.len());
            cls_rows.extend(st.cls_positions.iter().map(|&p| enc.row_of(b, p as usize) as u32));
        }
        let cols = tape.row_select(enc.node, &cls_rows);
        let type_logits = self.model.type_logits_from_embeddings(&mut tape, cols);

        // Relation pairs (0, j) per table-wise sequence with 2+ columns.
        let mut subj: Vec<u32> = Vec::new();
        let mut obj: Vec<u32> = Vec::new();
        if table_wise && !self.rel_vocab.is_empty() {
            for (b, st) in sts.iter().enumerate() {
                for j in 1..st.n_cols() {
                    subj.push(col_row0[b] as u32);
                    obj.push((col_row0[b] + j) as u32);
                }
            }
        }
        let rel_logits = (!subj.is_empty())
            .then(|| self.model.rel_logits_from_embeddings(&mut tape, cols, &subj, &obj));

        // Scatter head outputs back into per-table annotations.
        let tv = tape.value(type_logits);
        let rv = rel_logits.map(|n| tape.value(n));
        let mut out = Vec::with_capacity(groups.len());
        let mut seq = 0usize;
        let mut rel_row = 0usize;
        for group in groups {
            let mut types = Vec::new();
            let mut relations = Vec::new();
            for st in group.iter() {
                let row0 = col_row0[seq];
                for c in 0..st.n_cols() {
                    types.push(ColumnTypePrediction {
                        column: types.len(),
                        labels: scored_labels(tv.row(row0 + c), self.type_vocab, ml),
                    });
                }
                if table_wise && !self.rel_vocab.is_empty() {
                    for j in 1..st.n_cols() {
                        let v = rv.expect("relation logits exist when pairs do");
                        relations.push(RelationPrediction {
                            subject: 0,
                            object: j,
                            labels: scored_labels(v.row(rel_row), self.rel_vocab, ml),
                        });
                        rel_row += 1;
                    }
                }
                seq += 1;
            }
            out.push(TableAnnotation { types, relations });
        }
        out
    }

    /// Contextualized column embeddings (the `[CLS]` outputs, §4.3) — the
    /// representation the §7 case study clusters.
    pub fn column_embeddings(&self, table: &Table) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(0);
        match self.model.config().input_mode {
            InputMode::TableWise => {
                let st = self.model.serialize_for_types(table, self.tokenizer).remove(0);
                let mut tape = Tape::inference(self.store);
                let cols = self.model.column_embeddings(&mut tape, &st, &mut rng);
                let v = tape.value(cols);
                (0..v.rows()).map(|r| v.row(r).to_vec()).collect()
            }
            InputMode::SingleColumn => self
                .model
                .serialize_for_types(table, self.tokenizer)
                .iter()
                .map(|st| {
                    let mut tape = Tape::inference(self.store);
                    let cols = self.model.column_embeddings(&mut tape, st, &mut rng);
                    tape.value(cols).row(0).to_vec()
                })
                .collect(),
        }
    }

    /// The top predicted type name per column (a convenience for clustering
    /// by predicted type, Table 9's "Doduo+predicted type" baseline).
    pub fn predicted_type_ids(&self, table: &Table) -> Vec<u32> {
        self.annotate(table)
            .types
            .iter()
            .map(|t| {
                self.type_vocab.id(&t.labels[0].0).expect("annotator emits only vocabulary labels")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AttentionMode, DoduoConfig};
    use doduo_table::{Column, LabelVocab, SerializeConfig};
    use doduo_tokenizer::TrainConfig as TokTrain;
    use doduo_transformer::EncoderConfig;

    fn setup() -> (ParamStore, DoduoModel, WordPiece, LabelVocab, LabelVocab) {
        let tok = WordPiece::train(
            ["alpha beta gamma one two three"],
            &TokTrain { merges: 60, min_pair_count: 1, max_word_len: 16 },
        );
        let mut tv = LabelVocab::new();
        tv.intern("t.a");
        tv.intern("t.b");
        tv.intern("t.c");
        let mut rv = LabelVocab::new();
        rv.intern("r.x");
        rv.intern("r.y");
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let enc = EncoderConfig::tiny(tok.vocab_size());
        let max_seq = enc.max_seq;
        let cfg = DoduoConfig::new(enc, 3, 2, true)
            .with_attention(AttentionMode::Full)
            .with_serialize(SerializeConfig::new(8, max_seq));
        let model = DoduoModel::new(&mut store, cfg, "m", &mut rng);
        (store, model, tok, tv, rv)
    }

    fn table() -> Table {
        Table::new(
            "t",
            vec![
                Column::new(vec!["alpha".into(), "beta".into()]),
                Column::new(vec!["one".into(), "two".into()]),
            ],
        )
    }

    #[test]
    fn annotate_covers_all_columns_and_pairs() {
        let (store, model, tok, tv, rv) = setup();
        let ann = Annotator {
            model: &model,
            store: &store,
            tokenizer: &tok,
            type_vocab: &tv,
            rel_vocab: &rv,
        };
        let out = ann.annotate(&table());
        assert_eq!(out.types.len(), 2);
        assert_eq!(out.relations.len(), 1);
        assert_eq!(out.relations[0].subject, 0);
        assert_eq!(out.relations[0].object, 1);
        // Scores sorted descending, names come from the vocab.
        for t in &out.types {
            assert!(t.labels.windows(2).all(|w| w[0].1 >= w[1].1));
            for (name, p) in &t.labels {
                assert!(tv.id(name).is_some());
                assert!((0.0..=1.0).contains(p));
            }
        }
    }

    #[test]
    fn embeddings_have_hidden_width() {
        let (store, model, tok, tv, rv) = setup();
        let ann = Annotator {
            model: &model,
            store: &store,
            tokenizer: &tok,
            type_vocab: &tv,
            rel_vocab: &rv,
        };
        let embs = ann.column_embeddings(&table());
        assert_eq!(embs.len(), 2);
        for e in &embs {
            assert_eq!(e.len(), model.config().encoder.hidden);
            assert!(e.iter().all(|v| v.is_finite()));
        }
        // Different columns get different embeddings.
        let diff: f32 = embs[0].iter().zip(&embs[1]).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1e-4);
    }

    #[test]
    fn annotate_all_matches_one_by_one_bitwise() {
        let (store, model, tok, tv, rv) = setup();
        let ann = Annotator {
            model: &model,
            store: &store,
            tokenizer: &tok,
            type_vocab: &tv,
            rel_vocab: &rv,
        };
        // Different column counts and lengths force padding in the batch.
        let tables = vec![
            table(),
            Table::new("u", vec![Column::new(vec!["gamma".into()])]),
            Table::new(
                "v",
                vec![
                    Column::new(vec!["one two three".into(), "alpha".into()]),
                    Column::new(vec!["beta".into()]),
                    Column::new(vec!["two".into(), "three".into()]),
                ],
            ),
        ];
        let batched = ann.annotate_all(&tables);
        assert_eq!(batched.len(), tables.len());
        for (t, b) in tables.iter().zip(&batched) {
            let single = ann.annotate(t);
            assert_eq!(single.types.len(), b.types.len());
            for (x, y) in single.types.iter().zip(&b.types) {
                assert_eq!(x.column, y.column);
                for ((n1, s1), (n2, s2)) in x.labels.iter().zip(&y.labels) {
                    assert_eq!(n1, n2);
                    assert_eq!(s1.to_bits(), s2.to_bits(), "type scores must be bit-identical");
                }
            }
            assert_eq!(single.relations.len(), b.relations.len());
            for (x, y) in single.relations.iter().zip(&b.relations) {
                assert_eq!((x.subject, x.object), (y.subject, y.object));
                for ((n1, s1), (n2, s2)) in x.labels.iter().zip(&y.labels) {
                    assert_eq!(n1, n2);
                    assert_eq!(s1.to_bits(), s2.to_bits(), "rel scores must be bit-identical");
                }
            }
        }
    }

    #[test]
    fn predicted_type_ids_are_valid() {
        let (store, model, tok, tv, rv) = setup();
        let ann = Annotator {
            model: &model,
            store: &store,
            tokenizer: &tok,
            type_vocab: &tv,
            rel_vocab: &rv,
        };
        let ids = ann.predicted_type_ids(&table());
        assert_eq!(ids.len(), 2);
        assert!(ids.iter().all(|&i| (i as usize) < tv.len()));
    }
}
