//! The "toolbox" API (§1: *"can be used with just a few lines of Python
//! code"* — here, Rust): annotate an unseen table with types, relations and
//! contextualized column embeddings.

use crate::model::{DoduoModel, InputMode};
use crate::trainer::decode_labels;
use doduo_table::{LabelVocab, Table};
use doduo_tensor::{softmax_row, ParamStore, Tape};
use doduo_tokenizer::WordPiece;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Predicted labels for one column.
#[derive(Clone, Debug)]
pub struct ColumnTypePrediction {
    pub column: usize,
    /// `(label name, score)` — sigmoid probabilities in multi-label mode,
    /// softmax probabilities otherwise; sorted descending.
    pub labels: Vec<(String, f32)>,
}

/// Predicted relation between the subject column and one object column.
#[derive(Clone, Debug)]
pub struct RelationPrediction {
    pub subject: usize,
    pub object: usize,
    pub labels: Vec<(String, f32)>,
}

/// Full annotation of a table.
#[derive(Clone, Debug)]
pub struct TableAnnotation {
    pub types: Vec<ColumnTypePrediction>,
    pub relations: Vec<RelationPrediction>,
}

/// A trained model bundled with everything needed to annotate raw tables.
pub struct Annotator<'a> {
    pub model: &'a DoduoModel,
    pub store: &'a ParamStore,
    pub tokenizer: &'a WordPiece,
    pub type_vocab: &'a LabelVocab,
    pub rel_vocab: &'a LabelVocab,
}

fn sigmoid(z: f32) -> f32 {
    1.0 / (1.0 + (-z).exp())
}

impl Annotator<'_> {
    /// Scored labels from one logit row, sorted descending, with the set the
    /// decision rule would emit placed first.
    fn scored(&self, logits: &[f32], vocab: &LabelVocab, multi_label: bool) -> Vec<(String, f32)> {
        let mut scores: Vec<f32> = logits.to_vec();
        if multi_label {
            for s in scores.iter_mut() {
                *s = sigmoid(*s);
            }
        } else {
            softmax_row(&mut scores);
        }
        let chosen = decode_labels(logits, multi_label);
        let mut rows: Vec<(String, f32)> = scores
            .iter()
            .enumerate()
            .map(|(i, &s)| (vocab.name(i as u32).to_string(), s))
            .collect();
        rows.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite scores"));
        // Keep the decision-rule labels plus the next best few for context.
        let keep = chosen.len().max(3).min(rows.len());
        rows.truncate(keep);
        rows
    }

    /// Annotates every column (and, in table-wise mode, every `(0, j)`
    /// column pair) of a table.
    pub fn annotate(&self, table: &Table) -> TableAnnotation {
        let ml = self.model.config().multi_label;
        let mut rng = StdRng::seed_from_u64(0);
        let mut types = Vec::with_capacity(table.n_cols());
        match self.model.config().input_mode {
            InputMode::TableWise => {
                let st = self.model.serialize_for_types(table, self.tokenizer).remove(0);
                let mut tape = Tape::inference(self.store);
                let logits = self.model.type_logits(&mut tape, &st, &mut rng);
                let v = tape.value(logits);
                for c in 0..v.rows() {
                    types.push(ColumnTypePrediction {
                        column: c,
                        labels: self.scored(v.row(c), self.type_vocab, ml),
                    });
                }
                let mut relations = Vec::new();
                if table.n_cols() > 1 && !self.rel_vocab.is_empty() {
                    let pairs: Vec<(usize, usize)> = (1..table.n_cols()).map(|j| (0, j)).collect();
                    let mut tape = Tape::inference(self.store);
                    let logits = self.model.rel_logits(&mut tape, &st, &pairs, &mut rng);
                    let v = tape.value(logits);
                    for (r, &(s, o)) in pairs.iter().enumerate() {
                        relations.push(RelationPrediction {
                            subject: s,
                            object: o,
                            labels: self.scored(v.row(r), self.rel_vocab, ml),
                        });
                    }
                }
                TableAnnotation { types, relations }
            }
            InputMode::SingleColumn => {
                for (c, st) in
                    self.model.serialize_for_types(table, self.tokenizer).into_iter().enumerate()
                {
                    let mut tape = Tape::inference(self.store);
                    let logits = self.model.type_logits(&mut tape, &st, &mut rng);
                    types.push(ColumnTypePrediction {
                        column: c,
                        labels: self.scored(tape.value(logits).row(0), self.type_vocab, ml),
                    });
                }
                TableAnnotation { types, relations: Vec::new() }
            }
        }
    }

    /// Contextualized column embeddings (the `[CLS]` outputs, §4.3) — the
    /// representation the §7 case study clusters.
    pub fn column_embeddings(&self, table: &Table) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(0);
        match self.model.config().input_mode {
            InputMode::TableWise => {
                let st = self.model.serialize_for_types(table, self.tokenizer).remove(0);
                let mut tape = Tape::inference(self.store);
                let cols = self.model.column_embeddings(&mut tape, &st, &mut rng);
                let v = tape.value(cols);
                (0..v.rows()).map(|r| v.row(r).to_vec()).collect()
            }
            InputMode::SingleColumn => self
                .model
                .serialize_for_types(table, self.tokenizer)
                .iter()
                .map(|st| {
                    let mut tape = Tape::inference(self.store);
                    let cols = self.model.column_embeddings(&mut tape, st, &mut rng);
                    tape.value(cols).row(0).to_vec()
                })
                .collect(),
        }
    }

    /// The top predicted type name per column (a convenience for clustering
    /// by predicted type, Table 9's "Doduo+predicted type" baseline).
    pub fn predicted_type_ids(&self, table: &Table) -> Vec<u32> {
        self.annotate(table)
            .types
            .iter()
            .map(|t| {
                self.type_vocab.id(&t.labels[0].0).expect("annotator emits only vocabulary labels")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AttentionMode, DoduoConfig};
    use doduo_table::{Column, LabelVocab, SerializeConfig};
    use doduo_tokenizer::TrainConfig as TokTrain;
    use doduo_transformer::EncoderConfig;

    fn setup() -> (ParamStore, DoduoModel, WordPiece, LabelVocab, LabelVocab) {
        let tok = WordPiece::train(
            ["alpha beta gamma one two three"],
            &TokTrain { merges: 60, min_pair_count: 1, max_word_len: 16 },
        );
        let mut tv = LabelVocab::new();
        tv.intern("t.a");
        tv.intern("t.b");
        tv.intern("t.c");
        let mut rv = LabelVocab::new();
        rv.intern("r.x");
        rv.intern("r.y");
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let enc = EncoderConfig::tiny(tok.vocab_size());
        let max_seq = enc.max_seq;
        let cfg = DoduoConfig::new(enc, 3, 2, true)
            .with_attention(AttentionMode::Full)
            .with_serialize(SerializeConfig::new(8, max_seq));
        let model = DoduoModel::new(&mut store, cfg, "m", &mut rng);
        (store, model, tok, tv, rv)
    }

    fn table() -> Table {
        Table::new(
            "t",
            vec![
                Column::new(vec!["alpha".into(), "beta".into()]),
                Column::new(vec!["one".into(), "two".into()]),
            ],
        )
    }

    #[test]
    fn annotate_covers_all_columns_and_pairs() {
        let (store, model, tok, tv, rv) = setup();
        let ann = Annotator {
            model: &model,
            store: &store,
            tokenizer: &tok,
            type_vocab: &tv,
            rel_vocab: &rv,
        };
        let out = ann.annotate(&table());
        assert_eq!(out.types.len(), 2);
        assert_eq!(out.relations.len(), 1);
        assert_eq!(out.relations[0].subject, 0);
        assert_eq!(out.relations[0].object, 1);
        // Scores sorted descending, names come from the vocab.
        for t in &out.types {
            assert!(t.labels.windows(2).all(|w| w[0].1 >= w[1].1));
            for (name, p) in &t.labels {
                assert!(tv.id(name).is_some());
                assert!((0.0..=1.0).contains(p));
            }
        }
    }

    #[test]
    fn embeddings_have_hidden_width() {
        let (store, model, tok, tv, rv) = setup();
        let ann = Annotator {
            model: &model,
            store: &store,
            tokenizer: &tok,
            type_vocab: &tv,
            rel_vocab: &rv,
        };
        let embs = ann.column_embeddings(&table());
        assert_eq!(embs.len(), 2);
        for e in &embs {
            assert_eq!(e.len(), model.config().encoder.hidden);
            assert!(e.iter().all(|v| v.is_finite()));
        }
        // Different columns get different embeddings.
        let diff: f32 = embs[0].iter().zip(&embs[1]).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1e-4);
    }

    #[test]
    fn predicted_type_ids_are_valid() {
        let (store, model, tok, tv, rv) = setup();
        let ann = Annotator {
            model: &model,
            store: &store,
            tokenizer: &tok,
            type_vocab: &tv,
            rel_vocab: &rv,
        };
        let ids = ann.predicted_type_ids(&table());
        assert_eq!(ids.len(), 2);
        assert!(ids.iter().all(|&i| (i as usize) < tv.len()));
    }
}
