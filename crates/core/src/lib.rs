//! # doduo-core
//!
//! The DODUO system of *Annotating Columns with Pre-trained Language Models*
//! (SIGMOD 2022): a multi-task, table-wise column-annotation framework on
//! top of a pre-trained Transformer encoder.
//!
//! * [`model`] — the architecture of §4: table-wise serialization with one
//!   `[CLS]` per column, a column-type head (eq. 1) and a column-relation
//!   head over `[CLS]` pairs (eq. 2); plus the ablation switches
//!   ([`InputMode::SingleColumn`] for `DosoloSCol`,
//!   [`AttentionMode::ColumnVisibility`] for the TURL baseline).
//! * [`trainer`] — Algorithm 1: task-alternating epochs with one Adam
//!   optimizer per task, linear LR decay, best-validation checkpointing;
//!   plus batched parallel prediction/evaluation helpers.
//! * [`predictor`] — the toolbox API: [`Annotator`] annotates raw tables and
//!   extracts contextualized column embeddings (§7).
//! * [`analysis`] — the Figure 6 attention-dependency analysis.
//! * [`checkpoint`] — self-contained [`AnnotatorBundle`] checkpoints
//!   (weights + config + tokenizer + label vocabularies in one artifact)
//!   for serving processes that restart from disk.
//! * [`quant`] — the opt-in int8 serving twin ([`QuantizedModel`]), built
//!   once from a loaded bundle's f32 weights and accuracy-gated by the
//!   repro harness (two-tier numerics policy, see `doduo_tensor::quant`).
//!
//! The paper's model variants map to configurations of the same structs:
//!
//! | Paper name | Configuration |
//! |---|---|
//! | Doduo       | `TableWise` + `Full` attention + both tasks |
//! | Dosolo      | `TableWise` + `Full` + one task |
//! | DosoloSCol  | `SingleColumn` + one task |
//! | TURL (repro)| `TableWise` + `ColumnVisibility` + fine-tuned per task |
//! | +metadata   | any of the above with `SerializeConfig::with_metadata()` |

#![warn(missing_docs)]

pub mod analysis;
pub mod checkpoint;
pub mod model;
pub mod pipeline;
pub mod predictor;
pub mod quant;
pub mod trainer;

pub use analysis::attention_dependency;
pub use checkpoint::{blob_crc, AnnotatorBundle, BundleError};
pub use model::{AttentionMode, DoduoConfig, DoduoModel, InputMode};
pub use pipeline::{
    build_finetune_model, build_scratch_model, instantiate_lm, pretrain_lm, PretrainRecipe,
    PretrainedLm, ENC_PREFIX,
};
pub use predictor::{
    scored_labels, Annotator, ColumnTypePrediction, RelationPrediction, TableAnnotation,
};
pub use quant::QuantizedModel;
pub use trainer::{
    decode_labels, evaluate, predict_rels, predict_rels_single, predict_types, prepare, train,
    EpochRecord, EvalScores, Predictions, Prepared, RelExample, RelSingleExample, Task,
    TrainConfig, TrainReport, TypeExample,
};
