//! Self-contained annotator checkpoints.
//!
//! `doduo_tensor::serialize` persists *weights only*: loading one requires
//! reconstructing the exact model shape, tokenizer, and label vocabularies
//! out of band. A daemon (`doduo-served`) that restarts from disk needs all
//! of that in one artifact, so an [`AnnotatorBundle`] owns every piece an
//! [`Annotator`] borrows and round-trips through a single
//! self-describing binary blob: magic + version, the [`DoduoConfig`] scalars,
//! the WordPiece vocabulary, both label vocabularies, and the weight records
//! (via `serialize::save_filtered` on the model's parameter prefix).
//!
//! Loading is strict: every model parameter must be present with its exact
//! shape, so a loaded bundle annotates bit-identically to the one saved.

use crate::model::{AttentionMode, DoduoConfig, DoduoModel, InputMode};
use crate::predictor::Annotator;
use doduo_table::{LabelVocab, SerializeConfig};
use doduo_tensor::{serialize, ParamStore};
use doduo_tokenizer::{Vocab, WordPiece};
use doduo_transformer::EncoderConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

const MAGIC: &[u8; 8] = b"DODUOBN1";

/// Everything a serving process needs to annotate tables, under one owner:
/// weights, model, tokenizer, and label vocabularies.
pub struct AnnotatorBundle {
    /// The weights backing `model`.
    pub store: ParamStore,
    /// The fine-tuned (or otherwise fixed) model.
    pub model: DoduoModel,
    /// The tokenizer the model was trained with.
    pub tokenizer: WordPiece,
    /// Names for the column-type label ids.
    pub type_vocab: LabelVocab,
    /// Names for the column-relation label ids.
    pub rel_vocab: LabelVocab,
    /// Parameter-name prefix the model was registered under.
    prefix: String,
}

/// Errors produced when decoding an [`AnnotatorBundle`].
#[derive(Debug)]
pub enum BundleError {
    /// Missing or wrong magic header.
    BadMagic,
    /// Buffer ended before a declared payload.
    Truncated,
    /// A string section was not valid UTF-8.
    BadString,
    /// The tokenizer vocabulary section did not parse.
    BadVocab,
    /// An enum tag had an unknown value.
    BadTag(u8),
    /// The weight section failed to load.
    Weights(serialize::LoadError),
}

impl std::fmt::Display for BundleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BundleError::BadMagic => write!(f, "not an annotator bundle (bad magic)"),
            BundleError::Truncated => write!(f, "annotator bundle truncated"),
            BundleError::BadString => write!(f, "bundle string is not valid UTF-8"),
            BundleError::BadVocab => write!(f, "bundle tokenizer vocabulary did not parse"),
            BundleError::BadTag(t) => write!(f, "unknown enum tag {t} in bundle"),
            BundleError::Weights(e) => write!(f, "bundle weights: {e}"),
        }
    }
}

impl std::error::Error for BundleError {}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], BundleError> {
        if self.pos + n > self.buf.len() {
            return Err(BundleError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, BundleError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, BundleError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn f32(&mut self) -> Result<f32, BundleError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn blob(&mut self) -> Result<&'a [u8], BundleError> {
        let n = self.u32()? as usize;
        self.take(n)
    }

    fn string(&mut self) -> Result<String, BundleError> {
        String::from_utf8(self.blob()?.to_vec()).map_err(|_| BundleError::BadString)
    }
}

fn put_blob(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

fn put_vocab(out: &mut Vec<u8>, v: &LabelVocab) {
    out.extend_from_slice(&(v.len() as u32).to_le_bytes());
    for (_, name) in v.iter() {
        put_blob(out, name.as_bytes());
    }
}

fn read_vocab(r: &mut Reader<'_>) -> Result<LabelVocab, BundleError> {
    let n = r.u32()? as usize;
    let mut v = LabelVocab::new();
    for _ in 0..n {
        v.intern(&r.string()?);
    }
    Ok(v)
}

impl AnnotatorBundle {
    /// Bundles freshly built parts. `prefix` is the parameter-name prefix
    /// `model` was registered under (its weights are saved as
    /// `"{prefix}.*"`).
    pub fn new(
        store: ParamStore,
        model: DoduoModel,
        tokenizer: WordPiece,
        type_vocab: LabelVocab,
        rel_vocab: LabelVocab,
        prefix: impl Into<String>,
    ) -> Self {
        AnnotatorBundle { store, model, tokenizer, type_vocab, rel_vocab, prefix: prefix.into() }
    }

    /// A borrowed annotator over the bundle's parts.
    pub fn annotator(&self) -> Annotator<'_> {
        Annotator {
            model: &self.model,
            store: &self.store,
            tokenizer: &self.tokenizer,
            type_vocab: &self.type_vocab,
            rel_vocab: &self.rel_vocab,
        }
    }

    /// Serializes the whole bundle into one self-describing blob.
    pub fn save(&self) -> Vec<u8> {
        let cfg = self.model.config();
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.push(match cfg.input_mode {
            InputMode::TableWise => 0,
            InputMode::SingleColumn => 1,
        });
        out.push(match cfg.attention {
            AttentionMode::Full => 0,
            AttentionMode::ColumnVisibility => 1,
        });
        out.push(cfg.multi_label as u8);
        out.push(cfg.serialize.include_metadata as u8);
        for v in [
            cfg.n_types as u32,
            cfg.n_rels as u32,
            cfg.serialize.max_tokens_per_col as u32,
            cfg.serialize.max_seq as u32,
            cfg.encoder.vocab_size as u32,
            cfg.encoder.hidden as u32,
            cfg.encoder.layers as u32,
            cfg.encoder.heads as u32,
            cfg.encoder.ffn as u32,
            cfg.encoder.max_seq as u32,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&cfg.encoder.dropout.to_le_bytes());
        put_blob(&mut out, self.prefix.as_bytes());
        out.extend_from_slice(&(self.tokenizer.max_word_len() as u32).to_le_bytes());
        put_blob(&mut out, self.tokenizer.vocab().to_text().as_bytes());
        put_vocab(&mut out, &self.type_vocab);
        put_vocab(&mut out, &self.rel_vocab);
        let dotted = format!("{}.", self.prefix);
        let weights = serialize::save_filtered(&self.store, |n| n.starts_with(&dotted));
        put_blob(&mut out, &weights.to_vec());
        out
    }

    /// Decodes a [`AnnotatorBundle::save`] blob. The model is rebuilt from
    /// the recorded configuration and every weight is overwritten from the
    /// checkpoint, so annotations are bit-identical to the saved bundle's.
    pub fn load(data: &[u8]) -> Result<AnnotatorBundle, BundleError> {
        let mut r = Reader { buf: data, pos: 0 };
        if r.take(MAGIC.len())? != MAGIC {
            return Err(BundleError::BadMagic);
        }
        let input_mode = match r.u8()? {
            0 => InputMode::TableWise,
            1 => InputMode::SingleColumn,
            t => return Err(BundleError::BadTag(t)),
        };
        let attention = match r.u8()? {
            0 => AttentionMode::Full,
            1 => AttentionMode::ColumnVisibility,
            t => return Err(BundleError::BadTag(t)),
        };
        let multi_label = r.u8()? != 0;
        let include_metadata = r.u8()? != 0;
        let n_types = r.u32()? as usize;
        let n_rels = r.u32()? as usize;
        let max_tokens_per_col = r.u32()? as usize;
        let ser_max_seq = r.u32()? as usize;
        let encoder = EncoderConfig {
            vocab_size: r.u32()? as usize,
            hidden: r.u32()? as usize,
            layers: r.u32()? as usize,
            heads: r.u32()? as usize,
            ffn: r.u32()? as usize,
            max_seq: r.u32()? as usize,
            dropout: r.f32()?,
        };
        let prefix = r.string()?;
        let max_word_len = r.u32()? as usize;
        let vocab_text = r.string()?;
        let vocab = Vocab::from_text(&vocab_text).ok_or(BundleError::BadVocab)?;
        let tokenizer = WordPiece::from_vocab(vocab, max_word_len);
        let type_vocab = read_vocab(&mut r)?;
        let rel_vocab = read_vocab(&mut r)?;
        let weights = r.blob()?;

        let mut ser = SerializeConfig::new(max_tokens_per_col, ser_max_seq);
        if include_metadata {
            ser = ser.with_metadata();
        }
        let cfg = DoduoConfig::new(encoder, n_types, n_rels, multi_label)
            .with_input_mode(input_mode)
            .with_attention(attention)
            .with_serialize(ser);
        let mut store = ParamStore::new();
        // The initializer draws are overwritten below; the seed only has to
        // be deterministic so failures reproduce.
        let mut rng = StdRng::seed_from_u64(0);
        let model = DoduoModel::new(&mut store, cfg, &prefix, &mut rng);
        serialize::load(&mut store, weights).map_err(BundleError::Weights)?;
        Ok(AnnotatorBundle { store, model, tokenizer, type_vocab, rel_vocab, prefix })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doduo_table::{Column, Table};
    use doduo_tokenizer::TrainConfig as TokTrain;

    fn bundle() -> AnnotatorBundle {
        let tok = WordPiece::train(
            ["alpha beta gamma one two three"],
            &TokTrain { merges: 60, min_pair_count: 1, max_word_len: 16 },
        );
        let mut tv = LabelVocab::new();
        tv.intern("t.a");
        tv.intern("t.b");
        tv.intern("t.c");
        let mut rv = LabelVocab::new();
        rv.intern("r.x");
        rv.intern("r.y");
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(7);
        let enc = EncoderConfig::tiny(tok.vocab_size());
        let max_seq = enc.max_seq;
        let cfg = DoduoConfig::new(enc, 3, 2, true)
            .with_serialize(SerializeConfig::new(8, max_seq).with_metadata());
        let model = DoduoModel::new(&mut store, cfg, "m", &mut rng);
        AnnotatorBundle::new(store, model, tok, tv, rv, "m")
    }

    fn table() -> Table {
        Table::new(
            "t",
            vec![
                Column::with_name("letters", vec!["alpha".into(), "beta".into()]),
                Column::new(vec!["one".into(), "two".into()]),
            ],
        )
    }

    #[test]
    fn save_load_round_trips_bit_identically() {
        let b = bundle();
        let blob = b.save();
        let loaded = AnnotatorBundle::load(&blob).expect("bundle loads");
        let cfg = loaded.model.config();
        assert_eq!(cfg.n_types, 3);
        assert_eq!(cfg.n_rels, 2);
        assert!(cfg.multi_label);
        assert!(cfg.serialize.include_metadata);
        let a = b.annotator().annotate(&table());
        let c = loaded.annotator().annotate(&table());
        assert_eq!(a.types.len(), c.types.len());
        for (x, y) in a.types.iter().zip(&c.types) {
            for ((n1, s1), (n2, s2)) in x.labels.iter().zip(&y.labels) {
                assert_eq!(n1, n2);
                assert_eq!(s1.to_bits(), s2.to_bits(), "loaded bundle must match bitwise");
            }
        }
        assert_eq!(a.relations.len(), c.relations.len());
    }

    #[test]
    fn corrupt_bundles_are_rejected() {
        assert!(matches!(AnnotatorBundle::load(b"not a bundle"), Err(BundleError::BadMagic)));
        let mut blob = bundle().save();
        blob.truncate(blob.len() / 2);
        assert!(AnnotatorBundle::load(&blob).is_err());
    }
}
