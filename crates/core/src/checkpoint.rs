//! Self-contained annotator checkpoints.
//!
//! `doduo_tensor::serialize` persists *weights only*: loading one requires
//! reconstructing the exact model shape, tokenizer, and label vocabularies
//! out of band. A daemon (`doduo-served`) that restarts from disk needs all
//! of that in one artifact, so an [`AnnotatorBundle`] owns every piece an
//! [`Annotator`] borrows and round-trips through a single
//! self-describing binary blob: magic + version, the [`DoduoConfig`] scalars,
//! the WordPiece vocabulary, both label vocabularies, and the weight records
//! (via `serialize::save_filtered` on the model's parameter prefix).
//!
//! Loading is strict: every model parameter must be present with its exact
//! shape, so a loaded bundle annotates bit-identically to the one saved.
//! Corruption is detected, never absorbed: structural damage (truncation,
//! garbled lengths) fails with an error naming the damaged section, and a
//! CRC32 over the whole payload catches any surviving bit flip — including
//! flips inside raw weight floats, which would otherwise decode "cleanly"
//! into a silently different model.

use crate::model::{AttentionMode, DoduoConfig, DoduoModel, InputMode};
use crate::predictor::Annotator;
use doduo_table::{LabelVocab, SerializeConfig};
use doduo_tensor::{serialize, ParamStore};
use doduo_tokenizer::{Vocab, WordPiece};
use doduo_transformer::EncoderConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

const MAGIC: &[u8; 8] = b"DODUOBN2";

/// CRC-32 (IEEE 802.3 polynomial, bitwise). Checkpoints are megabytes at
/// most, so the table-free form is plenty fast and stays `std`-only.
fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Everything a serving process needs to annotate tables, under one owner:
/// weights, model, tokenizer, and label vocabularies.
pub struct AnnotatorBundle {
    /// The weights backing `model`.
    pub store: ParamStore,
    /// The fine-tuned (or otherwise fixed) model.
    pub model: DoduoModel,
    /// The tokenizer the model was trained with.
    pub tokenizer: WordPiece,
    /// Names for the column-type label ids.
    pub type_vocab: LabelVocab,
    /// Names for the column-relation label ids.
    pub rel_vocab: LabelVocab,
    /// Parameter-name prefix the model was registered under.
    prefix: String,
}

/// Errors produced when decoding an [`AnnotatorBundle`]. Structural errors
/// name the section they were detected in, so a corrupt checkpoint fails
/// with "bundle truncated in section `weights`" instead of a bare offset.
#[derive(Debug)]
pub enum BundleError {
    /// Missing or wrong magic header.
    BadMagic,
    /// Buffer ended before a declared payload, in the named section.
    Truncated(&'static str),
    /// A string in the named section was not valid UTF-8.
    BadString(&'static str),
    /// The tokenizer vocabulary section did not parse.
    BadVocab,
    /// An enum tag in the named section had an unknown value.
    BadTag {
        /// The section being decoded when the bad tag was read.
        section: &'static str,
        /// The unrecognized tag byte.
        tag: u8,
    },
    /// An oversized length prefix in the named section (larger than the
    /// remaining buffer could ever satisfy).
    BadLength(&'static str),
    /// The payload parsed but its CRC32 does not match: at least one bit
    /// flipped somewhere (possibly inside raw weight data, which has no
    /// structure of its own to fail on).
    ChecksumMismatch {
        /// CRC stored in the checkpoint header.
        stored: u32,
        /// CRC computed over the payload as read.
        computed: u32,
    },
    /// The weight section failed to load.
    Weights(serialize::LoadError),
}

impl std::fmt::Display for BundleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BundleError::BadMagic => write!(f, "not an annotator bundle (bad magic)"),
            BundleError::Truncated(s) => write!(f, "annotator bundle truncated in section {s}"),
            BundleError::BadString(s) => write!(f, "bundle section {s} is not valid UTF-8"),
            BundleError::BadVocab => write!(f, "bundle tokenizer vocabulary did not parse"),
            BundleError::BadTag { section, tag } => {
                write!(f, "unknown enum tag {tag} in bundle section {section}")
            }
            BundleError::BadLength(s) => {
                write!(f, "implausible length in bundle section {s}")
            }
            BundleError::ChecksumMismatch { stored, computed } => write!(
                f,
                "bundle checksum mismatch (stored {stored:#010x}, computed {computed:#010x}): \
                 the checkpoint is corrupt"
            ),
            BundleError::Weights(e) => write!(f, "bundle weights: {e}"),
        }
    }
}

impl std::error::Error for BundleError {}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    /// The section currently being decoded, for error naming.
    section: &'static str,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], BundleError> {
        if n > self.buf.len() - self.pos {
            return Err(BundleError::Truncated(self.section));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, BundleError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, BundleError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn f32(&mut self) -> Result<f32, BundleError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn blob(&mut self) -> Result<&'a [u8], BundleError> {
        let n = self.u32()? as usize;
        // A garbled length prefix gets its own error: `take` would report
        // the same section, but "implausible length" is the truer story.
        if n > self.buf.len() - self.pos {
            return Err(BundleError::BadLength(self.section));
        }
        self.take(n)
    }

    fn string(&mut self) -> Result<String, BundleError> {
        String::from_utf8(self.blob()?.to_vec()).map_err(|_| BundleError::BadString(self.section))
    }
}

fn put_blob(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

fn put_vocab(out: &mut Vec<u8>, v: &LabelVocab) {
    out.extend_from_slice(&(v.len() as u32).to_le_bytes());
    for (_, name) in v.iter() {
        put_blob(out, name.as_bytes());
    }
}

fn read_vocab(r: &mut Reader<'_>) -> Result<LabelVocab, BundleError> {
    let n = r.u32()? as usize;
    let mut v = LabelVocab::new();
    for _ in 0..n {
        v.intern(&r.string()?);
    }
    Ok(v)
}

/// The CRC32 stored in a serialized bundle's header, without decoding the
/// payload. Returns `None` when `data` is not an annotator bundle (wrong
/// magic or too short). Serving uses this as the stable content fingerprint
/// in model-version labels: [`AnnotatorBundle::load`] verifies the payload
/// against this very field, so once a blob loads, the header CRC *is* the
/// checksum of the model that will answer requests.
pub fn blob_crc(data: &[u8]) -> Option<u32> {
    if data.len() < MAGIC.len() + 4 || &data[..MAGIC.len()] != MAGIC {
        return None;
    }
    Some(u32::from_le_bytes(data[MAGIC.len()..MAGIC.len() + 4].try_into().expect("4 bytes")))
}

impl AnnotatorBundle {
    /// Bundles freshly built parts. `prefix` is the parameter-name prefix
    /// `model` was registered under (its weights are saved as
    /// `"{prefix}.*"`).
    pub fn new(
        store: ParamStore,
        model: DoduoModel,
        tokenizer: WordPiece,
        type_vocab: LabelVocab,
        rel_vocab: LabelVocab,
        prefix: impl Into<String>,
    ) -> Self {
        AnnotatorBundle { store, model, tokenizer, type_vocab, rel_vocab, prefix: prefix.into() }
    }

    /// A borrowed annotator over the bundle's parts.
    pub fn annotator(&self) -> Annotator<'_> {
        Annotator {
            model: &self.model,
            store: &self.store,
            tokenizer: &self.tokenizer,
            type_vocab: &self.type_vocab,
            rel_vocab: &self.rel_vocab,
        }
    }

    /// Builds the opt-in int8 serving twin of this bundle's model — done
    /// once at load, reused for every forward pass. Quantization happens
    /// strictly *after* the bundle's structural and CRC integrity checks,
    /// so a corrupt checkpoint can never reach the quantizer.
    pub fn quantized(&self) -> crate::quant::QuantizedModel {
        crate::quant::QuantizedModel::from_model(&self.model, &self.store)
    }

    /// Serializes the whole bundle into one self-describing blob: magic,
    /// CRC32 of everything after the checksum field, then the sections
    /// (config scalars, prefix, tokenizer, label vocabularies, weights).
    pub fn save(&self) -> Vec<u8> {
        let cfg = self.model.config();
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&[0u8; 4]); // checksum placeholder
        out.push(match cfg.input_mode {
            InputMode::TableWise => 0,
            InputMode::SingleColumn => 1,
        });
        out.push(match cfg.attention {
            AttentionMode::Full => 0,
            AttentionMode::ColumnVisibility => 1,
        });
        out.push(cfg.multi_label as u8);
        out.push(cfg.serialize.include_metadata as u8);
        for v in [
            cfg.n_types as u32,
            cfg.n_rels as u32,
            cfg.serialize.max_tokens_per_col as u32,
            cfg.serialize.max_seq as u32,
            cfg.encoder.vocab_size as u32,
            cfg.encoder.hidden as u32,
            cfg.encoder.layers as u32,
            cfg.encoder.heads as u32,
            cfg.encoder.ffn as u32,
            cfg.encoder.max_seq as u32,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&cfg.encoder.dropout.to_le_bytes());
        put_blob(&mut out, self.prefix.as_bytes());
        out.extend_from_slice(&(self.tokenizer.max_word_len() as u32).to_le_bytes());
        put_blob(&mut out, self.tokenizer.vocab().to_text().as_bytes());
        put_vocab(&mut out, &self.type_vocab);
        put_vocab(&mut out, &self.rel_vocab);
        let dotted = format!("{}.", self.prefix);
        let weights = serialize::save_filtered(&self.store, |n| n.starts_with(&dotted));
        put_blob(&mut out, &weights.to_vec());
        let crc = crc32(&out[MAGIC.len() + 4..]);
        out[MAGIC.len()..MAGIC.len() + 4].copy_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decodes a [`AnnotatorBundle::save`] blob. The model is rebuilt from
    /// the recorded configuration and every weight is overwritten from the
    /// checkpoint, so annotations are bit-identical to the saved bundle's.
    /// Strictness is two-layered: structural damage fails with an error
    /// naming the section, and the payload CRC (verified after parsing)
    /// rejects any bit flip the structure could not notice.
    pub fn load(data: &[u8]) -> Result<AnnotatorBundle, BundleError> {
        let mut r = Reader { buf: data, pos: 0, section: "header" };
        if r.take(MAGIC.len())? != MAGIC {
            return Err(BundleError::BadMagic);
        }
        let stored_crc = r.u32()?;
        let payload_start = r.pos;
        r.section = "config";
        let input_mode = match r.u8()? {
            0 => InputMode::TableWise,
            1 => InputMode::SingleColumn,
            t => return Err(BundleError::BadTag { section: "config", tag: t }),
        };
        let attention = match r.u8()? {
            0 => AttentionMode::Full,
            1 => AttentionMode::ColumnVisibility,
            t => return Err(BundleError::BadTag { section: "config", tag: t }),
        };
        let multi_label = r.u8()? != 0;
        let include_metadata = r.u8()? != 0;
        let n_types = r.u32()? as usize;
        let n_rels = r.u32()? as usize;
        let max_tokens_per_col = r.u32()? as usize;
        let ser_max_seq = r.u32()? as usize;
        let encoder = EncoderConfig {
            vocab_size: r.u32()? as usize,
            hidden: r.u32()? as usize,
            layers: r.u32()? as usize,
            heads: r.u32()? as usize,
            ffn: r.u32()? as usize,
            max_seq: r.u32()? as usize,
            dropout: r.f32()?,
        };
        r.section = "prefix";
        let prefix = r.string()?;
        r.section = "tokenizer";
        let max_word_len = r.u32()? as usize;
        let vocab_text = r.string()?;
        let vocab = Vocab::from_text(&vocab_text).ok_or(BundleError::BadVocab)?;
        let tokenizer = WordPiece::from_vocab(vocab, max_word_len);
        r.section = "type_vocab";
        let type_vocab = read_vocab(&mut r)?;
        r.section = "rel_vocab";
        let rel_vocab = read_vocab(&mut r)?;
        r.section = "weights";
        let weights = r.blob()?;
        let computed = crc32(&data[payload_start..]);
        if computed != stored_crc {
            return Err(BundleError::ChecksumMismatch { stored: stored_crc, computed });
        }

        let mut ser = SerializeConfig::new(max_tokens_per_col, ser_max_seq);
        if include_metadata {
            ser = ser.with_metadata();
        }
        let cfg = DoduoConfig::new(encoder, n_types, n_rels, multi_label)
            .with_input_mode(input_mode)
            .with_attention(attention)
            .with_serialize(ser);
        let mut store = ParamStore::new();
        // The initializer draws are overwritten below; the seed only has to
        // be deterministic so failures reproduce.
        let mut rng = StdRng::seed_from_u64(0);
        let model = DoduoModel::new(&mut store, cfg, &prefix, &mut rng);
        serialize::load(&mut store, weights).map_err(BundleError::Weights)?;
        Ok(AnnotatorBundle { store, model, tokenizer, type_vocab, rel_vocab, prefix })
    }

    /// Writes [`AnnotatorBundle::save`]'s blob to `path`. The file is what
    /// `doduo-served --checkpoint` and the repro harness exchange.
    pub fn save_to(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.save())
    }

    /// Reads and decodes a checkpoint file, folding I/O and decode failures
    /// into one displayable error that names the path.
    pub fn load_from(path: impl AsRef<std::path::Path>) -> Result<AnnotatorBundle, String> {
        let path = path.as_ref();
        let blob = std::fs::read(path)
            .map_err(|e| format!("cannot read checkpoint {}: {e}", path.display()))?;
        AnnotatorBundle::load(&blob)
            .map_err(|e| format!("cannot load checkpoint {}: {e}", path.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doduo_table::{Column, Table};
    use doduo_tokenizer::TrainConfig as TokTrain;

    fn bundle() -> AnnotatorBundle {
        let tok = WordPiece::train(
            ["alpha beta gamma one two three"],
            &TokTrain { merges: 60, min_pair_count: 1, max_word_len: 16 },
        );
        let mut tv = LabelVocab::new();
        tv.intern("t.a");
        tv.intern("t.b");
        tv.intern("t.c");
        let mut rv = LabelVocab::new();
        rv.intern("r.x");
        rv.intern("r.y");
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(7);
        let enc = EncoderConfig::tiny(tok.vocab_size());
        let max_seq = enc.max_seq;
        let cfg = DoduoConfig::new(enc, 3, 2, true)
            .with_serialize(SerializeConfig::new(8, max_seq).with_metadata());
        let model = DoduoModel::new(&mut store, cfg, "m", &mut rng);
        AnnotatorBundle::new(store, model, tok, tv, rv, "m")
    }

    fn table() -> Table {
        Table::new(
            "t",
            vec![
                Column::with_name("letters", vec!["alpha".into(), "beta".into()]),
                Column::new(vec!["one".into(), "two".into()]),
            ],
        )
    }

    #[test]
    fn save_load_round_trips_bit_identically() {
        let b = bundle();
        let blob = b.save();
        let loaded = AnnotatorBundle::load(&blob).expect("bundle loads");
        let cfg = loaded.model.config();
        assert_eq!(cfg.n_types, 3);
        assert_eq!(cfg.n_rels, 2);
        assert!(cfg.multi_label);
        assert!(cfg.serialize.include_metadata);
        let a = b.annotator().annotate(&table());
        let c = loaded.annotator().annotate(&table());
        assert_eq!(a.types.len(), c.types.len());
        for (x, y) in a.types.iter().zip(&c.types) {
            for ((n1, s1), (n2, s2)) in x.labels.iter().zip(&y.labels) {
                assert_eq!(n1, n2);
                assert_eq!(s1.to_bits(), s2.to_bits(), "loaded bundle must match bitwise");
            }
        }
        assert_eq!(a.relations.len(), c.relations.len());
    }

    #[test]
    fn corrupt_bundles_are_rejected() {
        assert!(matches!(AnnotatorBundle::load(b"not a bundle"), Err(BundleError::BadMagic)));
        let mut blob = bundle().save();
        blob.truncate(blob.len() / 2);
        assert!(AnnotatorBundle::load(&blob).is_err());
    }

    #[test]
    fn blob_crc_reads_the_verified_header_checksum() {
        let blob = bundle().save();
        let crc = blob_crc(&blob).expect("valid bundle has a header CRC");
        assert_eq!(crc, u32::from_le_bytes(blob[8..12].try_into().unwrap()));
        // The header field is exactly what load() verifies the payload
        // against, so a loadable blob's blob_crc is its model fingerprint.
        AnnotatorBundle::load(&blob).expect("loads");
        assert_eq!(blob_crc(b"not a bundle"), None);
        assert_eq!(blob_crc(&blob[..6]), None);
        let mut flipped = blob.clone();
        flipped[20] ^= 1;
        assert_eq!(blob_crc(&flipped), Some(crc), "header CRC is positional");
        assert!(AnnotatorBundle::load(&flipped).is_err(), "but the flip no longer matches it");
    }
}
