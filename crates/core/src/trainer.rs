//! Multi-task fine-tuning (Algorithm 1 of the paper).
//!
//! Each epoch iterates the task list; each task has its *own* optimizer
//! (hard parameter sharing over the encoder, per-task Adam with a linear
//! decay schedule and no warm-up, §5.3). Mini-batch items run on worker
//! threads (one tape per serialized table) and the checkpoint with the best
//! validation F1 is kept, exactly as the paper selects checkpoints.

use crate::model::{DoduoModel, InputMode};
use doduo_eval::{multi_label_micro, Prf};
use doduo_table::{Dataset, SerializedTable};
use doduo_tensor::{accumulate_parallel, Adam, Gradients, LrSchedule, ParamStore, Tape, Tensor};
use doduo_tokenizer::WordPiece;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The two annotation tasks of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Task {
    /// Column-type prediction (eq. 1).
    ColumnType,
    /// Column-relation prediction (eq. 2).
    ColumnRelation,
}

/// Fine-tuning hyper-parameters.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Fine-tuning epochs (each epoch visits every task, Algorithm 1).
    pub epochs: usize,
    /// Tables per optimizer step.
    pub batch_size: usize,
    /// Initial learning rate of the per-task linear-decay schedules.
    pub lr: f32,
    /// Worker threads for the per-batch gradient fan-out.
    pub threads: usize,
    /// Seed for batch shuffling and dropout streams.
    pub seed: u64,
    /// Global gradient-norm clip.
    pub clip: f32,
    /// Keep the checkpoint with the best validation F1 (§5.3).
    pub select_best: bool,
    /// Positive-class weight for the multi-label BCE losses (PyTorch's
    /// `pos_weight`). `None` auto-computes `(C - avg_pos) / avg_pos` per
    /// task (capped at 20) from the training labels; ignored for
    /// single-label tasks.
    pub pos_weight: Option<f32>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 30,
            batch_size: 16,
            lr: 5e-3,
            threads: doduo_tensor::default_threads(),
            seed: 42,
            clip: 5.0,
            select_best: true,
            pos_weight: None,
        }
    }
}

/// A pre-serialized type-prediction example: one sequence (a whole table in
/// table-wise mode, one column in single-column mode) plus gold labels for
/// each represented column.
pub struct TypeExample {
    /// The serialized sequence.
    pub st: SerializedTable,
    /// Gold label ids per represented column.
    pub gold: Vec<Vec<u32>>,
    /// Multi-hot targets (built once) when the task is multi-label.
    pub multi_hot: Option<Tensor>,
}

/// A pre-serialized relation example in table-wise mode: one sequence plus
/// the (subject, object) pairs and their gold relations.
pub struct RelExample {
    /// The serialized whole table.
    pub st: SerializedTable,
    /// `(subject, object)` column-index pairs with annotated relations.
    pub pairs: Vec<(usize, usize)>,
    /// Gold relation id per pair.
    pub gold: Vec<u32>,
    /// Multi-hot targets (built once) when the task is multi-label.
    pub multi_hot: Option<Tensor>,
}

/// A relation example in single-column mode: one serialized column pair.
pub struct RelSingleExample {
    /// The serialized column pair.
    pub st: SerializedTable,
    /// Gold relation id.
    pub gold: u32,
    /// Multi-hot target (built once) when the task is multi-label.
    pub multi_hot: Option<Tensor>,
}

/// All training/evaluation examples for one dataset under one model config.
pub struct Prepared {
    /// Type-task examples (one per table, or one per column in
    /// single-column mode).
    pub types: Vec<TypeExample>,
    /// Relation-task examples in table-wise mode.
    pub rels: Vec<RelExample>,
    /// Relation-task examples in single-column (pair) mode.
    pub rels_single: Vec<RelSingleExample>,
}

fn multi_hot(rows: &[Vec<u32>], n_classes: usize) -> Tensor {
    let mut t = Tensor::zeros(rows.len(), n_classes);
    for (r, labels) in rows.iter().enumerate() {
        for &l in labels {
            t.set(r, l as usize, 1.0);
        }
    }
    t
}

/// Serializes a dataset into training examples for `model`.
pub fn prepare(model: &DoduoModel, ds: &Dataset, tok: &WordPiece) -> Prepared {
    let cfg = model.config();
    let mut types = Vec::new();
    let mut rels = Vec::new();
    let mut rels_single = Vec::new();
    for at in &ds.tables {
        match cfg.input_mode {
            InputMode::TableWise => {
                let st = model.serialize_for_types(&at.table, tok).remove(0);
                let gold = at.col_types.clone();
                let mh = cfg.multi_label.then(|| multi_hot(&gold, cfg.n_types));
                if !at.relations.is_empty() {
                    let pairs: Vec<(usize, usize)> =
                        at.relations.iter().map(|r| (r.subject_col, r.object_col)).collect();
                    let rel_gold: Vec<u32> = at.relations.iter().map(|r| r.relation).collect();
                    let rows: Vec<Vec<u32>> = rel_gold.iter().map(|&g| vec![g]).collect();
                    let rel_mh = cfg.multi_label.then(|| multi_hot(&rows, cfg.n_rels));
                    rels.push(RelExample {
                        st: st.clone(),
                        pairs,
                        gold: rel_gold,
                        multi_hot: rel_mh,
                    });
                }
                types.push(TypeExample { st, gold, multi_hot: mh });
            }
            InputMode::SingleColumn => {
                for (c, st) in model.serialize_for_types(&at.table, tok).into_iter().enumerate() {
                    let gold = vec![at.col_types[c].clone()];
                    let mh = cfg.multi_label.then(|| multi_hot(&gold, cfg.n_types));
                    types.push(TypeExample { st, gold, multi_hot: mh });
                }
                for r in &at.relations {
                    let st = model.serialize_pair(&at.table, r.subject_col, r.object_col, tok);
                    let rows = vec![vec![r.relation]];
                    let mh = cfg.multi_label.then(|| multi_hot(&rows, cfg.n_rels));
                    rels_single.push(RelSingleExample { st, gold: r.relation, multi_hot: mh });
                }
            }
        }
    }
    Prepared { types, rels, rels_single }
}

/// Label-set predictions with their gold counterparts (singleton sets in
/// the single-label case, so the same micro-F1 code covers both regimes).
#[derive(Clone, Debug, Default)]
pub struct Predictions {
    /// Predicted label sets, one per example.
    pub pred: Vec<Vec<u32>>,
    /// Gold label sets, aligned with `pred`.
    pub gold: Vec<Vec<u32>>,
}

impl Predictions {
    /// Micro-averaged precision/recall/F1 over all predictions.
    pub fn micro(&self) -> Prf {
        multi_label_micro(&self.pred, &self.gold)
    }

    /// Single-label views (first element of each set) for macro-F1 /
    /// per-class reporting on VizNet-style tasks.
    pub fn single_label(&self) -> (Vec<u32>, Vec<u32>) {
        (
            self.pred.iter().map(|s| s.first().copied().unwrap_or(0)).collect(),
            self.gold.iter().map(|s| s.first().copied().unwrap_or(0)).collect(),
        )
    }
}

/// Decodes logits into a label set: multi-label → sigmoid > 0.5 with argmax
/// fallback (every column predicts at least one type, matching TURL's
/// protocol); single-label → argmax.
pub fn decode_labels(logits: &[f32], multi_label: bool) -> Vec<u32> {
    if multi_label {
        let mut out: Vec<u32> = logits
            .iter()
            .enumerate()
            .filter(|&(_, &z)| z > 0.0) // sigmoid(z) > 0.5 ⇔ z > 0
            .map(|(i, _)| i as u32)
            .collect();
        if out.is_empty() {
            out.push(argmax(logits) as u32);
        }
        out
    } else {
        vec![argmax(logits) as u32]
    }
}

fn argmax(xs: &[f32]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

/// Runs a read-only function over items on worker threads, preserving order.
fn parallel_map<T: Sync, O: Send>(
    items: &[T],
    threads: usize,
    f: impl Fn(&T) -> O + Sync,
) -> Vec<O> {
    let threads = threads.max(1).min(items.len().max(1));
    if threads <= 1 {
        return items.iter().map(&f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| {
                let f = &f;
                scope.spawn(move || c.iter().map(f).collect::<Vec<O>>())
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("worker panicked")).collect()
    })
}

/// Predicts column types for prepared examples.
pub fn predict_types(
    model: &DoduoModel,
    store: &ParamStore,
    examples: &[TypeExample],
    threads: usize,
) -> Predictions {
    let ml = model.config().multi_label;
    let results = parallel_map(examples, threads, |ex| {
        let mut rng = StdRng::seed_from_u64(0);
        let mut tape = Tape::inference(store);
        let logits = model.type_logits(&mut tape, &ex.st, &mut rng);
        let v = tape.value(logits);
        let mut preds = Vec::with_capacity(v.rows());
        for r in 0..v.rows() {
            preds.push(decode_labels(v.row(r), ml));
        }
        (preds, ex.gold.clone())
    });
    let mut out = Predictions::default();
    for (p, g) in results {
        out.pred.extend(p);
        out.gold.extend(g);
    }
    out
}

/// Predicts relations for prepared table-wise examples.
pub fn predict_rels(
    model: &DoduoModel,
    store: &ParamStore,
    examples: &[RelExample],
    threads: usize,
) -> Predictions {
    let ml = model.config().multi_label;
    let results = parallel_map(examples, threads, |ex| {
        let mut rng = StdRng::seed_from_u64(0);
        let mut tape = Tape::inference(store);
        let logits = model.rel_logits(&mut tape, &ex.st, &ex.pairs, &mut rng);
        let v = tape.value(logits);
        let preds: Vec<Vec<u32>> = (0..v.rows()).map(|r| decode_labels(v.row(r), ml)).collect();
        let gold: Vec<Vec<u32>> = ex.gold.iter().map(|&g| vec![g]).collect();
        (preds, gold)
    });
    let mut out = Predictions::default();
    for (p, g) in results {
        out.pred.extend(p);
        out.gold.extend(g);
    }
    out
}

/// Predicts relations for single-column-pair examples.
pub fn predict_rels_single(
    model: &DoduoModel,
    store: &ParamStore,
    examples: &[RelSingleExample],
    threads: usize,
) -> Predictions {
    let ml = model.config().multi_label;
    let results = parallel_map(examples, threads, |ex| {
        let mut rng = StdRng::seed_from_u64(0);
        let mut tape = Tape::inference(store);
        let logits = model.rel_logits_single(&mut tape, &ex.st, &mut rng);
        (decode_labels(tape.value(logits).row(0), ml), vec![ex.gold])
    });
    let mut out = Predictions::default();
    for (p, g) in results {
        out.pred.push(p);
        out.gold.push(g);
    }
    out
}

/// Validation scores after an epoch.
#[derive(Clone, Debug)]
pub struct EvalScores {
    /// Micro-averaged column-type scores.
    pub type_micro: Prf,
    /// Micro-averaged relation scores (absent when no relation examples).
    pub rel_micro: Option<Prf>,
}

impl EvalScores {
    /// Model-selection criterion: mean F1 over the tasks being trained.
    pub fn selection_score(&self, tasks: &[Task]) -> f64 {
        let mut sum = 0.0;
        let mut n = 0;
        if tasks.contains(&Task::ColumnType) {
            sum += self.type_micro.f1;
            n += 1;
        }
        if tasks.contains(&Task::ColumnRelation) {
            if let Some(r) = self.rel_micro {
                sum += r.f1;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }
}

/// Evaluates a model on prepared examples.
pub fn evaluate(
    model: &DoduoModel,
    store: &ParamStore,
    data: &Prepared,
    threads: usize,
) -> EvalScores {
    let type_micro = predict_types(model, store, &data.types, threads).micro();
    let rel_micro = match model.config().input_mode {
        InputMode::TableWise if !data.rels.is_empty() => {
            Some(predict_rels(model, store, &data.rels, threads).micro())
        }
        InputMode::SingleColumn if !data.rels_single.is_empty() => {
            Some(predict_rels_single(model, store, &data.rels_single, threads).micro())
        }
        _ => None,
    };
    EvalScores { type_micro, rel_micro }
}

/// Per-epoch record in a [`TrainReport`].
#[derive(Clone, Debug)]
pub struct EpochRecord {
    /// Mean training loss per task this epoch (`NaN` for empty tasks).
    pub task_losses: Vec<(Task, f32)>,
    /// Validation scores after the epoch.
    pub valid: EvalScores,
}

/// Outcome of a training run.
pub struct TrainReport {
    /// Per-epoch losses and validation scores.
    pub epochs: Vec<EpochRecord>,
    /// Epoch whose checkpoint was kept (with `select_best`).
    pub best_epoch: usize,
    /// Validation selection score of the kept checkpoint.
    pub best_score: f64,
}

fn snapshot(store: &ParamStore) -> Vec<Tensor> {
    (0..store.len()).map(|i| store.get(i).clone()).collect()
}

fn restore(store: &mut ParamStore, snap: &[Tensor]) {
    for (i, t) in snap.iter().enumerate() {
        store.set_value(i, t.clone());
    }
}

/// Fine-tunes `model` with Algorithm 1: per-task optimizers, task-alternating
/// epochs, best-validation-checkpoint selection.
pub fn train(
    model: &DoduoModel,
    store: &mut ParamStore,
    train_data: &Prepared,
    valid_data: &Prepared,
    tasks: &[Task],
    cfg: &TrainConfig,
) -> TrainReport {
    assert!(!tasks.is_empty(), "no tasks to train");
    let ml = model.config().multi_label;
    let single = model.config().input_mode == InputMode::SingleColumn;
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Auto positive-class weights per task: (C - avg positives) / avg
    // positives, capped — the standard counterweight for one-or-two true
    // labels among dozens of classes.
    let auto_w = |rows: &mut dyn Iterator<Item = usize>, n_classes: usize| -> f32 {
        let mut total = 0usize;
        let mut n = 0usize;
        for p in rows {
            total += p;
            n += 1;
        }
        if n == 0 || total == 0 {
            return 1.0;
        }
        let avg = total as f32 / n as f32;
        ((n_classes as f32 - avg) / avg).clamp(1.0, 20.0)
    };
    let w_type = cfg.pos_weight.unwrap_or_else(|| {
        auto_w(
            &mut train_data.types.iter().flat_map(|e| e.gold.iter().map(|g| g.len())),
            model.config().n_types,
        )
    });
    let w_rel = cfg.pos_weight.unwrap_or_else(|| {
        auto_w(
            &mut train_data
                .rels
                .iter()
                .flat_map(|e| e.gold.iter().map(|_| 1usize))
                .chain(train_data.rels_single.iter().map(|_| 1usize)),
            model.config().n_rels,
        )
    });

    // One optimizer + schedule per task (Algorithm 1 line "optimizer O_i").
    let n_items = |task: Task| match task {
        Task::ColumnType => train_data.types.len(),
        Task::ColumnRelation => {
            if single {
                train_data.rels_single.len()
            } else {
                train_data.rels.len()
            }
        }
    };
    let mut opts: Vec<Adam> = tasks
        .iter()
        .map(|&t| {
            let steps = cfg.epochs * n_items(t).div_ceil(cfg.batch_size).max(1);
            Adam::new(store, LrSchedule::LinearDecay { lr0: cfg.lr, total_steps: steps })
        })
        .collect();

    let mut best: Option<(f64, usize, Vec<Tensor>)> = None;
    let mut epochs = Vec::with_capacity(cfg.epochs);

    for epoch in 0..cfg.epochs {
        let mut task_losses = Vec::with_capacity(tasks.len());
        for (ti, &task) in tasks.iter().enumerate() {
            let n = n_items(task);
            if n == 0 {
                task_losses.push((task, f32::NAN));
                continue;
            }
            let mut order: Vec<usize> = (0..n).collect();
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            let mut total = 0.0f32;
            for batch in order.chunks(cfg.batch_size) {
                let salt = rng.gen::<u64>();
                let (mut grads, loss): (Gradients, f32) =
                    accumulate_parallel(store, batch, cfg.threads, |tape, &idx, k| {
                        let mut item_rng = StdRng::seed_from_u64(
                            salt ^ (k as u64).wrapping_mul(0x9E3779B97F4A7C15),
                        );
                        match task {
                            Task::ColumnType => {
                                let ex = &train_data.types[idx];
                                let logits = model.type_logits(tape, &ex.st, &mut item_rng);
                                if ml {
                                    tape.bce_logits_weighted(
                                        logits,
                                        ex.multi_hot.as_ref().expect("ml targets"),
                                        w_type,
                                    )
                                } else {
                                    let targets: Vec<u32> = ex.gold.iter().map(|g| g[0]).collect();
                                    tape.softmax_ce(logits, &targets)
                                }
                            }
                            Task::ColumnRelation if single => {
                                let ex = &train_data.rels_single[idx];
                                let logits = model.rel_logits_single(tape, &ex.st, &mut item_rng);
                                if ml {
                                    tape.bce_logits_weighted(
                                        logits,
                                        ex.multi_hot.as_ref().expect("ml targets"),
                                        w_rel,
                                    )
                                } else {
                                    tape.softmax_ce(logits, &[ex.gold])
                                }
                            }
                            Task::ColumnRelation => {
                                let ex = &train_data.rels[idx];
                                let logits =
                                    model.rel_logits(tape, &ex.st, &ex.pairs, &mut item_rng);
                                if ml {
                                    tape.bce_logits_weighted(
                                        logits,
                                        ex.multi_hot.as_ref().expect("ml targets"),
                                        w_rel,
                                    )
                                } else {
                                    tape.softmax_ce(logits, &ex.gold)
                                }
                            }
                        }
                    });
                grads.scale(1.0 / batch.len() as f32);
                grads.clip_global_norm(cfg.clip);
                opts[ti].step(store, &grads);
                total += loss;
            }
            task_losses.push((task, total / n as f32));
        }

        let valid = evaluate(model, store, valid_data, cfg.threads);
        let score = valid.selection_score(tasks);
        if cfg.select_best && best.as_ref().is_none_or(|(b, _, _)| score > *b) {
            best = Some((score, epoch, snapshot(store)));
        }
        epochs.push(EpochRecord { task_losses, valid });
    }

    let (best_score, best_epoch) = match best {
        Some((score, epoch, snap)) => {
            restore(store, &snap);
            (score, epoch)
        }
        None => (
            epochs.last().map_or(0.0, |e| e.valid.selection_score(tasks)),
            cfg.epochs.saturating_sub(1),
        ),
    };
    TrainReport { epochs, best_epoch, best_score }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AttentionMode, DoduoConfig};
    use doduo_datagen::{generate_wikitable, KbConfig, KnowledgeBase, WikiTableConfig};
    use doduo_table::SerializeConfig;
    use doduo_tokenizer::{TrainConfig as TokTrain, WordPiece};
    use doduo_transformer::EncoderConfig;

    fn tiny_setup() -> (WordPiece, Dataset, Dataset) {
        let kb = KnowledgeBase::generate(&KbConfig::default(), 42);
        let ds = generate_wikitable(
            &kb,
            &WikiTableConfig { n_tables: 60, min_rows: 2, max_rows: 3, seed: 7 },
        );
        let corpus: Vec<String> = ds
            .tables
            .iter()
            .flat_map(|t| t.table.columns.iter())
            .flat_map(|c| c.values.iter().cloned())
            .collect();
        let tok = WordPiece::train(
            corpus.iter().map(String::as_str),
            &TokTrain { merges: 400, min_pair_count: 2, max_word_len: 24 },
        );
        let mut rng = StdRng::seed_from_u64(1);
        let (train, valid, _test) = ds.split(0.8, 0.2, &mut rng);
        (tok, train, valid)
    }

    fn tiny_model(tok: &WordPiece, ds: &Dataset, mode: InputMode) -> (ParamStore, DoduoModel) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let enc = EncoderConfig::tiny(tok.vocab_size());
        let max_seq = enc.max_seq;
        let cfg = DoduoConfig::new(enc, ds.type_vocab.len(), ds.rel_vocab.len(), true)
            .with_input_mode(mode)
            .with_attention(AttentionMode::Full)
            .with_serialize(SerializeConfig::new(8, max_seq));
        let model = DoduoModel::new(&mut store, cfg, "m", &mut rng);
        (store, model)
    }

    #[test]
    fn decode_labels_multi_and_single() {
        assert_eq!(decode_labels(&[-1.0, 2.0, 0.5], true), vec![1, 2]);
        assert_eq!(decode_labels(&[-3.0, -2.0, -1.0], true), vec![2], "argmax fallback");
        assert_eq!(decode_labels(&[0.1, 5.0, -1.0], false), vec![1]);
    }

    #[test]
    fn prepare_table_wise_counts() {
        let (tok, train_ds, _valid) = tiny_setup();
        let (_store, model) = tiny_model(&tok, &train_ds, InputMode::TableWise);
        let prepared = prepare(&model, &train_ds, &tok);
        assert_eq!(prepared.types.len(), train_ds.tables.len());
        assert!(prepared.rels.len() <= train_ds.tables.len());
        assert!(prepared.rels_single.is_empty());
        // Every table's gold count matches its column count.
        for (ex, t) in prepared.types.iter().zip(&train_ds.tables) {
            assert_eq!(ex.gold.len(), t.table.n_cols());
            assert_eq!(ex.st.n_cols(), t.table.n_cols());
            let mh = ex.multi_hot.as_ref().unwrap();
            assert_eq!(mh.rows(), t.table.n_cols());
            // Multi-hot row sums equal gold label counts.
            for (r, g) in t.col_types.iter().enumerate() {
                let sum: f32 = mh.row(r).iter().sum();
                assert_eq!(sum as usize, g.len());
            }
        }
    }

    #[test]
    fn prepare_single_column_counts() {
        let (tok, train_ds, _valid) = tiny_setup();
        let (_store, model) = tiny_model(&tok, &train_ds, InputMode::SingleColumn);
        let prepared = prepare(&model, &train_ds, &tok);
        let n_cols: usize = train_ds.tables.iter().map(|t| t.table.n_cols()).sum();
        let n_rels: usize = train_ds.tables.iter().map(|t| t.relations.len()).sum();
        assert_eq!(prepared.types.len(), n_cols);
        assert_eq!(prepared.rels_single.len(), n_rels);
        assert!(prepared.rels.is_empty());
    }

    #[test]
    fn multitask_training_improves_over_initialization() {
        // The paper's pipeline: MLM-pretrain, then fine-tune with Algorithm 1.
        // (Appendix A.5: without pretraining the model reaches ~0 F1 — see
        // `from_scratch_multilabel_stalls` below.)
        let kb = KnowledgeBase::generate(&KbConfig::default(), 42);
        let ds = generate_wikitable(
            &kb,
            &WikiTableConfig { n_tables: 80, min_rows: 2, max_rows: 3, seed: 7 },
        );
        let corpus = doduo_datagen::generate_corpus(&kb, &doduo_datagen::CorpusConfig::default());
        let mut recipe = crate::pipeline::PretrainRecipe::tiny();
        recipe.mlm.epochs = 5;
        let lm = crate::pipeline::pretrain_lm(&corpus[..3000.min(corpus.len())], &recipe, 42);
        let mut rng = StdRng::seed_from_u64(2);
        let (train_ds, valid_ds, _test) = ds.split(0.8, 0.2, &mut rng);
        let (mut store, model) = crate::pipeline::build_finetune_model(
            &lm,
            |enc| {
                let max_seq = enc.max_seq;
                DoduoConfig::new(enc, train_ds.type_vocab.len(), train_ds.rel_vocab.len(), true)
                    .with_serialize(SerializeConfig::new(8, max_seq))
            },
            3,
        );
        let tok = &lm.tokenizer;
        let train_p = prepare(&model, &train_ds, tok);
        let valid_p = prepare(&model, &valid_ds, tok);
        let before = evaluate(&model, &store, &valid_p, 2);
        let report = train(
            &model,
            &mut store,
            &train_p,
            &valid_p,
            &[Task::ColumnType, Task::ColumnRelation],
            &TrainConfig { epochs: 40, batch_size: 8, lr: 5e-3, threads: 8, ..Default::default() },
        );
        let after = evaluate(&model, &store, &valid_p, 2);
        assert!(
            after.type_micro.f1 > before.type_micro.f1 + 0.2,
            "type F1 {} -> {}",
            before.type_micro.f1,
            after.type_micro.f1
        );
        assert!(after.rel_micro.unwrap().f1 > 0.3, "rel F1 {:?}", after.rel_micro);
        assert_eq!(report.epochs.len(), 40);
        // Losses must be finite and decreasing.
        let first_loss = report.epochs[0].task_losses[0].1;
        let last_loss = report.epochs[39].task_losses[0].1;
        assert!(first_loss.is_finite() && last_loss.is_finite());
        assert!(last_loss < first_loss, "type loss {first_loss} -> {last_loss}");
    }

    #[test]
    fn from_scratch_multilabel_stalls() {
        // Appendix A.5: a randomly-initialized Doduo "did not show meaningful
        // performance". With our miniature the multi-label head collapses to
        // the class prior without pretraining.
        let (tok, train_ds, valid_ds) = tiny_setup();
        let (mut store, model) = tiny_model(&tok, &train_ds, InputMode::TableWise);
        let train_p = prepare(&model, &train_ds, &tok);
        let valid_p = prepare(&model, &valid_ds, &tok);
        train(
            &model,
            &mut store,
            &train_p,
            &valid_p,
            &[Task::ColumnType],
            &TrainConfig { epochs: 6, batch_size: 8, lr: 2e-3, threads: 4, ..Default::default() },
        );
        let after = evaluate(&model, &store, &valid_p, 2);
        assert!(
            after.type_micro.f1 < 0.5,
            "from-scratch multi-label should stay weak, got {}",
            after.type_micro.f1
        );
    }

    #[test]
    fn best_checkpoint_is_restored() {
        let (tok, train_ds, valid_ds) = tiny_setup();
        let (mut store, model) = tiny_model(&tok, &train_ds, InputMode::TableWise);
        let train_p = prepare(&model, &train_ds, &tok);
        let valid_p = prepare(&model, &valid_ds, &tok);
        let report = train(
            &model,
            &mut store,
            &train_p,
            &valid_p,
            &[Task::ColumnType],
            &TrainConfig { epochs: 3, batch_size: 16, lr: 2e-3, threads: 4, ..Default::default() },
        );
        // The restored weights must score what the best epoch scored.
        let now = evaluate(&model, &store, &valid_p, 2);
        let best_recorded = report.epochs[report.best_epoch].valid.type_micro.f1;
        assert!((now.type_micro.f1 - best_recorded).abs() < 1e-9);
        assert!((report.best_score - best_recorded).abs() < 1e-9);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..37).collect();
        let out = parallel_map(&items, 8, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }
}
