//! The int8-quantized serving twin of [`DoduoModel`] — opt-in, built once
//! from trained f32 weights at bundle load.
//!
//! [`QuantizedModel`] pairs a [`QuantEncoder`] with quantized
//! versions of both classification heads and mirrors
//! [`Annotator::annotate_serialized`] op for op: the same ragged batch
//! packing, `[CLS]` row selection, head order and output scatter, with
//! every dense layer running the int8 kernels. The numerics contract is
//! the accuracy-gated tier of the two-tier policy (`doduo_tensor::quant`):
//! outputs are not bit-equal to f32 — the repro harness gates them on the
//! paper's qualitative checks and pinned micro-F1 drift — but they are
//! bit-stable across kernels, thread counts, and batch compositions on a
//! host, so batched quantized annotation still equals one-by-one
//! quantized annotation exactly.

use crate::model::{DoduoModel, InputMode};
use crate::predictor::{
    scored_labels, Annotator, ColumnTypePrediction, RelationPrediction, TableAnnotation,
};
use doduo_table::SerializedTable;
use doduo_tensor::{AttnMask, ParamStore, QuantizedLinear, Tape};
use doduo_transformer::{BatchSeq, QuantEncoder};

/// Int8-quantized encoder + heads, reusable across forward passes.
pub struct QuantizedModel {
    encoder: QuantEncoder,
    type_dense: QuantizedLinear,
    type_out: QuantizedLinear,
    rel_dense: QuantizedLinear,
    rel_out: QuantizedLinear,
}

impl QuantizedModel {
    /// Quantizes every dense layer of `model` (encoder projections, FFNs,
    /// and both heads) from the f32 weights in `store`. Embeddings and
    /// LayerNorms stay f32 and are shared with the source model by
    /// parameter id.
    pub fn from_model(model: &DoduoModel, store: &ParamStore) -> QuantizedModel {
        QuantizedModel {
            encoder: QuantEncoder::from_encoder(&model.encoder, store),
            type_dense: QuantizedLinear::from_f32(
                store.get(model.type_dense_w),
                store.get(model.type_dense_b),
            ),
            type_out: QuantizedLinear::from_f32(
                store.get(model.type_out_w),
                store.get(model.type_out_b),
            ),
            rel_dense: QuantizedLinear::from_f32(
                store.get(model.rel_dense_w),
                store.get(model.rel_dense_b),
            ),
            rel_out: QuantizedLinear::from_f32(
                store.get(model.rel_out_w),
                store.get(model.rel_out_b),
            ),
        }
    }

    /// The quantized mirror of [`Annotator::annotate_serialized`]: same
    /// inputs, same output structure and ordering, int8 dense layers.
    /// `ann` supplies the configuration, f32 parameter store (for the
    /// shared embeddings/LayerNorms), and label vocabularies.
    pub fn annotate_serialized(
        &self,
        ann: &Annotator<'_>,
        groups: &[&[SerializedTable]],
    ) -> Vec<TableAnnotation> {
        if groups.is_empty() {
            return Vec::new();
        }
        let cfg = ann.model.config();
        let ml = cfg.multi_label;
        let table_wise = cfg.input_mode == InputMode::TableWise;

        let sts: Vec<&SerializedTable> = groups.iter().flat_map(|g| g.iter()).collect();
        assert!(!sts.is_empty(), "every table serializes to at least one sequence");
        let vis: Vec<Option<AttnMask>> =
            sts.iter().map(|st| ann.model.visibility_mask(st)).collect();
        let seqs: Vec<BatchSeq<'_>> = sts
            .iter()
            .zip(vis.iter())
            .map(|(st, m)| BatchSeq { ids: &st.ids, mask: m.as_ref() })
            .collect();

        let mut tape = Tape::inference(ann.store);
        let enc = self.encoder.forward_batch(&mut tape, &seqs);

        let mut cls_rows: Vec<u32> = Vec::new();
        let mut col_row0: Vec<usize> = Vec::with_capacity(sts.len());
        for (b, st) in sts.iter().enumerate() {
            col_row0.push(cls_rows.len());
            cls_rows.extend(st.cls_positions.iter().map(|&p| enc.row_of(b, p as usize) as u32));
        }
        let cols = tape.row_select(enc.node, &cls_rows);

        // Type head: dense → GELU → out, both dense layers int8.
        let h = {
            let t = self.type_dense.forward(tape.value(cols));
            tape.input(t)
        };
        let a = tape.gelu(h);
        let type_logits = {
            let t = self.type_out.forward(tape.value(a));
            tape.input(t)
        };

        // Relation pairs (0, j) per table-wise sequence with 2+ columns.
        let mut subj: Vec<u32> = Vec::new();
        let mut obj: Vec<u32> = Vec::new();
        if table_wise && !ann.rel_vocab.is_empty() {
            for (b, st) in sts.iter().enumerate() {
                for j in 1..st.n_cols() {
                    subj.push(col_row0[b] as u32);
                    obj.push((col_row0[b] + j) as u32);
                }
            }
        }
        let rel_logits = (!subj.is_empty()).then(|| {
            let s = tape.row_select(cols, &subj);
            let o = tape.row_select(cols, &obj);
            let pair = tape.concat_cols(s, o);
            let h = {
                let t = self.rel_dense.forward(tape.value(pair));
                tape.input(t)
            };
            let act = tape.gelu(h);
            let t = self.rel_out.forward(tape.value(act));
            tape.input(t)
        });

        // Scatter head outputs back into per-table annotations — the same
        // walk as the f32 path.
        let tv = tape.value(type_logits);
        let rv = rel_logits.map(|n| tape.value(n));
        let mut out = Vec::with_capacity(groups.len());
        let mut seq = 0usize;
        let mut rel_row = 0usize;
        for group in groups {
            let mut types = Vec::new();
            let mut relations = Vec::new();
            for st in group.iter() {
                let row0 = col_row0[seq];
                for c in 0..st.n_cols() {
                    types.push(ColumnTypePrediction {
                        column: types.len(),
                        labels: scored_labels(tv.row(row0 + c), ann.type_vocab, ml),
                    });
                }
                if table_wise && !ann.rel_vocab.is_empty() {
                    for j in 1..st.n_cols() {
                        let v = rv.expect("relation logits exist when pairs do");
                        relations.push(RelationPrediction {
                            subject: 0,
                            object: j,
                            labels: scored_labels(v.row(rel_row), ann.rel_vocab, ml),
                        });
                        rel_row += 1;
                    }
                }
                seq += 1;
            }
            out.push(TableAnnotation { types, relations });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AttentionMode, DoduoConfig};
    use doduo_table::{Column, LabelVocab, SerializeConfig, Table};
    use doduo_tokenizer::{TrainConfig as TokTrain, WordPiece};
    use doduo_transformer::EncoderConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (ParamStore, DoduoModel, WordPiece, LabelVocab, LabelVocab) {
        let tok = WordPiece::train(
            ["alpha beta gamma one two three"],
            &TokTrain { merges: 60, min_pair_count: 1, max_word_len: 16 },
        );
        let mut tv = LabelVocab::new();
        tv.intern("t.a");
        tv.intern("t.b");
        tv.intern("t.c");
        let mut rv = LabelVocab::new();
        rv.intern("r.x");
        rv.intern("r.y");
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let enc = EncoderConfig::tiny(tok.vocab_size());
        let max_seq = enc.max_seq;
        let cfg = DoduoConfig::new(enc, 3, 2, true)
            .with_attention(AttentionMode::Full)
            .with_serialize(SerializeConfig::new(8, max_seq));
        let model = DoduoModel::new(&mut store, cfg, "m", &mut rng);
        (store, model, tok, tv, rv)
    }

    fn tables() -> Vec<Table> {
        vec![
            Table::new(
                "t",
                vec![
                    Column::new(vec!["alpha".into(), "beta".into()]),
                    Column::new(vec!["one".into(), "two".into()]),
                ],
            ),
            Table::new("u", vec![Column::new(vec!["gamma".into()])]),
            Table::new(
                "v",
                vec![
                    Column::new(vec!["one two three".into(), "alpha".into()]),
                    Column::new(vec!["beta".into()]),
                    Column::new(vec!["two".into(), "three".into()]),
                ],
            ),
        ]
    }

    #[test]
    fn quant_annotation_mirrors_f32_structure() {
        let (store, model, tok, tv, rv) = setup();
        let ann = Annotator {
            model: &model,
            store: &store,
            tokenizer: &tok,
            type_vocab: &tv,
            rel_vocab: &rv,
        };
        let qm = QuantizedModel::from_model(&model, &store);
        let tabs = tables();
        let groups: Vec<Vec<SerializedTable>> =
            tabs.iter().map(|t| model.serialize_for_types(t, &tok)).collect();
        let borrowed: Vec<&[SerializedTable]> = groups.iter().map(Vec::as_slice).collect();
        let f = ann.annotate_serialized(&borrowed);
        let q = qm.annotate_serialized(&ann, &borrowed);
        assert_eq!(f.len(), q.len());
        for (ft, qt) in f.iter().zip(&q) {
            assert_eq!(ft.types.len(), qt.types.len());
            assert_eq!(ft.relations.len(), qt.relations.len());
            for (a, b) in ft.types.iter().zip(&qt.types) {
                assert_eq!(a.column, b.column);
                for (name, p) in &b.labels {
                    assert!(tv.id(name).is_some());
                    assert!((0.0..=1.0).contains(p));
                }
            }
            for (a, b) in ft.relations.iter().zip(&qt.relations) {
                assert_eq!((a.subject, a.object), (b.subject, b.object));
            }
        }
    }

    #[test]
    fn quant_batched_equals_one_by_one_bitwise() {
        // The invariance the f32 path proves must survive quantization:
        // batching cannot change quantized scores, because activation
        // quantization is per row and integer accumulation is associative.
        let (store, model, tok, tv, rv) = setup();
        let ann = Annotator {
            model: &model,
            store: &store,
            tokenizer: &tok,
            type_vocab: &tv,
            rel_vocab: &rv,
        };
        let qm = QuantizedModel::from_model(&model, &store);
        let tabs = tables();
        let groups: Vec<Vec<SerializedTable>> =
            tabs.iter().map(|t| model.serialize_for_types(t, &tok)).collect();
        let borrowed: Vec<&[SerializedTable]> = groups.iter().map(Vec::as_slice).collect();
        let batched = qm.annotate_serialized(&ann, &borrowed);
        for (g, b) in borrowed.iter().zip(&batched) {
            let single = qm.annotate_serialized(&ann, &[g]).pop().expect("one in, one out");
            assert_eq!(single.types.len(), b.types.len());
            for (x, y) in single.types.iter().zip(&b.types) {
                for ((n1, s1), (n2, s2)) in x.labels.iter().zip(&y.labels) {
                    assert_eq!(n1, n2);
                    assert_eq!(s1.to_bits(), s2.to_bits(), "quant type scores must be bit-stable");
                }
            }
            for (x, y) in single.relations.iter().zip(&b.relations) {
                for ((n1, s1), (n2, s2)) in x.labels.iter().zip(&y.labels) {
                    assert_eq!(n1, n2);
                    assert_eq!(s1.to_bits(), s2.to_bits(), "quant rel scores must be bit-stable");
                }
            }
        }
    }

    #[test]
    fn quant_annotation_is_deterministic() {
        let (store, model, tok, tv, rv) = setup();
        let ann = Annotator {
            model: &model,
            store: &store,
            tokenizer: &tok,
            type_vocab: &tv,
            rel_vocab: &rv,
        };
        let qm = QuantizedModel::from_model(&model, &store);
        let tabs = tables();
        let groups: Vec<Vec<SerializedTable>> =
            tabs.iter().map(|t| model.serialize_for_types(t, &tok)).collect();
        let borrowed: Vec<&[SerializedTable]> = groups.iter().map(Vec::as_slice).collect();
        let a = qm.annotate_serialized(&ann, &borrowed);
        let b = qm.annotate_serialized(&ann, &borrowed);
        for (x, y) in a.iter().zip(&b) {
            for (tx, ty) in x.types.iter().zip(&y.types) {
                for ((n1, s1), (n2, s2)) in tx.labels.iter().zip(&ty.labels) {
                    assert_eq!(n1, n2);
                    assert_eq!(s1.to_bits(), s2.to_bits());
                }
            }
        }
    }
}
