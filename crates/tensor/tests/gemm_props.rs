//! Property tests pinning the blocked GEMM layer to the naive reference.
//!
//! The kernel layer's numerics policy (see `doduo_tensor::kernels`) is
//! *bit-identity*: blocked, small-path, and threaded results must equal
//! the naive loops exactly, not merely within a tolerance. These tests
//! therefore assert on `f32::to_bits` across randomly drawn ragged shapes,
//! with the degenerate edges (`k = 0`, one row, one column) forced into
//! the sampled distribution.

use doduo_tensor::kernels::{
    matmul_blocked, matmul_masked, matmul_naive, matmul_nt_blocked, matmul_nt_naive,
    matmul_tn_blocked, matmul_tn_naive,
};
use doduo_tensor::{matmul, matmul_nt, matmul_tn, QuantizedLinear, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Deterministic random tensor for a sampled `(shape, seed)`.
fn tensor(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::randn(rows, cols, 1.0, &mut rng)
}

fn assert_bits_eq(a: &Tensor, b: &Tensor, what: &str) -> Result<(), String> {
    if a.shape() != b.shape() {
        return Err(format!("{what}: shape {:?} vs {:?}", a.shape(), b.shape()));
    }
    for (i, (x, y)) in a.data().iter().zip(b.data().iter()).enumerate() {
        if x.to_bits() != y.to_bits() {
            return Err(format!("{what}: element {i}: {x} vs {y}"));
        }
    }
    Ok(())
}

/// Dimension strategy biased toward the edges the kernels must get right:
/// 0 (empty / `k = 0`), 1 (single row/column), tile-boundary sizes, and a
/// uniform ragged range that straddles the MR/NR tile grid.
fn dim() -> BoxedStrategy<usize> {
    prop_oneof![
        Just(0usize),
        Just(1usize),
        Just(5usize),
        Just(16usize),
        Just(17usize),
        2usize..130,
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn blocked_nn_matches_naive_bitwise(m in dim(), k in dim(), n in dim(), seed in 0u64..1000) {
        let a = tensor(m, k, seed);
        let b = tensor(k, n, seed.wrapping_add(1));
        prop_assert!(assert_bits_eq(&matmul_blocked(&a, &b, 1), &matmul_naive(&a, &b), "nn").is_ok());
    }

    #[test]
    fn blocked_nt_matches_naive_bitwise(m in dim(), k in dim(), n in dim(), seed in 0u64..1000) {
        let a = tensor(m, k, seed);
        let b = tensor(n, k, seed.wrapping_add(1));
        prop_assert!(
            assert_bits_eq(&matmul_nt_blocked(&a, &b, 1), &matmul_nt_naive(&a, &b), "nt").is_ok()
        );
    }

    #[test]
    fn blocked_tn_matches_naive_bitwise(m in dim(), k in dim(), n in dim(), seed in 0u64..1000) {
        let a = tensor(k, m, seed);
        let b = tensor(k, n, seed.wrapping_add(1));
        prop_assert!(
            assert_bits_eq(&matmul_tn_blocked(&a, &b, 1), &matmul_tn_naive(&a, &b), "tn").is_ok()
        );
    }

    #[test]
    fn blocked_is_thread_count_invariant(m in dim(), k in dim(), n in dim(), seed in 0u64..1000) {
        // Row-stripe threading must not change a single bit, whatever the
        // requested worker count.
        let a = tensor(m, k, seed);
        let b = tensor(k, n, seed.wrapping_add(1));
        let one = matmul_blocked(&a, &b, 1);
        for threads in [2usize, 3, 7, 16] {
            prop_assert!(
                assert_bits_eq(&matmul_blocked(&a, &b, threads), &one, "threads").is_ok()
            );
        }
    }

    #[test]
    fn quantized_forward_is_thread_count_invariant(m in dim(), k in dim(), n in dim(), seed in 0u64..1000) {
        // The int8 layer shares the f32 GEMM's threading contract: each
        // output row is quantized and reduced independently, so any worker
        // count must reproduce the single-threaded scalar oracle's bits.
        let x = tensor(m, k, seed);
        let w = tensor(k, n, seed.wrapping_add(1));
        let bias = tensor(1, n, seed.wrapping_add(2));
        let q = QuantizedLinear::from_f32(&w, &bias);
        let one = q.forward_scalar(&x);
        for threads in [2usize, 3, 7, 16] {
            prop_assert!(
                assert_bits_eq(&q.forward_with_threads(&x, threads), &one, "quant threads").is_ok()
            );
        }
    }

    #[test]
    fn dispatching_entry_points_match_naive_bitwise(m in dim(), k in dim(), n in dim(), seed in 0u64..1000) {
        // The public matmuls pick naive vs blocked by size; either branch
        // must produce the naive bits.
        let a = tensor(m, k, seed);
        let b = tensor(k, n, seed.wrapping_add(1));
        prop_assert!(assert_bits_eq(&matmul(&a, &b), &matmul_naive(&a, &b), "nn").is_ok());
        let bt = b.transpose();
        prop_assert!(assert_bits_eq(&matmul_nt(&a, &bt), &matmul_nt_naive(&a, &bt), "nt").is_ok());
        let at = a.transpose();
        prop_assert!(assert_bits_eq(&matmul_tn(&at, &b), &matmul_tn_naive(&at, &b), "tn").is_ok());
    }

    #[test]
    fn masked_matches_naive_bitwise_on_sparse_inputs(m in dim(), k in dim(), n in dim(), seed in 0u64..1000) {
        // The opt-in zero-skip kernel must agree with the dense reference
        // on finite inputs, including heavily zeroed ones.
        let mut a = tensor(m, k, seed);
        for (i, v) in a.data_mut().iter_mut().enumerate() {
            if i % 2 == 0 {
                *v = 0.0;
            }
        }
        let b = tensor(k, n, seed.wrapping_add(1));
        prop_assert!(assert_bits_eq(&matmul_masked(&a, &b), &matmul_naive(&a, &b), "masked").is_ok());
    }
}
