//! Property tests pinning the int8 quantized linear layer.
//!
//! Two contracts, one per numeric tier (see `doduo_tensor::quant`):
//!
//! * **bit-identity within the tier** — the AVX2 and AVX-512 VNNI kernels,
//!   the dispatching entry point, and every thread count must reproduce the
//!   portable scalar kernel exactly (`f32::to_bits`), across randomly drawn
//!   ragged shapes with the degenerate edges (`k = 0`, one row, one column,
//!   non-multiples of the 8/16-column tiles) forced into the distribution;
//! * **bounded distance to f32** — the dequantized output must sit within
//!   an analytic bound of the exact (f64) product, derived from the
//!   per-output-channel weight scales and the per-row activation scale.
//!
//! The error bound: writing `a = sa·qa + ea` (|ea| ≤ sa/2) and
//! `w = sw·qw + ew` (|ew| ≤ sw/2), each term's quantization error is
//! `|a·w − sa·sw·qa·qw| ≤ |a|·sw/2 + |w|·sa/2 + 3/4·sa·sw`, summed over
//! the k reduction terms, plus a small allowance for the f32 dequantization
//! arithmetic itself (integer accumulation is exact).

use doduo_tensor::{quantize_row_i8, QuantizedLinear, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Deterministic random tensor for a sampled `(shape, seed)`.
fn tensor(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::randn(rows, cols, 1.0, &mut rng)
}

fn assert_bits_eq(a: &Tensor, b: &Tensor, what: &str) -> Result<(), String> {
    if a.shape() != b.shape() {
        return Err(format!("{what}: shape {:?} vs {:?}", a.shape(), b.shape()));
    }
    for (i, (x, y)) in a.data().iter().zip(b.data().iter()).enumerate() {
        if x.to_bits() != y.to_bits() {
            return Err(format!("{what}: element {i}: {x} vs {y}"));
        }
    }
    Ok(())
}

/// Dimension strategy biased toward the quantized kernels' edges: 0
/// (`k = 0` reduces to pure bias), 1 (single row/column), sizes straddling
/// the NR = 8 pair-panel and NV = 16 quad-panel tiles, and a ragged range.
fn dim() -> BoxedStrategy<usize> {
    prop_oneof![
        Just(0usize),
        Just(1usize),
        Just(7usize),
        Just(8usize),
        Just(15usize),
        Just(16usize),
        Just(17usize),
        2usize..100,
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every kernel tier the host offers — and the dispatching `forward` —
    /// reproduces the scalar oracle bit for bit on ragged shapes.
    #[test]
    fn all_kernel_tiers_match_scalar_bitwise(m in dim(), k in dim(), n in dim(), seed in 0u64..1000) {
        let x = tensor(m, k, seed);
        let w = tensor(k, n, seed.wrapping_add(1));
        let bias = tensor(1, n, seed.wrapping_add(2));
        let q = QuantizedLinear::from_f32(&w, &bias);
        let reference = q.forward_scalar(&x);
        if let Some(avx2) = q.forward_simd(&x) {
            prop_assert!(assert_bits_eq(&avx2, &reference, "avx2").is_ok());
        }
        if let Some(vnni) = q.forward_vnni(&x) {
            prop_assert!(assert_bits_eq(&vnni, &reference, "vnni").is_ok());
        }
        prop_assert!(assert_bits_eq(&q.forward(&x), &reference, "dispatched").is_ok());
    }

    /// The dequantized output stays within the analytic per-channel bound
    /// of the exact f64 product.
    #[test]
    fn dequantized_error_is_within_analytic_bound(m in dim(), k in dim(), n in dim(), seed in 0u64..1000) {
        let x = tensor(m, k, seed);
        let w = tensor(k, n, seed.wrapping_add(1));
        let bias = tensor(1, n, seed.wrapping_add(2));
        let q = QuantizedLinear::from_f32(&w, &bias);
        let y = q.forward_scalar(&x);
        let sw = q.weight_scales();
        let mut codes = vec![0i8; k];
        for r in 0..m {
            let row = &x.data()[r * k..(r + 1) * k];
            // Same formula (amax/127) and rounding as the kernel's internal
            // activation quantizer, so this is the row's exact sa.
            let sa = f64::from(quantize_row_i8(row, &mut codes));
            for (j, &swj) in sw.iter().enumerate().take(n) {
                let mut exact = f64::from(bias.data()[j]);
                let mut bound = 0f64;
                let swj = f64::from(swj);
                for (i, &a) in row.iter().enumerate().take(k) {
                    let (a, wv) = (f64::from(a), f64::from(w.data()[i * n + j]));
                    exact += a * wv;
                    bound += a.abs() * swj / 2.0 + wv.abs() * sa / 2.0 + 0.75 * sa * swj;
                }
                // Allowance for the f32 dequantization chain (three
                // roundings at ~2^-24 relative) on top of the exact
                // integer accumulation.
                let got = f64::from(y.data()[r * n + j]);
                let slack = (exact.abs() + bound) * 1e-5 + 1e-6;
                prop_assert!(
                    (got - exact).abs() <= bound + slack,
                    "row {r} col {j}: |{got} - {exact}| > {bound} + {slack}"
                );
            }
        }
    }

    /// Per-channel scales make the fused concatenation of several parts
    /// bit-identical to quantizing each part separately (the property the
    /// encoder's fused Q/K/V projection relies on).
    #[test]
    fn fused_concat_matches_parts_bitwise(m in dim(), k in dim(), widths in proptest::collection::vec(dim(), 1..4), seed in 0u64..1000) {
        let x = tensor(m, k, seed);
        let parts: Vec<(Tensor, Tensor)> = widths
            .iter()
            .enumerate()
            .map(|(p, &n)| {
                let s = seed.wrapping_add(10 + 2 * p as u64);
                (tensor(k, n, s), tensor(1, n, s.wrapping_add(1)))
            })
            .collect();
        let refs: Vec<(&Tensor, &Tensor)> = parts.iter().map(|(w, b)| (w, b)).collect();
        let fused = QuantizedLinear::from_concat(&refs).forward_scalar(&x);
        let mut col0 = 0usize;
        for (w, b) in &parts {
            let part = QuantizedLinear::from_f32(w, b).forward_scalar(&x);
            let n_total: usize = widths.iter().sum();
            for r in 0..m {
                for j in 0..w.cols() {
                    let f = fused.data()[r * n_total + col0 + j];
                    let p = part.data()[r * w.cols() + j];
                    prop_assert!(f.to_bits() == p.to_bits(), "row {r} col {j}: {f} vs {p}");
                }
            }
            col0 += w.cols();
        }
    }

    /// Round-trip: every dequantized code lands within half a step of its
    /// source, and codes stay in the symmetric [-127, 127] range.
    #[test]
    fn quantize_round_trip_is_within_half_step(k in dim(), seed in 0u64..1000) {
        let row = tensor(1, k, seed);
        let mut codes = vec![0i8; k];
        let scale = quantize_row_i8(row.data(), &mut codes);
        for (i, (&v, &c)) in row.data().iter().zip(&codes).enumerate() {
            prop_assert!((-127..=127).contains(&i32::from(c)), "code {c} out of range");
            let err = f64::from(v) - f64::from(c) * f64::from(scale);
            prop_assert!(
                err.abs() <= f64::from(scale) * 0.5 + 1e-12,
                "element {i}: residual {err} exceeds half step {scale}"
            );
        }
    }
}
