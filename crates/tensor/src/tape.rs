//! Reverse-mode automatic differentiation on an eager tape.
//!
//! A [`Tape`] records one forward computation (in this project: one
//! serialized table) as a flat list of nodes. Values are computed eagerly;
//! [`Tape::backward`] walks the tape in reverse and accumulates parameter
//! gradients into a [`Gradients`] buffer. Tapes borrow their [`ParamStore`]
//! immutably, so several tapes can run on worker threads concurrently.
//!
//! The op set is exactly what a BERT-style encoder plus classification heads
//! needs; multi-head attention is a single fused op so no general reshape /
//! transpose machinery is required.
#![allow(clippy::needless_range_loop)] // index loops over matrix coordinates are clearest here

use crate::kernels::{gemm_nn, gemm_nt, gemm_tn, View};
use crate::params::{Gradients, ParamId, ParamStore};
use crate::tensor::{matmul, matmul_nt, matmul_tn, Tensor};
use rand::Rng;
use std::sync::Arc;

/// Index of a node on a [`Tape`].
pub type NodeId = usize;

/// Additive attention mask (`0.0` = visible, `NEG_INF`-like = hidden),
/// row-major `[S, S]`. Shared via `Arc` because the same visibility matrix
/// is reused across layers and batch items.
pub type AttnMask = Arc<Vec<f32>>;

/// Large negative value used to mask attention logits.
pub const MASK_NEG: f32 = -1e9;

enum Val {
    Owned(Tensor),
    Param(ParamId),
}

enum Op {
    /// Constant input; receives no gradient.
    Leaf,
    /// Learnable parameter; gradient flows into the [`Gradients`] buffer.
    Param(ParamId),
    Matmul {
        a: NodeId,
        b: NodeId,
    },
    Add {
        a: NodeId,
        b: NodeId,
    },
    /// Broadcasts a `[1, d]` bias over the rows of a `[S, d]` input.
    AddRow {
        x: NodeId,
        bias: NodeId,
    },
    Mul {
        a: NodeId,
        b: NodeId,
    },
    Scale {
        x: NodeId,
        c: f32,
    },
    Gelu {
        x: NodeId,
    },
    Tanh {
        x: NodeId,
    },
    Relu {
        x: NodeId,
    },
    LayerNorm {
        x: NodeId,
        gamma: NodeId,
        beta: NodeId,
        mean: Vec<f32>,
        rstd: Vec<f32>,
    },
    Softmax {
        x: NodeId,
    },
    /// Row gather from an embedding matrix.
    Embedding {
        weight: NodeId,
        ids: Vec<u32>,
    },
    /// Row gather from an activation (used to pick out `[CLS]` positions).
    RowSelect {
        x: NodeId,
        idxs: Vec<u32>,
    },
    /// Horizontal concatenation (used for column-pair representations).
    ConcatCols {
        a: NodeId,
        b: NodeId,
    },
    /// Fused multi-head self-attention core: `softmax(QK^T * scale + mask) V`
    /// per head, heads concatenated. `probs` caches the post-softmax
    /// attention for backward and for attention analysis (Figure 6).
    Mha {
        q: NodeId,
        k: NodeId,
        v: NodeId,
        heads: usize,
        probs: Vec<f32>,
    },
    /// Block-diagonal batched attention: sequences packed row-wise (no
    /// padding) attend only within their own block. The batched inference
    /// path packs one table per block. Unlike [`Op::Mha`], attention
    /// probabilities are NOT cached — a large batch would hold
    /// `heads * sum(len^2)` floats per layer — they are recomputed from
    /// `q`/`k` (bit-identically) if backward runs.
    MhaBatch {
        q: NodeId,
        k: NodeId,
        v: NodeId,
        heads: usize,
        /// Length of each packed block; they sum to the node's row count.
        lens: Vec<usize>,
        /// Per-block additive masks, kept for the backward recompute.
        masks: Vec<Option<AttnMask>>,
    },
    /// Fused Q/K/V projection: `[X Wq + bq | X Wk + bk | X Wv + bv]` in one
    /// pass over `X`, producing `[rows, 3d]`. One activation read instead
    /// of three — the memory-bandwidth win behind the batched serving path.
    FusedQkv {
        x: NodeId,
        /// Weight nodes `[wq, wk, wv]` (each `[d_in, d]`).
        ws: [NodeId; 3],
        /// Bias nodes `[bq, bk, bv]` (each `[1, d]`).
        bs: [NodeId; 3],
    },
    /// [`Op::MhaBatch`] over a fused `[rows, 3d]` Q|K|V node.
    MhaBatchQkv {
        qkv: NodeId,
        heads: usize,
        lens: Vec<usize>,
        masks: Vec<Option<AttnMask>>,
    },
    /// Inverted-dropout; `mask` holds `0` or `1/(1-p)` per element.
    Dropout {
        x: NodeId,
        mask: Vec<f32>,
    },
    /// Mean negative log-likelihood over rows; caches softmax probabilities.
    SoftmaxCe {
        logits: NodeId,
        targets: Vec<u32>,
        probs: Tensor,
    },
    /// Mean binary cross-entropy with logits; caches sigmoids.
    BceLogits {
        logits: NodeId,
        sig: Tensor,
        targets: Tensor,
        pos_weight: f32,
    },
}

struct Node {
    val: Val,
    op: Op,
}

/// One recorded forward pass over a shared parameter store.
pub struct Tape<'s> {
    store: &'s ParamStore,
    nodes: Vec<Node>,
    training: bool,
}

impl<'s> Tape<'s> {
    /// Creates a tape in training mode (dropout active).
    pub fn new(store: &'s ParamStore) -> Self {
        Tape { store, nodes: Vec::with_capacity(256), training: true }
    }

    /// Creates a tape with dropout disabled (inference / evaluation).
    pub fn inference(store: &'s ParamStore) -> Self {
        Tape { store, nodes: Vec::with_capacity(256), training: false }
    }

    /// True on training tapes (dropout active).
    pub fn is_training(&self) -> bool {
        self.training
    }

    /// The value produced by a node.
    pub fn value(&self, id: NodeId) -> &Tensor {
        match &self.nodes[id].val {
            Val::Owned(t) => t,
            Val::Param(p) => self.store.get(*p),
        }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, val: Tensor, op: Op) -> NodeId {
        self.nodes.push(Node { val: Val::Owned(val), op });
        self.nodes.len() - 1
    }

    /// Records a constant input (no gradient).
    pub fn input(&mut self, t: Tensor) -> NodeId {
        self.push(t, Op::Leaf)
    }

    /// Records a reference to a learnable parameter.
    pub fn param(&mut self, id: ParamId) -> NodeId {
        self.nodes.push(Node { val: Val::Param(id), op: Op::Param(id) });
        self.nodes.len() - 1
    }

    /// `C = A B`.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = matmul(self.value(a), self.value(b));
        self.push(v, Op::Matmul { a, b })
    }

    /// `y = x W + b` — the standard dense layer.
    pub fn linear(&mut self, x: NodeId, w: ParamId, b: ParamId) -> NodeId {
        let wn = self.param(w);
        let bn = self.param(b);
        let xw = self.matmul(x, wn);
        self.add_row(xw, bn)
    }

    /// Elementwise sum of two same-shaped nodes.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (ta, tb) = (self.value(a), self.value(b));
        assert_eq!(ta.shape(), tb.shape(), "add shape mismatch");
        let mut v = ta.clone();
        v.add_assign(tb);
        self.push(v, Op::Add { a, b })
    }

    /// Adds a `[1, d]` row vector to every row of `x`.
    pub fn add_row(&mut self, x: NodeId, bias: NodeId) -> NodeId {
        let (tx, tb) = (self.value(x), self.value(bias));
        assert_eq!(tb.rows(), 1, "bias must be a row vector");
        assert_eq!(tx.cols(), tb.cols(), "add_row width mismatch");
        let mut v = tx.clone();
        for r in 0..v.rows() {
            for (o, &bv) in v.row_mut(r).iter_mut().zip(tb.row(0).iter()) {
                *o += bv;
            }
        }
        self.push(v, Op::AddRow { x, bias })
    }

    /// Elementwise product.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (ta, tb) = (self.value(a), self.value(b));
        assert_eq!(ta.shape(), tb.shape(), "mul shape mismatch");
        let data: Vec<f32> = ta.data().iter().zip(tb.data().iter()).map(|(x, y)| x * y).collect();
        let v = Tensor::from_vec(ta.rows(), ta.cols(), data);
        self.push(v, Op::Mul { a, b })
    }

    /// Multiplication by a constant.
    pub fn scale(&mut self, x: NodeId, c: f32) -> NodeId {
        let mut v = self.value(x).clone();
        v.scale_assign(c);
        self.push(v, Op::Scale { x, c })
    }

    /// GELU activation (tanh approximation, as in BERT).
    pub fn gelu(&mut self, x: NodeId) -> NodeId {
        let tx = self.value(x);
        let data: Vec<f32> = tx.data().iter().map(|&v| gelu_fwd(v)).collect();
        let v = Tensor::from_vec(tx.rows(), tx.cols(), data);
        self.push(v, Op::Gelu { x })
    }

    /// Elementwise hyperbolic tangent.
    pub fn tanh(&mut self, x: NodeId) -> NodeId {
        let tx = self.value(x);
        let data: Vec<f32> = tx.data().iter().map(|v| v.tanh()).collect();
        let v = Tensor::from_vec(tx.rows(), tx.cols(), data);
        self.push(v, Op::Tanh { x })
    }

    /// Elementwise rectified linear unit.
    pub fn relu(&mut self, x: NodeId) -> NodeId {
        let tx = self.value(x);
        let data: Vec<f32> = tx.data().iter().map(|v| v.max(0.0)).collect();
        let v = Tensor::from_vec(tx.rows(), tx.cols(), data);
        self.push(v, Op::Relu { x })
    }

    /// Row-wise LayerNorm with learned gain/bias.
    pub fn layer_norm(&mut self, x: NodeId, gamma: ParamId, beta: ParamId) -> NodeId {
        const EPS: f32 = 1e-5;
        let gn = self.param(gamma);
        let bn = self.param(beta);
        let tx = self.value(x);
        let (rows, cols) = tx.shape();
        let tg = self.value(gn).clone();
        let tb = self.value(bn).clone();
        assert_eq!(tg.shape(), (1, cols), "layer_norm gamma shape");
        assert_eq!(tb.shape(), (1, cols), "layer_norm beta shape");

        let mut out = Tensor::zeros(rows, cols);
        let mut means = Vec::with_capacity(rows);
        let mut rstds = Vec::with_capacity(rows);
        let tx = self.value(x);
        for r in 0..rows {
            let row = tx.row(r);
            let mean = row.iter().sum::<f32>() / cols as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / cols as f32;
            let rstd = 1.0 / (var + EPS).sqrt();
            means.push(mean);
            rstds.push(rstd);
            let orow = out.row_mut(r);
            for c in 0..cols {
                let xhat = (row[c] - mean) * rstd;
                orow[c] = xhat * tg.data()[c] + tb.data()[c];
            }
        }
        self.push(out, Op::LayerNorm { x, gamma: gn, beta: bn, mean: means, rstd: rstds })
    }

    /// Row-wise softmax.
    pub fn softmax(&mut self, x: NodeId) -> NodeId {
        let tx = self.value(x);
        let mut v = tx.clone();
        for r in 0..v.rows() {
            softmax_row(v.row_mut(r));
        }
        self.push(v, Op::Softmax { x })
    }

    /// Gathers embedding rows for `ids` from parameter `weight` (`[V, d]`).
    pub fn embedding(&mut self, weight: ParamId, ids: &[u32]) -> NodeId {
        let wn = self.param(weight);
        let w = self.value(wn);
        let d = w.cols();
        let v_rows = w.rows();
        let mut out = Tensor::zeros(ids.len(), d);
        for (r, &id) in ids.iter().enumerate() {
            assert!((id as usize) < v_rows, "embedding id {id} out of range {v_rows}");
            out.row_mut(r).copy_from_slice(w.row(id as usize));
        }
        self.push(out, Op::Embedding { weight: wn, ids: ids.to_vec() })
    }

    /// Selects rows `idxs` of `x` (e.g. the per-column `[CLS]` positions).
    pub fn row_select(&mut self, x: NodeId, idxs: &[u32]) -> NodeId {
        let tx = self.value(x);
        let mut out = Tensor::zeros(idxs.len(), tx.cols());
        for (r, &i) in idxs.iter().enumerate() {
            assert!((i as usize) < tx.rows(), "row_select index out of range");
            out.row_mut(r).copy_from_slice(tx.row(i as usize));
        }
        self.push(out, Op::RowSelect { x, idxs: idxs.to_vec() })
    }

    /// `[N, da] ++ [N, db] -> [N, da+db]` column-wise concatenation.
    pub fn concat_cols(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (ta, tb) = (self.value(a), self.value(b));
        assert_eq!(ta.rows(), tb.rows(), "concat_cols row mismatch");
        let (n, da, db) = (ta.rows(), ta.cols(), tb.cols());
        let mut out = Tensor::zeros(n, da + db);
        for r in 0..n {
            out.row_mut(r)[..da].copy_from_slice(ta.row(r));
            out.row_mut(r)[da..].copy_from_slice(tb.row(r));
        }
        self.push(out, Op::ConcatCols { a, b })
    }

    /// Fused multi-head attention core over projected `q`, `k`, `v`
    /// (each `[S, d]`, `d % heads == 0`). `mask`, if given, is an additive
    /// `[S, S]` matrix (use [`MASK_NEG`] for hidden pairs — TURL's
    /// visibility matrix plugs in here).
    pub fn mha(
        &mut self,
        q: NodeId,
        k: NodeId,
        v: NodeId,
        heads: usize,
        mask: Option<&AttnMask>,
    ) -> NodeId {
        let (tq, tk, tv) = (self.value(q), self.value(k), self.value(v));
        let (s, d) = tq.shape();
        assert_eq!(tk.shape(), (s, d), "mha k shape");
        assert_eq!(tv.shape(), (s, d), "mha v shape");
        assert!(d % heads == 0, "hidden dim {d} not divisible by {heads} heads");
        if let Some(m) = mask {
            assert_eq!(m.len(), s * s, "mask must be [S, S]");
        }
        let mask = mask.map(|m| m.as_slice());
        let dh = d / heads;
        let scale = 1.0 / (dh as f32).sqrt();
        let mut out = Tensor::zeros(s, d);
        let mut probs = vec![0.0f32; heads * s * s];
        for h in 0..heads {
            let off = h * dh;
            let p = &mut probs[h * s * s..(h + 1) * s * s];
            attn_probs_block(
                p,
                View::at(tq.data(), d, 0, off),
                View::at(tk.data(), d, 0, off),
                s,
                dh,
                scale,
                mask,
            );
            gemm_nn(
                out.data_mut(),
                d,
                off,
                (s, dh, s),
                View::at(p, s, 0, 0),
                View::at(tv.data(), d, 0, off),
            );
        }
        self.push(out, Op::Mha { q, k, v, heads, probs })
    }

    /// Block-diagonal batched variant of [`Tape::mha`]: `q`, `k`, `v` pack
    /// `masks.len()` sequences of equal (padded) length `S` row-wise into
    /// `[B * S, d]` matrices, and attention is computed independently inside
    /// each `[S, S]` block — tokens never attend across sequences. Each
    /// sequence carries its own optional additive `[S, S]` mask, which is
    /// where both padding masks and per-table visibility matrices plug in.
    ///
    /// Per block, the arithmetic is exactly [`Tape::mha`]'s, so a batched
    /// forward is bit-identical to `B` separate single-sequence forwards.
    ///
    /// `lens`, when given, holds each packed sequence's length (they must
    /// sum to the row count) — this is the ragged layout the serving path
    /// uses, with no padding anywhere. `None` splits the rows into
    /// `masks.len()` equal blocks. Each mask, if present, has its own
    /// block's `[len_b, len_b]` shape.
    pub fn mha_batch(
        &mut self,
        q: NodeId,
        k: NodeId,
        v: NodeId,
        heads: usize,
        masks: &[Option<AttnMask>],
        lens: Option<&[usize]>,
    ) -> NodeId {
        let (tq, tk, tv) = (self.value(q), self.value(k), self.value(v));
        let (rows, d) = tq.shape();
        let blocks = masks.len();
        assert!(blocks > 0, "mha_batch needs at least one sequence");
        assert_eq!(tk.shape(), (rows, d), "mha_batch k shape");
        assert_eq!(tv.shape(), (rows, d), "mha_batch v shape");
        assert!(d % heads == 0, "hidden dim {d} not divisible by {heads} heads");
        let lens = validate_blocks(rows, masks, lens);

        let mut out = Tensor::zeros(rows, d);
        let max_len = lens.iter().copied().max().expect("non-empty");
        let mut p_buf = vec![0.0f32; max_len * max_len];
        let mut row0 = 0usize;
        for (b, mask) in masks.iter().enumerate() {
            let len = lens[b];
            mha_batch_forward_block(
                tq,
                tk,
                tv,
                row0,
                len,
                heads,
                mask.as_ref().map(|m| m.as_slice()),
                &mut out,
                &mut p_buf,
            );
            row0 += len;
        }
        self.push(out, Op::MhaBatch { q, k, v, heads, lens, masks: masks.to_vec() })
    }

    /// Fused Q/K/V projection `[x Wq + bq | x Wk + bk | x Wv + bv]` →
    /// `[rows, 3d]`. Streams `x` once instead of three times; each output
    /// element is computed with exactly the accumulation order of
    /// [`Tape::linear`], so the fused result is bit-identical to three
    /// separate dense layers.
    #[allow(clippy::too_many_arguments)] // mirrors three linear() calls
    pub fn fused_qkv(
        &mut self,
        x: NodeId,
        wq: ParamId,
        bq: ParamId,
        wk: ParamId,
        bk: ParamId,
        wv: ParamId,
        bv: ParamId,
    ) -> NodeId {
        let ws = [self.param(wq), self.param(wk), self.param(wv)];
        let bs = [self.param(bq), self.param(bk), self.param(bv)];
        let tx = self.value(x);
        let (rows, k) = tx.shape();
        let d = self.value(ws[0]).cols();
        for (&w, &b) in ws.iter().zip(bs.iter()) {
            assert_eq!(self.value(w).shape(), (k, d), "fused_qkv weight shape");
            assert_eq!(self.value(b).shape(), (1, d), "fused_qkv bias shape");
        }
        let mut out = Tensor::zeros(rows, 3 * d);
        {
            let tw = [self.value(ws[0]), self.value(ws[1]), self.value(ws[2])];
            let tb = [self.value(bs[0]), self.value(bs[1]), self.value(bs[2])];
            let tx = self.value(x);
            // Three GEMMs into the output's column segments, then the bias
            // rows: per element that is `sum_k x·w` then `+ b` — exactly
            // [`Tape::linear`]'s order, so the fused node stays
            // bit-identical to three separate dense layers.
            for (t, w) in tw.iter().enumerate() {
                gemm_nn(out.data_mut(), 3 * d, t * d, (rows, d, k), View::of(tx), View::of(w));
            }
            for i in 0..rows {
                let o_row = out.row_mut(i);
                for (t, b) in tb.iter().enumerate() {
                    for (o, &bv_) in o_row[t * d..(t + 1) * d].iter_mut().zip(b.row(0).iter()) {
                        *o += bv_;
                    }
                }
            }
        }
        self.push(out, Op::FusedQkv { x, ws, bs })
    }

    /// [`Tape::mha_batch`] over a fused `[rows, 3d]` Q|K|V node from
    /// [`Tape::fused_qkv`] — avoids materializing separate q/k/v tensors.
    /// Bit-identical to the unfused path.
    pub fn mha_batch_qkv(
        &mut self,
        qkv: NodeId,
        heads: usize,
        masks: &[Option<AttnMask>],
        lens: Option<&[usize]>,
    ) -> NodeId {
        let t = self.value(qkv);
        let (rows, d3) = t.shape();
        assert!(d3 % 3 == 0, "fused qkv width must be 3d");
        let d = d3 / 3;
        let blocks = masks.len();
        assert!(blocks > 0, "mha_batch_qkv needs at least one sequence");
        assert!(d % heads == 0, "hidden dim {d} not divisible by {heads} heads");
        let lens = validate_blocks(rows, masks, lens);

        let mut out = Tensor::zeros(rows, d);
        let max_len = lens.iter().copied().max().expect("non-empty");
        let mut p_buf = vec![0.0f32; max_len * max_len];
        let mut row0 = 0usize;
        for (b, mask) in masks.iter().enumerate() {
            let len = lens[b];
            qkv_forward_block(
                t,
                d,
                row0,
                len,
                heads,
                mask.as_ref().map(|m| m.as_slice()),
                &mut out,
                &mut p_buf,
            );
            row0 += len;
        }
        self.push(out, Op::MhaBatchQkv { qkv, heads, lens, masks: masks.to_vec() })
    }

    /// Post-softmax attention probabilities of an [`Tape::mha`] node,
    /// flattened `[heads, S, S]`. Used by the attention analysis (Figure 6).
    pub fn mha_probs(&self, id: NodeId) -> Option<(&[f32], usize)> {
        match &self.nodes[id].op {
            Op::Mha { heads, probs, .. } => Some((probs.as_slice(), *heads)),
            _ => None,
        }
    }

    /// Inverted dropout with keep probability `1 - p`. A no-op on inference
    /// tapes.
    pub fn dropout<R: Rng + ?Sized>(&mut self, x: NodeId, p: f32, rng: &mut R) -> NodeId {
        if !self.training || p <= 0.0 {
            return x;
        }
        assert!(p < 1.0, "dropout probability must be < 1");
        let keep = 1.0 - p;
        let tx = self.value(x);
        let mask: Vec<f32> =
            (0..tx.len()).map(|_| if rng.gen::<f32>() < keep { 1.0 / keep } else { 0.0 }).collect();
        let data: Vec<f32> = tx.data().iter().zip(mask.iter()).map(|(v, m)| v * m).collect();
        let v = Tensor::from_vec(tx.rows(), tx.cols(), data);
        self.push(v, Op::Dropout { x, mask })
    }

    /// Mean softmax cross-entropy over the rows of `logits` (`[N, C]`)
    /// against integer `targets` (`len N`). Returns a `[1, 1]` loss node.
    pub fn softmax_ce(&mut self, logits: NodeId, targets: &[u32]) -> NodeId {
        let tl = self.value(logits);
        let (n, c) = tl.shape();
        assert_eq!(targets.len(), n, "softmax_ce target count");
        let mut probs = tl.clone();
        let mut loss = 0.0f32;
        for r in 0..n {
            softmax_row(probs.row_mut(r));
            let t = targets[r] as usize;
            assert!(t < c, "softmax_ce target {t} out of range {c}");
            loss -= probs.get(r, t).max(1e-12).ln();
        }
        loss /= n as f32;
        self.push(Tensor::scalar(loss), Op::SoftmaxCe { logits, targets: targets.to_vec(), probs })
    }

    /// Mean binary cross-entropy with logits against `{0, 1}` targets of the
    /// same shape (multi-label heads). Returns a `[1, 1]` loss node.
    pub fn bce_logits(&mut self, logits: NodeId, targets: &Tensor) -> NodeId {
        self.bce_logits_weighted(logits, targets, 1.0)
    }

    /// [`Tape::bce_logits`] with a positive-class weight (PyTorch's
    /// `BCEWithLogitsLoss(pos_weight=…)`): the loss term of each positive
    /// target is multiplied by `pos_weight`, counteracting the extreme
    /// positive/negative imbalance of multi-label column typing (a couple of
    /// true types among hundreds of classes).
    pub fn bce_logits_weighted(
        &mut self,
        logits: NodeId,
        targets: &Tensor,
        pos_weight: f32,
    ) -> NodeId {
        assert!(pos_weight > 0.0, "pos_weight must be positive");
        let tl = self.value(logits);
        assert_eq!(tl.shape(), targets.shape(), "bce_logits shape mismatch");
        let mut sig = tl.clone();
        let mut loss = 0.0f32;
        for (z, t) in tl.data().iter().zip(targets.data().iter()) {
            // softplus(x) = max(x,0) + ln(1 + e^{-|x|}) is the stable form.
            let softplus_neg = (-z).max(0.0) + (-z.abs()).exp().ln_1p(); // -log sigmoid(z)
            let softplus_pos = z.max(0.0) + (-z.abs()).exp().ln_1p(); // -log (1 - sigmoid(z))
            loss += pos_weight * t * softplus_neg + (1.0 - t) * softplus_pos;
        }
        for s in sig.data_mut() {
            *s = sigmoid(*s);
        }
        loss /= tl.len() as f32;
        self.push(
            Tensor::scalar(loss),
            Op::BceLogits { logits, sig, targets: targets.clone(), pos_weight },
        )
    }

    /// Runs reverse-mode differentiation from scalar node `loss`,
    /// accumulating parameter gradients (scaled by `seed`) into `grads`.
    pub fn backward(&self, loss: NodeId, grads: &mut Gradients) {
        self.backward_scaled(loss, grads, 1.0);
    }

    /// [`Tape::backward`] with an upstream seed gradient (used to weight
    /// losses without extra nodes).
    pub fn backward_scaled(&self, loss: NodeId, grads: &mut Gradients, seed: f32) {
        assert_eq!(self.value(loss).shape(), (1, 1), "backward root must be scalar");
        let mut local: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        local[loss] = Some(Tensor::scalar(seed));

        for id in (0..=loss).rev() {
            let Some(g) = local[id].take() else { continue };
            match &self.nodes[id].op {
                Op::Leaf => {}
                Op::Param(pid) => grads.accumulate(*pid, &g, self.store),
                Op::Matmul { a, b } => {
                    let da = matmul_nt(&g, self.value(*b));
                    let db = matmul_tn(self.value(*a), &g);
                    acc(&mut local, *a, da);
                    acc(&mut local, *b, db);
                }
                Op::Add { a, b } => {
                    acc(&mut local, *a, g.clone());
                    acc(&mut local, *b, g);
                }
                Op::AddRow { x, bias } => {
                    let mut db = Tensor::zeros(1, g.cols());
                    for r in 0..g.rows() {
                        for (o, &gv) in db.row_mut(0).iter_mut().zip(g.row(r).iter()) {
                            *o += gv;
                        }
                    }
                    acc(&mut local, *bias, db);
                    acc(&mut local, *x, g);
                }
                Op::Mul { a, b } => {
                    let ta = self.value(*a);
                    let tb = self.value(*b);
                    let da = elementwise(&g, tb, |g, y| g * y);
                    let db = elementwise(&g, ta, |g, x| g * x);
                    acc(&mut local, *a, da);
                    acc(&mut local, *b, db);
                }
                Op::Scale { x, c } => {
                    let mut dx = g;
                    dx.scale_assign(*c);
                    acc(&mut local, *x, dx);
                }
                Op::Gelu { x } => {
                    let tx = self.value(*x);
                    let dx = elementwise(&g, tx, |g, x| g * gelu_grad(x));
                    acc(&mut local, *x, dx);
                }
                Op::Tanh { x } => {
                    let ty = self.value(id);
                    let dx = elementwise(&g, ty, |g, y| g * (1.0 - y * y));
                    acc(&mut local, *x, dx);
                }
                Op::Relu { x } => {
                    let tx = self.value(*x);
                    let dx = elementwise(&g, tx, |g, x| if x > 0.0 { g } else { 0.0 });
                    acc(&mut local, *x, dx);
                }
                Op::LayerNorm { x, gamma, beta, mean, rstd } => {
                    let tx = self.value(*x);
                    let tg = self.value(*gamma).clone();
                    let (rows, cols) = tx.shape();
                    let mut dgamma = Tensor::zeros(1, cols);
                    let mut dbeta = Tensor::zeros(1, cols);
                    let mut dx = Tensor::zeros(rows, cols);
                    for r in 0..rows {
                        let xr = tx.row(r);
                        let gr = g.row(r);
                        let (m, rs) = (mean[r], rstd[r]);
                        // dy*gamma and its row statistics.
                        let mut sum_dyg = 0.0f32;
                        let mut sum_dyg_xhat = 0.0f32;
                        for c in 0..cols {
                            let xhat = (xr[c] - m) * rs;
                            let dyg = gr[c] * tg.data()[c];
                            sum_dyg += dyg;
                            sum_dyg_xhat += dyg * xhat;
                            dgamma.data_mut()[c] += gr[c] * xhat;
                            dbeta.data_mut()[c] += gr[c];
                        }
                        let inv_n = 1.0 / cols as f32;
                        let dxr = dx.row_mut(r);
                        for c in 0..cols {
                            let xhat = (xr[c] - m) * rs;
                            let dyg = gr[c] * tg.data()[c];
                            dxr[c] = rs * (dyg - inv_n * sum_dyg - xhat * inv_n * sum_dyg_xhat);
                        }
                    }
                    acc(&mut local, *gamma, dgamma);
                    acc(&mut local, *beta, dbeta);
                    acc(&mut local, *x, dx);
                }
                Op::Softmax { x } => {
                    let ty = self.value(id);
                    let (rows, cols) = ty.shape();
                    let mut dx = Tensor::zeros(rows, cols);
                    for r in 0..rows {
                        let yr = ty.row(r);
                        let gr = g.row(r);
                        let dot: f32 = yr.iter().zip(gr.iter()).map(|(y, g)| y * g).sum();
                        let dxr = dx.row_mut(r);
                        for c in 0..cols {
                            dxr[c] = yr[c] * (gr[c] - dot);
                        }
                    }
                    acc(&mut local, *x, dx);
                }
                Op::Embedding { weight, ids } => {
                    let w = self.value(*weight);
                    let mut dw = Tensor::zeros(w.rows(), w.cols());
                    for (r, &idd) in ids.iter().enumerate() {
                        for (o, &gv) in dw.row_mut(idd as usize).iter_mut().zip(g.row(r).iter()) {
                            *o += gv;
                        }
                    }
                    acc(&mut local, *weight, dw);
                }
                Op::RowSelect { x, idxs } => {
                    let tx = self.value(*x);
                    let mut dx = Tensor::zeros(tx.rows(), tx.cols());
                    for (r, &i) in idxs.iter().enumerate() {
                        for (o, &gv) in dx.row_mut(i as usize).iter_mut().zip(g.row(r).iter()) {
                            *o += gv;
                        }
                    }
                    acc(&mut local, *x, dx);
                }
                Op::ConcatCols { a, b } => {
                    let (da_cols, db_cols) = (self.value(*a).cols(), self.value(*b).cols());
                    let n = g.rows();
                    let mut da = Tensor::zeros(n, da_cols);
                    let mut db = Tensor::zeros(n, db_cols);
                    for r in 0..n {
                        da.row_mut(r).copy_from_slice(&g.row(r)[..da_cols]);
                        db.row_mut(r).copy_from_slice(&g.row(r)[da_cols..]);
                    }
                    acc(&mut local, *a, da);
                    acc(&mut local, *b, db);
                }
                Op::Mha { q, k, v, heads, probs } => {
                    let (tq, tk, tv) = (self.value(*q), self.value(*k), self.value(*v));
                    let (s, d) = tq.shape();
                    let dh = d / heads;
                    let scale = 1.0 / (dh as f32).sqrt();
                    let mut dq = Tensor::zeros(s, d);
                    let mut dk = Tensor::zeros(s, d);
                    let mut dv = Tensor::zeros(s, d);
                    let mut dp_buf = vec![0.0f32; s * s];
                    for h in 0..*heads {
                        let off = h * dh;
                        attn_head_backward(
                            &probs[h * s * s..(h + 1) * s * s],
                            &mut dp_buf,
                            AttnHeadViews {
                                g: View::at(g.data(), d, 0, off),
                                q: View::at(tq.data(), d, 0, off),
                                k: View::at(tk.data(), d, 0, off),
                                v: View::at(tv.data(), d, 0, off),
                            },
                            (s, dh),
                            scale,
                            (d, off),
                            dq.data_mut(),
                            dk.data_mut(),
                            dv.data_mut(),
                        );
                    }
                    acc(&mut local, *q, dq);
                    acc(&mut local, *k, dk);
                    acc(&mut local, *v, dv);
                }
                Op::MhaBatch { q, k, v, heads, lens, masks } => {
                    let (tq, tk, tv) = (self.value(*q), self.value(*k), self.value(*v));
                    let (rows, d) = tq.shape();
                    let dh = d / heads;
                    let scale = 1.0 / (dh as f32).sqrt();
                    let mut dq = Tensor::zeros(rows, d);
                    let mut dk = Tensor::zeros(rows, d);
                    let mut dv = Tensor::zeros(rows, d);
                    let max_len = lens.iter().copied().max().expect("non-empty");
                    let mut p_buf = vec![0.0f32; max_len * max_len];
                    let mut dp_buf = vec![0.0f32; max_len * max_len];
                    let mut row0 = 0usize;
                    for (&len, mask) in lens.iter().zip(masks.iter()) {
                        let mask = mask.as_ref().map(|m| m.as_slice());
                        for h in 0..*heads {
                            let off = h * dh;
                            // Probabilities are recomputed via the same
                            // kernel the forward used — bit-identical.
                            attn_probs_block(
                                &mut p_buf,
                                View::at(tq.data(), d, row0, off),
                                View::at(tk.data(), d, row0, off),
                                len,
                                dh,
                                scale,
                                mask,
                            );
                            attn_head_backward(
                                &p_buf,
                                &mut dp_buf,
                                AttnHeadViews {
                                    g: View::at(g.data(), d, row0, off),
                                    q: View::at(tq.data(), d, row0, off),
                                    k: View::at(tk.data(), d, row0, off),
                                    v: View::at(tv.data(), d, row0, off),
                                },
                                (len, dh),
                                scale,
                                (d, off),
                                &mut dq.data_mut()[row0 * d..],
                                &mut dk.data_mut()[row0 * d..],
                                &mut dv.data_mut()[row0 * d..],
                            );
                        }
                        row0 += len;
                    }
                    acc(&mut local, *q, dq);
                    acc(&mut local, *k, dk);
                    acc(&mut local, *v, dv);
                }
                Op::FusedQkv { x, ws, bs } => {
                    let tx = self.value(*x);
                    let (rows, k) = tx.shape();
                    let d = self.value(ws[0]).cols();
                    let mut dx = Tensor::zeros(rows, k);
                    for t in 0..3 {
                        // This projection's gradient is the `[t*d, (t+1)*d)`
                        // column slice of `g`, consumed in place as a
                        // strided view — no materialized copy.
                        let g_t = View::at(g.data(), 3 * d, 0, t * d);
                        let mut dw = Tensor::zeros(k, d);
                        gemm_tn(dw.data_mut(), d, 0, (k, d, rows), View::of(tx), g_t);
                        let mut db = Tensor::zeros(1, d);
                        for r in 0..rows {
                            let g_row = &g.row(r)[t * d..(t + 1) * d];
                            for (o, &gv) in db.row_mut(0).iter_mut().zip(g_row.iter()) {
                                *o += gv;
                            }
                        }
                        gemm_nt(
                            dx.data_mut(),
                            k,
                            0,
                            (rows, k, d),
                            g_t,
                            View::of(self.value(ws[t])),
                        );
                        acc(&mut local, ws[t], dw);
                        acc(&mut local, bs[t], db);
                    }
                    acc(&mut local, *x, dx);
                }
                Op::MhaBatchQkv { qkv, heads, lens, masks } => {
                    let t = self.value(*qkv);
                    let (rows, d3) = t.shape();
                    let d = d3 / 3;
                    let dh = d / heads;
                    let scale = 1.0 / (dh as f32).sqrt();
                    let mut dqkv = Tensor::zeros(rows, d3);
                    let max_len = lens.iter().copied().max().expect("non-empty");
                    let mut p_buf = vec![0.0f32; max_len * max_len];
                    let mut dp_buf = vec![0.0f32; max_len * max_len];
                    let mut row0 = 0usize;
                    for (&len, mask) in lens.iter().zip(masks.iter()) {
                        let mask = mask.as_ref().map(|m| m.as_slice());
                        for h in 0..*heads {
                            let off = h * dh;
                            attn_probs_block(
                                &mut p_buf,
                                View::at(t.data(), d3, row0, off),
                                View::at(t.data(), d3, row0, d + off),
                                len,
                                dh,
                                scale,
                                mask,
                            );
                            attn_head_backward_fused(
                                &p_buf,
                                &mut dp_buf,
                                View::at(g.data(), d, row0, off),
                                t,
                                &mut dqkv,
                                (row0, len, dh),
                                (d, off),
                                scale,
                            );
                        }
                        row0 += len;
                    }
                    acc(&mut local, *qkv, dqkv);
                }
                Op::Dropout { x, mask } => {
                    let tx_shape = self.value(*x).shape();
                    let data: Vec<f32> =
                        g.data().iter().zip(mask.iter()).map(|(g, m)| g * m).collect();
                    acc(&mut local, *x, Tensor::from_vec(tx_shape.0, tx_shape.1, data));
                }
                Op::SoftmaxCe { logits, targets, probs } => {
                    let gs = g.scalar_value();
                    let (n, c) = probs.shape();
                    let mut dl = probs.clone();
                    for (r, &t) in targets.iter().enumerate() {
                        let val = dl.get(r, t as usize) - 1.0;
                        dl.set(r, t as usize, val);
                    }
                    dl.scale_assign(gs / n as f32);
                    debug_assert_eq!(dl.shape(), (n, c));
                    acc(&mut local, *logits, dl);
                }
                Op::BceLogits { logits, sig, targets, pos_weight } => {
                    // d/dz [w t softplus(-z) + (1-t) softplus(z)]
                    //   = (1-t) σ(z) - w t (1-σ(z)).
                    let gs = g.scalar_value();
                    let mut dl = sig.clone();
                    for (o, &t) in dl.data_mut().iter_mut().zip(targets.data().iter()) {
                        let s = *o;
                        *o = (1.0 - t) * s - pos_weight * t * (1.0 - s);
                    }
                    dl.scale_assign(gs / sig.len() as f32);
                    acc(&mut local, *logits, dl);
                }
            }
        }
    }
}

/// Resolves and validates the block layout shared by [`Tape::mha_batch`]
/// and [`Tape::mha_batch_qkv`]: explicit `lens` must sum to `rows` (ragged
/// packing), `None` splits `rows` into `masks.len()` equal blocks, and
/// every per-block mask must be `[len, len]`-shaped.
fn validate_blocks(rows: usize, masks: &[Option<AttnMask>], lens: Option<&[usize]>) -> Vec<usize> {
    let blocks = masks.len();
    let lens: Vec<usize> = match lens {
        Some(l) => {
            assert_eq!(l.len(), blocks, "one length per block");
            assert!(l.iter().all(|&n| n >= 1), "blocks cannot be empty");
            assert_eq!(l.iter().sum::<usize>(), rows, "block lengths must sum to the rows");
            l.to_vec()
        }
        None => {
            assert!(
                rows.is_multiple_of(blocks),
                "{rows} rows do not split into {blocks} equal blocks"
            );
            vec![rows / blocks; blocks]
        }
    };
    for (m, &len) in masks.iter().zip(lens.iter()) {
        if let Some(m) = m {
            assert_eq!(m.len(), len * len, "per-sequence mask must be [len, len]");
        }
    }
    lens
}

/// Computes one head's post-softmax probability matrix into
/// `p[..len * len]`: `S = Q Kᵀ` through the blocked GEMM layer, then
/// `s * scale + mask` per element (the naive kernels' exact order) and a
/// row softmax. The single kernel behind every attention forward — single
/// and batched, fused and unfused — and behind the batched backward's
/// recompute, so all sites are bit-identical by construction.
fn attn_probs_block(
    p: &mut [f32],
    q: View<'_>,
    k: View<'_>,
    len: usize,
    dh: usize,
    scale: f32,
    mask: Option<&[f32]>,
) {
    p[..len * len].fill(0.0);
    gemm_nt(p, len, 0, (len, len, dh), q, k);
    for i in 0..len {
        let row = &mut p[i * len..(i + 1) * len];
        let m_row = mask.map(|m| &m[i * len..(i + 1) * len]);
        for (j, s) in row.iter_mut().enumerate() {
            *s = *s * scale + m_row.map_or(0.0, |m| m[j]);
        }
        softmax_row(row);
    }
}

/// Fused-attention forward over one block of [`Tape::mha_batch`]: rows
/// `[row0, row0 + len)` attend among themselves, one GEMM pair per head.
/// Probabilities live only in the `p_buf` scratch — nothing is cached
/// (backward recomputes them via the same [`attn_probs_block`]).
#[allow(clippy::too_many_arguments)] // a private kernel, not an API surface
fn mha_batch_forward_block(
    tq: &Tensor,
    tk: &Tensor,
    tv: &Tensor,
    row0: usize,
    len: usize,
    heads: usize,
    mask: Option<&[f32]>,
    out: &mut Tensor,
    p_buf: &mut [f32],
) {
    let d = tq.cols();
    let dh = d / heads;
    let scale = 1.0 / (dh as f32).sqrt();
    for h in 0..heads {
        let off = h * dh;
        attn_probs_block(
            p_buf,
            View::at(tq.data(), d, row0, off),
            View::at(tk.data(), d, row0, off),
            len,
            dh,
            scale,
            mask,
        );
        gemm_nn(
            &mut out.data_mut()[row0 * d..],
            d,
            off,
            (len, dh, len),
            View::at(p_buf, len, 0, 0),
            View::at(tv.data(), d, row0, off),
        );
    }
}

/// Forward for one block of [`Tape::mha_batch_qkv`]: like
/// [`mha_batch_forward_block`] but reading Q, K and V from one packed
/// `[rows, 3d]` tensor at column bases `0`, `d` and `2d` — the [`View`]s
/// make the column slicing free.
#[allow(clippy::too_many_arguments)] // a private kernel, not an API surface
fn qkv_forward_block(
    t: &Tensor,
    d: usize,
    row0: usize,
    len: usize,
    heads: usize,
    mask: Option<&[f32]>,
    out: &mut Tensor,
    p_buf: &mut [f32],
) {
    let d3 = 3 * d;
    let dh = d / heads;
    let scale = 1.0 / (dh as f32).sqrt();
    for h in 0..heads {
        let off = h * dh;
        attn_probs_block(
            p_buf,
            View::at(t.data(), d3, row0, off),
            View::at(t.data(), d3, row0, d + off),
            len,
            dh,
            scale,
            mask,
        );
        gemm_nn(
            &mut out.data_mut()[row0 * d..],
            d,
            off,
            (len, dh, len),
            View::at(p_buf, len, 0, 0),
            View::at(t.data(), d3, row0, 2 * d + off),
        );
    }
}

/// One head's `[len, dh]` activation views into the attention backward:
/// the upstream gradient plus the Q/K/V values (column offsets already
/// folded in).
struct AttnHeadViews<'a> {
    g: View<'a>,
    q: View<'a>,
    k: View<'a>,
    v: View<'a>,
}

/// Attention backward for one `(block, head)` pair, all products through
/// the GEMM layer: `dP = G Vᵀ`, `dV += Pᵀ G`, then the softmax Jacobian
/// turns `dP` into `dS` in place (`ds = p * (dp - ⟨dp, p⟩) * scale`, the
/// naive kernels' exact order), and `dQ += dS K`, `dK += dSᵀ Q`. The
/// gradient targets are the `[row0.., off..off+dh]` windows described by
/// `(ldc, col0)`; each `d*` slice starts at the block's first row.
#[allow(clippy::too_many_arguments)] // a private kernel, not an API surface
fn attn_head_backward(
    p: &[f32],
    dp: &mut [f32],
    views: AttnHeadViews<'_>,
    (len, dh): (usize, usize),
    scale: f32,
    (ldc, col0): (usize, usize),
    dq: &mut [f32],
    dk: &mut [f32],
    dv: &mut [f32],
) {
    dp[..len * len].fill(0.0);
    gemm_nt(dp, len, 0, (len, len, dh), views.g, views.v);
    gemm_tn(dv, ldc, col0, (len, dh, len), View::at(p, len, 0, 0), views.g);
    softmax_jacobian_rows(p, dp, len, scale);
    gemm_nn(dq, ldc, col0, (len, dh, len), View::at(dp, len, 0, 0), views.k);
    gemm_tn(dk, ldc, col0, (len, dh, len), View::at(dp, len, 0, 0), views.q);
}

/// [`attn_head_backward`] for the packed `[rows, 3d]` layout of
/// [`Tape::mha_batch_qkv`]: Q/K/V values come from `t` at column bases
/// `0`, `d`, `2d` and the three gradients land in the matching column
/// segments of `dqkv` (sequential GEMM calls, since the segments alias one
/// buffer).
#[allow(clippy::too_many_arguments)] // a private kernel, not an API surface
fn attn_head_backward_fused(
    p: &[f32],
    dp: &mut [f32],
    g: View<'_>,
    t: &Tensor,
    dqkv: &mut Tensor,
    (row0, len, dh): (usize, usize, usize),
    (d, off): (usize, usize),
    scale: f32,
) {
    let d3 = 3 * d;
    let q = View::at(t.data(), d3, row0, off);
    let k = View::at(t.data(), d3, row0, d + off);
    let v = View::at(t.data(), d3, row0, 2 * d + off);
    dp[..len * len].fill(0.0);
    gemm_nt(dp, len, 0, (len, len, dh), g, v);
    let dc = &mut dqkv.data_mut()[row0 * d3..];
    gemm_tn(dc, d3, 2 * d + off, (len, dh, len), View::at(p, len, 0, 0), g);
    softmax_jacobian_rows(p, dp, len, scale);
    gemm_nn(dc, d3, off, (len, dh, len), View::at(dp, len, 0, 0), k);
    gemm_tn(dc, d3, d + off, (len, dh, len), View::at(dp, len, 0, 0), q);
}

/// Applies the row-wise softmax Jacobian in place:
/// `dp[i][j] <- p[i][j] * (dp[i][j] - ⟨dp[i], p[i]⟩) * scale`.
fn softmax_jacobian_rows(p: &[f32], dp: &mut [f32], len: usize, scale: f32) {
    for i in 0..len {
        let p_row = &p[i * len..(i + 1) * len];
        let dp_row = &mut dp[i * len..(i + 1) * len];
        let mut dot = 0.0f32;
        for (x, y) in dp_row.iter().zip(p_row.iter()) {
            dot += x * y;
        }
        for (x, &pv) in dp_row.iter_mut().zip(p_row.iter()) {
            *x = pv * (*x - dot) * scale;
        }
    }
}

fn acc(local: &mut [Option<Tensor>], id: NodeId, g: Tensor) {
    match &mut local[id] {
        Some(t) => t.add_assign(&g),
        slot => *slot = Some(g),
    }
}

fn elementwise(g: &Tensor, x: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
    debug_assert_eq!(g.shape(), x.shape());
    let data: Vec<f32> = g.data().iter().zip(x.data().iter()).map(|(&g, &x)| f(g, x)).collect();
    Tensor::from_vec(g.rows(), g.cols(), data)
}

#[inline]
fn sigmoid(z: f32) -> f32 {
    1.0 / (1.0 + (-z).exp())
}

/// In-place, numerically-stable softmax of one row.
#[inline]
pub fn softmax_row(row: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    let inv = 1.0 / sum;
    for v in row.iter_mut() {
        *v *= inv;
    }
}

const GELU_C: f32 = 0.797_884_6; // sqrt(2/pi)

#[inline]
fn gelu_fwd(x: f32) -> f32 {
    0.5 * x * (1.0 + (GELU_C * (x + 0.044_715 * x * x * x)).tanh())
}

#[inline]
fn gelu_grad(x: f32) -> f32 {
    let u = GELU_C * (x + 0.044_715 * x * x * x);
    let t = u.tanh();
    let du = GELU_C * (1.0 + 3.0 * 0.044_715 * x * x);
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{Gradients, ParamStore};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Finite-difference gradient check: `f` builds a scalar loss on a fresh
    /// tape over `store`; analytic gradients from backward are compared
    /// against central differences for every parameter scalar.
    fn gradcheck(store: &mut ParamStore, f: impl Fn(&mut Tape) -> NodeId, tol: f32) {
        let mut grads = Gradients::new(store);
        {
            let mut tape = Tape::inference(store);
            let loss = f(&mut tape);
            tape.backward(loss, &mut grads);
        }
        let eps = 1e-3f32;
        for pid in 0..store.len() {
            for i in 0..store.get(pid).len() {
                let orig = store.get(pid).data()[i];
                store.get_mut(pid).data_mut()[i] = orig + eps;
                let up = {
                    let mut tape = Tape::inference(store);
                    let l = f(&mut tape);
                    tape.value(l).scalar_value()
                };
                store.get_mut(pid).data_mut()[i] = orig - eps;
                let down = {
                    let mut tape = Tape::inference(store);
                    let l = f(&mut tape);
                    tape.value(l).scalar_value()
                };
                store.get_mut(pid).data_mut()[i] = orig;
                let numeric = (up - down) / (2.0 * eps);
                let analytic = grads.get(pid).map_or(0.0, |g| g.data()[i]);
                assert!(
                    (numeric - analytic).abs() < tol + tol * numeric.abs().max(analytic.abs()),
                    "param {pid} [{i}]: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn gradcheck_linear_gelu_ce() {
        let mut rng = rng();
        let mut store = ParamStore::new();
        let w = store.add_randn("w", 4, 3, 0.5, &mut rng);
        let b = store.add_randn("b", 1, 3, 0.5, &mut rng);
        let x = Tensor::randn(2, 4, 1.0, &mut rng);
        gradcheck(
            &mut store,
            move |tape| {
                let xn = tape.input(x.clone());
                let h = tape.linear(xn, w, b);
                let a = tape.gelu(h);
                tape.softmax_ce(a, &[0, 2])
            },
            2e-2,
        );
    }

    #[test]
    fn gradcheck_layernorm() {
        let mut rng = rng();
        let mut store = ParamStore::new();
        let xw = store.add_randn("x", 3, 5, 1.0, &mut rng);
        let g = store.add_randn("g", 1, 5, 0.3, &mut rng);
        let bt = store.add_randn("bt", 1, 5, 0.3, &mut rng);
        let proj = store.add_randn("proj", 5, 2, 0.5, &mut rng);
        let pb = store.add_zeros("pb", 1, 2);
        gradcheck(
            &mut store,
            move |tape| {
                let xn = tape.param(xw);
                let ln = tape.layer_norm(xn, g, bt);
                let h = tape.linear(ln, proj, pb);
                tape.softmax_ce(h, &[1, 0, 1])
            },
            3e-2,
        );
    }

    #[test]
    fn gradcheck_mha() {
        let mut rng = rng();
        let mut store = ParamStore::new();
        let q = store.add_randn("q", 4, 6, 0.7, &mut rng);
        let k = store.add_randn("k", 4, 6, 0.7, &mut rng);
        let v = store.add_randn("v", 4, 6, 0.7, &mut rng);
        let proj = store.add_randn("proj", 6, 3, 0.5, &mut rng);
        let pb = store.add_zeros("pb", 1, 3);
        gradcheck(
            &mut store,
            move |tape| {
                let qn = tape.param(q);
                let kn = tape.param(k);
                let vn = tape.param(v);
                let att = tape.mha(qn, kn, vn, 2, None);
                let h = tape.linear(att, proj, pb);
                tape.softmax_ce(h, &[0, 1, 2, 0])
            },
            3e-2,
        );
    }

    #[test]
    fn gradcheck_mha_masked() {
        let mut rng = rng();
        let mut store = ParamStore::new();
        let q = store.add_randn("q", 3, 4, 0.7, &mut rng);
        let k = store.add_randn("k", 3, 4, 0.7, &mut rng);
        let v = store.add_randn("v", 3, 4, 0.7, &mut rng);
        // Token 2 hidden from token 0 and vice versa.
        let mut m = vec![0.0f32; 9];
        m[2] = MASK_NEG;
        m[6] = MASK_NEG;
        let mask: AttnMask = Arc::new(m);
        gradcheck(
            &mut store,
            move |tape| {
                let qn = tape.param(q);
                let kn = tape.param(k);
                let vn = tape.param(v);
                let att = tape.mha(qn, kn, vn, 2, Some(&mask));
                tape.softmax_ce(att, &[0, 1, 2])
            },
            3e-2,
        );
    }

    #[test]
    fn mha_batch_matches_per_sequence_mha_bitwise() {
        let mut rng = rng();
        let store = ParamStore::new();
        let (blocks, s, d) = (3, 4, 6);
        let q = Tensor::randn(blocks * s, d, 0.8, &mut rng);
        let k = Tensor::randn(blocks * s, d, 0.8, &mut rng);
        let v = Tensor::randn(blocks * s, d, 0.8, &mut rng);
        // Block 1 carries a restrictive mask, the others attend freely.
        let mut m = vec![0.0f32; s * s];
        m[1] = MASK_NEG;
        m[s] = MASK_NEG;
        let masks: Vec<Option<AttnMask>> = vec![None, Some(Arc::new(m)), None];

        let mut batch_tape = Tape::inference(&store);
        let (qn, kn, vn) =
            (batch_tape.input(q.clone()), batch_tape.input(k.clone()), batch_tape.input(v.clone()));
        let batched = batch_tape.mha_batch(qn, kn, vn, 2, &masks, None);
        let batched_val = batch_tape.value(batched);

        for (b, mask) in masks.iter().enumerate() {
            let slice =
                |t: &Tensor| Tensor::from_vec(s, d, t.data()[b * s * d..(b + 1) * s * d].to_vec());
            let mut tape = Tape::inference(&store);
            let (qs, ks, vs) =
                (tape.input(slice(&q)), tape.input(slice(&k)), tape.input(slice(&v)));
            let single = tape.mha(qs, ks, vs, 2, mask.as_ref());
            let single_val = tape.value(single);
            for i in 0..s * d {
                assert_eq!(
                    batched_val.data()[b * s * d + i].to_bits(),
                    single_val.data()[i].to_bits(),
                    "block {b} element {i} must be bit-identical"
                );
            }
        }
    }

    #[test]
    fn gradcheck_mha_batch() {
        let mut rng = rng();
        let mut store = ParamStore::new();
        // Two blocks of length 3 packed into 6 rows.
        let q = store.add_randn("q", 6, 4, 0.7, &mut rng);
        let k = store.add_randn("k", 6, 4, 0.7, &mut rng);
        let v = store.add_randn("v", 6, 4, 0.7, &mut rng);
        let mut m = vec![0.0f32; 9];
        m[2] = MASK_NEG;
        m[6] = MASK_NEG;
        let masks: Vec<Option<AttnMask>> = vec![None, Some(Arc::new(m))];
        gradcheck(
            &mut store,
            move |tape| {
                let qn = tape.param(q);
                let kn = tape.param(k);
                let vn = tape.param(v);
                let att = tape.mha_batch(qn, kn, vn, 2, &masks, None);
                tape.softmax_ce(att, &[0, 1, 2, 3, 0, 1])
            },
            3e-2,
        );
    }

    #[test]
    fn fused_qkv_matches_three_linears_bitwise() {
        let mut rng = rng();
        let mut store = ParamStore::new();
        let wq = store.add_randn("wq", 6, 4, 0.5, &mut rng);
        let bq = store.add_randn("bq", 1, 4, 0.5, &mut rng);
        let wk = store.add_randn("wk", 6, 4, 0.5, &mut rng);
        let bk = store.add_randn("bk", 1, 4, 0.5, &mut rng);
        let wv = store.add_randn("wv", 6, 4, 0.5, &mut rng);
        let bv = store.add_randn("bv", 1, 4, 0.5, &mut rng);
        let x = Tensor::randn(5, 6, 1.0, &mut rng);
        let mut tape = Tape::inference(&store);
        let xn = tape.input(x.clone());
        let fused = tape.fused_qkv(xn, wq, bq, wk, bk, wv, bv);
        let q = tape.linear(xn, wq, bq);
        let k = tape.linear(xn, wk, bk);
        let v = tape.linear(xn, wv, bv);
        let fv = tape.value(fused);
        for (t, n) in [q, k, v].into_iter().enumerate() {
            let sv = tape.value(n);
            for r in 0..5 {
                for c in 0..4 {
                    assert_eq!(
                        fv.get(r, t * 4 + c).to_bits(),
                        sv.get(r, c).to_bits(),
                        "projection {t} ({r},{c})"
                    );
                }
            }
        }
    }

    #[test]
    fn mha_batch_qkv_matches_unfused_bitwise() {
        let mut rng = rng();
        let store = ParamStore::new();
        let (lens, d) = (vec![3usize, 4], 6usize);
        let rows: usize = lens.iter().sum();
        let q = Tensor::randn(rows, d, 0.8, &mut rng);
        let k = Tensor::randn(rows, d, 0.8, &mut rng);
        let v = Tensor::randn(rows, d, 0.8, &mut rng);
        let mut packed = Tensor::zeros(rows, 3 * d);
        for r in 0..rows {
            packed.row_mut(r)[..d].copy_from_slice(q.row(r));
            packed.row_mut(r)[d..2 * d].copy_from_slice(k.row(r));
            packed.row_mut(r)[2 * d..].copy_from_slice(v.row(r));
        }
        let mut m = vec![0.0f32; 16];
        m[1] = MASK_NEG;
        let masks: Vec<Option<AttnMask>> = vec![None, Some(Arc::new(m))];

        let mut t1 = Tape::inference(&store);
        let (qn, kn, vn) = (t1.input(q), t1.input(k), t1.input(v));
        let unfused = t1.mha_batch(qn, kn, vn, 2, &masks, Some(&lens));
        let mut t2 = Tape::inference(&store);
        let pn = t2.input(packed);
        let fused = t2.mha_batch_qkv(pn, 2, &masks, Some(&lens));
        for (a, b) in t1.value(unfused).data().iter().zip(t2.value(fused).data().iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn gradcheck_fused_qkv_attention() {
        let mut rng = rng();
        let mut store = ParamStore::new();
        let x = store.add_randn("x", 5, 6, 0.7, &mut rng);
        let wq = store.add_randn("wq", 6, 4, 0.5, &mut rng);
        let bq = store.add_randn("bq", 1, 4, 0.3, &mut rng);
        let wk = store.add_randn("wk", 6, 4, 0.5, &mut rng);
        let bk = store.add_randn("bk", 1, 4, 0.3, &mut rng);
        let wv = store.add_randn("wv", 6, 4, 0.5, &mut rng);
        let bv = store.add_randn("bv", 1, 4, 0.3, &mut rng);
        let mut m = vec![0.0f32; 4];
        m[1] = MASK_NEG;
        let masks: Vec<Option<AttnMask>> = vec![None, Some(Arc::new(m))];
        let lens = vec![3usize, 2];
        gradcheck(
            &mut store,
            move |tape| {
                let xn = tape.param(x);
                let qkv = tape.fused_qkv(xn, wq, bq, wk, bk, wv, bv);
                let att = tape.mha_batch_qkv(qkv, 2, &masks, Some(&lens));
                tape.softmax_ce(att, &[0, 1, 2, 3, 0])
            },
            3e-2,
        );
    }

    #[test]
    #[should_panic(expected = "equal blocks")]
    fn mha_batch_rejects_ragged_blocks() {
        let store = ParamStore::new();
        let mut tape = Tape::inference(&store);
        let x = tape.input(Tensor::zeros(5, 4));
        tape.mha_batch(x, x, x, 2, &[None, None], None);
    }

    #[test]
    fn mha_batch_ragged_blocks_match_per_sequence_mha_bitwise() {
        // Three packed sequences of different lengths (3, 5, 2), the middle
        // one masked: each block must reproduce its standalone mha exactly.
        let mut rng = rng();
        let store = ParamStore::new();
        let (lens, d) = (vec![3usize, 5, 2], 4usize);
        let rows: usize = lens.iter().sum();
        let q = Tensor::randn(rows, d, 0.9, &mut rng);
        let k = Tensor::randn(rows, d, 0.9, &mut rng);
        let v = Tensor::randn(rows, d, 0.9, &mut rng);
        let mut m = vec![0.0f32; 25];
        m[1] = MASK_NEG;
        m[5] = MASK_NEG;
        let masks: Vec<Option<AttnMask>> = vec![None, Some(Arc::new(m)), None];

        let mut bt = Tape::inference(&store);
        let (qn, kn, vn) = (bt.input(q.clone()), bt.input(k.clone()), bt.input(v.clone()));
        let batched = bt.mha_batch(qn, kn, vn, 2, &masks, Some(&lens));
        let bv = bt.value(batched);

        let mut row0 = 0usize;
        for (b, (&len, mask)) in lens.iter().zip(masks.iter()).enumerate() {
            let slice = |t: &Tensor| {
                Tensor::from_vec(len, d, t.data()[row0 * d..(row0 + len) * d].to_vec())
            };
            let mut st = Tape::inference(&store);
            let (qs, ks, vs) = (st.input(slice(&q)), st.input(slice(&k)), st.input(slice(&v)));
            let single = st.mha(qs, ks, vs, 2, mask.as_ref());
            let sv = st.value(single);
            for i in 0..len * d {
                assert_eq!(
                    bv.data()[row0 * d + i].to_bits(),
                    sv.data()[i].to_bits(),
                    "ragged block {b} element {i}"
                );
            }
            row0 += len;
        }
    }

    #[test]
    fn gradcheck_embedding_select_concat_bce() {
        let mut rng = rng();
        let mut store = ParamStore::new();
        let emb = store.add_randn("emb", 5, 4, 0.7, &mut rng);
        let proj = store.add_randn("proj", 8, 2, 0.5, &mut rng);
        let pb = store.add_zeros("pb", 1, 2);
        let targets = Tensor::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        gradcheck(
            &mut store,
            move |tape| {
                let e = tape.embedding(emb, &[0, 3, 2, 4]);
                let a = tape.row_select(e, &[0, 2]);
                let b = tape.row_select(e, &[1, 3]);
                let cat = tape.concat_cols(a, b);
                let h = tape.linear(cat, proj, pb);
                tape.bce_logits(h, &targets)
            },
            2e-2,
        );
    }

    #[test]
    fn gradcheck_softmax_tanh_mul_scale() {
        let mut rng = rng();
        let mut store = ParamStore::new();
        let a = store.add_randn("a", 2, 3, 0.8, &mut rng);
        let b = store.add_randn("b", 2, 3, 0.8, &mut rng);
        gradcheck(
            &mut store,
            move |tape| {
                let an = tape.param(a);
                let bn = tape.param(b);
                let sm = tape.softmax(an);
                let th = tape.tanh(bn);
                let m = tape.mul(sm, th);
                let sc = tape.scale(m, 1.7);
                let r = tape.relu(sc);
                tape.softmax_ce(r, &[2, 0])
            },
            2e-2,
        );
    }

    #[test]
    fn gradcheck_weighted_bce() {
        let mut rng = rng();
        let mut store = ParamStore::new();
        let w = store.add_randn("w", 3, 4, 0.7, &mut rng);
        let targets = Tensor::from_vec(3, 4, vec![1., 0., 0., 0., 0., 1., 0., 1., 0., 0., 0., 0.]);
        gradcheck(
            &mut store,
            move |tape| {
                let z = tape.param(w);
                tape.bce_logits_weighted(z, &targets, 7.5)
            },
            2e-2,
        );
    }

    #[test]
    fn weighted_bce_reduces_to_plain_at_one() {
        let store = ParamStore::new();
        let mut tape = Tape::inference(&store);
        let z1 = tape.input(Tensor::from_vec(1, 3, vec![0.3, -1.2, 2.0]));
        let t = Tensor::from_vec(1, 3, vec![1.0, 0.0, 1.0]);
        let a = tape.bce_logits(z1, &t);
        let b = tape.bce_logits_weighted(z1, &t, 1.0);
        assert!((tape.value(a).scalar_value() - tape.value(b).scalar_value()).abs() < 1e-6);
    }

    #[test]
    fn dropout_inference_is_identity() {
        let store = ParamStore::new();
        let mut tape = Tape::inference(&store);
        let x = tape.input(Tensor::row_vector(vec![1.0, 2.0, 3.0]));
        let mut rng = rng();
        let y = tape.dropout(x, 0.5, &mut rng);
        assert_eq!(x, y, "dropout must be a no-op on inference tapes");
    }

    #[test]
    fn dropout_training_preserves_expectation() {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let n = 20_000;
        let x = tape.input(Tensor::full(1, n, 1.0));
        let mut rng = rng();
        let y = tape.dropout(x, 0.3, &mut rng);
        let mean = tape.value(y).sum() / n as f32;
        assert!((mean - 1.0).abs() < 0.05, "dropout mean {mean}");
    }

    #[test]
    fn masked_attention_blocks_information_flow() {
        let mut rng = rng();
        let store = ParamStore::new();
        let s = 3;
        // Row 0 can only see itself.
        let mut m = vec![0.0f32; s * s];
        m[1] = MASK_NEG;
        m[2] = MASK_NEG;
        let mask: AttnMask = Arc::new(m);
        let q = Tensor::randn(s, 4, 1.0, &mut rng);
        let k = Tensor::randn(s, 4, 1.0, &mut rng);
        let v = Tensor::randn(s, 4, 1.0, &mut rng);
        let mut tape = Tape::inference(&store);
        let (qn, kn, vn) = (tape.input(q), tape.input(k), tape.input(v.clone()));
        let out = tape.mha(qn, kn, vn, 2, Some(&mask));
        // With only itself visible, row 0 output is exactly v[0].
        for c in 0..4 {
            assert!((tape.value(out).get(0, c) - v.get(0, c)).abs() < 1e-5);
        }
        let (probs, heads) = tape.mha_probs(out).unwrap();
        assert_eq!(heads, 2);
        assert!((probs[0] - 1.0).abs() < 1e-5, "masked row must put all mass on itself");
    }

    #[test]
    fn bce_matches_manual_computation() {
        let store = ParamStore::new();
        let mut tape = Tape::inference(&store);
        let z = tape.input(Tensor::from_vec(1, 2, vec![0.0, 2.0]));
        let t = Tensor::from_vec(1, 2, vec![1.0, 0.0]);
        let loss = tape.bce_logits(z, &t);
        // -ln(0.5) and -ln(1 - sigmoid(2)).
        let expect = (0.5f32.ln().abs() + (1.0 - 1.0 / (1.0 + (-2.0f32).exp())).ln().abs()) / 2.0;
        assert!((tape.value(loss).scalar_value() - expect).abs() < 1e-5);
    }

    #[test]
    fn gradient_accumulation_equals_sum_of_backwards() {
        let mut rng = rng();
        let mut store = ParamStore::new();
        let w = store.add_randn("w", 3, 2, 0.5, &mut rng);
        let b = store.add_zeros("b", 1, 2);
        let x1 = Tensor::randn(2, 3, 1.0, &mut rng);
        let x2 = Tensor::randn(2, 3, 1.0, &mut rng);

        let run = |store: &ParamStore, x: &Tensor, grads: &mut Gradients| {
            let mut tape = Tape::inference(store);
            let xn = tape.input(x.clone());
            let h = tape.linear(xn, w, b);
            let l = tape.softmax_ce(h, &[0, 1]);
            tape.backward(l, grads);
        };

        let mut both = Gradients::new(&store);
        run(&store, &x1, &mut both);
        run(&store, &x2, &mut both);

        let mut g1 = Gradients::new(&store);
        run(&store, &x1, &mut g1);
        let mut g2 = Gradients::new(&store);
        run(&store, &x2, &mut g2);
        g1.merge(g2);

        for pid in [w, b] {
            let a = both.get(pid).unwrap();
            let s = g1.get(pid).unwrap();
            for i in 0..a.len() {
                assert!((a.data()[i] - s.data()[i]).abs() < 1e-6);
            }
        }
    }
}
