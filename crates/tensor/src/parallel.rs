//! Data-parallel gradient accumulation.
//!
//! One table = one tape, so a mini-batch is embarrassingly parallel: each
//! worker thread replays its share of the batch against the shared
//! (read-only) [`ParamStore`], accumulates into a private [`Gradients`]
//! buffer, and the buffers are merged before the optimizer step. This is the
//! CPU stand-in for the paper's single-GPU batched training.

use crate::params::{Gradients, ParamStore};
use crate::tape::{NodeId, Tape};

/// Computes summed gradients and total loss for `items`, splitting work
/// across up to `threads` OS threads.
///
/// `f` builds the forward graph for one item on the given tape and returns
/// the scalar loss node; it receives the item's index within `items` so
/// callers can derive deterministic per-item RNG seeds.
///
/// Returns `(gradients, total_loss)`; divide both by `items.len()` for
/// mini-batch means (use [`Gradients::scale`]).
pub fn accumulate_parallel<T, F>(
    store: &ParamStore,
    items: &[T],
    threads: usize,
    f: F,
) -> (Gradients, f32)
where
    T: Sync,
    F: Fn(&mut Tape, &T, usize) -> NodeId + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads <= 1 {
        let mut grads = Gradients::new(store);
        let mut total = 0.0f32;
        for (i, item) in items.iter().enumerate() {
            let mut tape = Tape::new(store);
            let loss = f(&mut tape, item, i);
            total += tape.value(loss).scalar_value();
            tape.backward(loss, &mut grads);
        }
        return (grads, total);
    }

    let chunk = items.len().div_ceil(threads);
    let results: Vec<(Gradients, f32)> = std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(ci, chunk_items)| {
                let f = &f;
                scope.spawn(move || {
                    let mut grads = Gradients::new(store);
                    let mut total = 0.0f32;
                    for (j, item) in chunk_items.iter().enumerate() {
                        let mut tape = Tape::new(store);
                        let loss = f(&mut tape, item, ci * chunk + j);
                        total += tape.value(loss).scalar_value();
                        tape.backward(loss, &mut grads);
                    }
                    (grads, total)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });

    let mut iter = results.into_iter();
    let (mut grads, mut total) = iter.next().expect("at least one worker");
    for (g, l) in iter {
        grads.merge(g);
        total += l;
    }
    (grads, total)
}

/// Number of worker threads to use by default: the available parallelism
/// minus one (leave a core for the coordinator), at least one.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get().saturating_sub(1).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn parallel_matches_serial() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let w = store.add_randn("w", 4, 3, 0.5, &mut rng);
        let b = store.add_zeros("b", 1, 3);
        let items: Vec<(Tensor, u32)> =
            (0..17).map(|i| (Tensor::randn(2, 4, 1.0, &mut rng), i % 3)).collect();

        let run = |threads: usize| {
            accumulate_parallel(&store, &items, threads, |tape, (x, y), _| {
                let xn = tape.input(x.clone());
                let h = tape.linear(xn, w, b);
                tape.softmax_ce(h, &[*y, *y])
            })
        };

        let (g1, l1) = run(1);
        let (g4, l4) = run(4);
        assert!((l1 - l4).abs() < 1e-4);
        for pid in [w, b] {
            let a = g1.get(pid).unwrap();
            let c = g4.get(pid).unwrap();
            for i in 0..a.len() {
                assert!((a.data()[i] - c.data()[i]).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn empty_items_yield_empty_grads() {
        let store = {
            let mut s = ParamStore::new();
            s.add_zeros("w", 1, 1);
            s
        };
        let items: Vec<u32> = vec![];
        let (g, l) =
            accumulate_parallel(&store, &items, 8, |tape, _, _| tape.input(Tensor::scalar(0.0)));
        assert_eq!(l, 0.0);
        assert!(g.get(0).is_none());
    }
}
