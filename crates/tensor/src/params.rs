//! Named parameter storage shared by all models.
//!
//! A [`ParamStore`] owns the learnable weights. Forward/backward passes run
//! on per-sequence [`crate::Tape`]s that borrow the store immutably, so
//! mini-batch items can be processed on worker threads; each worker collects
//! its own [`Gradients`], which are merged and applied by the optimizer.

use crate::Tensor;
use rand::Rng;

/// Index of a parameter inside a [`ParamStore`].
pub type ParamId = usize;

/// A single named, learnable tensor.
#[derive(Clone, Debug)]
pub struct Param {
    /// Dotted path identifying the parameter (e.g. `"enc.l0.wq"`).
    pub name: String,
    /// The current weights.
    pub value: Tensor,
}

/// An append-only collection of named parameters.
#[derive(Clone, Debug, Default)]
pub struct ParamStore {
    params: Vec<Param>,
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter and returns its id. Names must be unique; this
    /// is enforced so that save/load round-trips are unambiguous.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let name = name.into();
        assert!(self.params.iter().all(|p| p.name != name), "duplicate parameter name: {name}");
        self.params.push(Param { name, value });
        self.params.len() - 1
    }

    /// Registers a `N(0, std^2)`-initialized matrix.
    pub fn add_randn<R: Rng + ?Sized>(
        &mut self,
        name: impl Into<String>,
        rows: usize,
        cols: usize,
        std: f32,
        rng: &mut R,
    ) -> ParamId {
        self.add(name, Tensor::randn(rows, cols, std, rng))
    }

    /// Registers a zero-initialized matrix (biases).
    pub fn add_zeros(&mut self, name: impl Into<String>, rows: usize, cols: usize) -> ParamId {
        self.add(name, Tensor::zeros(rows, cols))
    }

    /// Registers a one-initialized matrix (LayerNorm gains).
    pub fn add_ones(&mut self, name: impl Into<String>, rows: usize, cols: usize) -> ParamId {
        self.add(name, Tensor::full(rows, cols, 1.0))
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// The weights of parameter `id`.
    pub fn get(&self, id: ParamId) -> &Tensor {
        &self.params[id].value
    }

    /// Mutable weights of parameter `id` (the optimizer's entry point).
    pub fn get_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.params[id].value
    }

    /// The name parameter `id` was registered under.
    pub fn name(&self, id: ParamId) -> &str {
        &self.params[id].name
    }

    /// Looks a parameter up by name (used by the weight loader).
    pub fn find(&self, name: &str) -> Option<ParamId> {
        self.params.iter().position(|p| p.name == name)
    }

    /// Iterates over `(id, parameter)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Param)> {
        self.params.iter().enumerate()
    }

    /// Total number of scalar weights (for reporting model size).
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|p| p.value.len()).sum()
    }

    /// Overwrites the value of `id`. Shape must match (protects optimizer
    /// state alignment).
    pub fn set_value(&mut self, id: ParamId, value: Tensor) {
        assert_eq!(
            self.params[id].value.shape(),
            value.shape(),
            "set_value shape mismatch for {}",
            self.params[id].name
        );
        self.params[id].value = value;
    }
}

/// Per-parameter gradient accumulator, aligned with a [`ParamStore`].
///
/// Entries stay `None` until the parameter receives its first contribution,
/// so sparse updates (e.g. embedding rows) do not pay for dense zero-init of
/// untouched parameters.
#[derive(Clone, Debug)]
pub struct Gradients {
    slots: Vec<Option<Tensor>>,
}

impl Gradients {
    /// Creates an empty accumulator sized for `store`.
    pub fn new(store: &ParamStore) -> Self {
        Gradients { slots: vec![None; store.len()] }
    }

    /// Number of gradient slots (one per store parameter).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the buffer tracks no parameters.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The accumulated gradient of parameter `id`, if any flowed into it.
    pub fn get(&self, id: ParamId) -> Option<&Tensor> {
        self.slots[id].as_ref()
    }

    /// Adds `g` into the slot for `id`.
    pub fn accumulate(&mut self, id: ParamId, g: &Tensor, store: &ParamStore) {
        match &mut self.slots[id] {
            Some(t) => t.add_assign(g),
            slot => {
                let shape = store.get(id).shape();
                assert_eq!(g.shape(), shape, "gradient shape mismatch for {}", store.name(id));
                *slot = Some(g.clone());
            }
        }
    }

    /// Merges another accumulator (e.g. from a worker thread) into this one.
    pub fn merge(&mut self, other: Gradients) {
        assert_eq!(self.slots.len(), other.slots.len(), "merging misaligned gradients");
        for (mine, theirs) in self.slots.iter_mut().zip(other.slots) {
            match (mine.as_mut(), theirs) {
                (Some(a), Some(b)) => a.add_assign(&b),
                (None, Some(b)) => *mine = Some(b),
                _ => {}
            }
        }
    }

    /// Scales every accumulated gradient (mini-batch averaging).
    pub fn scale(&mut self, c: f32) {
        for slot in self.slots.iter_mut().flatten() {
            slot.scale_assign(c);
        }
    }

    /// Global L2 norm across all accumulated gradients.
    pub fn global_norm(&self) -> f32 {
        self.slots.iter().flatten().map(Tensor::sq_norm).sum::<f32>().sqrt()
    }

    /// Clips gradients so the global norm does not exceed `max_norm`.
    /// Returns the pre-clip norm.
    pub fn clip_global_norm(&mut self, max_norm: f32) -> f32 {
        let norm = self.global_norm();
        if norm > max_norm && norm > 0.0 {
            self.scale(max_norm / norm);
        }
        norm
    }

    /// Clears all accumulated gradients, keeping allocations.
    pub fn zero(&mut self) {
        for slot in self.slots.iter_mut() {
            *slot = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn add_and_lookup() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let w = store.add_randn("enc.w", 3, 4, 0.02, &mut rng);
        let b = store.add_zeros("enc.b", 1, 4);
        assert_eq!(store.len(), 2);
        assert_eq!(store.name(w), "enc.w");
        assert_eq!(store.find("enc.b"), Some(b));
        assert_eq!(store.find("missing"), None);
        assert_eq!(store.num_scalars(), 16);
    }

    #[test]
    #[should_panic(expected = "duplicate parameter name")]
    fn duplicate_name_panics() {
        let mut store = ParamStore::new();
        store.add_zeros("w", 1, 1);
        store.add_zeros("w", 1, 1);
    }

    #[test]
    fn gradient_accumulate_merge_scale() {
        let mut store = ParamStore::new();
        let a = store.add_zeros("a", 1, 2);
        let b = store.add_zeros("b", 1, 2);

        let mut g1 = Gradients::new(&store);
        g1.accumulate(a, &Tensor::row_vector(vec![1.0, 2.0]), &store);

        let mut g2 = Gradients::new(&store);
        g2.accumulate(a, &Tensor::row_vector(vec![3.0, 4.0]), &store);
        g2.accumulate(b, &Tensor::row_vector(vec![5.0, 6.0]), &store);

        g1.merge(g2);
        assert_eq!(g1.get(a).unwrap().data(), &[4.0, 6.0]);
        assert_eq!(g1.get(b).unwrap().data(), &[5.0, 6.0]);

        g1.scale(0.5);
        assert_eq!(g1.get(a).unwrap().data(), &[2.0, 3.0]);

        g1.zero();
        assert!(g1.get(a).is_none());
    }

    #[test]
    fn clip_global_norm_caps_at_max() {
        let mut store = ParamStore::new();
        let a = store.add_zeros("a", 1, 2);
        let mut g = Gradients::new(&store);
        g.accumulate(a, &Tensor::row_vector(vec![3.0, 4.0]), &store);
        let pre = g.clip_global_norm(1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        assert!((g.global_norm() - 1.0).abs() < 1e-5);
        // Clipping below the max leaves gradients untouched.
        let pre2 = g.clip_global_norm(10.0);
        assert!((pre2 - 1.0).abs() < 1e-5);
    }
}
