//! # doduo-tensor
//!
//! Minimal dense-tensor + reverse-mode autograd substrate for the DODUO
//! (SIGMOD 2022) reproduction. The paper's models were implemented on
//! PyTorch; this crate stands in for the slice of PyTorch they actually use:
//!
//! * [`Tensor`] — row-major 2-D `f32` matrices with the handful of BLAS-like
//!   kernels a Transformer needs ([`matmul`], [`matmul_nt`], [`matmul_tn`]).
//! * [`kernels`] — the cache-blocked, register-tiled GEMM layer those entry
//!   points dispatch to (packed panels, row-stripe threading, bit-identical
//!   to the naive loops by construction).
//! * [`quant`] — the opt-in int8 serving path ([`QuantizedLinear`]):
//!   per-output-channel symmetric weight quantization with dynamic per-row
//!   activation scales, accuracy-gated rather than bit-identical (see the
//!   two-tier numerics policy in that module).
//! * [`Tape`] — an eager autograd tape recording one forward pass; ops cover
//!   dense layers, LayerNorm, GELU, embedding gather, fused multi-head
//!   attention with optional visibility masks (for the TURL baseline),
//!   dropout, and the two losses the paper uses (softmax cross-entropy for
//!   VizNet, BCE-with-logits for the multi-label WikiTable tasks).
//! * [`ParamStore`] / [`Gradients`] — named shared weights and mergeable
//!   gradient buffers, so mini-batch items can run on worker threads.
//! * [`Adam`] / [`LrSchedule`] — the paper's optimizer (ε = 1e-8, linear
//!   decay, one optimizer per task as in Algorithm 1).
//! * [`serialize`] — binary checkpoints for the pretrain → fine-tune flow.
//!
//! Design: one table = one sequence = one tape. There is no batching inside
//! a tape, so shapes stay 2-D and no padding or masking machinery is needed
//! beyond the attention visibility mask.
#![warn(missing_docs)]

pub mod kernels;
pub mod optim;
pub mod parallel;
pub mod params;
pub mod quant;
pub mod serialize;
pub mod tape;
pub mod tensor;

pub use kernels::{gemm_threads, set_gemm_threads};
pub use optim::{Adam, LrSchedule};
pub use parallel::{accumulate_parallel, default_threads};
pub use params::{Gradients, Param, ParamId, ParamStore};
pub use quant::{quantize_row_i8, QuantizedLinear};
pub use tape::{softmax_row, AttnMask, NodeId, Tape, MASK_NEG};
pub use tensor::{matmul, matmul_nt, matmul_tn, Tensor};
