//! Dense, row-major, 2-D `f32` tensor.
//!
//! Everything in this reproduction is expressed over 2-D matrices: a token
//! sequence of length `S` embedded in `d` dimensions is `[S, d]`, a weight
//! matrix is `[in, out]`, a scalar loss is `[1, 1]`. Avoiding general N-d
//! shapes keeps the autograd kernels simple and fast.

use rand::Rng;

/// A dense row-major matrix of `f32` values.
#[derive(Clone, Debug, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of the given shape filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a tensor of the given shape filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Tensor { rows, cols, data: vec![value; rows * cols] }
    }

    /// Wraps an existing buffer. Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "tensor buffer does not match shape {rows}x{cols}");
        Tensor { rows, cols, data }
    }

    /// A `[1, n]` row vector.
    pub fn row_vector(data: Vec<f32>) -> Self {
        let n = data.len();
        Tensor::from_vec(1, n, data)
    }

    /// A `[1, 1]` scalar tensor.
    pub fn scalar(v: f32) -> Self {
        Tensor::from_vec(1, 1, vec![v])
    }

    /// Fills with samples from `N(0, std^2)` (Box-Muller over the given RNG).
    pub fn randn<R: Rng + ?Sized>(rows: usize, cols: usize, std: f32, rng: &mut R) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            // Box-Muller transform; avoids a dependency on rand_distr.
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
            data.push(z * std);
        }
        Tensor { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow of the whole row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable borrow of the whole row-major buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element accessor (row-major). Panics on out-of-range in debug builds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter (row-major). Panics on out-of-range in debug builds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of row `r` as a slice of length `cols`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r` as a slice of length `cols`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The single value of a `[1, 1]` tensor.
    pub fn scalar_value(&self) -> f32 {
        assert_eq!(self.data.len(), 1, "scalar_value on non-scalar tensor");
        self.data[0]
    }

    /// `self += other` (shapes must match).
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// `self += c * other` (shapes must match).
    pub fn axpy(&mut self, c: f32, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += c * b;
        }
    }

    /// In-place multiply by a constant.
    pub fn scale_assign(&mut self, c: f32) {
        for a in self.data.iter_mut() {
            *a *= c;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Sum of squared elements (used for gradient-norm clipping).
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum()
    }

    /// Frobenius/L2 norm.
    pub fn norm(&self) -> f32 {
        self.sq_norm().sqrt()
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Returns `true` if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }
}

/// `C = A * B` where `A` is `[m, k]` and `B` is `[k, n]`.
///
/// Dispatches by size: matrices big enough to amortize panel packing go to
/// the cache-blocked, register-tiled kernel in [`crate::kernels`] (with up
/// to [`crate::kernels::gemm_threads`] row-stripe threads); small ones use
/// the plain ikj loop. Both paths produce bit-identical results — see the
/// numerics policy in [`crate::kernels`].
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    if crate::kernels::blocked_worthwhile(a.rows, b.cols, a.cols) {
        crate::kernels::matmul_blocked(a, b, crate::kernels::gemm_threads())
    } else {
        crate::kernels::matmul_naive(a, b)
    }
}

/// `C = A * B^T` where `A` is `[m, k]` and `B` is `[n, k]`.
///
/// Same size dispatch as [`matmul`]; the blocked path packs `B` transposed
/// so the inner kernel is identical across all three variants.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    if crate::kernels::blocked_worthwhile(a.rows, b.rows, a.cols) {
        crate::kernels::matmul_nt_blocked(a, b, crate::kernels::gemm_threads())
    } else {
        crate::kernels::matmul_nt_naive(a, b)
    }
}

/// `C = A^T * B` where `A` is `[k, m]` and `B` is `[k, n]`.
///
/// Same size dispatch as [`matmul`]; the blocked path packs `A` transposed
/// so the inner kernel is identical across all three variants.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    if crate::kernels::blocked_worthwhile(a.cols, b.cols, a.rows) {
        crate::kernels::matmul_tn_blocked(a, b, crate::kernels::gemm_threads())
    } else {
        crate::kernels::matmul_tn_naive(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn t(rows: usize, cols: usize, v: &[f32]) -> Tensor {
        Tensor::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matmul_small() {
        let a = t(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = t(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let eye = t(2, 2, &[1.0, 0.0, 0.0, 1.0]);
        assert_eq!(matmul(&a, &eye).data(), a.data());
        assert_eq!(matmul(&eye, &a).data(), a.data());
    }

    #[test]
    fn matmul_transposed_variants_agree() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Tensor::randn(4, 5, 1.0, &mut rng);
        let b = Tensor::randn(5, 3, 1.0, &mut rng);
        let c = matmul(&a, &b);
        // A * B == A * (B^T)^T via matmul_nt.
        let c_nt = matmul_nt(&a, &b.transpose());
        // A * B == (A^T)^T * B via matmul_tn.
        let c_tn = matmul_tn(&a.transpose(), &b);
        for i in 0..c.len() {
            assert!((c.data()[i] - c_nt.data()[i]).abs() < 1e-4);
            assert!((c.data()[i] - c_tn.data()[i]).abs() < 1e-4);
        }
    }

    #[test]
    fn transpose_involution() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Tensor::randn(3, 7, 1.0, &mut rng);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn axpy_and_norms() {
        let mut a = t(1, 3, &[1.0, 2.0, 2.0]);
        let b = t(1, 3, &[1.0, 1.0, 1.0]);
        a.axpy(2.0, &b);
        assert_eq!(a.data(), &[3.0, 4.0, 4.0]);
        assert!((t(1, 2, &[3.0, 4.0]).norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn randn_is_roughly_centered() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = Tensor::randn(100, 100, 0.5, &mut rng);
        let mean = x.sum() / x.len() as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
        let var = x.data().iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / x.len() as f32;
        assert!((var.sqrt() - 0.5).abs() < 0.02, "std {}", var.sqrt());
    }

    #[test]
    #[should_panic(expected = "matmul inner dims")]
    fn matmul_shape_mismatch_panics() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        matmul(&a, &b);
    }
}
