//! Opt-in int8 quantized linear kernels — the serving fast path.
//!
//! ## Scheme
//!
//! Weights are quantized **per output channel** (one symmetric scale per
//! output column: `scale_j = max_i |w[i][j]| / 127`, `q =
//! round_ties_even(w / scale_j)` clamped to `[-127, 127]`); activations
//! are quantized **per row** with a dynamic scale computed at forward time
//! (`scale_r = max_c |x[r][c]| / 127`). The inner product runs entirely in
//! integers — packed `i8 × i8` products accumulated into `i32` — and is
//! dequantized in one f32 multiply-add per output element:
//!
//! ```text
//! y[r][j] = (acc as f32) * (a_scale_r * w_scale_j) + bias[j]
//! ```
//!
//! ## Two-tier numerics policy
//!
//! The f32 GEMMs in [`crate::kernels`] are the **bit-identical reference**:
//! every f32 execution strategy (naive, blocked, threaded) produces the
//! same bits. The quantized path is *not* bit-equal to f32 — it is
//! **accuracy-gated** instead (the repro harness re-runs the paper's
//! qualitative checks and pins micro-F1 drift under quantization). What
//! *is* exact here: integer accumulation is associative, so every SIMD
//! kernel, the scalar fallback, and every thread count produce
//! **bit-identical quantized outputs** — the same invariance contract the
//! f32 layer has, one tier down. (Inputs are assumed finite; rows
//! containing NaN are a degenerate case with unspecified codes, exactly as
//! they are garbage under the f32 path.)
//!
//! ## Kernels
//!
//! Three tiers behind runtime feature detection, fastest available wins:
//!
//! * **AVX-512 VNNI** — quantized columns packed into panels of 16 with
//!   `k`-quads interleaved across lanes, the operand order `vpdpbusd`
//!   consumes: one instruction multiplies four `u8 × i8` lanes per output
//!   column and accumulates straight into that column's i32 lane.
//!   `vpdpbusd` wants unsigned activations, so activation codes are biased
//!   by +128 into `u8` and each accumulator starts at `-128 · Σ_i w[i][j]`
//!   (precomputed at pack time) — an exact integer identity, so the result
//!   equals the signed dot product bit for bit.
//! * **AVX2** — panels of [`NR`] columns with `k`-pairs interleaved, the
//!   layout `vpmaddwd` consumes directly: sign-extend a 16-byte half-panel
//!   from i8 (`vpmovsxbw` — the exact-arithmetic variant of the classic
//!   saturating `maddubs` idiom), multiply-add against a broadcast
//!   activation pair, accumulate per-lane. No horizontal reductions.
//! * **Scalar** — a portable loop over the packed layout; both the
//!   fallback and the reference oracle for the property tests.

use crate::kernels::{self, MIN_FLOPS_PER_THREAD};
use crate::tensor::Tensor;

/// Packed columns per AVX2 weight panel — one i32 accumulator lane per
/// column.
pub const NR: usize = 8;

/// Packed columns per AVX-512 VNNI weight panel (16 i32 lanes per zmm).
const NV: usize = 16;

/// `k`-padding quantum: packed weight columns and quantized activation
/// rows are zero-padded to a multiple of this many lanes so the SIMD inner
/// loops have no remainder pass. Zero lanes contribute exactly 0 to the
/// integer accumulator, so padding never changes the output.
pub const QK: usize = 32;

/// Quantizes one f32 row symmetrically to i8 into `out` (which may be
/// longer than `row`; the tail is zero-filled) and returns the scale such
/// that `row[i] ≈ out[i] as f32 * scale`. Rounding is to nearest, ties to
/// even — the same rule the vectorized activation quantizer uses, so codes
/// are identical across implementations. An all-zero (or empty) row gets
/// scale `0.0` and all-zero codes, so dequantization reproduces exact
/// zeros.
pub fn quantize_row_i8(row: &[f32], out: &mut [i8]) -> f32 {
    assert!(out.len() >= row.len(), "quantize output buffer too small");
    let mut amax = 0f32;
    for &v in row {
        amax = amax.max(v.abs());
    }
    if amax == 0.0 || !amax.is_finite() {
        for o in out.iter_mut() {
            *o = 0;
        }
        return 0.0;
    }
    let inv = 127.0 / amax;
    for (o, &v) in out.iter_mut().zip(row.iter()) {
        *o = (v * inv).round_ties_even().clamp(-127.0, 127.0) as i8;
    }
    for o in out[row.len()..].iter_mut() {
        *o = 0;
    }
    amax / 127.0
}

/// Same quantization as [`quantize_row_i8`] but written into an i16 buffer
/// (the codes still lie in `[-127, 127]`) — the layout the AVX2 kernel's
/// pair broadcasts consume without widening activations in the inner loop.
/// Dispatches to a vectorized implementation when the host has AVX2; both
/// implementations produce identical codes for finite inputs.
fn quantize_row_i16(row: &[f32], out: &mut [i16]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if kernels::has_avx2() {
        // SAFETY: AVX2 presence was just checked at runtime.
        return unsafe { quantize_row_i16_avx2(row, out) };
    }
    quantize_row_i16_scalar(row, out)
}

fn quantize_row_i16_scalar(row: &[f32], out: &mut [i16]) -> f32 {
    let mut amax = 0f32;
    for &v in row {
        amax = amax.max(v.abs());
    }
    if amax == 0.0 || !amax.is_finite() {
        for o in out.iter_mut() {
            *o = 0;
        }
        return 0.0;
    }
    let inv = 127.0 / amax;
    for (o, &v) in out.iter_mut().zip(row.iter()) {
        *o = (v * inv).round_ties_even().clamp(-127.0, 127.0) as i16;
    }
    for o in out[row.len()..].iter_mut() {
        *o = 0;
    }
    amax / 127.0
}

/// Vectorized [`quantize_row_i16_scalar`]: 8-wide abs-max scan, then a
/// 16-wide multiply / round-to-nearest-even / clamp / pack pass. Every
/// lane performs exactly the scalar op sequence (`mul`, `roundps` nearest
/// ties-even, min/max selection, exact int conversion), so codes match
/// the scalar implementation bit for bit on finite inputs.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn quantize_row_i16_avx2(row: &[f32], out: &mut [i16]) -> f32 {
    use std::arch::x86_64::*;
    let k = row.len();
    let rp = row.as_ptr();
    let absmask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fff_ffff));
    let mut vmax = _mm256_setzero_ps();
    let mut i = 0usize;
    while i + 8 <= k {
        vmax = _mm256_max_ps(vmax, _mm256_and_ps(absmask, _mm256_loadu_ps(rp.add(i))));
        i += 8;
    }
    let mut lanes = [0f32; 8];
    _mm256_storeu_ps(lanes.as_mut_ptr(), vmax);
    let mut amax = 0f32;
    for &l in &lanes {
        amax = amax.max(l);
    }
    while i < k {
        amax = amax.max((*rp.add(i)).abs());
        i += 1;
    }
    if amax == 0.0 || !amax.is_finite() {
        for o in out.iter_mut() {
            *o = 0;
        }
        return 0.0;
    }
    let inv = 127.0 / amax;
    let vinv = _mm256_set1_ps(inv);
    let lo = _mm256_set1_ps(-127.0);
    let hi = _mm256_set1_ps(127.0);
    let op = out.as_mut_ptr();
    const ROUND: i32 = _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC;
    let mut i = 0usize;
    while i + 16 <= k {
        let t0 = _mm256_mul_ps(_mm256_loadu_ps(rp.add(i)), vinv);
        let t1 = _mm256_mul_ps(_mm256_loadu_ps(rp.add(i + 8)), vinv);
        let c0 = _mm256_max_ps(lo, _mm256_min_ps(hi, _mm256_round_ps::<ROUND>(t0)));
        let c1 = _mm256_max_ps(lo, _mm256_min_ps(hi, _mm256_round_ps::<ROUND>(t1)));
        let packed = _mm256_packs_epi32(_mm256_cvtps_epi32(c0), _mm256_cvtps_epi32(c1));
        // packs interleaves 128-bit lanes; restore ascending order.
        let fixed = _mm256_permute4x64_epi64::<0b11_01_10_00>(packed);
        _mm256_storeu_si256(op.add(i) as *mut __m256i, fixed);
        i += 16;
    }
    while i < k {
        let v = *rp.add(i);
        *op.add(i) = (v * inv).round_ties_even().clamp(-127.0, 127.0) as i16;
        i += 1;
    }
    for o in out[k..].iter_mut() {
        *o = 0;
    }
    amax / 127.0
}

/// Which inner kernel a forward pass runs with. Selected once per call;
/// all variants produce bit-identical outputs.
#[derive(Clone, Copy, PartialEq, Eq)]
#[cfg_attr(not(target_arch = "x86_64"), allow(dead_code))]
enum Kern {
    Scalar,
    Avx2,
    Vnni,
}

/// Runtime check for the AVX-512 VNNI tier (`vpdpbusd` on zmm).
fn has_vnni() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx512vnni")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Fastest kernel the host supports.
fn best_kern() -> Kern {
    if has_vnni() {
        Kern::Vnni
    } else if kernels::has_avx2() {
        Kern::Avx2
    } else {
        Kern::Scalar
    }
}

/// A dense layer (`y = x·W + b`) with per-output-channel symmetric int8
/// weights, built once from f32 weights and reused for every forward pass.
///
/// Weights are packed twice (they are tiny next to activations): panels of
/// [`NR`] columns with `k`-pairs interleaved for the AVX2/scalar kernels,
/// and panels of 16 columns with `k`-quads interleaved for the VNNI
/// kernel, each the exact operand order its multiply-add consumes.
pub struct QuantizedLinear {
    /// Input width (f32 columns of `x`, rows of `W`).
    k: usize,
    /// Output width.
    n: usize,
    /// `k` rounded up to a multiple of [`QK`] (the packed column length).
    kp: usize,
    /// `n` rounded up to a multiple of the VNNI panel width (which is also
    /// a multiple of [`NR`], so both layouts share it). Padded columns are
    /// all-zero with zero scale and bias.
    np: usize,
    /// Pair-interleaved packed weights: panel `g` at `[g*kp*NR, (g+1)*kp*NR)`.
    w: Vec<i8>,
    /// Quad-interleaved packed weights for `vpdpbusd`: panel `g` at
    /// `[g*kp*NV, (g+1)*kp*NV)`.
    w4: Vec<i8>,
    /// Per-column `-128 · Σ_i w[i][j]` — the exact correction that cancels
    /// the +128 activation bias of the VNNI kernel; accumulators start
    /// here instead of zero.
    corr: Vec<i32>,
    /// Per-output-channel weight scales, padded to `np` with zeros.
    w_scales: Vec<f32>,
    /// f32 bias applied after dequantization, padded to `np` with zeros.
    bias: Vec<f32>,
}

impl QuantizedLinear {
    /// Quantizes an `[k, n]` f32 weight matrix and `[1, n]` bias.
    pub fn from_f32(w: &Tensor, bias: &Tensor) -> QuantizedLinear {
        QuantizedLinear::from_concat(&[(w, bias)])
    }

    /// Quantizes several `[k, n_i]` weight/bias pairs into one fused
    /// `[k, Σn_i]` layer (columns concatenated in order). Because scales
    /// are per output channel, the fused layer is numerically identical to
    /// quantizing each part separately — this is how the encoder fuses its
    /// Q/K/V projections into one kernel call.
    pub fn from_concat(parts: &[(&Tensor, &Tensor)]) -> QuantizedLinear {
        assert!(!parts.is_empty(), "cannot build a quantized layer from no parts");
        let k = parts[0].0.rows();
        // i32 accumulator headroom. The VNNI kernel's running value is
        // bounded by |−128·Σw| + Σ(a+128)·|w| ≤ k·127·128 + k·255·127
        // = k·127·383, the loosest of the three kernels.
        assert!(
            k <= i32::MAX as usize / (127 * 383),
            "input width {k} too large for i32 accumulation"
        );
        let n: usize = parts.iter().map(|(w, _)| w.cols()).sum();
        for (w, b) in parts {
            assert_eq!(w.rows(), k, "fused parts must share the input width");
            assert_eq!(b.shape(), (1, w.cols()), "bias must be [1, n] matching its weight");
        }
        let kp = k.div_ceil(QK) * QK;
        let np = n.div_ceil(NV) * NV;
        let mut wq = vec![0i8; np * kp];
        let mut w4 = vec![0i8; np * kp];
        let mut corr = vec![0i32; np];
        let mut w_scales = vec![0f32; np];
        let mut bias_all = vec![0f32; np];
        let mut colbuf = vec![0f32; k];
        let mut qcol = vec![0i8; kp];
        let mut col = 0usize;
        for (w, b) in parts {
            for j in 0..w.cols() {
                for (i, c) in colbuf.iter_mut().enumerate() {
                    *c = w.get(i, j);
                }
                w_scales[col] = quantize_row_i8(&colbuf, &mut qcol);
                bias_all[col] = b.get(0, j);
                corr[col] = -128 * qcol.iter().map(|&c| i32::from(c)).sum::<i32>();
                // Scatter the column into its AVX2 panel, pair-interleaved.
                let base = (col / NR) * kp * NR + (col % NR) * 2;
                for p in 0..kp / 2 {
                    wq[base + p * NR * 2] = qcol[2 * p];
                    wq[base + p * NR * 2 + 1] = qcol[2 * p + 1];
                }
                // And into its VNNI panel, quad-interleaved.
                let base4 = (col / NV) * kp * NV + (col % NV) * 4;
                for q in 0..kp / 4 {
                    for t in 0..4 {
                        w4[base4 + q * NV * 4 + t] = qcol[4 * q + t];
                    }
                }
                col += 1;
            }
        }
        QuantizedLinear { k, n, kp, np, w: wq, w4, corr, w_scales, bias: bias_all }
    }

    /// Input width the layer consumes.
    pub fn in_dim(&self) -> usize {
        self.k
    }

    /// Output width the layer produces.
    pub fn out_dim(&self) -> usize {
        self.n
    }

    /// The per-output-channel weight scales (the property tests derive the
    /// analytic error bound from these). Only the first
    /// [`QuantizedLinear::out_dim`] entries are real columns.
    pub fn weight_scales(&self) -> &[f32] {
        &self.w_scales[..self.n]
    }

    /// `y = x·W + b` for `x: [m, k]`, under the process-global
    /// [`crate::kernels::gemm_threads`] budget, with the fastest available
    /// kernel (AVX-512 VNNI, then AVX2, then scalar). Bit-identical to
    /// [`QuantizedLinear::forward_scalar`] for any thread count.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        self.forward_with_threads(x, kernels::gemm_threads())
    }

    /// [`QuantizedLinear::forward`] with an explicit thread budget (each
    /// output row is computed independently, so the result is bitwise
    /// invariant to the split).
    pub fn forward_with_threads(&self, x: &Tensor, threads: usize) -> Tensor {
        self.run(x, threads, best_kern())
    }

    /// The portable scalar kernel, single-threaded — the reference oracle
    /// the SIMD paths must match bit for bit.
    pub fn forward_scalar(&self, x: &Tensor) -> Tensor {
        self.run(x, 1, Kern::Scalar)
    }

    /// The AVX2 kernel, single-threaded; `None` when the host lacks AVX2.
    /// Exists so tests can force-compare kernels on one machine.
    pub fn forward_simd(&self, x: &Tensor) -> Option<Tensor> {
        kernels::has_avx2().then(|| self.run(x, 1, Kern::Avx2))
    }

    /// The AVX-512 VNNI kernel, single-threaded; `None` when the host
    /// lacks it. Exists so tests can force-compare kernels on one machine.
    pub fn forward_vnni(&self, x: &Tensor) -> Option<Tensor> {
        has_vnni().then(|| self.run(x, 1, Kern::Vnni))
    }

    fn run(&self, x: &Tensor, threads: usize, kern: Kern) -> Tensor {
        let (m, xk) = x.shape();
        assert_eq!(xk, self.k, "quantized linear expects [m, {}] input", self.k);
        let mut out = Tensor::zeros(m, self.n);
        if m == 0 || self.n == 0 {
            return out;
        }
        // Dynamic per-row activation quantization (row-independent, so it
        // cannot break thread invariance), shared by every kernel.
        let mut qa = vec![0i16; m * self.kp];
        let mut a_scales = vec![0f32; m];
        for r in 0..m {
            a_scales[r] = quantize_row_i16(x.row(r), &mut qa[r * self.kp..(r + 1) * self.kp]);
        }
        // The VNNI kernel consumes the same codes biased into u8.
        let mut qa8 = Vec::new();
        if kern == Kern::Vnni {
            qa8 = qa.iter().map(|&c| (i32::from(c) + 128) as u8).collect();
        }
        let t = effective_threads(m, self.n, self.k, threads);
        if t <= 1 {
            self.stripe(&qa, &qa8, &a_scales, 0, out.data_mut(), kern);
            return out;
        }
        let rows_per = m.div_ceil(t);
        let (qa, qa8, a_scales) = (&qa, &qa8, &a_scales);
        let n = self.n;
        std::thread::scope(|scope| {
            for (i, chunk) in out.data_mut().chunks_mut(rows_per * n).enumerate() {
                scope.spawn(move || self.stripe(qa, qa8, a_scales, i * rows_per, chunk, kern));
            }
        });
        out
    }

    /// Computes output rows `[row0, row0 + chunk_rows)` into `out`.
    fn stripe(
        &self,
        qa: &[i16],
        qa8: &[u8],
        a_scales: &[f32],
        row0: usize,
        out: &mut [f32],
        kern: Kern,
    ) {
        #[cfg(not(target_arch = "x86_64"))]
        let _ = (qa8, kern);
        let rows = out.len() / self.n;
        for r in 0..rows {
            let row = row0 + r;
            let orow = &mut out[r * self.n..(r + 1) * self.n];
            // SAFETY: each SIMD variant is only ever selected when its
            // feature set was detected at runtime (see `best_kern`,
            // `forward_simd`, `forward_vnni`).
            #[cfg(target_arch = "x86_64")]
            match kern {
                Kern::Vnni => {
                    let a8 = &qa8[row * self.kp..(row + 1) * self.kp];
                    unsafe { self.row_forward_vnni(a8, a_scales[row], orow) };
                    continue;
                }
                Kern::Avx2 => {
                    let a = &qa[row * self.kp..(row + 1) * self.kp];
                    unsafe { self.row_forward_avx2(a, a_scales[row], orow) };
                    continue;
                }
                Kern::Scalar => {}
            }
            let a = &qa[row * self.kp..(row + 1) * self.kp];
            self.row_forward_scalar(a, a_scales[row], orow);
        }
    }

    /// Portable reference kernel: walks the pair-interleaved panel layout
    /// with plain i32 accumulation, in ascending-`k` order.
    fn row_forward_scalar(&self, a: &[i16], a_scale: f32, out: &mut [f32]) {
        let kp = self.kp;
        for (j, o) in out.iter_mut().enumerate() {
            let base = (j / NR) * kp * NR + (j % NR) * 2;
            let mut acc = 0i32;
            for p in 0..kp / 2 {
                let idx = base + p * NR * 2;
                acc += i32::from(a[2 * p]) * i32::from(self.w[idx]);
                acc += i32::from(a[2 * p + 1]) * i32::from(self.w[idx + 1]);
            }
            *o = dequant(acc, a_scale, self.w_scales[j], self.bias[j]);
        }
    }

    /// AVX2 kernel: one activation row against two weight panels at a
    /// time. Each 32-byte panel load carries two `k`-pairs of all [`NR`]
    /// columns; sign-extend to i16, `vpmaddwd` against the broadcast
    /// activation pair, accumulate per-lane. Integer adds are associative,
    /// so the result is bit-identical to the scalar kernel.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn row_forward_avx2(&self, a: &[i16], a_scale: f32, out: &mut [f32]) {
        use std::arch::x86_64::*;
        let kp = self.kp;
        debug_assert_eq!(kp % 4, 0);
        debug_assert_eq!(a.len(), kp);
        let pairs = kp / 2;
        let groups = self.np / NR;
        let ap = a.as_ptr();
        let mut g = 0usize;
        while g + 2 <= groups {
            let pa = self.w.as_ptr().add(g * kp * NR);
            let pb = self.w.as_ptr().add((g + 1) * kp * NR);
            let mut acc0 = _mm256_setzero_si256();
            let mut acc1 = _mm256_setzero_si256();
            let mut c = 0usize;
            while c < pairs {
                let b0 = _mm256_set1_epi32((ap.add(2 * c) as *const i32).read_unaligned());
                let b1 = _mm256_set1_epi32((ap.add(2 * c + 2) as *const i32).read_unaligned());
                let wa = _mm256_loadu_si256(pa.add(c * NR * 2) as *const __m256i);
                let wb = _mm256_loadu_si256(pb.add(c * NR * 2) as *const __m256i);
                let wa_lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(wa));
                let wa_hi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(wa, 1));
                let wb_lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(wb));
                let wb_hi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(wb, 1));
                acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(b0, wa_lo));
                acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(b1, wa_hi));
                acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(b0, wb_lo));
                acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(b1, wb_hi));
                c += 2;
            }
            self.dequant_store(acc0, a_scale, g * NR, out);
            self.dequant_store(acc1, a_scale, (g + 1) * NR, out);
            g += 2;
        }
        if g < groups {
            let pa = self.w.as_ptr().add(g * kp * NR);
            let mut acc = _mm256_setzero_si256();
            let mut c = 0usize;
            while c < pairs {
                let b0 = _mm256_set1_epi32((ap.add(2 * c) as *const i32).read_unaligned());
                let b1 = _mm256_set1_epi32((ap.add(2 * c + 2) as *const i32).read_unaligned());
                let wa = _mm256_loadu_si256(pa.add(c * NR * 2) as *const __m256i);
                let wa_lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(wa));
                let wa_hi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(wa, 1));
                acc = _mm256_add_epi32(acc, _mm256_madd_epi16(b0, wa_lo));
                acc = _mm256_add_epi32(acc, _mm256_madd_epi16(b1, wa_hi));
                c += 2;
            }
            self.dequant_store(acc, a_scale, g * NR, out);
        }
    }

    /// AVX-512 VNNI kernel: one biased-u8 activation row against two
    /// 16-column weight panels at a time. Each 64-byte panel load carries
    /// one `k`-quad of all 16 columns; `vpdpbusd` multiplies it against a
    /// broadcast activation quad and accumulates per-lane. Accumulators
    /// start at the pack-time `-128·Σw` correction, so the final integers
    /// equal the signed dot product exactly — bit-identical to the scalar
    /// kernel.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f,avx512vnni")]
    unsafe fn row_forward_vnni(&self, a: &[u8], a_scale: f32, out: &mut [f32]) {
        use std::arch::x86_64::*;
        let kp = self.kp;
        debug_assert_eq!(kp % 8, 0);
        debug_assert_eq!(a.len(), kp);
        let quads = kp / 4;
        let panels = self.np / NV;
        let ap = a.as_ptr();
        let wp = self.w4.as_ptr();
        let cp = self.corr.as_ptr();
        let mut g = 0usize;
        while g + 2 <= panels {
            let pa = wp.add(g * kp * NV);
            let pb = wp.add((g + 1) * kp * NV);
            let mut acc0 = _mm512_loadu_si512(cp.add(g * NV) as *const _);
            let mut acc1 = _mm512_loadu_si512(cp.add((g + 1) * NV) as *const _);
            let mut q = 0usize;
            while q < quads {
                let b0 = _mm512_set1_epi32((ap.add(4 * q) as *const i32).read_unaligned());
                let b1 = _mm512_set1_epi32((ap.add(4 * q + 4) as *const i32).read_unaligned());
                let w0a = _mm512_loadu_si512(pa.add(q * NV * 4) as *const _);
                let w0b = _mm512_loadu_si512(pb.add(q * NV * 4) as *const _);
                let w1a = _mm512_loadu_si512(pa.add((q + 1) * NV * 4) as *const _);
                let w1b = _mm512_loadu_si512(pb.add((q + 1) * NV * 4) as *const _);
                acc0 = _mm512_dpbusd_epi32(acc0, b0, w0a);
                acc1 = _mm512_dpbusd_epi32(acc1, b0, w0b);
                acc0 = _mm512_dpbusd_epi32(acc0, b1, w1a);
                acc1 = _mm512_dpbusd_epi32(acc1, b1, w1b);
                q += 2;
            }
            self.dequant_store_512(acc0, a_scale, g * NV, out);
            self.dequant_store_512(acc1, a_scale, (g + 1) * NV, out);
            g += 2;
        }
        if g < panels {
            let pa = wp.add(g * kp * NV);
            let mut acc = _mm512_loadu_si512(cp.add(g * NV) as *const _);
            let mut q = 0usize;
            while q < quads {
                let b0 = _mm512_set1_epi32((ap.add(4 * q) as *const i32).read_unaligned());
                let b1 = _mm512_set1_epi32((ap.add(4 * q + 4) as *const i32).read_unaligned());
                let w0 = _mm512_loadu_si512(pa.add(q * NV * 4) as *const _);
                let w1 = _mm512_loadu_si512(pa.add((q + 1) * NV * 4) as *const _);
                acc = _mm512_dpbusd_epi32(acc, b0, w0);
                acc = _mm512_dpbusd_epi32(acc, b1, w1);
                q += 2;
            }
            self.dequant_store_512(acc, a_scale, g * NV, out);
        }
    }

    /// Dequantizes one AVX2 panel's accumulator lanes and stores them into
    /// the (possibly shorter-than-[`NR`]) tail of `out`. The lane-wise f32
    /// chain — `(acc as f32) * (a_scale * w_scale) + bias` — performs
    /// exactly the three roundings of the scalar [`dequant`], so the bits
    /// match.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn dequant_store(
        &self,
        acc: std::arch::x86_64::__m256i,
        a_scale: f32,
        j0: usize,
        out: &mut [f32],
    ) {
        use std::arch::x86_64::*;
        if j0 >= out.len() {
            return; // an all-padding panel past the real columns
        }
        let accf = _mm256_cvtepi32_ps(acc);
        let comb =
            _mm256_mul_ps(_mm256_set1_ps(a_scale), _mm256_loadu_ps(self.w_scales.as_ptr().add(j0)));
        let y =
            _mm256_add_ps(_mm256_mul_ps(accf, comb), _mm256_loadu_ps(self.bias.as_ptr().add(j0)));
        if out.len() - j0 >= NR {
            _mm256_storeu_ps(out.as_mut_ptr().add(j0), y);
        } else {
            let mut tmp = [0f32; NR];
            _mm256_storeu_ps(tmp.as_mut_ptr(), y);
            let rest = out.len() - j0;
            out[j0..].copy_from_slice(&tmp[..rest]);
        }
    }

    /// [`QuantizedLinear::dequant_store`] for one VNNI panel (16 lanes),
    /// same three-rounding chain.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    unsafe fn dequant_store_512(
        &self,
        acc: std::arch::x86_64::__m512i,
        a_scale: f32,
        j0: usize,
        out: &mut [f32],
    ) {
        use std::arch::x86_64::*;
        if j0 >= out.len() {
            return; // an all-padding panel past the real columns
        }
        let accf = _mm512_cvtepi32_ps(acc);
        let comb =
            _mm512_mul_ps(_mm512_set1_ps(a_scale), _mm512_loadu_ps(self.w_scales.as_ptr().add(j0)));
        let y =
            _mm512_add_ps(_mm512_mul_ps(accf, comb), _mm512_loadu_ps(self.bias.as_ptr().add(j0)));
        if out.len() - j0 >= NV {
            _mm512_storeu_ps(out.as_mut_ptr().add(j0), y);
        } else {
            let mut tmp = [0f32; NV];
            _mm512_storeu_ps(tmp.as_mut_ptr(), y);
            let rest = out.len() - j0;
            out[j0..].copy_from_slice(&tmp[..rest]);
        }
    }
}

/// Threads actually worth spawning for one `m`×`n`×`k` quantized GEMM
/// under `budget` (same work floor as the f32 layer).
fn effective_threads(m: usize, n: usize, k: usize, budget: usize) -> usize {
    let ops = 2usize.saturating_mul(m).saturating_mul(n).saturating_mul(k);
    budget.min(m).min((ops / MIN_FLOPS_PER_THREAD).max(1)).max(1)
}

/// The one dequantization expression, shared verbatim by every kernel so
/// the f32 rounding is identical across scalar/SIMD/threaded executions.
#[inline]
fn dequant(acc: i32, a_scale: f32, w_scale: f32, bias: f32) -> f32 {
    (acc as f32) * (a_scale * w_scale) + bias
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn naive_linear(x: &Tensor, w: &Tensor, b: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(x.rows(), w.cols());
        for r in 0..x.rows() {
            for j in 0..w.cols() {
                let mut acc = 0f64;
                for i in 0..x.cols() {
                    acc += f64::from(x.get(r, i)) * f64::from(w.get(i, j));
                }
                out.set(r, j, (acc + f64::from(b.get(0, j))) as f32);
            }
        }
        out
    }

    #[test]
    fn quantize_round_trips_within_half_step() {
        let row = [0.5f32, -1.25, 0.0, 2.0, -2.0];
        let mut q = [0i8; 5];
        let s = quantize_row_i8(&row, &mut q);
        for (&v, &c) in row.iter().zip(&q) {
            assert!((v - f32::from(c) * s).abs() <= s / 2.0 + 1e-6, "v={v} c={c} s={s}");
        }
        // The max-magnitude element hits ±127 exactly.
        assert_eq!(q[3], 127);
        assert_eq!(q[4], -127);
    }

    #[test]
    fn zero_and_empty_rows_quantize_to_zero_scale() {
        let mut q = [7i8; 4];
        assert_eq!(quantize_row_i8(&[0.0, 0.0], &mut q), 0.0);
        assert_eq!(q, [0i8; 4]);
        let mut q2 = [3i8; 2];
        assert_eq!(quantize_row_i8(&[], &mut q2), 0.0);
        assert_eq!(q2, [0i8; 2]);
    }

    #[test]
    fn vectorized_quantize_matches_scalar() {
        let mut rng = StdRng::seed_from_u64(11);
        for k in [0usize, 1, 7, 8, 15, 16, 17, 96, 100] {
            let row = Tensor::randn(1, k, 1.0, &mut rng);
            let kp = k.div_ceil(QK) * QK;
            let mut a = vec![0i16; kp];
            let mut b = vec![0i16; kp];
            let sa = quantize_row_i16_scalar(row.data(), &mut a);
            let sb = quantize_row_i16(row.data(), &mut b);
            assert_eq!(sa.to_bits(), sb.to_bits(), "scale mismatch at k={k}");
            assert_eq!(a, b, "codes mismatch at k={k}");
        }
    }

    #[test]
    fn forward_is_close_to_f32_reference() {
        let mut rng = StdRng::seed_from_u64(7);
        let x = Tensor::randn(5, 40, 1.0, &mut rng);
        let w = Tensor::randn(40, 9, 0.1, &mut rng);
        let b = Tensor::randn(1, 9, 0.1, &mut rng);
        let q = QuantizedLinear::from_f32(&w, &b);
        let exact = naive_linear(&x, &w, &b);
        let got = q.forward(&x);
        for (e, g) in exact.data().iter().zip(got.data()) {
            assert!((e - g).abs() < 0.05, "exact={e} quant={g}");
        }
    }

    #[test]
    fn fused_concat_matches_separate_parts() {
        let mut rng = StdRng::seed_from_u64(8);
        let x = Tensor::randn(3, 16, 1.0, &mut rng);
        let w1 = Tensor::randn(16, 4, 0.2, &mut rng);
        let b1 = Tensor::randn(1, 4, 0.2, &mut rng);
        let w2 = Tensor::randn(16, 6, 0.2, &mut rng);
        let b2 = Tensor::randn(1, 6, 0.2, &mut rng);
        let fused = QuantizedLinear::from_concat(&[(&w1, &b1), (&w2, &b2)]);
        let p1 = QuantizedLinear::from_f32(&w1, &b1).forward(&x);
        let p2 = QuantizedLinear::from_f32(&w2, &b2).forward(&x);
        let f = fused.forward(&x);
        assert_eq!(f.shape(), (3, 10));
        for r in 0..3 {
            for j in 0..4 {
                assert_eq!(f.get(r, j).to_bits(), p1.get(r, j).to_bits());
            }
            for j in 0..6 {
                assert_eq!(f.get(r, 4 + j).to_bits(), p2.get(r, j).to_bits());
            }
        }
    }

    #[test]
    fn simd_matches_scalar_bitwise_when_available() {
        let mut rng = StdRng::seed_from_u64(9);
        // Deliberately awkward shapes: n not a multiple of either panel
        // width, k not a multiple of the padding quantum.
        let x = Tensor::randn(7, 100, 1.0, &mut rng);
        let w = Tensor::randn(100, 13, 0.2, &mut rng);
        let b = Tensor::randn(1, 13, 0.2, &mut rng);
        let q = QuantizedLinear::from_f32(&w, &b);
        let scalar = q.forward_scalar(&x);
        if let Some(simd) = q.forward_simd(&x) {
            for (a, b) in scalar.data().iter().zip(simd.data()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        if let Some(vnni) = q.forward_vnni(&x) {
            for (a, b) in scalar.data().iter().zip(vnni.data()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        let dispatched = q.forward(&x);
        for (a, b) in scalar.data().iter().zip(dispatched.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn degenerate_shapes_work() {
        let q = QuantizedLinear::from_f32(&Tensor::zeros(0, 3), &Tensor::zeros(1, 3));
        let y = q.forward(&Tensor::zeros(2, 0));
        assert_eq!(y.shape(), (2, 3));
        assert!(y.data().iter().all(|&v| v == 0.0));
        let q2 = QuantizedLinear::from_f32(&Tensor::zeros(4, 0), &Tensor::zeros(1, 0));
        assert_eq!(q2.forward(&Tensor::zeros(3, 4)).shape(), (3, 0));
        let empty = QuantizedLinear::from_f32(&Tensor::zeros(2, 2), &Tensor::zeros(1, 2));
        assert_eq!(empty.forward(&Tensor::zeros(0, 2)).shape(), (0, 2));
    }

    #[test]
    fn bias_survives_zero_inputs_exactly() {
        let mut rng = StdRng::seed_from_u64(10);
        let w = Tensor::randn(8, 5, 0.3, &mut rng);
        let b = Tensor::randn(1, 5, 1.0, &mut rng);
        let q = QuantizedLinear::from_f32(&w, &b);
        let y = q.forward(&Tensor::zeros(2, 8));
        for r in 0..2 {
            for j in 0..5 {
                assert_eq!(y.get(r, j).to_bits(), b.get(0, j).to_bits());
            }
        }
    }
}
