//! Adam optimizer and learning-rate schedules.
//!
//! The paper fine-tunes with Adam (ε = 1e-8) under a linear-decay schedule
//! with no warm-up (§5.3); Algorithm 1 keeps *one optimizer per task*, which
//! is why [`Adam`] is a standalone object over a shared [`ParamStore`]
//! rather than being owned by the model.

use crate::params::{Gradients, ParamStore};
use crate::Tensor;

/// Learning-rate schedule evaluated per optimizer step.
#[derive(Clone, Debug)]
pub enum LrSchedule {
    /// Constant learning rate.
    Constant(f32),
    /// Linear decay from `lr0` to 0 over `total_steps` (BERT fine-tuning
    /// default, no warm-up).
    LinearDecay {
        /// Initial learning rate.
        lr0: f32,
        /// Step count after which the rate reaches 0.
        total_steps: usize,
    },
}

impl LrSchedule {
    /// Learning rate at 0-based step `t`.
    pub fn at(&self, t: usize) -> f32 {
        match *self {
            LrSchedule::Constant(lr) => lr,
            LrSchedule::LinearDecay { lr0, total_steps } => {
                if total_steps == 0 {
                    return lr0;
                }
                let frac = 1.0 - (t.min(total_steps) as f32 / total_steps as f32);
                lr0 * frac
            }
        }
    }
}

/// Adam with optional decoupled weight decay (AdamW-style).
#[derive(Clone, Debug)]
pub struct Adam {
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    schedule: LrSchedule,
    /// First/second moment estimates, lazily sized like the parameters.
    m: Vec<Option<Tensor>>,
    v: Vec<Option<Tensor>>,
    t: usize,
}

impl Adam {
    /// Standard constructor: β1 = 0.9, β2 = 0.999, ε = 1e-8 (as in §5.3).
    pub fn new(store: &ParamStore, schedule: LrSchedule) -> Self {
        Adam {
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            schedule,
            m: vec![None; store.len()],
            v: vec![None; store.len()],
            t: 0,
        }
    }

    /// Builder-style decoupled weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> usize {
        self.t
    }

    /// Learning rate the *next* step will use.
    pub fn current_lr(&self) -> f32 {
        self.schedule.at(self.t)
    }

    /// Applies one Adam step using the accumulated `grads`.
    /// Parameters without gradients are left untouched (their moments do not
    /// advance either, matching lazy/sparse semantics).
    pub fn step(&mut self, store: &mut ParamStore, grads: &Gradients) {
        assert_eq!(grads.len(), store.len(), "gradients misaligned with store");
        // Moment buffers are extended lazily if the store grew after
        // construction (e.g. a fine-tuning head added to a pretrained LM).
        if self.m.len() < store.len() {
            self.m.resize(store.len(), None);
            self.v.resize(store.len(), None);
        }
        let lr = self.schedule.at(self.t);
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for pid in 0..store.len() {
            let Some(g) = grads.get(pid) else { continue };
            let shape = store.get(pid).shape();
            let m = self.m[pid].get_or_insert_with(|| Tensor::zeros(shape.0, shape.1));
            let v = self.v[pid].get_or_insert_with(|| Tensor::zeros(shape.0, shape.1));
            let p = store.get_mut(pid);
            for i in 0..p.len() {
                let gi = g.data()[i];
                let mi = self.beta1 * m.data()[i] + (1.0 - self.beta1) * gi;
                let vi = self.beta2 * v.data()[i] + (1.0 - self.beta2) * gi * gi;
                m.data_mut()[i] = mi;
                v.data_mut()[i] = vi;
                let mhat = mi / bc1;
                let vhat = vi / bc2;
                let mut upd = lr * mhat / (vhat.sqrt() + self.eps);
                if self.weight_decay > 0.0 {
                    upd += lr * self.weight_decay * p.data()[i];
                }
                p.data_mut()[i] -= upd;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;
    use crate::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_decay_hits_zero() {
        let s = LrSchedule::LinearDecay { lr0: 1.0, total_steps: 10 };
        assert!((s.at(0) - 1.0).abs() < 1e-6);
        assert!((s.at(5) - 0.5).abs() < 1e-6);
        assert!(s.at(10) < 1e-6);
        assert!(s.at(999) < 1e-6, "clamps past the horizon");
    }

    #[test]
    fn adam_minimizes_a_quadratic() {
        // minimize ||w - target||^2 expressed through the tape as BCE-free
        // plain ops: loss = sum((w - t)^2) via mul.
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::row_vector(vec![5.0, -3.0, 2.0]));
        let target = [1.0f32, 2.0, -1.0];
        let mut opt = Adam::new(&store, LrSchedule::Constant(0.05));
        for _ in 0..800 {
            let mut grads = Gradients::new(&store);
            // d/dw sum((w-t)^2) = 2 (w - t)
            let diff: Vec<f32> =
                store.get(w).data().iter().zip(target.iter()).map(|(a, b)| 2.0 * (a - b)).collect();
            grads.accumulate(w, &Tensor::row_vector(diff), &store);
            opt.step(&mut store, &grads);
        }
        for (a, b) in store.get(w).data().iter().zip(target.iter()) {
            assert!((a - b).abs() < 1e-2, "{a} vs {b}");
        }
    }

    #[test]
    fn adam_trains_a_tiny_classifier() {
        // Two linearly separable blobs must reach ~zero loss quickly.
        let mut rng = StdRng::seed_from_u64(11);
        let mut store = ParamStore::new();
        let w = store.add_randn("w", 2, 2, 0.1, &mut rng);
        let b = store.add_zeros("b", 1, 2);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..40 {
            let cls = i % 2;
            let cx = if cls == 0 { -2.0 } else { 2.0 };
            xs.push(Tensor::row_vector(vec![
                cx + rng.gen_range(-0.5..0.5),
                rng.gen_range(-0.5..0.5),
            ]));
            ys.push(cls as u32);
        }
        let mut opt = Adam::new(&store, LrSchedule::Constant(0.05));
        let mut last = f32::INFINITY;
        for _ in 0..60 {
            let mut grads = Gradients::new(&store);
            let mut total = 0.0;
            for (x, y) in xs.iter().zip(ys.iter()) {
                let mut tape = Tape::inference(&store);
                let xn = tape.input(x.clone());
                let h = tape.linear(xn, w, b);
                let l = tape.softmax_ce(h, &[*y]);
                total += tape.value(l).scalar_value();
                tape.backward(l, &mut grads);
            }
            grads.scale(1.0 / xs.len() as f32);
            opt.step(&mut store, &grads);
            last = total / xs.len() as f32;
        }
        assert!(last < 0.1, "classifier failed to fit: loss {last}");
        use rand::Rng;
    }

    #[test]
    fn weight_decay_pulls_weights_toward_zero() {
        // Same gradient stream with and without decoupled decay: the decayed
        // run must end with a smaller final weight.
        let run = |wd: f32| {
            let mut store = ParamStore::new();
            let w = store.add("w", Tensor::scalar(4.0));
            let mut opt = Adam::new(&store, LrSchedule::Constant(0.01)).with_weight_decay(wd);
            for step in 0..60 {
                let mut g = Gradients::new(&store);
                // Alternating gradient: Adam's momentum mostly cancels, so
                // decay dominates the drift.
                let sign = if step % 2 == 0 { 1.0 } else { -1.0 };
                g.accumulate(w, &Tensor::scalar(sign), &store);
                opt.step(&mut store, &g);
            }
            store.get(w).scalar_value()
        };
        let plain = run(0.0);
        let decayed = run(0.5);
        assert!(decayed < plain, "decay should shrink the weight: {decayed} vs {plain}");
        assert!(decayed < 3.5, "decayed weight should clearly drop from 4.0: {decayed}");
    }

    #[test]
    fn constant_schedule_never_decays() {
        let s = LrSchedule::Constant(0.3);
        assert_eq!(s.at(0), 0.3);
        assert_eq!(s.at(1_000_000), 0.3);
        // Degenerate linear decay with zero horizon stays at lr0.
        let z = LrSchedule::LinearDecay { lr0: 0.5, total_steps: 0 };
        assert_eq!(z.at(10), 0.5);
    }

    #[test]
    fn params_without_grads_are_untouched() {
        let mut store = ParamStore::new();
        let a = store.add("a", Tensor::scalar(1.5));
        let b = store.add("b", Tensor::scalar(-2.5));
        let mut opt = Adam::new(&store, LrSchedule::Constant(0.1));
        let mut g = Gradients::new(&store);
        g.accumulate(a, &Tensor::scalar(1.0), &store);
        opt.step(&mut store, &g);
        assert!(store.get(a).scalar_value() < 1.5);
        assert_eq!(store.get(b).scalar_value(), -2.5, "no gradient, no update");
    }

    #[test]
    fn lazy_moments_extend_when_store_grows() {
        let mut store = ParamStore::new();
        let a = store.add("a", Tensor::scalar(1.0));
        let mut opt = Adam::new(&store, LrSchedule::Constant(0.1));
        let mut g = Gradients::new(&store);
        g.accumulate(a, &Tensor::scalar(1.0), &store);
        opt.step(&mut store, &g);
        // Grow the store (fine-tuning head) and keep stepping.
        let b = store.add("b", Tensor::scalar(2.0));
        let mut g2 = Gradients::new(&store);
        g2.accumulate(b, &Tensor::scalar(1.0), &store);
        opt.step(&mut store, &g2);
        assert!(store.get(b).scalar_value() < 2.0);
    }
}
