//! Binary (de)serialization of parameter stores.
//!
//! The paper ships fine-tuned checkpoints in its toolbox; we mirror that with
//! a small self-describing binary format (magic, version, then
//! `name / shape / f32-LE payload` records) built on the `bytes` crate.

use crate::params::ParamStore;
use crate::Tensor;
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: &[u8; 8] = b"DODUOWT1";

/// Errors produced when decoding a checkpoint.
#[derive(Debug, PartialEq, Eq)]
pub enum LoadError {
    /// Missing or wrong magic header.
    BadMagic,
    /// Buffer ended before the declared payload.
    Truncated,
    /// A parameter name was not valid UTF-8.
    BadName,
    /// Checkpoint has a parameter the target store lacks (strict mode).
    UnknownParam(String),
    /// Shape in the checkpoint does not match the target parameter.
    ShapeMismatch {
        /// The offending parameter.
        name: String,
        /// Shape the target store declares.
        expected: (usize, usize),
        /// Shape found in the checkpoint.
        found: (usize, usize),
    },
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::BadMagic => write!(f, "not a DODUO checkpoint (bad magic)"),
            LoadError::Truncated => write!(f, "checkpoint truncated"),
            LoadError::BadName => write!(f, "parameter name is not valid UTF-8"),
            LoadError::UnknownParam(n) => write!(f, "checkpoint parameter {n} not in store"),
            LoadError::ShapeMismatch { name, expected, found } => write!(
                f,
                "shape mismatch for {name}: store has {expected:?}, checkpoint has {found:?}"
            ),
        }
    }
}

impl std::error::Error for LoadError {}

/// Serializes every parameter (name, shape, row-major f32 LE payload).
pub fn save(store: &ParamStore) -> Bytes {
    save_filtered(store, |_| true)
}

/// Serializes only the parameters whose name satisfies `keep` — e.g.
/// `|n| n.starts_with("enc.")` to ship a pretrained encoder without its
/// MLM head (the pretrain → fine-tune handoff).
pub fn save_filtered(store: &ParamStore, keep: impl Fn(&str) -> bool) -> Bytes {
    let kept: Vec<_> = store.iter().filter(|(_, p)| keep(&p.name)).collect();
    let mut buf = BytesMut::with_capacity(64 + store.num_scalars() * 4);
    buf.put_slice(MAGIC);
    buf.put_u32_le(kept.len() as u32);
    for (_, p) in kept {
        buf.put_u32_le(p.name.len() as u32);
        buf.put_slice(p.name.as_bytes());
        buf.put_u32_le(p.value.rows() as u32);
        buf.put_u32_le(p.value.cols() as u32);
        for &v in p.value.data() {
            buf.put_f32_le(v);
        }
    }
    buf.freeze()
}

/// Loads a checkpoint into `store`, matching parameters by name.
///
/// Every checkpoint entry must exist in the store with the same shape;
/// store parameters absent from the checkpoint keep their current values
/// (this lets a fine-tuning model load a pretrained encoder and keep its
/// freshly-initialized heads).
pub fn load(store: &mut ParamStore, data: &[u8]) -> Result<usize, LoadError> {
    load_impl(store, data, true).map(|(loaded, _)| loaded)
}

/// Like [`load`], but checkpoint entries with no matching store parameter
/// are skipped instead of erroring. Returns `(loaded, skipped)`. Used when
/// a fine-tuning model loads a pretrain checkpoint that still carries the
/// MLM head.
pub fn load_lenient(store: &mut ParamStore, data: &[u8]) -> Result<(usize, usize), LoadError> {
    load_impl(store, data, false)
}

fn load_impl(
    store: &mut ParamStore,
    mut data: &[u8],
    strict: bool,
) -> Result<(usize, usize), LoadError> {
    if data.remaining() < MAGIC.len() || &data[..MAGIC.len()] != MAGIC {
        return Err(LoadError::BadMagic);
    }
    data.advance(MAGIC.len());
    if data.remaining() < 4 {
        return Err(LoadError::Truncated);
    }
    let count = data.get_u32_le() as usize;
    let mut loaded = 0;
    let mut skipped = 0;
    for _ in 0..count {
        if data.remaining() < 4 {
            return Err(LoadError::Truncated);
        }
        let name_len = data.get_u32_le() as usize;
        if data.remaining() < name_len {
            return Err(LoadError::Truncated);
        }
        let name =
            std::str::from_utf8(&data[..name_len]).map_err(|_| LoadError::BadName)?.to_owned();
        data.advance(name_len);
        if data.remaining() < 8 {
            return Err(LoadError::Truncated);
        }
        let rows = data.get_u32_le() as usize;
        let cols = data.get_u32_le() as usize;
        let n = rows * cols;
        if data.remaining() < n * 4 {
            return Err(LoadError::Truncated);
        }
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            values.push(data.get_f32_le());
        }
        let Some(pid) = store.find(&name) else {
            if strict {
                return Err(LoadError::UnknownParam(name));
            }
            skipped += 1;
            continue;
        };
        let expected = store.get(pid).shape();
        if expected != (rows, cols) {
            return Err(LoadError::ShapeMismatch { name, expected, found: (rows, cols) });
        }
        store.set_value(pid, Tensor::from_vec(rows, cols, values));
        loaded += 1;
    }
    Ok((loaded, skipped))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_store() -> ParamStore {
        let mut rng = StdRng::seed_from_u64(5);
        let mut s = ParamStore::new();
        s.add_randn("enc.w", 3, 4, 0.5, &mut rng);
        s.add_randn("enc.b", 1, 4, 0.5, &mut rng);
        s.add_randn("head.w", 4, 2, 0.5, &mut rng);
        s
    }

    #[test]
    fn roundtrip_restores_exact_values() {
        let src = sample_store();
        let blob = save(&src);
        let mut dst = sample_store();
        // Perturb destination, then load.
        dst.get_mut(0).data_mut()[0] += 1.0;
        let n = load(&mut dst, &blob).unwrap();
        assert_eq!(n, 3);
        for pid in 0..src.len() {
            assert_eq!(src.get(pid).data(), dst.get(pid).data());
        }
    }

    #[test]
    fn partial_load_keeps_extra_params() {
        let src = sample_store();
        let blob = save(&src);
        let mut dst = sample_store();
        let extra = dst.add("fresh.head", Tensor::row_vector(vec![9.0, 9.0]));
        let n = load(&mut dst, &blob).unwrap();
        assert_eq!(n, 3);
        assert_eq!(dst.get(extra).data(), &[9.0, 9.0]);
    }

    #[test]
    fn filtered_save_keeps_only_matching() {
        let src = sample_store();
        let blob = save_filtered(&src, |n| n.starts_with("enc."));
        let mut dst = sample_store();
        dst.get_mut(2).data_mut()[0] = 99.0; // head.w must stay perturbed
        let n = load(&mut dst, &blob).unwrap();
        assert_eq!(n, 2);
        assert_eq!(dst.get(2).data()[0], 99.0);
        assert_eq!(dst.get(0).data(), src.get(0).data());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut dst = sample_store();
        assert_eq!(load(&mut dst, b"NOTDODUO____"), Err(LoadError::BadMagic));
    }

    #[test]
    fn truncated_rejected() {
        let src = sample_store();
        let blob = save(&src);
        let mut dst = sample_store();
        assert_eq!(load(&mut dst, &blob[..blob.len() - 5]), Err(LoadError::Truncated));
    }

    #[test]
    fn shape_mismatch_rejected() {
        let src = sample_store();
        let blob = save(&src);
        let mut dst = ParamStore::new();
        dst.add_zeros("enc.w", 2, 2);
        dst.add_zeros("enc.b", 1, 4);
        dst.add_zeros("head.w", 4, 2);
        match load(&mut dst, &blob) {
            Err(LoadError::ShapeMismatch { name, .. }) => assert_eq!(name, "enc.w"),
            other => panic!("expected shape mismatch, got {other:?}"),
        }
    }

    #[test]
    fn unknown_param_rejected() {
        let src = sample_store();
        let blob = save(&src);
        let mut dst = ParamStore::new();
        dst.add_zeros("something.else", 3, 4);
        assert!(matches!(load(&mut dst, &blob), Err(LoadError::UnknownParam(_))));
    }

    #[test]
    fn lenient_load_skips_unknown() {
        let src = sample_store();
        let blob = save(&src);
        let mut dst = ParamStore::new();
        dst.add_zeros("enc.w", 3, 4);
        dst.add_zeros("fresh", 1, 1);
        let (loaded, skipped) = load_lenient(&mut dst, &blob).unwrap();
        assert_eq!(loaded, 1);
        assert_eq!(skipped, 2);
        assert_eq!(dst.get(0).data(), src.get(0).data());
    }
}
