//! Cache-blocked, register-tiled GEMM kernels.
//!
//! Every forward and backward pass in this reproduction bottoms out in one
//! of three matmul variants (`C += A B`, `C += A Bᵀ`, `C += Aᵀ B`). This
//! module implements them BLIS-style: operands are packed into
//! cache-resident panels ([`KC`]×[`NC`] for B, [`MC`]×[`KC`] for A), and a
//! register micro-kernel computes an [`MR`]×[`NR`] output tile per
//! iteration of the packed k loop. On top sits optional row-stripe
//! multi-threading (distinct threads own disjoint output rows) and a size
//! heuristic that falls back to the plain loops where packing overhead
//! would dominate.
//!
//! # Numerics policy: bit-identical
//!
//! The micro-kernel keeps exactly **one accumulator per output element**
//! and walks the k dimension in increasing order — the same floating-point
//! operation sequence as the naive loops (Rust/LLVM never reassociates
//! float additions without fast-math). k-blocking preserves this by
//! loading the partial output tile into registers at the start of each
//! [`KC`] block instead of summing blocks separately, and row-stripe
//! threading trivially preserves it because threads own disjoint output
//! elements. Consequently `blocked == naive` **bitwise**, at every thread
//! count — the serving equivalence tests keep their byte-identical
//! contract, and the property tests in `tests/gemm_props.rs` assert exact
//! bit equality rather than a tolerance.
//!
//! # Threading model
//!
//! Intra-GEMM threads default to **1**: training parallelizes at the
//! table level (`accumulate_parallel`) and serving at the micro-batch
//! level (`BatchAnnotator`), so the cores are usually owned by an outer
//! loop already. [`set_gemm_threads`] is the explicit lever for
//! single-stream workloads (e.g. latency-sensitive serving of one big
//! table); the row stripes are then cut so every thread gets at least
//! [`MIN_FLOPS_PER_THREAD`] of work, so small matmuls never pay a spawn.

use crate::tensor::Tensor;
use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Rows of the micro-kernel register tile.
pub const MR: usize = 6;
/// Columns of the micro-kernel register tile: two AVX vectors, so the
/// `MR`×`NR` accumulator occupies 12 of the 16 ymm registers on the AVX2
/// fast path (leaving room for the B panel loads and the A broadcast).
pub const NR: usize = 16;
/// k-dimension cache block: packed panels span at most `KC` of k, sized so
/// an `NR`×`KC` B sliver stays L1-resident.
pub const KC: usize = 256;
/// n-dimension cache block (multiple of [`NR`]): a `KC`×`NC` packed B
/// panel targets L2/L3 residency.
pub const NC: usize = 512;
/// m-dimension cache block (multiple of [`MR`]): a `MC`×`KC` packed A
/// block targets L2 residency; sized so the encoder's row counts (≤ 192
/// tokens per sequence) need at most two blocks.
pub const MC: usize = 120;

/// Work floor (in FLOPs, counting one multiply-add as two) below which an
/// extra GEMM thread is not worth its spawn cost.
pub const MIN_FLOPS_PER_THREAD: usize = 1 << 20;

/// Work floor below which the public entry points use the naive loops:
/// packing touches O(mn + mk + kn) memory, which only pays off once the
/// O(mnk) kernel work dwarfs it.
const BLOCKED_MIN_FLOPS: usize = 1 << 16;

static GEMM_THREADS: AtomicUsize = AtomicUsize::new(1);

/// Sets the process-global intra-GEMM thread budget (clamped to ≥ 1).
///
/// This is a *budget*, not a demand: each call threads only if its row
/// count and FLOP volume justify the stripes (see [`MIN_FLOPS_PER_THREAD`]).
/// Leave it at 1 (the default) when an outer layer — data-parallel
/// training, the batch-serving fan-out — already owns the cores.
pub fn set_gemm_threads(n: usize) {
    GEMM_THREADS.store(n.max(1), Ordering::Relaxed);
}

/// The current intra-GEMM thread budget (see [`set_gemm_threads`]).
pub fn gemm_threads() -> usize {
    GEMM_THREADS.load(Ordering::Relaxed)
}

/// Threads actually worth using for one `m`×`n`×`k` GEMM under `budget`.
fn effective_threads(m: usize, n: usize, k: usize, budget: usize) -> usize {
    let flops = 2usize.saturating_mul(m).saturating_mul(n).saturating_mul(k);
    budget.min(m.div_ceil(MR)).min((flops / MIN_FLOPS_PER_THREAD).max(1)).max(1)
}

// ---------------------------------------------------------------------------
// Matrix views
// ---------------------------------------------------------------------------

/// Read-only strided view used to feed packing: element `(r, c)` lives at
/// `data[off + r * stride + c]`. Lets the tape run GEMM over column slices
/// (per-head Q/K/V panels, fused QKV segments) without copying them out.
#[derive(Clone, Copy)]
pub(crate) struct View<'a> {
    pub data: &'a [f32],
    pub off: usize,
    pub stride: usize,
}

impl<'a> View<'a> {
    /// Whole-tensor view.
    pub fn of(t: &'a Tensor) -> Self {
        View { data: t.data(), off: 0, stride: t.cols() }
    }

    /// View starting at `(row0, col0)` of a row-major buffer.
    pub fn at(data: &'a [f32], stride: usize, row0: usize, col0: usize) -> Self {
        View { data, off: row0 * stride + col0, stride }
    }

    /// Contiguous slice `[c0, c1)` of row `r`.
    #[inline(always)]
    fn row(&self, r: usize, c0: usize, c1: usize) -> &[f32] {
        &self.data[self.off + r * self.stride + c0..self.off + r * self.stride + c1]
    }
}

/// A GEMM operand: a [`View`] taken as-is or logically transposed. The
/// packers pick the loop order whose reads are contiguous for each case,
/// which is what makes packing cheap enough for encoder-sized matrices.
#[derive(Clone, Copy)]
pub(crate) enum Src<'a> {
    /// Element `(r, c)` is `view[(r, c)]`.
    N(View<'a>),
    /// Element `(r, c)` is `view[(c, r)]`.
    T(View<'a>),
}

// ---------------------------------------------------------------------------
// Packing
// ---------------------------------------------------------------------------

/// Packs `mc` rows × `kc` k's of A (rows `i0..`, k's `p0..`) into
/// `ceil(mc / MR)` micro-panels, each laid out p-major `[kc][MR]`. Rows
/// past `mc` are zero-filled: padded lanes accumulate zeros and are never
/// stored, keeping one kernel for interior and edge tiles. The loop order
/// follows the operand layout so reads are always contiguous.
#[inline]
fn pack_a(buf: &mut [f32], src: Src<'_>, i0: usize, mc: usize, p0: usize, kc: usize) {
    for pi in 0..mc.div_ceil(MR) {
        let i_start = i0 + pi * MR;
        let rows = MR.min(i0 + mc - i_start);
        let panel = &mut buf[pi * kc * MR..(pi + 1) * kc * MR];
        match src {
            // A as given is row-major `[m, k]`: walk each of the MR rows
            // contiguously, scattering into the p-major panel.
            Src::N(v) => {
                for i in 0..rows {
                    let row = v.row(i_start + i, p0, p0 + kc);
                    for (p, &x) in row.iter().enumerate() {
                        panel[p * MR + i] = x;
                    }
                }
            }
            // Aᵀ: the stored matrix is `[k, m]`, so for each p the MR
            // values are adjacent — read and write contiguously.
            Src::T(v) => {
                for p in 0..kc {
                    let row = v.row(p0 + p, i_start, i_start + rows);
                    panel[p * MR..p * MR + rows].copy_from_slice(row);
                }
            }
        }
        if rows < MR {
            for p in 0..kc {
                for d in &mut panel[p * MR + rows..(p + 1) * MR] {
                    *d = 0.0;
                }
            }
        }
    }
}

/// Packs `kc` k's × `nc` columns of B (k's `p0..`, columns `j0..`) into
/// `ceil(nc / NR)` micro-panels, each laid out p-major `[kc][NR]`,
/// zero-padding columns past `nc`. Like [`pack_a`], the loop order keeps
/// reads contiguous for both layouts.
#[inline]
fn pack_b(buf: &mut [f32], src: Src<'_>, p0: usize, kc: usize, j0: usize, nc: usize) {
    for pj in 0..nc.div_ceil(NR) {
        let j_start = j0 + pj * NR;
        let cols = NR.min(j0 + nc - j_start);
        let panel = &mut buf[pj * kc * NR..(pj + 1) * kc * NR];
        match src {
            // B as given is row-major `[k, n]`: row p supplies the panel's
            // p-th NR-slot directly.
            Src::N(v) => {
                for p in 0..kc {
                    let row = v.row(p0 + p, j_start, j_start + cols);
                    panel[p * NR..p * NR + cols].copy_from_slice(row);
                }
            }
            // Bᵀ: the stored matrix is `[n, k]`; walk each of its rows
            // (one output column) contiguously, scattering across slots.
            Src::T(v) => {
                for j in 0..cols {
                    let row = v.row(j_start + j, p0, p0 + kc);
                    for (p, &x) in row.iter().enumerate() {
                        panel[p * NR + j] = x;
                    }
                }
            }
        }
        if cols < NR {
            for p in 0..kc {
                for d in &mut panel[p * NR + cols..(p + 1) * NR] {
                    *d = 0.0;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Micro-kernel
// ---------------------------------------------------------------------------

/// The rank-1 update loop shared by every micro-kernel instantiation: adds
/// `kc` outer products from the packed panels into the register tile, k in
/// increasing order with one accumulator per element — the bit-identity
/// contract. All loop bounds are compile-time constants so LLVM promotes
/// `acc` to registers (SROA) and vectorizes the `NR` lanes; multiplies and
/// adds stay separately rounded (no FMA contraction), so the operation
/// sequence per element is exactly the naive loops'.
#[inline(always)]
fn accumulate_tile(kc: usize, ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) {
    #[inline(always)]
    fn step(a: &[f32], b: &[f32], acc: &mut [[f32; NR]; MR]) {
        let a: &[f32; MR] = a.try_into().expect("MR chunk");
        let b: &[f32; NR] = b.try_into().expect("NR chunk");
        for i in 0..MR {
            let aip = a[i];
            for j in 0..NR {
                acc[i][j] += aip * b[j];
            }
        }
    }
    // Unroll k by 4 (plain unrolling: each element still sees its addends
    // strictly in increasing-k order, so bit-identity is unaffected).
    let k4 = kc / 4 * 4;
    let (a4, b4) = (&ap[..k4 * MR], &bp[..k4 * NR]);
    for (a, b) in a4.chunks_exact(4 * MR).zip(b4.chunks_exact(4 * NR)) {
        for u in 0..4 {
            step(&a[u * MR..(u + 1) * MR], &b[u * NR..(u + 1) * NR], acc);
        }
    }
    for (a, b) in ap[k4 * MR..kc * MR].chunks_exact(MR).zip(bp[k4 * NR..kc * NR].chunks_exact(NR)) {
        step(a, b, acc);
    }
}

/// Shared micro-kernel body: full tiles load/store C with constant bounds
/// so the accumulator lives in registers; edge tiles (`mr < MR` or
/// `nr < NR`) stage C through the zero-padded stack tile, keeping the hot
/// loop's constant bounds either way.
#[inline(always)]
fn microkernel_impl(
    kc: usize,
    ap: &[f32],
    bp: &[f32],
    c: &mut [f32],
    ldc: usize,
    mr: usize,
    nr: usize,
) {
    if mr == MR && nr == NR {
        let mut acc = [[0.0f32; NR]; MR];
        for (i, row) in acc.iter_mut().enumerate() {
            *row = c[i * ldc..i * ldc + NR].try_into().expect("NR row");
        }
        accumulate_tile(kc, ap, bp, &mut acc);
        for (i, row) in acc.iter().enumerate() {
            c[i * ldc..i * ldc + NR].copy_from_slice(row);
        }
    } else {
        let mut acc = [[0.0f32; NR]; MR];
        for (i, row) in acc.iter_mut().take(mr).enumerate() {
            row[..nr].copy_from_slice(&c[i * ldc..i * ldc + nr]);
        }
        accumulate_tile(kc, ap, bp, &mut acc);
        for (i, row) in acc.iter().take(mr).enumerate() {
            c[i * ldc..i * ldc + nr].copy_from_slice(&row[..nr]);
        }
    }
}

/// AVX2 instantiation of [`microkernel_impl`]: same Rust code compiled
/// with 256-bit vectors (the register tile is 12 ymm accumulators). Only
/// `vmulps`/`vaddps` are emitted — `#[target_feature]` alone never
/// introduces FMA contraction — so results stay bit-identical to the
/// portable instantiation and the naive loops.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn microkernel_avx2(
    kc: usize,
    ap: &[f32],
    bp: &[f32],
    c: &mut [f32],
    ldc: usize,
    mr: usize,
    nr: usize,
) {
    microkernel_impl(kc, ap, bp, c, ldc, mr, nr);
}

/// True once per process if the host has AVX2 (the fast micro-kernel's
/// requirement; detection result is cached by the stdlib).
#[inline]
pub(crate) fn has_avx2() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Computes one `mr`×`nr` output tile: loads the current C tile into the
/// register accumulator, adds `kc` rank-1 updates from the packed panels,
/// and stores it back. `c` starts at the tile's `(0, 0)` and has row
/// stride `ldc`.
#[allow(clippy::too_many_arguments)] // a private kernel, not an API surface
fn microkernel(
    kc: usize,
    ap: &[f32],
    bp: &[f32],
    c: &mut [f32],
    ldc: usize,
    mr: usize,
    nr: usize,
    avx2: bool,
) {
    #[cfg(target_arch = "x86_64")]
    if avx2 {
        // SAFETY: `avx2` is only true when is_x86_feature_detected!
        // confirmed AVX2 support on this CPU.
        unsafe {
            microkernel_avx2(kc, ap, bp, c, ldc, mr, nr);
        }
        return;
    }
    let _ = avx2;
    microkernel_impl(kc, ap, bp, c, ldc, mr, nr);
}

// ---------------------------------------------------------------------------
// Blocked driver
// ---------------------------------------------------------------------------

thread_local! {
    /// Per-thread packing scratch `(A panels, B panels)`, grown on demand
    /// so the hot path never calls the allocator after warm-up.
    static PACK_BUFS: RefCell<(Vec<f32>, Vec<f32>)> = const { RefCell::new((Vec::new(), Vec::new())) };
}

/// Runs the blocked GEMM over output rows `[m0, m1)`. `c` holds exactly
/// those rows (row stride `ldc`), offset `c_col0` columns in; the sources
/// are indexed with absolute coordinates.
#[allow(clippy::too_many_arguments)] // the single-thread core below gemm_threaded
fn gemm_stripe(
    m0: usize,
    m1: usize,
    n: usize,
    k: usize,
    a_src: Src<'_>,
    b_src: Src<'_>,
    c: &mut [f32],
    ldc: usize,
    c_col0: usize,
) {
    let avx2 = has_avx2();
    PACK_BUFS.with_borrow_mut(|(ap_buf, bp_buf)| {
        let kc_max = KC.min(k.max(1));
        // Grow-only: pack writes every slot it later reads, so stale data
        // past the current panel sizes is harmless and shrinking would
        // just churn when call sites alternate between shapes.
        let a_need = MC.div_ceil(MR) * MR * kc_max;
        if ap_buf.len() < a_need {
            ap_buf.resize(a_need, 0.0);
        }
        let b_need = NC.min(n.max(1)).div_ceil(NR) * NR * kc_max;
        if bp_buf.len() < b_need {
            bp_buf.resize(b_need, 0.0);
        }
        let mut jc = 0;
        while jc < n {
            let nc = NC.min(n - jc);
            let mut pc = 0;
            while pc < k {
                let kc = KC.min(k - pc);
                pack_b(bp_buf, b_src, pc, kc, jc, nc);
                let mut ic = m0;
                while ic < m1 {
                    let mc = MC.min(m1 - ic);
                    pack_a(ap_buf, a_src, ic, mc, pc, kc);
                    let mut jr = 0;
                    while jr < nc {
                        let nr = NR.min(nc - jr);
                        let bp = &bp_buf[(jr / NR) * kc * NR..][..kc * NR];
                        let mut ir = 0;
                        while ir < mc {
                            let mr = MR.min(mc - ir);
                            let ap = &ap_buf[(ir / MR) * kc * MR..][..kc * MR];
                            let c_off = (ic - m0 + ir) * ldc + c_col0 + jc + jr;
                            microkernel(kc, ap, bp, &mut c[c_off..], ldc, mr, nr, avx2);
                            ir += MR;
                        }
                        jr += NR;
                    }
                    ic += MC;
                }
                pc += KC;
            }
            jc += NC;
        }
    });
}

/// `C += op(A) op(B)` over the whole output, splitting rows into stripes
/// across up to `threads` OS threads. `c` holds `m` rows of stride `ldc`,
/// offset `c_col0` columns in.
#[allow(clippy::too_many_arguments)] // the one internal fan-in point below the typed wrappers
fn gemm_threaded(
    m: usize,
    n: usize,
    k: usize,
    a_src: Src<'_>,
    b_src: Src<'_>,
    c: &mut [f32],
    ldc: usize,
    c_col0: usize,
    threads: usize,
) {
    if m == 0 || n == 0 || k == 0 {
        return; // += of an empty product leaves C untouched
    }
    if 2 * m * n * k < BLOCKED_MIN_FLOPS {
        // Packing would dominate; the plain loops keep the identical
        // per-element accumulation order, so this changes nothing but speed.
        gemm_small(m, n, k, a_src, b_src, c, ldc, c_col0);
        return;
    }
    let threads = effective_threads(m, n, k, threads);
    if threads <= 1 {
        gemm_stripe(0, m, n, k, a_src, b_src, c, ldc, c_col0);
        return;
    }
    // Equal MR-aligned stripes (the last may be short): chunk boundaries
    // fall on row boundaries, so each worker owns disjoint output rows.
    let stripe_rows = m.div_ceil(threads).div_ceil(MR) * MR;
    std::thread::scope(|scope| {
        for (si, chunk) in c.chunks_mut(stripe_rows * ldc).enumerate() {
            let m0 = si * stripe_rows;
            let m1 = (m0 + stripe_rows).min(m);
            scope.spawn(move || gemm_stripe(m0, m1, n, k, a_src, b_src, chunk, ldc, c_col0));
        }
    });
}

/// Unblocked `C += op(A) op(B)` for matrices too small to amortize
/// packing: one accumulator per element, k increasing — the same
/// operation sequence as the blocked kernel, so the two are bitwise
/// interchangeable.
#[allow(clippy::too_many_arguments)] // mirrors gemm_threaded's signature
fn gemm_small(
    m: usize,
    n: usize,
    k: usize,
    a_src: Src<'_>,
    b_src: Src<'_>,
    c: &mut [f32],
    ldc: usize,
    c_col0: usize,
) {
    let a = |i: usize, p: usize| match a_src {
        Src::N(v) => v.data[v.off + i * v.stride + p],
        Src::T(v) => v.data[v.off + p * v.stride + i],
    };
    let b = |p: usize, j: usize| match b_src {
        Src::N(v) => v.data[v.off + p * v.stride + j],
        Src::T(v) => v.data[v.off + j * v.stride + p],
    };
    for i in 0..m {
        let c_row = &mut c[i * ldc + c_col0..i * ldc + c_col0 + n];
        for (j, o) in c_row.iter_mut().enumerate() {
            let mut acc = *o;
            for p in 0..k {
                acc += a(i, p) * b(p, j);
            }
            *o = acc;
        }
    }
}

// ---------------------------------------------------------------------------
// Crate-internal strided entry points (used by the tape's attention ops)
// ---------------------------------------------------------------------------

/// `C += A B` over strided views: `a` is `[m, k]`, `b` is `[k, n]`.
pub(crate) fn gemm_nn(
    c: &mut [f32],
    ldc: usize,
    c_col0: usize,
    (m, n, k): (usize, usize, usize),
    a: View<'_>,
    b: View<'_>,
) {
    gemm_threaded(m, n, k, Src::N(a), Src::N(b), c, ldc, c_col0, 1);
}

/// `C += A Bᵀ` over strided views: `a` is `[m, k]`, `b` is `[n, k]`.
pub(crate) fn gemm_nt(
    c: &mut [f32],
    ldc: usize,
    c_col0: usize,
    (m, n, k): (usize, usize, usize),
    a: View<'_>,
    b: View<'_>,
) {
    gemm_threaded(m, n, k, Src::N(a), Src::T(b), c, ldc, c_col0, 1);
}

/// `C += Aᵀ B` over strided views: `a` is `[k, m]`, `b` is `[k, n]`.
pub(crate) fn gemm_tn(
    c: &mut [f32],
    ldc: usize,
    c_col0: usize,
    (m, n, k): (usize, usize, usize),
    a: View<'_>,
    b: View<'_>,
) {
    gemm_threaded(m, n, k, Src::T(a), Src::N(b), c, ldc, c_col0, 1);
}

// ---------------------------------------------------------------------------
// Public whole-tensor entry points
// ---------------------------------------------------------------------------

/// Blocked `A B` (`A` is `[m, k]`, `B` is `[k, n]`) using up to `threads`
/// row-stripe threads. Bit-identical to [`matmul_naive`] at every thread
/// count; prefer [`crate::tensor::matmul`], which picks naive vs blocked
/// by size and applies the global thread budget.
pub fn matmul_blocked(a: &Tensor, b: &Tensor, threads: usize) -> Tensor {
    assert_eq!(a.cols(), b.rows(), "matmul inner dims: {:?} x {:?}", a.shape(), b.shape());
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = Tensor::zeros(m, n);
    let (av, bv) = (View::of(a), View::of(b));
    gemm_threaded(m, n, k, Src::N(av), Src::N(bv), out.data_mut(), n, 0, threads);
    out
}

/// Blocked `A Bᵀ` (`A` is `[m, k]`, `B` is `[n, k]`); see [`matmul_blocked`].
pub fn matmul_nt_blocked(a: &Tensor, b: &Tensor, threads: usize) -> Tensor {
    assert_eq!(a.cols(), b.cols(), "matmul_nt inner dims: {:?} x {:?}^T", a.shape(), b.shape());
    let (m, k, n) = (a.rows(), a.cols(), b.rows());
    let mut out = Tensor::zeros(m, n);
    let (av, bv) = (View::of(a), View::of(b));
    gemm_threaded(m, n, k, Src::N(av), Src::T(bv), out.data_mut(), n, 0, threads);
    out
}

/// Blocked `Aᵀ B` (`A` is `[k, m]`, `B` is `[k, n]`); see [`matmul_blocked`].
pub fn matmul_tn_blocked(a: &Tensor, b: &Tensor, threads: usize) -> Tensor {
    assert_eq!(a.rows(), b.rows(), "matmul_tn inner dims: {:?}^T x {:?}", a.shape(), b.shape());
    let (m, n, k) = (a.cols(), b.cols(), a.rows());
    let mut out = Tensor::zeros(m, n);
    let (av, bv) = (View::of(a), View::of(b));
    gemm_threaded(m, n, k, Src::T(av), Src::N(bv), out.data_mut(), n, 0, threads);
    out
}

/// Naive reference `A B`: plain ikj loops, the kernel the blocked path
/// must match bitwise. Kept public as the property-test oracle and the
/// baseline of the `gemm` micro-bench.
pub fn matmul_naive(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.cols(), b.rows(), "matmul inner dims: {:?} x {:?}", a.shape(), b.shape());
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = Tensor::zeros(m, n);
    for i in 0..m {
        let a_row = a.row(i);
        let o_row = out.row_mut(i);
        for (p, &a_ip) in a_row.iter().enumerate().take(k) {
            let b_row = &b.data()[p * n..(p + 1) * n];
            for (o, &bv) in o_row.iter_mut().zip(b_row.iter()) {
                *o += a_ip * bv;
            }
        }
    }
    out
}

/// Naive reference `A Bᵀ` (row-dot-row loops); see [`matmul_naive`].
pub fn matmul_nt_naive(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.cols(), b.cols(), "matmul_nt inner dims: {:?} x {:?}^T", a.shape(), b.shape());
    let (m, n) = (a.rows(), b.rows());
    let mut out = Tensor::zeros(m, n);
    for i in 0..m {
        let a_row = a.row(i);
        let o_row = out.row_mut(i);
        for (j, o) in o_row.iter_mut().enumerate() {
            let b_row = b.row(j);
            let mut acc = 0.0f32;
            for (x, y) in a_row.iter().zip(b_row.iter()) {
                acc += x * y;
            }
            *o = acc;
        }
    }
    out
}

/// Naive reference `Aᵀ B` (rank-1 update loops); see [`matmul_naive`].
pub fn matmul_tn_naive(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rows(), b.rows(), "matmul_tn inner dims: {:?}^T x {:?}", a.shape(), b.shape());
    let (m, n, k) = (a.cols(), b.cols(), a.rows());
    let mut out = Tensor::zeros(m, n);
    for p in 0..k {
        let a_row = a.row(p);
        let b_row = b.row(p);
        for (i, &a_pi) in a_row.iter().enumerate().take(m) {
            let o_row = &mut out.data_mut()[i * n..(i + 1) * n];
            for (o, &bv) in o_row.iter_mut().zip(b_row.iter()) {
                *o += a_pi * bv;
            }
        }
    }
    out
}

/// `A B` with a branch that skips zero elements of `A` — the old default
/// kernel's "sparsity" shortcut, now **opt-in**: the per-element branch
/// pessimizes dense inputs, so use this only where the left operand is
/// known to carry masked / mostly-zero rows (none of the tape's dense
/// activations qualify). Bit-identical to [`matmul_naive`] on finite
/// inputs (skipping `0·b` only drops an exact `+0.0`/`-0.0` addend).
pub fn matmul_masked(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.cols(), b.rows(), "matmul inner dims: {:?} x {:?}", a.shape(), b.shape());
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = Tensor::zeros(m, n);
    for i in 0..m {
        let a_row = a.row(i);
        let o_row = out.row_mut(i);
        for (p, &a_ip) in a_row.iter().enumerate().take(k) {
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b.data()[p * n..(p + 1) * n];
            for (o, &bv) in o_row.iter_mut().zip(b_row.iter()) {
                *o += a_ip * bv;
            }
        }
    }
    out
}

/// True when `m`×`n`×`k` is big enough for packing to pay off — the size
/// heuristic behind the [`crate::tensor`] dispatchers. Requires the AVX2
/// micro-kernel: on hosts without it the portable tile (compiled for
/// baseline SSE2) does not beat the naive saxpy loops, which already sit
/// near SSE2 peak, so dispatch keeps the naive path there.
pub(crate) fn blocked_worthwhile(m: usize, n: usize, k: usize) -> bool {
    has_avx2() && 2usize.saturating_mul(m).saturating_mul(n).saturating_mul(k) >= BLOCKED_MIN_FLOPS
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bits_eq(a: &Tensor, b: &Tensor, what: &str) {
        assert_eq!(a.shape(), b.shape(), "{what}: shape");
        for (i, (x, y)) in a.data().iter().zip(b.data().iter()).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: element {i}: {x} vs {y}");
        }
    }

    #[test]
    fn blocked_matches_naive_bitwise_across_block_boundaries() {
        let mut rng = StdRng::seed_from_u64(11);
        // Shapes straddling MR/NR/MC/KC/NC edges, including k > KC.
        for &(m, k, n) in &[
            (1, 1, 1),
            (MR, KC, NR),
            (MR + 1, KC + 3, NR + 1),
            (MC + 5, 300, NC + 9),
            (76, 96, 96),
            (2, 7, 530),
        ] {
            let a = Tensor::randn(m, k, 1.0, &mut rng);
            let b = Tensor::randn(k, n, 1.0, &mut rng);
            bits_eq(&matmul_blocked(&a, &b, 1), &matmul_naive(&a, &b), "nn");
            let bt = b.transpose();
            bits_eq(&matmul_nt_blocked(&a, &bt, 1), &matmul_nt_naive(&a, &bt), "nt");
            let at = a.transpose();
            bits_eq(&matmul_tn_blocked(&at, &b, 1), &matmul_tn_naive(&at, &b), "tn");
        }
    }

    #[test]
    fn threaded_matches_single_thread_bitwise() {
        let mut rng = StdRng::seed_from_u64(12);
        let a = Tensor::randn(193, 96, 1.0, &mut rng);
        let b = Tensor::randn(96, 384, 1.0, &mut rng);
        let one = matmul_blocked(&a, &b, 1);
        for threads in [2, 3, 8] {
            bits_eq(&matmul_blocked(&a, &b, threads), &one, "threads");
        }
    }

    #[test]
    fn masked_matches_naive_on_finite_inputs() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut a = Tensor::randn(9, 14, 1.0, &mut rng);
        for (i, v) in a.data_mut().iter_mut().enumerate() {
            if i % 3 == 0 {
                *v = 0.0;
            }
        }
        let b = Tensor::randn(14, 21, 1.0, &mut rng);
        bits_eq(&matmul_masked(&a, &b), &matmul_naive(&a, &b), "masked");
    }

    #[test]
    fn degenerate_dims_yield_zero_output() {
        let a = Tensor::zeros(3, 0);
        let b = Tensor::zeros(0, 4);
        let c = matmul_blocked(&a, &b, 4);
        assert_eq!(c.shape(), (3, 4));
        assert!(c.data().iter().all(|&v| v == 0.0));
        assert_eq!(matmul_blocked(&Tensor::zeros(0, 5), &Tensor::zeros(5, 2), 2).shape(), (0, 2));
    }
}
