//! # doduo-tokenizer
//!
//! WordPiece tokenizer, standing in for BERT's `bert-base-uncased`
//! tokenizer. Subword inventories are learned with byte-pair-encoding
//! merges over a training corpus, and text is encoded with the standard
//! greedy longest-match-first WordPiece algorithm (continuation pieces are
//! prefixed `##`). The BERT special tokens `[PAD] [UNK] [CLS] [SEP] [MASK]`
//! occupy the first five ids, exactly as the serialization scheme in the
//! paper (§4.2) assumes.

#![warn(missing_docs)]

mod vocab;
mod wordpiece;

pub use vocab::{Vocab, CLS, MASK, PAD, SEP, SPECIAL_TOKENS, UNK};
pub use wordpiece::{pre_tokenize, TrainConfig, WordPiece};
