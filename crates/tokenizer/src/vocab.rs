//! Token ↔ id vocabulary with fixed special tokens.

use std::collections::HashMap;

/// Padding token id (unused by the per-sequence tapes but reserved to keep
/// ids aligned with the BERT convention).
pub const PAD: u32 = 0;
/// Unknown-token id.
pub const UNK: u32 = 1;
/// Sequence/column marker id ([`crate::WordPiece`] never emits it from text;
/// serializers insert it explicitly).
pub const CLS: u32 = 2;
/// Separator id.
pub const SEP: u32 = 3;
/// Mask id used by masked-language-model pretraining.
pub const MASK: u32 = 4;

/// The special tokens, in id order.
pub const SPECIAL_TOKENS: [&str; 5] = ["[PAD]", "[UNK]", "[CLS]", "[SEP]", "[MASK]"];

/// Bidirectional token ↔ id map. Ids `0..5` are always the special tokens.
#[derive(Clone, Debug)]
pub struct Vocab {
    token_to_id: HashMap<String, u32>,
    id_to_token: Vec<String>,
}

impl Vocab {
    /// Builds a vocabulary from subword pieces (specials are prepended;
    /// duplicate pieces are ignored).
    pub fn from_pieces<I: IntoIterator<Item = String>>(pieces: I) -> Self {
        let mut id_to_token: Vec<String> = SPECIAL_TOKENS.iter().map(|s| s.to_string()).collect();
        let mut token_to_id: HashMap<String, u32> =
            id_to_token.iter().enumerate().map(|(i, t)| (t.clone(), i as u32)).collect();
        for piece in pieces {
            if token_to_id.contains_key(&piece) {
                continue;
            }
            token_to_id.insert(piece.clone(), id_to_token.len() as u32);
            id_to_token.push(piece);
        }
        Vocab { token_to_id, id_to_token }
    }

    /// Number of pieces, including the special tokens.
    pub fn len(&self) -> usize {
        self.id_to_token.len()
    }

    /// Always `false`: the special tokens are always present.
    pub fn is_empty(&self) -> bool {
        false // specials are always present
    }

    /// Id of a piece, if it is in the vocabulary.
    pub fn id(&self, token: &str) -> Option<u32> {
        self.token_to_id.get(token).copied()
    }

    /// Token text for an id; panics on out-of-range ids.
    pub fn token(&self, id: u32) -> &str {
        &self.id_to_token[id as usize]
    }

    /// Whether a piece is in the vocabulary.
    pub fn contains(&self, token: &str) -> bool {
        self.token_to_id.contains_key(token)
    }

    /// Iterates `(id, token)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.id_to_token.iter().enumerate().map(|(i, t)| (i as u32, t.as_str()))
    }

    /// Serializes as newline-separated tokens in id order.
    pub fn to_text(&self) -> String {
        self.id_to_token.join("\n")
    }

    /// Parses [`Vocab::to_text`] output. Returns `None` if the special-token
    /// prefix is missing or ids would be ambiguous.
    pub fn from_text(text: &str) -> Option<Self> {
        let lines: Vec<&str> = text.lines().collect();
        if lines.len() < SPECIAL_TOKENS.len() {
            return None;
        }
        for (i, s) in SPECIAL_TOKENS.iter().enumerate() {
            if lines[i] != *s {
                return None;
            }
        }
        let mut seen = HashMap::new();
        for (i, l) in lines.iter().enumerate() {
            if seen.insert(l.to_string(), i).is_some() {
                return None;
            }
        }
        Some(Vocab::from_pieces(lines[SPECIAL_TOKENS.len()..].iter().map(|s| s.to_string())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specials_have_fixed_ids() {
        let v = Vocab::from_pieces(["hello".to_string(), "##lo".to_string()]);
        assert_eq!(v.id("[PAD]"), Some(PAD));
        assert_eq!(v.id("[UNK]"), Some(UNK));
        assert_eq!(v.id("[CLS]"), Some(CLS));
        assert_eq!(v.id("[SEP]"), Some(SEP));
        assert_eq!(v.id("[MASK]"), Some(MASK));
        assert_eq!(v.id("hello"), Some(5));
        assert_eq!(v.token(6), "##lo");
        assert_eq!(v.len(), 7);
    }

    #[test]
    fn duplicates_collapse() {
        let v = Vocab::from_pieces(["a".to_string(), "a".to_string(), "b".to_string()]);
        assert_eq!(v.len(), 7);
    }

    #[test]
    fn text_roundtrip() {
        let v = Vocab::from_pieces(["ab".to_string(), "##cd".to_string()]);
        let text = v.to_text();
        let v2 = Vocab::from_text(&text).expect("roundtrip");
        assert_eq!(v.len(), v2.len());
        for (id, tok) in v.iter() {
            assert_eq!(v2.token(id), tok);
        }
    }

    #[test]
    fn from_text_rejects_missing_specials() {
        assert!(Vocab::from_text("a\nb\nc").is_none());
    }
}
