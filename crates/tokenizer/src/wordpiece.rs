//! BPE-trained WordPiece tokenizer.
//!
//! Training follows the classic byte-pair-encoding recipe: every word is a
//! sequence of single-character pieces (continuations prefixed `##`), and
//! the most frequent adjacent pair is merged repeatedly. Encoding uses the
//! greedy longest-match-first WordPiece algorithm from BERT.

use crate::vocab::{Vocab, UNK};
use std::collections::HashMap;

/// Training hyper-parameters.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Number of BPE merge operations (upper-bounds the learned pieces).
    pub merges: usize,
    /// Pairs occurring fewer times than this are never merged.
    pub min_pair_count: usize,
    /// Words longer than this (in chars) are encoded as `[UNK]`.
    pub max_word_len: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig { merges: 4000, min_pair_count: 2, max_word_len: 48 }
    }
}

/// A trained WordPiece tokenizer.
#[derive(Clone, Debug)]
pub struct WordPiece {
    vocab: Vocab,
    max_word_len: usize,
}

/// Lower-cases and splits text into words: runs of alphanumerics stay
/// together, every other non-whitespace character becomes its own token.
/// This mirrors BERT's `BasicTokenizer` closely enough for table values.
pub fn pre_tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            for lc in ch.to_lowercase() {
                cur.push(lc);
            }
        } else {
            if !cur.is_empty() {
                out.push(std::mem::take(&mut cur));
            }
            if !ch.is_whitespace() {
                out.push(ch.to_string());
            }
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

impl WordPiece {
    /// Trains a subword vocabulary on an iterator of text lines.
    pub fn train<'a, I: IntoIterator<Item = &'a str>>(corpus: I, config: &TrainConfig) -> Self {
        // Word frequency table.
        let mut word_counts: HashMap<String, usize> = HashMap::new();
        for line in corpus {
            for w in pre_tokenize(line) {
                *word_counts.entry(w).or_insert(0) += 1;
            }
        }

        // Represent each distinct word as its current piece sequence.
        let mut words: Vec<(Vec<String>, usize)> = word_counts
            .into_iter()
            .map(|(w, c)| {
                let pieces: Vec<String> = w
                    .chars()
                    .enumerate()
                    .map(|(i, ch)| if i == 0 { ch.to_string() } else { format!("##{ch}") })
                    .collect();
                (pieces, c)
            })
            .collect();
        words.sort_by(|a, b| a.0.cmp(&b.0)); // deterministic order

        // Alphabet pieces are always in the vocabulary.
        let mut pieces: Vec<String> = Vec::new();
        let mut seen: HashMap<String, ()> = HashMap::new();
        for (w, _) in &words {
            for p in w {
                if seen.insert(p.clone(), ()).is_none() {
                    pieces.push(p.clone());
                }
            }
        }
        pieces.sort();

        // BPE merge loop.
        for _ in 0..config.merges {
            let mut pair_counts: HashMap<(String, String), usize> = HashMap::new();
            for (w, c) in &words {
                for pair in w.windows(2) {
                    *pair_counts.entry((pair[0].clone(), pair[1].clone())).or_insert(0) += c;
                }
            }
            // Deterministic argmax: highest count, then lexicographic.
            let best = pair_counts
                .into_iter()
                .filter(|(_, c)| *c >= config.min_pair_count)
                .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)));
            let Some(((left, right), _)) = best else { break };
            let merged = format!("{left}{}", right.trim_start_matches("##"));
            if !seen.contains_key(&merged) {
                seen.insert(merged.clone(), ());
                pieces.push(merged.clone());
            }
            for (w, _) in words.iter_mut() {
                let mut i = 0;
                while i + 1 < w.len() {
                    if w[i] == left && w[i + 1] == right {
                        w[i] = merged.clone();
                        w.remove(i + 1);
                    } else {
                        i += 1;
                    }
                }
            }
        }

        WordPiece { vocab: Vocab::from_pieces(pieces), max_word_len: config.max_word_len }
    }

    /// Builds a tokenizer directly from a piece list (used by tests and by
    /// checkpoint loading).
    pub fn from_vocab(vocab: Vocab, max_word_len: usize) -> Self {
        WordPiece { vocab, max_word_len }
    }

    /// The learned piece inventory.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// The longest word (in chars) encoded as pieces rather than `[UNK]`.
    /// Persisted by checkpoints so a reloaded tokenizer matches exactly.
    pub fn max_word_len(&self) -> usize {
        self.max_word_len
    }

    /// Number of pieces (the encoder's embedding-table height).
    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// Encodes one word into piece ids via greedy longest-match-first.
    /// Falls back to a single `[UNK]` if any position cannot be matched.
    fn encode_word(&self, word: &str, out: &mut Vec<u32>) {
        let chars: Vec<char> = word.chars().collect();
        if chars.len() > self.max_word_len {
            out.push(UNK);
            return;
        }
        let start_len = out.len();
        let mut start = 0;
        while start < chars.len() {
            let mut end = chars.len();
            let mut found = None;
            while end > start {
                let mut piece: String = chars[start..end].iter().collect();
                if start > 0 {
                    piece = format!("##{piece}");
                }
                if let Some(id) = self.vocab.id(&piece) {
                    found = Some((id, end));
                    break;
                }
                end -= 1;
            }
            match found {
                Some((id, e)) => {
                    out.push(id);
                    start = e;
                }
                None => {
                    out.truncate(start_len);
                    out.push(UNK);
                    return;
                }
            }
        }
    }

    /// Encodes free text to subword ids (no special tokens added; the table
    /// serializer owns `[CLS]`/`[SEP]` placement).
    pub fn encode(&self, text: &str) -> Vec<u32> {
        let mut out = Vec::new();
        for w in pre_tokenize(text) {
            self.encode_word(&w, &mut out);
        }
        out
    }

    /// Encodes and truncates to at most `budget` ids (`0` means unlimited).
    pub fn encode_with_budget(&self, text: &str, budget: usize) -> Vec<u32> {
        let mut ids = self.encode(text);
        if budget > 0 && ids.len() > budget {
            ids.truncate(budget);
        }
        ids
    }

    /// Decodes ids back to a readable string (`##` continuations joined).
    pub fn decode(&self, ids: &[u32]) -> String {
        let mut out = String::new();
        for &id in ids {
            let tok = self.vocab.token(id);
            if let Some(cont) = tok.strip_prefix("##") {
                out.push_str(cont);
            } else {
                if !out.is_empty() {
                    out.push(' ');
                }
                out.push_str(tok);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::{CLS, SEP};

    fn small_tok() -> WordPiece {
        let corpus = [
            "the happy feet film was directed by george miller",
            "the cars film was directed by john lasseter",
            "george miller produced happy feet",
            "miller was born in brisbane",
            "derrick henry plays for alabama",
            "the flushed away film was directed by david bowers",
        ];
        WordPiece::train(corpus, &TrainConfig { merges: 200, min_pair_count: 2, max_word_len: 32 })
    }

    #[test]
    fn frequent_words_become_single_tokens() {
        let t = small_tok();
        // "miller" appears 3 times: should be one piece after 200 merges.
        let ids = t.encode("miller");
        assert_eq!(ids.len(), 1, "pieces: {:?}", t.decode(&ids));
        assert_eq!(t.decode(&ids), "miller");
    }

    #[test]
    fn unseen_words_decompose_not_unk() {
        let t = small_tok();
        // "filmed" was never seen but shares subwords with "film".
        let ids = t.encode("filmed");
        assert!(!ids.contains(&UNK), "should decompose via subwords: {ids:?}");
        assert_eq!(t.decode(&ids), "filmed");
    }

    #[test]
    fn unknown_characters_map_to_unk() {
        let t = small_tok();
        let ids = t.encode("Ω");
        assert_eq!(ids, vec![UNK]);
    }

    #[test]
    fn encode_never_emits_specials() {
        let t = small_tok();
        for text in ["george [CLS] miller", "a [SEP] b", "happy feet!"] {
            let ids = t.encode(text);
            assert!(!ids.contains(&CLS) && !ids.contains(&SEP), "{text} -> {ids:?}");
        }
    }

    #[test]
    fn pre_tokenize_splits_punct_and_lowercases() {
        assert_eq!(
            pre_tokenize("Happy Feet, USA! 42km"),
            vec!["happy", "feet", ",", "usa", "!", "42km"]
        );
        assert_eq!(pre_tokenize("  "), Vec::<String>::new());
        assert_eq!(pre_tokenize("a-b"), vec!["a", "-", "b"]);
    }

    #[test]
    fn budget_truncates() {
        let t = small_tok();
        let full = t.encode("george miller directed happy feet");
        let cut = t.encode_with_budget("george miller directed happy feet", 3);
        assert_eq!(&full[..3], &cut[..]);
        assert_eq!(t.encode_with_budget("george", 0), t.encode("george"));
    }

    #[test]
    fn roundtrip_known_sentence() {
        let t = small_tok();
        let text = "george miller directed happy feet";
        assert_eq!(t.decode(&t.encode(text)), text);
    }

    #[test]
    fn oversized_word_is_unk() {
        let t = small_tok();
        let long = "a".repeat(64);
        assert_eq!(t.encode(&long), vec![UNK]);
    }

    #[test]
    fn training_is_deterministic() {
        let a = small_tok();
        let b = small_tok();
        assert_eq!(a.vocab().to_text(), b.vocab().to_text());
    }

    #[test]
    fn from_vocab_roundtrips_through_text() {
        let t = small_tok();
        let text = t.vocab().to_text();
        let vocab = crate::Vocab::from_text(&text).expect("valid vocab text");
        let t2 = WordPiece::from_vocab(vocab, 32);
        let s = "george miller directed happy feet";
        assert_eq!(t.encode(s), t2.encode(s), "reloaded tokenizer must agree");
    }

    #[test]
    fn numbers_tokenize_without_unk() {
        let t = WordPiece::train(
            ["0 1 2 3 4 5 6 7 8 9 x0 x1 x2 x3 x4 x5 x6 x7 x8 x9 1990 2021"],
            &TrainConfig { merges: 100, min_pair_count: 1, max_word_len: 16 },
        );
        for n in ["7", "42", "1987", "2022"] {
            let ids = t.encode(n);
            assert!(!ids.contains(&UNK), "{n} -> {ids:?}");
        }
    }

    #[test]
    fn min_pair_count_limits_merges() {
        // With a high min_pair_count nothing merges: every word splits into
        // single-character pieces.
        let t = WordPiece::train(
            ["abc abd"],
            &TrainConfig { merges: 100, min_pair_count: 100, max_word_len: 16 },
        );
        assert_eq!(t.encode("abc").len(), 3);
    }
}
