//! The int8-quantized serving twin of [`Encoder`].
//!
//! [`QuantEncoder`] is built once from a trained f32 encoder and mirrors
//! [`Encoder::forward_batch`](crate::Encoder::forward_batch) op for op,
//! swapping only the dense layers for
//! [`QuantizedLinear`] kernels: embeddings,
//! LayerNorm, GELU, residual adds and the fused multi-head attention stay
//! in exact f32 on the tape, while the four GEMMs per layer (fused Q|K|V,
//! attention output, and both FFN matrices) run in int8 and inject their
//! dequantized outputs back as tape inputs. Because quantization scales
//! are per output channel, fusing Q/K/V into one kernel call is
//! numerically identical to three separate quantized projections.
//!
//! Inference only: the tape records no gradient path through the injected
//! nodes, and dropout (a no-op on inference tapes anyway) is skipped. The
//! numerics contract is the accuracy-gated tier of the two-tier policy
//! described in `doduo_tensor::quant` — not bit-equal to f32, but
//! bit-stable across kernels and thread counts on a host.

use crate::config::EncoderConfig;
use crate::encoder::{BatchEncoding, BatchSeq, Encoder};
use doduo_tensor::{AttnMask, ParamId, ParamStore, QuantizedLinear, Tape};
use std::sync::Arc;

struct QuantLayer {
    /// Fused `[d, 3d]` Q|K|V projection (columns in the order
    /// `Tape::fused_qkv` emits).
    qkv: QuantizedLinear,
    /// Attention output projection `[d, d]`.
    wo: QuantizedLinear,
    /// FFN up-projection `[d, ffn]`.
    w1: QuantizedLinear,
    /// FFN down-projection `[ffn, d]`.
    w2: QuantizedLinear,
    ln1_g: ParamId,
    ln1_b: ParamId,
    ln2_g: ParamId,
    ln2_b: ParamId,
}

/// An inference-only encoder whose dense layers were quantized to int8
/// from a trained f32 [`Encoder`].
pub struct QuantEncoder {
    cfg: EncoderConfig,
    tok_emb: ParamId,
    pos_emb: ParamId,
    emb_ln_g: ParamId,
    emb_ln_b: ParamId,
    layers: Vec<QuantLayer>,
}

impl QuantEncoder {
    /// Quantizes every dense layer of `enc` (whose weights live in
    /// `store`). The embedding tables and LayerNorm parameters are shared
    /// with the f32 encoder by id, not copied.
    pub fn from_encoder(enc: &Encoder, store: &ParamStore) -> QuantEncoder {
        let layers = enc
            .layers
            .iter()
            .map(|l| QuantLayer {
                qkv: QuantizedLinear::from_concat(&[
                    (store.get(l.wq), store.get(l.bq)),
                    (store.get(l.wk), store.get(l.bk)),
                    (store.get(l.wv), store.get(l.bv)),
                ]),
                wo: QuantizedLinear::from_f32(store.get(l.wo), store.get(l.bo)),
                w1: QuantizedLinear::from_f32(store.get(l.w1), store.get(l.b1)),
                w2: QuantizedLinear::from_f32(store.get(l.w2), store.get(l.b2)),
                ln1_g: l.ln1_g,
                ln1_b: l.ln1_b,
                ln2_g: l.ln2_g,
                ln2_b: l.ln2_b,
            })
            .collect();
        QuantEncoder {
            cfg: enc.config().clone(),
            tok_emb: enc.tok_emb,
            pos_emb: enc.pos_emb,
            emb_ln_g: enc.emb_ln_g,
            emb_ln_b: enc.emb_ln_b,
            layers,
        }
    }

    /// The configuration inherited from the f32 encoder.
    pub fn config(&self) -> &EncoderConfig {
        &self.cfg
    }

    /// The quantized mirror of
    /// [`Encoder::forward_batch`](crate::Encoder::forward_batch): same
    /// ragged packing, same op sequence, int8 dense layers. `tape` must be
    /// an inference tape.
    pub fn forward_batch(&self, tape: &mut Tape<'_>, seqs: &[BatchSeq<'_>]) -> BatchEncoding {
        assert!(!seqs.is_empty(), "cannot encode an empty batch");
        let total: usize = seqs.iter().map(|q| q.ids.len()).sum();
        let mut ids = Vec::with_capacity(total);
        let mut positions = Vec::with_capacity(total);
        let mut masks: Vec<Option<AttnMask>> = Vec::with_capacity(seqs.len());
        let mut lens = Vec::with_capacity(seqs.len());
        let mut offsets = Vec::with_capacity(seqs.len());
        for seq in seqs {
            let len = seq.ids.len();
            assert!(len > 0, "cannot encode an empty sequence");
            assert!(
                len <= self.cfg.max_seq,
                "sequence length {len} exceeds max_seq {}",
                self.cfg.max_seq
            );
            offsets.push(ids.len());
            ids.extend_from_slice(seq.ids);
            positions.extend(0..len as u32);
            masks.push(seq.mask.map(Arc::clone));
            lens.push(len);
        }

        let tok = tape.embedding(self.tok_emb, &ids);
        let pos = tape.embedding(self.pos_emb, &positions);
        let sum = tape.add(tok, pos);
        let mut x = tape.layer_norm(sum, self.emb_ln_g, self.emb_ln_b);

        for layer in &self.layers {
            let qkv_t = layer.qkv.forward(tape.value(x));
            let qkv = tape.input(qkv_t);
            let att = tape.mha_batch_qkv(qkv, self.cfg.heads, &masks, Some(&lens));
            let proj_t = layer.wo.forward(tape.value(att));
            let proj = tape.input(proj_t);
            let res1 = tape.add(x, proj);
            let h = tape.layer_norm(res1, layer.ln1_g, layer.ln1_b);

            let f1_t = layer.w1.forward(tape.value(h));
            let f1 = tape.input(f1_t);
            let act = tape.gelu(f1);
            let f2_t = layer.w2.forward(tape.value(act));
            let f2 = tape.input(f2_t);
            let res2 = tape.add(h, f2);
            x = tape.layer_norm(res2, layer.ln2_g, layer.ln2_b);
        }
        BatchEncoding { node: x, offsets }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::mask_from_fn;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn build() -> (ParamStore, Encoder) {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let enc = Encoder::new(&mut store, EncoderConfig::tiny(50), "enc", &mut rng);
        (store, enc)
    }

    #[test]
    fn quant_batch_close_to_f32_batch() {
        let (store, enc) = build();
        let qenc = QuantEncoder::from_encoder(&enc, &store);
        let seqs: Vec<Vec<u32>> = vec![vec![2, 7, 8, 9, 3], vec![2, 10, 3]];
        let mask1 = mask_from_fn(seqs[1].len(), |i, j| i == j || j == 0);
        let masks = [None, Some(&mask1)];
        let batch: Vec<BatchSeq<'_>> = seqs
            .iter()
            .zip(masks.iter())
            .map(|(ids, mask)| BatchSeq { ids, mask: *mask })
            .collect();

        let mut rng = StdRng::seed_from_u64(2);
        let mut ft = Tape::inference(&store);
        let f = enc.forward_batch(&mut ft, &batch, &mut rng);
        let mut qt = Tape::inference(&store);
        let q = qenc.forward_batch(&mut qt, &batch);

        let fv = ft.value(f.node);
        let qv = qt.value(q.node);
        assert_eq!(fv.shape(), qv.shape());
        assert!(!qv.has_non_finite());
        // Freshly initialized weights, LayerNorm-bounded activations:
        // int8 per-channel quantization stays close to f32. This is a
        // sanity bound, not the accuracy gate (the repro harness pins
        // task-level drift on trained weights).
        let mut max_abs = 0f32;
        for (a, b) in fv.data().iter().zip(qv.data()) {
            max_abs = max_abs.max((a - b).abs());
        }
        assert!(max_abs < 0.35, "quantized encoder drifted too far: {max_abs}");
        // And it must not be exactly f32 — that would mean the quantized
        // kernels were silently bypassed.
        assert!(max_abs > 0.0, "quantized forward is suspiciously bit-equal to f32");
    }

    #[test]
    fn quant_forward_is_deterministic() {
        let (store, enc) = build();
        let qenc = QuantEncoder::from_encoder(&enc, &store);
        let ids = [2u32, 5, 6, 7, 3];
        let run = || {
            let mut tape = Tape::inference(&store);
            let out = qenc.forward_batch(&mut tape, &[BatchSeq { ids: &ids, mask: None }]);
            tape.value(out.node).clone()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn quant_offsets_match_f32_packing() {
        let (store, enc) = build();
        let qenc = QuantEncoder::from_encoder(&enc, &store);
        let seqs: Vec<Vec<u32>> = vec![vec![2, 3], vec![2, 4, 5, 3], vec![2, 3]];
        let batch: Vec<BatchSeq<'_>> =
            seqs.iter().map(|ids| BatchSeq { ids, mask: None }).collect();
        let mut tape = Tape::inference(&store);
        let out = qenc.forward_batch(&mut tape, &batch);
        assert_eq!(out.row_of(0, 0), 0);
        assert_eq!(out.row_of(1, 0), 2);
        assert_eq!(out.row_of(2, 0), 6);
        assert_eq!(tape.value(out.node).shape(), (8, enc.config().hidden));
    }
}
