//! The Transformer encoder (Figure 3 of the paper).
//!
//! Post-LayerNorm BERT blocks over one token sequence. The fused
//! multi-head-attention op optionally takes an additive visibility mask,
//! which is how the TURL baseline's restricted attention is expressed
//! (§5.4: TURL removes "cross-column" edges; Doduo uses full attention).
//!
//! Two forward paths share the same weights and arithmetic:
//!
//! * [`Encoder::forward`] — one sequence per call; this is what training
//!   uses (one table = one tape, gradient fan-out happens across tapes via
//!   `doduo_tensor::accumulate_parallel`).
//! * [`Encoder::forward_batch`] — the serving path: several sequences are
//!   packed row-wise, unpadded, into one ragged `[sum(len), d]` activation,
//!   with attention kept block-diagonal by `Tape::mha_batch`. All
//!   non-attention ops (dense layers, LayerNorm, GELU) are row-wise, so the
//!   batched forward is bit-identical to `B` single-sequence forwards while
//!   paying the tape/bookkeeping overhead once per batch instead of once
//!   per table and adding zero padding waste.

use crate::config::EncoderConfig;
use doduo_tensor::{AttnMask, NodeId, ParamId, ParamStore, Tape, MASK_NEG};
use rand::Rng;
use std::sync::Arc;

pub(crate) struct LayerParams {
    pub(crate) wq: ParamId,
    pub(crate) bq: ParamId,
    pub(crate) wk: ParamId,
    pub(crate) bk: ParamId,
    pub(crate) wv: ParamId,
    pub(crate) bv: ParamId,
    pub(crate) wo: ParamId,
    pub(crate) bo: ParamId,
    pub(crate) ln1_g: ParamId,
    pub(crate) ln1_b: ParamId,
    pub(crate) w1: ParamId,
    pub(crate) b1: ParamId,
    pub(crate) w2: ParamId,
    pub(crate) b2: ParamId,
    pub(crate) ln2_g: ParamId,
    pub(crate) ln2_b: ParamId,
}

/// A BERT-style encoder whose weights live in a shared [`ParamStore`].
pub struct Encoder {
    cfg: EncoderConfig,
    pub(crate) tok_emb: ParamId,
    pub(crate) pos_emb: ParamId,
    pub(crate) emb_ln_g: ParamId,
    pub(crate) emb_ln_b: ParamId,
    pub(crate) layers: Vec<LayerParams>,
}

const INIT_STD: f32 = 0.02;

impl Encoder {
    /// Registers all encoder parameters under `prefix` (e.g. `"enc"`) and
    /// initializes them BERT-style (`N(0, 0.02^2)`, zero biases, unit LN
    /// gains).
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        cfg: EncoderConfig,
        prefix: &str,
        rng: &mut R,
    ) -> Self {
        cfg.validate();
        let d = cfg.hidden;
        let tok_emb =
            store.add_randn(format!("{prefix}.emb.tok"), cfg.vocab_size, d, INIT_STD, rng);
        let pos_emb = store.add_randn(format!("{prefix}.emb.pos"), cfg.max_seq, d, INIT_STD, rng);
        let emb_ln_g = store.add_ones(format!("{prefix}.emb.ln.g"), 1, d);
        let emb_ln_b = store.add_zeros(format!("{prefix}.emb.ln.b"), 1, d);
        let mut layers = Vec::with_capacity(cfg.layers);
        for l in 0..cfg.layers {
            let p = |s: &str| format!("{prefix}.l{l}.{s}");
            layers.push(LayerParams {
                wq: store.add_randn(p("attn.wq"), d, d, INIT_STD, rng),
                bq: store.add_zeros(p("attn.bq"), 1, d),
                wk: store.add_randn(p("attn.wk"), d, d, INIT_STD, rng),
                bk: store.add_zeros(p("attn.bk"), 1, d),
                wv: store.add_randn(p("attn.wv"), d, d, INIT_STD, rng),
                bv: store.add_zeros(p("attn.bv"), 1, d),
                wo: store.add_randn(p("attn.wo"), d, d, INIT_STD, rng),
                bo: store.add_zeros(p("attn.bo"), 1, d),
                ln1_g: store.add_ones(p("ln1.g"), 1, d),
                ln1_b: store.add_zeros(p("ln1.b"), 1, d),
                w1: store.add_randn(p("ffn.w1"), d, cfg.ffn, INIT_STD, rng),
                b1: store.add_zeros(p("ffn.b1"), 1, cfg.ffn),
                w2: store.add_randn(p("ffn.w2"), cfg.ffn, d, INIT_STD, rng),
                b2: store.add_zeros(p("ffn.b2"), 1, d),
                ln2_g: store.add_ones(p("ln2.g"), 1, d),
                ln2_b: store.add_zeros(p("ln2.b"), 1, d),
            });
        }
        Encoder { cfg, tok_emb, pos_emb, emb_ln_g, emb_ln_b, layers }
    }

    pub fn config(&self) -> &EncoderConfig {
        &self.cfg
    }

    /// Encodes `ids`, returning the `[S, d]` top-layer representation node.
    pub fn forward<R: Rng + ?Sized>(
        &self,
        tape: &mut Tape<'_>,
        ids: &[u32],
        mask: Option<&AttnMask>,
        rng: &mut R,
    ) -> NodeId {
        self.forward_impl(tape, ids, mask, rng, None)
    }

    /// Like [`Encoder::forward`], also appending each layer's fused MHA node
    /// id to `attn_nodes` so callers can read attention probabilities
    /// (Figure 6's analysis uses the last layer).
    pub fn forward_collect_attn<R: Rng + ?Sized>(
        &self,
        tape: &mut Tape<'_>,
        ids: &[u32],
        mask: Option<&AttnMask>,
        rng: &mut R,
        attn_nodes: &mut Vec<NodeId>,
    ) -> NodeId {
        self.forward_impl(tape, ids, mask, rng, Some(attn_nodes))
    }

    /// Encodes a batch of sequences in one packed forward pass.
    ///
    /// Sequences are concatenated row-wise with **no padding** (the ragged
    /// layout): the returned [`BatchEncoding`] points at the
    /// `[sum(len_b), d]` top-layer activation, with sequence `b` occupying
    /// rows `[offset_b, offset_b + len_b)` (see [`BatchEncoding::row_of`]).
    /// Attention stays block-diagonal via `Tape::mha_batch`'s per-block
    /// lengths, so every sequence pays exactly its own `O(len^2)` attention
    /// and `O(len)` dense-layer work — batching adds zero wasted compute.
    /// Per-sequence visibility masks (the TURL baseline) apply at their
    /// native `[len_b, len_b]` shape.
    ///
    /// On an inference tape this is bit-identical to calling
    /// [`Encoder::forward`] once per sequence; see `Tape::mha_batch`.
    pub fn forward_batch<R: Rng + ?Sized>(
        &self,
        tape: &mut Tape<'_>,
        seqs: &[BatchSeq<'_>],
        rng: &mut R,
    ) -> BatchEncoding {
        assert!(!seqs.is_empty(), "cannot encode an empty batch");

        // Pack ids and positions; masks and block lengths are built once
        // and shared across layers.
        let total: usize = seqs.iter().map(|q| q.ids.len()).sum();
        let mut ids = Vec::with_capacity(total);
        let mut positions = Vec::with_capacity(total);
        let mut masks: Vec<Option<AttnMask>> = Vec::with_capacity(seqs.len());
        let mut lens = Vec::with_capacity(seqs.len());
        let mut offsets = Vec::with_capacity(seqs.len());
        for seq in seqs {
            let len = seq.ids.len();
            assert!(len > 0, "cannot encode an empty sequence");
            assert!(
                len <= self.cfg.max_seq,
                "sequence length {len} exceeds max_seq {}",
                self.cfg.max_seq
            );
            offsets.push(ids.len());
            ids.extend_from_slice(seq.ids);
            positions.extend(0..len as u32);
            masks.push(seq.mask.map(Arc::clone));
            lens.push(len);
        }

        let p = self.cfg.dropout;
        let tok = tape.embedding(self.tok_emb, &ids);
        let pos = tape.embedding(self.pos_emb, &positions);
        let sum = tape.add(tok, pos);
        let normed = tape.layer_norm(sum, self.emb_ln_g, self.emb_ln_b);
        let mut x = tape.dropout(normed, p, rng);

        for layer in &self.layers {
            // One fused pass over `x` for all three projections, attention
            // straight off the packed Q|K|V — the serving path's
            // memory-bandwidth savers (both bit-identical to the unfused
            // training-path ops).
            let qkv = tape.fused_qkv(x, layer.wq, layer.bq, layer.wk, layer.bk, layer.wv, layer.bv);
            let att = tape.mha_batch_qkv(qkv, self.cfg.heads, &masks, Some(&lens));
            let proj = tape.linear(att, layer.wo, layer.bo);
            let proj = tape.dropout(proj, p, rng);
            let res1 = tape.add(x, proj);
            let h = tape.layer_norm(res1, layer.ln1_g, layer.ln1_b);

            let f1 = tape.linear(h, layer.w1, layer.b1);
            let act = tape.gelu(f1);
            let f2 = tape.linear(act, layer.w2, layer.b2);
            let f2 = tape.dropout(f2, p, rng);
            let res2 = tape.add(h, f2);
            x = tape.layer_norm(res2, layer.ln2_g, layer.ln2_b);
        }
        BatchEncoding { node: x, offsets }
    }

    fn forward_impl<R: Rng + ?Sized>(
        &self,
        tape: &mut Tape<'_>,
        ids: &[u32],
        mask: Option<&AttnMask>,
        rng: &mut R,
        mut attn_nodes: Option<&mut Vec<NodeId>>,
    ) -> NodeId {
        let s = ids.len();
        assert!(s > 0, "cannot encode an empty sequence");
        assert!(s <= self.cfg.max_seq, "sequence length {s} exceeds max_seq {}", self.cfg.max_seq);
        let p = self.cfg.dropout;
        let positions: Vec<u32> = (0..s as u32).collect();
        let tok = tape.embedding(self.tok_emb, ids);
        let pos = tape.embedding(self.pos_emb, &positions);
        let sum = tape.add(tok, pos);
        let normed = tape.layer_norm(sum, self.emb_ln_g, self.emb_ln_b);
        let mut x = tape.dropout(normed, p, rng);

        for layer in &self.layers {
            let q = tape.linear(x, layer.wq, layer.bq);
            let k = tape.linear(x, layer.wk, layer.bk);
            let v = tape.linear(x, layer.wv, layer.bv);
            let att = tape.mha(q, k, v, self.cfg.heads, mask);
            if let Some(nodes) = attn_nodes.as_deref_mut() {
                nodes.push(att);
            }
            let proj = tape.linear(att, layer.wo, layer.bo);
            let proj = tape.dropout(proj, p, rng);
            let res1 = tape.add(x, proj);
            let h = tape.layer_norm(res1, layer.ln1_g, layer.ln1_b);

            let f1 = tape.linear(h, layer.w1, layer.b1);
            let act = tape.gelu(f1);
            let f2 = tape.linear(act, layer.w2, layer.b2);
            let f2 = tape.dropout(f2, p, rng);
            let res2 = tape.add(h, f2);
            x = tape.layer_norm(res2, layer.ln2_g, layer.ln2_b);
        }
        x
    }
}

/// One sequence of a batched forward pass.
#[derive(Clone, Copy)]
pub struct BatchSeq<'a> {
    /// Token ids, unpadded (padding is added by [`Encoder::forward_batch`]).
    pub ids: &'a [u32],
    /// Optional additive visibility mask sized `[ids.len(), ids.len()]`
    /// (e.g. the TURL baseline's column-visibility matrix).
    pub mask: Option<&'a AttnMask>,
}

/// Output of [`Encoder::forward_batch`].
pub struct BatchEncoding {
    /// The packed `[sum(len_b), hidden]` top-layer activation node;
    /// sequence `b`'s token `t` lives at row `offsets[b] + t`.
    pub node: NodeId,
    /// Starting activation row of each packed sequence.
    pub(crate) offsets: Vec<usize>,
}

impl BatchEncoding {
    /// The activation row holding token `t` of sequence `b`.
    pub fn row_of(&self, b: usize, t: usize) -> usize {
        self.offsets[b] + t
    }
}

/// Builds an additive attention mask from a visibility predicate:
/// `visible(i, j)` says whether token `i` may attend to token `j`.
pub fn mask_from_fn(s: usize, visible: impl Fn(usize, usize) -> bool) -> AttnMask {
    let mut m = vec![0.0f32; s * s];
    for i in 0..s {
        for j in 0..s {
            if !visible(i, j) {
                m[i * s + j] = MASK_NEG;
            }
        }
    }
    Arc::new(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use doduo_tensor::{Gradients, Tensor};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn build() -> (ParamStore, Encoder) {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let enc = Encoder::new(&mut store, EncoderConfig::tiny(50), "enc", &mut rng);
        (store, enc)
    }

    #[test]
    fn forward_shape_is_seq_by_hidden() {
        let (store, enc) = build();
        let mut rng = StdRng::seed_from_u64(2);
        let mut tape = Tape::inference(&store);
        let out = enc.forward(&mut tape, &[2, 7, 8, 9, 3], None, &mut rng);
        assert_eq!(tape.value(out).shape(), (5, 32));
        assert!(!tape.value(out).has_non_finite());
    }

    #[test]
    fn deterministic_in_inference_mode() {
        let (store, enc) = build();
        let ids = [2u32, 10, 11, 3];
        let run = || {
            let mut rng = StdRng::seed_from_u64(9);
            let mut tape = Tape::inference(&store);
            let out = enc.forward(&mut tape, &ids, None, &mut rng);
            tape.value(out).clone()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn contextual_embeddings_differ_with_context() {
        // The same token id in two different contexts must get different
        // representations — the polysemy property of §3.2.
        let (store, enc) = build();
        let mut rng = StdRng::seed_from_u64(3);
        let mut tape = Tape::inference(&store);
        let a = enc.forward(&mut tape, &[2, 20, 21, 3], None, &mut rng);
        let b = enc.forward(&mut tape, &[2, 20, 35, 3], None, &mut rng);
        let va = tape.value(a).row(1).to_vec();
        let vb = tape.value(b).row(1).to_vec();
        let diff: f32 = va.iter().zip(&vb).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1e-4, "token 20 should be contextualized, diff={diff}");
    }

    #[test]
    fn gradients_flow_to_all_parameters() {
        let (store, enc) = build();
        let mut rng = StdRng::seed_from_u64(4);
        let mut tape = Tape::inference(&store);
        let out = enc.forward(&mut tape, &[2, 12, 13, 14, 3], None, &mut rng);
        // Mean-pool to a scalar through a fake loss: select row 0 and BCE it.
        let cls = tape.row_select(out, &[0]);
        let t = Tensor::full(1, 32, 1.0);
        let loss = tape.bce_logits(cls, &t);
        let mut grads = Gradients::new(&store);
        tape.backward(loss, &mut grads);
        let with_grad = (0..store.len()).filter(|&p| grads.get(p).is_some()).count();
        // Position embeddings beyond the sequence obviously get zero rows but
        // the tensors themselves must all be touched.
        assert_eq!(with_grad, store.len(), "every parameter should receive gradient");
    }

    #[test]
    fn full_mask_equals_no_mask() {
        let (store, enc) = build();
        let ids = [2u32, 5, 6, 7, 3];
        let mask = mask_from_fn(ids.len(), |_, _| true);
        let mut rng = StdRng::seed_from_u64(5);
        let mut t1 = Tape::inference(&store);
        let a = enc.forward(&mut t1, &ids, None, &mut rng);
        let mut t2 = Tape::inference(&store);
        let b = enc.forward(&mut t2, &ids, Some(&mask), &mut rng);
        for (x, y) in t1.value(a).data().iter().zip(t2.value(b).data().iter()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn restrictive_mask_changes_output() {
        let (store, enc) = build();
        let ids = [2u32, 5, 6, 7, 3];
        // Tokens only see themselves.
        let mask = mask_from_fn(ids.len(), |i, j| i == j);
        let mut rng = StdRng::seed_from_u64(6);
        let mut t1 = Tape::inference(&store);
        let a = enc.forward(&mut t1, &ids, None, &mut rng);
        let mut t2 = Tape::inference(&store);
        let b = enc.forward(&mut t2, &ids, Some(&mask), &mut rng);
        let diff: f32 = t1
            .value(a)
            .data()
            .iter()
            .zip(t2.value(b).data().iter())
            .map(|(x, y)| (x - y).abs())
            .sum();
        assert!(diff > 1e-3);
    }

    #[test]
    #[should_panic(expected = "exceeds max_seq")]
    fn oversized_sequence_panics() {
        let (store, enc) = build();
        let mut rng = StdRng::seed_from_u64(7);
        let mut tape = Tape::inference(&store);
        let ids = vec![5u32; 100];
        enc.forward(&mut tape, &ids, None, &mut rng);
    }

    #[test]
    fn batched_forward_matches_sequential_bitwise() {
        // Three sequences of different lengths, one with a visibility mask:
        // the packed forward must reproduce each single-sequence forward
        // bit for bit at the real (non-padded) positions.
        let (store, enc) = build();
        let seqs: Vec<Vec<u32>> =
            vec![vec![2, 7, 8, 9, 3], vec![2, 10, 3], vec![2, 20, 21, 22, 35, 3]];
        let mask1 = mask_from_fn(seqs[1].len(), |i, j| i == j || j == 0);
        let masks = [None, Some(&mask1), None];

        let mut rng = StdRng::seed_from_u64(11);
        let mut batch_tape = Tape::inference(&store);
        let batch_seqs: Vec<BatchSeq<'_>> = seqs
            .iter()
            .zip(masks.iter())
            .map(|(ids, mask)| BatchSeq { ids, mask: *mask })
            .collect();
        let out = enc.forward_batch(&mut batch_tape, &batch_seqs, &mut rng);
        let bv = batch_tape.value(out.node);
        let total: usize = seqs.iter().map(Vec::len).sum();
        assert_eq!(bv.shape(), (total, enc.config().hidden));
        assert!(!bv.has_non_finite());

        for (b, (ids, mask)) in seqs.iter().zip(masks.iter()).enumerate() {
            let mut tape = Tape::inference(&store);
            let mut rng = StdRng::seed_from_u64(99);
            let single = enc.forward(&mut tape, ids, *mask, &mut rng);
            let sv = tape.value(single);
            for t in 0..ids.len() {
                for c in 0..enc.config().hidden {
                    assert_eq!(
                        bv.get(out.row_of(b, t), c).to_bits(),
                        sv.get(t, c).to_bits(),
                        "seq {b} token {t} dim {c}"
                    );
                }
            }
        }
    }

    #[test]
    fn batch_of_one_equals_plain_forward() {
        let (store, enc) = build();
        let ids = [2u32, 5, 6, 3];
        let mut rng = StdRng::seed_from_u64(12);
        let mut t1 = Tape::inference(&store);
        let a = enc.forward(&mut t1, &ids, None, &mut rng);
        let mut t2 = Tape::inference(&store);
        let b = enc.forward_batch(&mut t2, &[BatchSeq { ids: &ids, mask: None }], &mut rng);
        assert_eq!(b.row_of(0, 0), 0);
        for (x, y) in t1.value(a).data().iter().zip(t2.value(b.node).data().iter()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn empty_batch_panics() {
        let (store, enc) = build();
        let mut rng = StdRng::seed_from_u64(13);
        let mut tape = Tape::inference(&store);
        enc.forward_batch(&mut tape, &[], &mut rng);
    }

    #[test]
    fn attn_collection_yields_one_node_per_layer() {
        let (store, enc) = build();
        let mut rng = StdRng::seed_from_u64(8);
        let mut tape = Tape::inference(&store);
        let mut nodes = Vec::new();
        enc.forward_collect_attn(&mut tape, &[2, 5, 3], None, &mut rng, &mut nodes);
        assert_eq!(nodes.len(), enc.config().layers);
        let (probs, heads) = tape.mha_probs(nodes[0]).unwrap();
        assert_eq!(heads, enc.config().heads);
        // Each attention row sums to 1.
        let s = 3;
        for h in 0..heads {
            for i in 0..s {
                let sum: f32 = probs[h * s * s + i * s..h * s * s + (i + 1) * s].iter().sum();
                assert!((sum - 1.0).abs() < 1e-4);
            }
        }
    }
}
