//! Masked-language-model pretraining (§3.2 of the paper).
//!
//! The paper relies on BERT's pretraining to give the encoder "semantic
//! knowledge" about entities before fine-tuning; its probing analysis
//! (Appendix A.5) shows that a randomly-initialized model is useless and
//! that fact knowledge is retrievable by perplexity templates. This module
//! reproduces that machinery: BERT-style 80/10/10 token masking, the MLM
//! head, the pretraining loop, and pseudo-perplexity scoring.

use crate::config::EncoderConfig;
use crate::encoder::Encoder;
use doduo_tensor::{
    accumulate_parallel, Adam, Gradients, LrSchedule, NodeId, ParamId, ParamStore, Tape,
};
use doduo_tokenizer::MASK;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The MLM output head: dense + GELU + decoder to vocabulary logits.
pub struct MlmHead {
    dense_w: ParamId,
    dense_b: ParamId,
    dec_w: ParamId,
    dec_b: ParamId,
}

impl MlmHead {
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        cfg: &EncoderConfig,
        prefix: &str,
        rng: &mut R,
    ) -> Self {
        let d = cfg.hidden;
        MlmHead {
            dense_w: store.add_randn(format!("{prefix}.mlm.dense.w"), d, d, 0.02, rng),
            dense_b: store.add_zeros(format!("{prefix}.mlm.dense.b"), 1, d),
            dec_w: store.add_randn(format!("{prefix}.mlm.dec.w"), d, cfg.vocab_size, 0.02, rng),
            dec_b: store.add_zeros(format!("{prefix}.mlm.dec.b"), 1, cfg.vocab_size),
        }
    }

    /// Vocabulary logits for the selected positions of an encoded sequence.
    pub fn logits(&self, tape: &mut Tape<'_>, encoded: NodeId, positions: &[u32]) -> NodeId {
        let picked = tape.row_select(encoded, positions);
        let h = tape.linear(picked, self.dense_w, self.dense_b);
        let act = tape.gelu(h);
        tape.linear(act, self.dec_w, self.dec_b)
    }
}

/// One masked training example.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MaskedExample {
    /// Ids after masking.
    pub input: Vec<u32>,
    /// Positions that were selected for prediction.
    pub positions: Vec<u32>,
    /// Original ids at those positions.
    pub targets: Vec<u32>,
}

/// BERT's masking recipe: each non-special position is selected with
/// probability `mask_prob`; a selected position becomes `[MASK]` 80% of the
/// time, a random token 10%, and stays unchanged 10%. At least one position
/// is always selected.
pub fn mask_tokens<R: Rng + ?Sized>(
    ids: &[u32],
    vocab_size: usize,
    mask_prob: f32,
    rng: &mut R,
) -> MaskedExample {
    let eligible: Vec<usize> = (0..ids.len()).filter(|&i| ids[i] > 4).collect();
    let mut input = ids.to_vec();
    let mut positions = Vec::new();
    let mut targets = Vec::new();
    for &i in &eligible {
        if rng.gen::<f32>() < mask_prob {
            positions.push(i as u32);
            targets.push(ids[i]);
            let r: f32 = rng.gen();
            if r < 0.8 {
                input[i] = MASK;
            } else if r < 0.9 {
                input[i] = rng.gen_range(5..vocab_size as u32);
            } // else keep the original token
        }
    }
    if positions.is_empty() && !eligible.is_empty() {
        let i = eligible[rng.gen_range(0..eligible.len())];
        positions.push(i as u32);
        targets.push(ids[i]);
        input[i] = MASK;
    }
    MaskedExample { input, positions, targets }
}

/// Pretraining hyper-parameters.
#[derive(Clone, Debug)]
pub struct MlmConfig {
    pub epochs: usize,
    pub batch_size: usize,
    pub lr: f32,
    pub mask_prob: f32,
    pub seed: u64,
    pub threads: usize,
}

impl Default for MlmConfig {
    fn default() -> Self {
        MlmConfig {
            epochs: 8,
            batch_size: 64,
            lr: 1e-3,
            mask_prob: 0.15,
            seed: 42,
            threads: doduo_tensor::default_threads(),
        }
    }
}

/// Runs MLM pretraining over tokenized `sequences` (each already includes
/// any special tokens the caller wants). Returns the mean loss per epoch.
pub fn pretrain_mlm(
    encoder: &Encoder,
    head: &MlmHead,
    store: &mut ParamStore,
    sequences: &[Vec<u32>],
    cfg: &MlmConfig,
) -> Vec<f32> {
    assert!(!sequences.is_empty(), "pretraining corpus is empty");
    let vocab_size = encoder.config().vocab_size;
    let steps = cfg.epochs * sequences.len().div_ceil(cfg.batch_size);
    let mut opt = Adam::new(store, LrSchedule::LinearDecay { lr0: cfg.lr, total_steps: steps });
    let mut order: Vec<usize> = (0..sequences.len()).collect();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);

    for epoch in 0..cfg.epochs {
        shuffle(&mut order, &mut rng);
        let mut total = 0.0f32;
        let mut count = 0usize;
        for batch in order.chunks(cfg.batch_size) {
            let salt = rng.gen::<u64>();
            let (mut grads, loss) =
                accumulate_parallel(store, batch, cfg.threads, |tape, &idx, k| {
                    let mut item_rng =
                        StdRng::seed_from_u64(salt ^ (k as u64).wrapping_mul(0x9E3779B97F4A7C15));
                    let ex = mask_tokens(&sequences[idx], vocab_size, cfg.mask_prob, &mut item_rng);
                    let enc = encoder.forward(tape, &ex.input, None, &mut item_rng);
                    let logits = head.logits(tape, enc, &ex.positions);
                    tape.softmax_ce(logits, &ex.targets)
                });
            grads.scale(1.0 / batch.len() as f32);
            grads.clip_global_norm(5.0);
            opt.step(store, &grads);
            total += loss;
            count += batch.len();
        }
        let _ = epoch;
        epoch_losses.push(total / count as f32);
    }
    epoch_losses
}

/// Pseudo-perplexity of a token sequence under the masked LM (eq. 3 of the
/// paper's appendix): each eligible position is masked in turn and scored.
///
/// Lower is "more natural" to the LM; the probing experiments (Tables
/// 12-13) rank candidate type/relation words by this score.
pub fn pseudo_perplexity(
    encoder: &Encoder,
    head: &MlmHead,
    store: &ParamStore,
    ids: &[u32],
) -> f32 {
    let eligible: Vec<usize> = (0..ids.len()).filter(|&i| ids[i] > 4).collect();
    if eligible.is_empty() {
        return f32::INFINITY;
    }
    let mut nll = 0.0f32;
    let mut rng = StdRng::seed_from_u64(0); // inference tapes ignore dropout
    for &i in &eligible {
        let mut input = ids.to_vec();
        input[i] = MASK;
        let mut tape = Tape::inference(store);
        let enc = encoder.forward(&mut tape, &input, None, &mut rng);
        let logits = head.logits(&mut tape, enc, &[i as u32]);
        // softmax_ce with the original token as target = -log p(token|ctx).
        let loss = tape.softmax_ce(logits, &[ids[i]]);
        nll += tape.value(loss).scalar_value();
    }
    (nll / eligible.len() as f32).exp()
}

/// Fisher-Yates shuffle on indices (kept local to avoid a rand feature dep).
pub fn shuffle<R: Rng + ?Sized>(xs: &mut [usize], rng: &mut R) {
    for i in (1..xs.len()).rev() {
        let j = rng.gen_range(0..=i);
        xs.swap(i, j);
    }
}

/// Mean MLM loss on a held-out set (no gradient, no masking randomness
/// beyond the given seed) — used to monitor pretraining.
pub fn mlm_eval_loss(
    encoder: &Encoder,
    head: &MlmHead,
    store: &ParamStore,
    sequences: &[Vec<u32>],
    mask_prob: f32,
    seed: u64,
) -> f32 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut total = 0.0;
    let mut n = 0usize;
    for seq in sequences {
        let ex = mask_tokens(seq, encoder.config().vocab_size, mask_prob, &mut rng);
        if ex.positions.is_empty() {
            continue;
        }
        let mut tape = Tape::inference(store);
        let enc = encoder.forward(&mut tape, &ex.input, None, &mut rng);
        let logits = head.logits(&mut tape, enc, &ex.positions);
        let loss = tape.softmax_ce(logits, &ex.targets);
        total += tape.value(loss).scalar_value();
        n += 1;
    }
    if n == 0 {
        f32::NAN
    } else {
        total / n as f32
    }
}

/// Convenience: gradients of one masked example (used by tests).
pub fn mlm_example_grads(
    encoder: &Encoder,
    head: &MlmHead,
    store: &ParamStore,
    ex: &MaskedExample,
) -> Gradients {
    let mut grads = Gradients::new(store);
    let mut rng = StdRng::seed_from_u64(0);
    let mut tape = Tape::inference(store);
    let enc = encoder.forward(&mut tape, &ex.input, None, &mut rng);
    let logits = head.logits(&mut tape, enc, &ex.positions);
    let loss = tape.softmax_ce(logits, &ex.targets);
    tape.backward(loss, &mut grads);
    grads
}

#[cfg(test)]
mod tests {
    use super::*;
    use doduo_tokenizer::{TrainConfig, WordPiece, CLS, SEP};

    fn toy_corpus() -> Vec<&'static str> {
        vec![
            "george miller is a director",
            "george miller directed happy feet",
            "john lasseter is a director",
            "john lasseter directed cars",
            "brisbane is a city",
            "brisbane is a city in australia",
            "paris is a city",
            "paris is a city in france",
            "happy feet is a film",
            "cars is a film",
            "alabama is a team",
            "derrick henry plays for alabama",
        ]
    }

    fn setup() -> (WordPiece, ParamStore, Encoder, MlmHead, Vec<Vec<u32>>) {
        let corpus = toy_corpus();
        let tok = WordPiece::train(
            corpus.iter().copied(),
            &TrainConfig { merges: 300, min_pair_count: 1, max_word_len: 24 },
        );
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let cfg = EncoderConfig::tiny(tok.vocab_size());
        let enc = Encoder::new(&mut store, cfg.clone(), "enc", &mut rng);
        let head = MlmHead::new(&mut store, &cfg, "enc", &mut rng);
        let seqs: Vec<Vec<u32>> = corpus
            .iter()
            .map(|s| {
                let mut ids = vec![CLS];
                ids.extend(tok.encode(s));
                ids.push(SEP);
                ids
            })
            .collect();
        (tok, store, enc, head, seqs)
    }

    #[test]
    fn masking_preserves_length_and_targets() {
        let mut rng = StdRng::seed_from_u64(1);
        let ids = vec![CLS, 10, 11, 12, 13, 14, SEP];
        let ex = mask_tokens(&ids, 50, 0.5, &mut rng);
        assert_eq!(ex.input.len(), ids.len());
        assert_eq!(ex.positions.len(), ex.targets.len());
        assert!(!ex.positions.is_empty(), "always selects at least one position");
        for (&p, &t) in ex.positions.iter().zip(ex.targets.iter()) {
            assert_eq!(ids[p as usize], t, "target must be the original token");
            assert!(ids[p as usize] > 4, "special tokens are never masked");
        }
    }

    #[test]
    fn masking_specials_only_sequence_selects_nothing() {
        let mut rng = StdRng::seed_from_u64(2);
        let ids = vec![CLS, SEP];
        let ex = mask_tokens(&ids, 50, 0.9, &mut rng);
        assert!(ex.positions.is_empty());
        assert_eq!(ex.input, ids);
    }

    #[test]
    fn pretraining_reduces_loss() {
        let (_tok, mut store, enc, head, seqs) = setup();
        let cfg = MlmConfig {
            epochs: 80,
            batch_size: 12,
            lr: 3e-3,
            mask_prob: 0.3,
            threads: 2,
            ..Default::default()
        };
        let losses = pretrain_mlm(&enc, &head, &mut store, &seqs, &cfg);
        assert_eq!(losses.len(), 80);
        let last = *losses.last().unwrap();
        assert!(last < losses[0] * 0.7, "MLM loss should drop: {} -> {last}", losses[0]);
    }

    #[test]
    fn pretrained_lm_prefers_true_facts() {
        // After pretraining on "george miller is a director" style text, the
        // template "george miller is a ___" must rank `director` better than
        // an unrelated filler — the mechanism behind Tables 12-13.
        let (tok, mut store, enc, head, seqs) = setup();
        let cfg = MlmConfig {
            epochs: 300,
            batch_size: 12,
            lr: 3e-3,
            mask_prob: 0.3,
            threads: 4,
            ..Default::default()
        };
        pretrain_mlm(&enc, &head, &mut store, &seqs, &cfg);

        let encode = |s: &str| {
            let mut ids = vec![CLS];
            ids.extend(tok.encode(s));
            ids.push(SEP);
            ids
        };
        let good = pseudo_perplexity(&enc, &head, &store, &encode("george miller is a director"));
        let bad = pseudo_perplexity(&enc, &head, &store, &encode("george miller is a city"));
        assert!(
            good < bad,
            "LM should find the true fact more natural: director {good} vs city {bad}"
        );
    }

    #[test]
    fn pseudo_perplexity_empty_is_infinite() {
        let (_tok, store, enc, head, _seqs) = setup();
        assert_eq!(pseudo_perplexity(&enc, &head, &store, &[CLS, SEP]), f32::INFINITY);
    }

    #[test]
    fn eval_loss_is_finite_and_positive() {
        let (_tok, store, enc, head, seqs) = setup();
        let l = mlm_eval_loss(&enc, &head, &store, &seqs, 0.15, 3);
        assert!(l.is_finite() && l > 0.0);
    }
}
