//! Encoder hyper-parameters.

/// Architecture of the Transformer encoder.
///
/// The paper fine-tunes BERT-base (12 layers, 768 hidden, 12 heads,
/// WordPiece-30k). That is far beyond CPU-trainable scale, so the default
/// here is a miniature with the same shape: post-LayerNorm residual blocks,
/// GELU feed-forward of 4× width, learned absolute position embeddings.
/// DESIGN.md §1 documents this substitution.
#[derive(Clone, Debug, PartialEq)]
pub struct EncoderConfig {
    /// WordPiece vocabulary size (set from the trained tokenizer).
    pub vocab_size: usize,
    /// Hidden width `d` (BERT-base: 768).
    pub hidden: usize,
    /// Number of Transformer blocks (BERT-base: 12).
    pub layers: usize,
    /// Attention heads; must divide `hidden` (BERT-base: 12).
    pub heads: usize,
    /// Feed-forward inner width (BERT-base: 3072 = 4×768).
    pub ffn: usize,
    /// Maximum supported sequence length (BERT: 512).
    pub max_seq: usize,
    /// Dropout probability used during training.
    pub dropout: f32,
}

impl EncoderConfig {
    /// The default miniature used across experiments: 3 layers, 96 hidden,
    /// 4 heads, 384 FFN, 192 max tokens.
    pub fn mini(vocab_size: usize) -> Self {
        EncoderConfig {
            vocab_size,
            hidden: 96,
            layers: 3,
            heads: 4,
            ffn: 384,
            max_seq: 192,
            dropout: 0.1,
        }
    }

    /// An even smaller config for fast unit tests.
    pub fn tiny(vocab_size: usize) -> Self {
        EncoderConfig {
            vocab_size,
            hidden: 32,
            layers: 2,
            heads: 2,
            ffn: 64,
            max_seq: 64,
            dropout: 0.0,
        }
    }

    /// Panics if the configuration is internally inconsistent.
    pub fn validate(&self) {
        assert!(self.vocab_size > 5, "vocab must include more than the special tokens");
        assert!(self.hidden > 0 && self.layers > 0 && self.heads > 0);
        assert_eq!(self.hidden % self.heads, 0, "heads must divide hidden width");
        assert!((0.0..1.0).contains(&self.dropout));
    }
}
