//! # doduo-transformer
//!
//! A from-scratch, CPU-trainable BERT-style Transformer encoder — the
//! "pre-trained language model" substrate of the DODUO reproduction
//! (DESIGN.md §1 documents the BERT-base → miniature substitution).
//!
//! Provides:
//! * [`EncoderConfig`] / [`Encoder`] — post-LN Transformer blocks with
//!   learned position embeddings and optional attention visibility masks
//!   (the TURL baseline's restricted attention).
//! * [`MlmHead`], [`pretrain_mlm`] — BERT's masked-language-model objective
//!   with the 80/10/10 masking recipe, so the LM stores retrievable factual
//!   knowledge from its pretraining corpus.
//! * [`pseudo_perplexity`] — the sequence-scoring function behind the
//!   paper's LM-probing analysis (Tables 12-13, eq. 3).
//! * [`QuantEncoder`] — the opt-in int8 serving twin of [`Encoder`],
//!   built once from trained f32 weights (accuracy-gated, see
//!   `doduo_tensor::quant`).

pub mod config;
pub mod encoder;
pub mod mlm;
pub mod quant;

pub use config::EncoderConfig;
pub use encoder::{mask_from_fn, BatchEncoding, BatchSeq, Encoder};
pub use mlm::{
    mask_tokens, mlm_eval_loss, pretrain_mlm, pseudo_perplexity, MaskedExample, MlmConfig, MlmHead,
};
pub use quant::QuantEncoder;
