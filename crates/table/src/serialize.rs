//! Table serialization (§4.2): turning a table into one token sequence.
//!
//! Doduo's table-wise scheme is
//! `serialize(T) ::= [CLS] v_1^1 ... [CLS] v_1^n ... v_m^n [SEP]` —
//! one `[CLS]` per column whose output embedding becomes that column's
//! contextualized representation. The single-column baseline (§4.1)
//! serializes one column (`[CLS] v_1 ... v_m [SEP]`) or one column pair
//! (`[CLS] v ... [SEP] v' ... [SEP]`).

use crate::model::Table;
use doduo_tokenizer::{WordPiece, CLS, SEP};

/// Marker for tokens not belonging to any column (`[SEP]`).
pub const NO_COLUMN: u32 = u32::MAX;

/// Serialization policy.
#[derive(Clone, Debug)]
pub struct SerializeConfig {
    /// Token budget per column (Table 8's `MaxToken/col`); `0` = unlimited
    /// up to `max_seq`.
    pub max_tokens_per_col: usize,
    /// Overall sequence cap (the encoder's `max_seq`). Column budgets are
    /// shrunk evenly if the table would not fit.
    pub max_seq: usize,
    /// `+metadata` variant (Table 3): prepend the column header to its
    /// values.
    pub include_metadata: bool,
}

impl SerializeConfig {
    pub fn new(max_tokens_per_col: usize, max_seq: usize) -> Self {
        SerializeConfig { max_tokens_per_col, max_seq, include_metadata: false }
    }

    pub fn with_metadata(mut self) -> Self {
        self.include_metadata = true;
        self
    }

    /// How many columns fit under this policy (Table 8's "Max. # of cols"):
    /// each column costs `1 + max_tokens_per_col` tokens plus the final
    /// `[SEP]`.
    pub fn max_supported_cols(&self) -> usize {
        if self.max_tokens_per_col == 0 {
            return 1;
        }
        (self.max_seq - 1) / (1 + self.max_tokens_per_col)
    }
}

/// A serialized token sequence with column bookkeeping.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SerializedTable {
    /// WordPiece ids, including `[CLS]`/`[SEP]` markers.
    pub ids: Vec<u32>,
    /// Position of each column's `[CLS]` token, in column order.
    pub cls_positions: Vec<u32>,
    /// For every token, the column it belongs to ([`NO_COLUMN`] for the
    /// trailing `[SEP]`). `[CLS]` markers belong to their column. Used to
    /// build TURL's visibility matrix.
    pub col_of_token: Vec<u32>,
}

impl SerializedTable {
    pub fn n_cols(&self) -> usize {
        self.cls_positions.len()
    }

    pub fn len(&self) -> usize {
        self.ids.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// The effective per-column token budget of a table-wise serialization of
/// `n_cols` columns: the configured `max_tokens_per_col`, shrunk evenly so
/// `n_cols` columns (each costing `1 + budget` tokens) plus the trailing
/// `[SEP]` fit under `max_seq`. Exposed so serving-side tokenization caches
/// can key cached column tokens by the exact budget the serializer will
/// use.
pub fn table_wise_budget(cfg: &SerializeConfig, n_cols: usize) -> usize {
    assert!(n_cols > 0, "cannot serialize a table with no columns");
    let mut budget = cfg.max_tokens_per_col;
    let fit = (cfg.max_seq.saturating_sub(1 + n_cols)) / n_cols;
    if budget == 0 || budget > fit {
        budget = fit.max(1);
    }
    budget
}

/// The effective token budget of a single-column serialization (§4.1) —
/// the single-sequence counterpart of [`table_wise_budget`].
pub fn single_column_budget(cfg: &SerializeConfig) -> usize {
    effective_single_budget(cfg, 1)
}

/// Tokenizes one column's content under a token budget: optional header
/// first (the `+metadata` variant), then cell values in row order,
/// truncated to `budget` ids (`0` = unlimited). This is the unit of work a
/// serving-side tokenization cache memoizes.
pub fn column_tokens(
    table: &Table,
    col: usize,
    tok: &WordPiece,
    budget: usize,
    include_metadata: bool,
) -> Vec<u32> {
    let column = &table.columns[col];
    let mut out = Vec::new();
    if include_metadata {
        if let Some(name) = &column.name {
            out.extend(tok.encode(name));
        }
    }
    for v in &column.values {
        if budget > 0 && out.len() >= budget {
            break;
        }
        out.extend(tok.encode(v));
    }
    if budget > 0 && out.len() > budget {
        out.truncate(budget);
    }
    out
}

/// Doduo's table-wise serialization: all columns, one `[CLS]` each, one
/// trailing `[SEP]`.
pub fn serialize_table(table: &Table, tok: &WordPiece, cfg: &SerializeConfig) -> SerializedTable {
    let n = table.n_cols();
    let budget = table_wise_budget(cfg, n);
    let toks: Vec<Vec<u32>> =
        (0..n).map(|c| column_tokens(table, c, tok, budget, cfg.include_metadata)).collect();
    let st = assemble_table_wise(&toks);
    debug_assert!(
        st.ids.len() <= cfg.max_seq,
        "serialized length {} > cap {}",
        st.ids.len(),
        cfg.max_seq
    );
    st
}

/// Assembles a table-wise serialization (§4.2) from already-tokenized
/// columns: `[CLS] toks_1 ... [CLS] toks_n [SEP]`, with the column
/// bookkeeping filled in. [`serialize_table`] is exactly
/// [`column_tokens`] per column (under [`table_wise_budget`]) followed by
/// this assembly, so a caller memoizing column tokens reproduces it
/// byte-identically.
pub fn assemble_table_wise<T: AsRef<[u32]>>(col_tokens: &[T]) -> SerializedTable {
    assert!(!col_tokens.is_empty(), "cannot serialize a table with no columns");
    let mut ids = Vec::new();
    let mut cls_positions = Vec::with_capacity(col_tokens.len());
    let mut col_of_token = Vec::new();
    for (c, toks) in col_tokens.iter().enumerate() {
        let toks = toks.as_ref();
        cls_positions.push(ids.len() as u32);
        ids.push(CLS);
        col_of_token.push(c as u32);
        col_of_token.extend(std::iter::repeat_n(c as u32, toks.len()));
        ids.extend_from_slice(toks);
    }
    ids.push(SEP);
    col_of_token.push(NO_COLUMN);
    SerializedTable { ids, cls_positions, col_of_token }
}

/// Assembles a single-column serialization (§4.1) from already-tokenized
/// content: `[CLS] toks [SEP]`. The cached-tokenization counterpart of
/// [`serialize_single_column`].
pub fn assemble_single_column(tokens: &[u32]) -> SerializedTable {
    let mut ids = Vec::with_capacity(tokens.len() + 2);
    ids.push(CLS);
    ids.extend_from_slice(tokens);
    ids.push(SEP);
    let mut col_of_token = vec![0u32; ids.len()];
    *col_of_token.last_mut().expect("non-empty") = NO_COLUMN;
    SerializedTable { ids, cls_positions: vec![0], col_of_token }
}

/// Single-column serialization (§4.1): `[CLS] values [SEP]`, one `[CLS]`.
pub fn serialize_single_column(
    table: &Table,
    col: usize,
    tok: &WordPiece,
    cfg: &SerializeConfig,
) -> SerializedTable {
    let budget = single_column_budget(cfg);
    assemble_single_column(&column_tokens(table, col, tok, budget, cfg.include_metadata))
}

/// Column-pair serialization (§4.1):
/// `[CLS] v_1..v_m [SEP] v'_1..v'_m [SEP]`. The single `[CLS]` embedding
/// represents the pair.
pub fn serialize_column_pair(
    table: &Table,
    col_a: usize,
    col_b: usize,
    tok: &WordPiece,
    cfg: &SerializeConfig,
) -> SerializedTable {
    let budget = effective_single_budget(cfg, 2);
    let mut ids = vec![CLS];
    let mut col_of_token = vec![0u32];
    let ta = column_tokens(table, col_a, tok, budget, cfg.include_metadata);
    col_of_token.extend(std::iter::repeat_n(0u32, ta.len()));
    ids.extend(ta);
    ids.push(SEP);
    col_of_token.push(NO_COLUMN);
    let tb = column_tokens(table, col_b, tok, budget, cfg.include_metadata);
    col_of_token.extend(std::iter::repeat_n(1u32, tb.len()));
    ids.extend(tb);
    ids.push(SEP);
    col_of_token.push(NO_COLUMN);
    SerializedTable { ids, cls_positions: vec![0], col_of_token }
}

fn effective_single_budget(cfg: &SerializeConfig, parts: usize) -> usize {
    let fit = cfg.max_seq.saturating_sub(1 + parts) / parts;
    if cfg.max_tokens_per_col == 0 || cfg.max_tokens_per_col > fit {
        fit.max(1)
    } else {
        cfg.max_tokens_per_col
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Column;
    use doduo_tokenizer::TrainConfig;

    fn tok() -> WordPiece {
        WordPiece::train(
            [
                "happy feet cars flushed away george miller john lasseter david bowers usa uk france film director country",
            ],
            &TrainConfig { merges: 300, min_pair_count: 1, max_word_len: 24 },
        )
    }

    fn film_table() -> Table {
        Table::new(
            "films",
            vec![
                Column::with_name("film", vec!["Happy Feet".into(), "Cars".into()]),
                Column::with_name("director", vec!["George Miller".into(), "John Lasseter".into()]),
                Column::with_name("country", vec!["USA".into(), "UK".into()]),
            ],
        )
    }

    #[test]
    fn table_wise_layout_matches_section_4_2() {
        let t = tok();
        let cfg = SerializeConfig::new(32, 192);
        let s = serialize_table(&film_table(), &t, &cfg);
        // One [CLS] per column, all at the recorded positions.
        assert_eq!(s.n_cols(), 3);
        for (&p, c) in s.cls_positions.iter().zip(0u32..) {
            assert_eq!(s.ids[p as usize], CLS);
            assert_eq!(s.col_of_token[p as usize], c);
        }
        // Exactly 3 [CLS] and a single trailing [SEP].
        assert_eq!(s.ids.iter().filter(|&&i| i == CLS).count(), 3);
        assert_eq!(s.ids.iter().filter(|&&i| i == SEP).count(), 1);
        assert_eq!(*s.ids.last().unwrap(), SEP);
        assert_eq!(*s.col_of_token.last().unwrap(), NO_COLUMN);
        assert_eq!(s.ids.len(), s.col_of_token.len());
    }

    #[test]
    fn budget_caps_column_tokens() {
        let t = tok();
        let tight = SerializeConfig::new(2, 192);
        let s = serialize_table(&film_table(), &t, &tight);
        // 3 cols * (1 CLS + 2 tokens) + SEP = 10.
        assert_eq!(s.ids.len(), 10);
        let loose = SerializeConfig::new(32, 192);
        let s2 = serialize_table(&film_table(), &t, &loose);
        assert!(s2.ids.len() > s.ids.len());
    }

    #[test]
    fn max_seq_shrinks_budget_evenly() {
        let t = tok();
        let cfg = SerializeConfig::new(64, 16);
        let s = serialize_table(&film_table(), &t, &cfg);
        assert!(s.ids.len() <= 16, "len {}", s.ids.len());
        assert_eq!(s.n_cols(), 3, "all columns retained under a tiny cap");
    }

    #[test]
    fn metadata_variant_injects_headers() {
        let t = tok();
        let plain = serialize_table(&film_table(), &t, &SerializeConfig::new(32, 192));
        let meta =
            serialize_table(&film_table(), &t, &SerializeConfig::new(32, 192).with_metadata());
        assert!(meta.ids.len() > plain.ids.len());
        // Header token ("film") right after the first [CLS].
        let film_id = t.encode("film")[0];
        assert_eq!(meta.ids[1], film_id);
    }

    #[test]
    fn single_column_layout() {
        let t = tok();
        let s = serialize_single_column(&film_table(), 1, &t, &SerializeConfig::new(32, 192));
        assert_eq!(s.ids[0], CLS);
        assert_eq!(*s.ids.last().unwrap(), SEP);
        assert_eq!(s.cls_positions, vec![0]);
        assert_eq!(s.ids.iter().filter(|&&i| i == CLS).count(), 1);
    }

    #[test]
    fn pair_layout_has_two_seps() {
        let t = tok();
        let s = serialize_column_pair(&film_table(), 0, 1, &t, &SerializeConfig::new(32, 192));
        assert_eq!(s.ids[0], CLS);
        assert_eq!(s.ids.iter().filter(|&&i| i == SEP).count(), 2);
        assert_eq!(*s.ids.last().unwrap(), SEP);
        // Tokens after the middle SEP belong to column "1".
        let mid = s.ids.iter().position(|&i| i == SEP).unwrap();
        assert!(s.col_of_token[mid + 1..].iter().all(|&c| c == 1 || c == NO_COLUMN));
    }

    #[test]
    fn max_supported_cols_matches_paper_formula() {
        // Paper's Table 8 with BERT's 512-token budget: 8 -> 56, 16 -> 30,
        // 32 -> 15.
        assert_eq!(SerializeConfig::new(8, 512).max_supported_cols(), 56);
        assert_eq!(SerializeConfig::new(16, 512).max_supported_cols(), 30);
        assert_eq!(SerializeConfig::new(32, 512).max_supported_cols(), 15);
    }
}
