//! Label vocabularies (`C_type`, `C_rel` of §3.1) and annotated datasets.

use crate::model::Table;
use rand::Rng;
use std::collections::HashMap;

/// Interned label id.
pub type LabelId = u32;

/// A fixed vocabulary of type or relation names. The paper stresses that
/// `(C_type, C_rel)` are dataset properties, customizable by swapping the
/// training set — so vocabularies are plain values carried by [`Dataset`].
#[derive(Clone, Debug, Default)]
pub struct LabelVocab {
    names: Vec<String>,
    index: HashMap<String, LabelId>,
}

impl LabelVocab {
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a label, returning its id (existing id if already present).
    pub fn intern(&mut self, name: &str) -> LabelId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = self.names.len() as LabelId;
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), id);
        id
    }

    pub fn id(&self, name: &str) -> Option<LabelId> {
        self.index.get(name).copied()
    }

    pub fn name(&self, id: LabelId) -> &str {
        &self.names[id as usize]
    }

    pub fn len(&self) -> usize {
        self.names.len()
    }

    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (LabelId, &str)> {
        self.names.iter().enumerate().map(|(i, n)| (i as LabelId, n.as_str()))
    }
}

/// A relation annotation between two columns of the same table.
/// Following TURL / the paper's formulation (Table 1), relations connect the
/// table's subject column (index 0) to each other column, but the struct is
/// general.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RelAnnotation {
    pub subject_col: usize,
    pub object_col: usize,
    pub relation: LabelId,
}

/// A table plus its ground-truth column types and relations.
#[derive(Clone, Debug)]
pub struct AnnotatedTable {
    pub table: Table,
    /// Per-column type labels. WikiTable-style tasks are multi-label
    /// (several ids per column); VizNet-style tasks have exactly one.
    pub col_types: Vec<Vec<LabelId>>,
    /// Relation annotations (empty when the dataset has none, e.g. VizNet).
    pub relations: Vec<RelAnnotation>,
}

impl AnnotatedTable {
    /// Consistency check: label vectors align with columns and relation
    /// endpoints are in range.
    pub fn validate(&self) -> Result<(), String> {
        if self.col_types.len() != self.table.n_cols() {
            return Err(format!(
                "table {}: {} columns but {} type annotations",
                self.table.id,
                self.table.n_cols(),
                self.col_types.len()
            ));
        }
        for r in &self.relations {
            if r.subject_col >= self.table.n_cols() || r.object_col >= self.table.n_cols() {
                return Err(format!("table {}: relation endpoint out of range", self.table.id));
            }
            if r.subject_col == r.object_col {
                return Err(format!("table {}: self-relation", self.table.id));
            }
        }
        Ok(())
    }

    /// Shuffles column order and remaps annotations (Table 6 ablation).
    pub fn shuffle_cols<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let perm = self.table.shuffle_cols(rng); // new -> old
        let mut old_to_new = vec![0usize; perm.len()];
        for (new_i, &old_i) in perm.iter().enumerate() {
            old_to_new[old_i] = new_i;
        }
        let old_types = std::mem::take(&mut self.col_types);
        let mut slots: Vec<Option<Vec<LabelId>>> = old_types.into_iter().map(Some).collect();
        self.col_types = perm.iter().map(|&o| slots[o].take().expect("bijection")).collect();
        for r in &mut self.relations {
            r.subject_col = old_to_new[r.subject_col];
            r.object_col = old_to_new[r.object_col];
        }
    }

    /// Shuffles row order (Table 6 ablation); annotations are unaffected.
    pub fn shuffle_rows<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        self.table.shuffle_rows(rng);
    }
}

/// A complete benchmark: annotated tables plus the label vocabularies.
#[derive(Clone, Debug)]
pub struct Dataset {
    pub tables: Vec<AnnotatedTable>,
    pub type_vocab: LabelVocab,
    pub rel_vocab: LabelVocab,
}

impl Dataset {
    /// Total number of annotated columns.
    pub fn n_columns(&self) -> usize {
        self.tables.iter().map(|t| t.table.n_cols()).sum()
    }

    /// Total number of relation annotations.
    pub fn n_relations(&self) -> usize {
        self.tables.iter().map(|t| t.relations.len()).sum()
    }

    /// Splits into train/valid/test by the given fractions (must sum ≤ 1;
    /// the remainder goes to test). Shuffles with `rng` first.
    pub fn split<R: Rng + ?Sized>(
        mut self,
        train_frac: f64,
        valid_frac: f64,
        rng: &mut R,
    ) -> (Dataset, Dataset, Dataset) {
        assert!(train_frac + valid_frac <= 1.0 + 1e-9, "fractions exceed 1");
        let n = self.tables.len();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            self.tables.swap(i, j);
        }
        let n_train = (n as f64 * train_frac).round() as usize;
        let n_valid = (n as f64 * valid_frac).round() as usize;
        let mut tables = self.tables;
        let test_tables = tables.split_off((n_train + n_valid).min(tables.len()));
        let valid_tables = tables.split_off(n_train.min(tables.len()));
        let mk = |tables| Dataset {
            tables,
            type_vocab: self.type_vocab.clone(),
            rel_vocab: self.rel_vocab.clone(),
        };
        (mk(tables), mk(valid_tables), mk(test_tables))
    }

    /// Keeps a random fraction of the tables (Figure 4's data-efficiency
    /// sweep trains on 10/25/50/100% subsamples).
    pub fn subsample<R: Rng + ?Sized>(&self, frac: f64, rng: &mut R) -> Dataset {
        assert!((0.0..=1.0).contains(&frac));
        let keep = ((self.tables.len() as f64 * frac).round() as usize).max(1);
        let mut idx: Vec<usize> = (0..self.tables.len()).collect();
        for i in (1..idx.len()).rev() {
            let j = rng.gen_range(0..=i);
            idx.swap(i, j);
        }
        idx.truncate(keep);
        idx.sort_unstable();
        Dataset {
            tables: idx.iter().map(|&i| self.tables[i].clone()).collect(),
            type_vocab: self.type_vocab.clone(),
            rel_vocab: self.rel_vocab.clone(),
        }
    }

    /// Validates every table.
    pub fn validate(&self) -> Result<(), String> {
        for t in &self.tables {
            t.validate()?;
            for types in &t.col_types {
                for &ty in types {
                    if (ty as usize) >= self.type_vocab.len() {
                        return Err(format!("table {}: type id {ty} out of vocab", t.table.id));
                    }
                }
            }
            for r in &t.relations {
                if (r.relation as usize) >= self.rel_vocab.len() {
                    return Err(format!("table {}: rel id out of vocab", t.table.id));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Column;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn annotated() -> AnnotatedTable {
        AnnotatedTable {
            table: Table::new(
                "t",
                vec![
                    Column::new(vec!["a".into()]),
                    Column::new(vec!["b".into()]),
                    Column::new(vec!["c".into()]),
                ],
            ),
            col_types: vec![vec![0], vec![1], vec![2]],
            relations: vec![
                RelAnnotation { subject_col: 0, object_col: 1, relation: 0 },
                RelAnnotation { subject_col: 0, object_col: 2, relation: 1 },
            ],
        }
    }

    #[test]
    fn vocab_interning_is_idempotent() {
        let mut v = LabelVocab::new();
        let a = v.intern("people.person");
        let b = v.intern("location.location");
        assert_eq!(v.intern("people.person"), a);
        assert_ne!(a, b);
        assert_eq!(v.name(a), "people.person");
        assert_eq!(v.id("location.location"), Some(b));
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn shuffle_cols_keeps_labels_attached() {
        let mut t = annotated();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            t.shuffle_cols(&mut rng);
            t.validate().unwrap();
            // Column whose value is "a" must still carry type 0, etc.
            for (ci, col) in t.table.columns.iter().enumerate() {
                let expect = match col.values[0].as_str() {
                    "a" => 0,
                    "b" => 1,
                    _ => 2,
                };
                assert_eq!(t.col_types[ci], vec![expect]);
            }
            // Relation between "a"-column and "b"-column is still relation 0.
            let a_col = t.table.columns.iter().position(|c| c.values[0] == "a").unwrap();
            let b_col = t.table.columns.iter().position(|c| c.values[0] == "b").unwrap();
            let rel = t
                .relations
                .iter()
                .find(|r| r.subject_col == a_col && r.object_col == b_col)
                .expect("relation preserved");
            assert_eq!(rel.relation, 0);
        }
    }

    #[test]
    fn split_partitions_everything() {
        let mut vocab = LabelVocab::new();
        vocab.intern("x");
        vocab.intern("y");
        vocab.intern("z");
        let ds = Dataset {
            tables: (0..100).map(|_| annotated()).collect(),
            type_vocab: vocab.clone(),
            rel_vocab: vocab,
        };
        let mut rng = StdRng::seed_from_u64(5);
        let (tr, va, te) = ds.split(0.7, 0.1, &mut rng);
        assert_eq!(tr.tables.len(), 70);
        assert_eq!(va.tables.len(), 10);
        assert_eq!(te.tables.len(), 20);
    }

    #[test]
    fn subsample_size() {
        let mut vocab = LabelVocab::new();
        vocab.intern("x");
        vocab.intern("y");
        vocab.intern("z");
        let ds = Dataset {
            tables: (0..40).map(|_| annotated()).collect(),
            type_vocab: vocab.clone(),
            rel_vocab: vocab,
        };
        let mut rng = StdRng::seed_from_u64(6);
        assert_eq!(ds.subsample(0.25, &mut rng).tables.len(), 10);
        assert_eq!(ds.subsample(0.0, &mut rng).tables.len(), 1, "at least one table");
    }

    #[test]
    fn validate_catches_misalignment() {
        let mut t = annotated();
        t.col_types.pop();
        assert!(t.validate().is_err());
        let mut t2 = annotated();
        t2.relations.push(RelAnnotation { subject_col: 0, object_col: 9, relation: 0 });
        assert!(t2.validate().is_err());
    }
}
