//! The relational data model of §3.1: a table is a sequence of columns,
//! each column a sequence of string-typed cell values.

use rand::Rng;

/// One table column: an optional header (metadata, hidden from models by
/// default — the paper's core setting uses cell values only) and its values.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Column {
    /// Column header. Only consumed by the `+metadata` variants (Table 3)
    /// and by ground-truth construction in the case study (§7).
    pub name: Option<String>,
    /// Cell values, cast to strings (§3.1).
    pub values: Vec<String>,
}

impl Column {
    pub fn new(values: Vec<String>) -> Self {
        Column { name: None, values }
    }

    pub fn with_name(name: impl Into<String>, values: Vec<String>) -> Self {
        Column { name: Some(name.into()), values }
    }

    /// Fraction of cells parseable as a number (the `%num` statistic of
    /// Table 5). Dates count as numeric when fully digit/punctuation.
    pub fn numeric_fraction(&self) -> f32 {
        if self.values.is_empty() {
            return 0.0;
        }
        let numeric = self.values.iter().filter(|v| is_numeric_like(v)).count();
        numeric as f32 / self.values.len() as f32
    }
}

/// Heuristic used for the paper's `%num` measurement: value parses as int /
/// float, or consists only of digits and separator punctuation (dates,
/// ISBNs, timestamps).
pub fn is_numeric_like(v: &str) -> bool {
    let t = v.trim();
    if t.is_empty() {
        return false;
    }
    if t.parse::<f64>().is_ok() {
        return true;
    }
    let mut saw_digit = false;
    for ch in t.chars() {
        if ch.is_ascii_digit() {
            saw_digit = true;
        } else if !matches!(ch, '-' | '/' | ':' | '.' | ',' | ' ' | '+' | '%' | '$') {
            return false;
        }
    }
    saw_digit
}

/// A table `T = (c_1, ..., c_n)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Table {
    /// Stable identifier (dataset provenance, case-study table names).
    pub id: String,
    pub columns: Vec<Column>,
}

impl Table {
    pub fn new(id: impl Into<String>, columns: Vec<Column>) -> Self {
        Table { id: id.into(), columns }
    }

    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// Number of rows = length of the longest column.
    pub fn n_rows(&self) -> usize {
        self.columns.iter().map(|c| c.values.len()).max().unwrap_or(0)
    }

    /// Shuffles row order consistently across all columns (Table 6's
    /// "w/ shuffled rows" ablation). Ragged columns shuffle their own
    /// prefix of the permutation.
    pub fn shuffle_rows<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let n = self.n_rows();
        if n < 2 {
            return;
        }
        let mut perm: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        for col in &mut self.columns {
            let old = col.values.clone();
            for (dst, &src) in perm.iter().enumerate() {
                if dst < col.values.len() && src < old.len() {
                    col.values[dst] = old[src].clone();
                }
            }
        }
    }

    /// Shuffles column order, returning the permutation applied
    /// (`new_index -> old_index`) so labels can be remapped (Table 6's
    /// "w/ shuffled cols" ablation).
    pub fn shuffle_cols<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Vec<usize> {
        let n = self.columns.len();
        let mut perm: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        let old = std::mem::take(&mut self.columns);
        let mut slots: Vec<Option<Column>> = old.into_iter().map(Some).collect();
        self.columns =
            perm.iter().map(|&src| slots[src].take().expect("perm is a bijection")).collect();
        perm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample() -> Table {
        Table::new(
            "t1",
            vec![
                Column::with_name(
                    "film",
                    vec!["Happy Feet".into(), "Cars".into(), "Flushed Away".into()],
                ),
                Column::with_name(
                    "director",
                    vec!["George Miller".into(), "John Lasseter".into(), "David Bowers".into()],
                ),
                Column::with_name("country", vec!["USA".into(), "UK".into(), "France".into()]),
            ],
        )
    }

    #[test]
    fn dims() {
        let t = sample();
        assert_eq!(t.n_cols(), 3);
        assert_eq!(t.n_rows(), 3);
    }

    #[test]
    fn shuffle_rows_keeps_row_alignment() {
        let mut t = sample();
        let mut rng = StdRng::seed_from_u64(1);
        t.shuffle_rows(&mut rng);
        // Every (film, director, country) triple must still be an original row.
        let orig = sample();
        for r in 0..3 {
            let triple = (
                t.columns[0].values[r].clone(),
                t.columns[1].values[r].clone(),
                t.columns[2].values[r].clone(),
            );
            let found = (0..3).any(|o| {
                triple
                    == (
                        orig.columns[0].values[o].clone(),
                        orig.columns[1].values[o].clone(),
                        orig.columns[2].values[o].clone(),
                    )
            });
            assert!(found, "row {r} was torn apart: {triple:?}");
        }
    }

    #[test]
    fn shuffle_cols_returns_valid_permutation() {
        let mut t = sample();
        let mut rng = StdRng::seed_from_u64(7);
        let perm = t.shuffle_cols(&mut rng);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
        let orig = sample();
        for (new_i, &old_i) in perm.iter().enumerate() {
            assert_eq!(t.columns[new_i], orig.columns[old_i]);
        }
    }

    #[test]
    fn numeric_fraction_detects_numbers() {
        let c = Column::new(vec!["12".into(), "3.5".into(), "abc".into(), "1999-04-03".into()]);
        assert!((c.numeric_fraction() - 0.75).abs() < 1e-6);
        assert_eq!(Column::new(vec![]).numeric_fraction(), 0.0);
    }

    #[test]
    fn numeric_like_edge_cases() {
        assert!(is_numeric_like("42"));
        assert!(is_numeric_like("-3.5"));
        assert!(is_numeric_like("1,234"));
        assert!(is_numeric_like("12:30"));
        assert!(is_numeric_like("978-3-16"));
        assert!(!is_numeric_like("abc"));
        assert!(!is_numeric_like(""));
        assert!(!is_numeric_like("--"));
        assert!(!is_numeric_like("v1.2"));
    }
}
