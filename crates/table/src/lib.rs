//! # doduo-table
//!
//! The relational substrate of the DODUO reproduction: the table data model
//! of §3.1 (columns of string-cast cell values), label vocabularies for
//! `C_type` / `C_rel`, annotated datasets with split/subsample utilities,
//! and the serialization schemes of §4.1-4.2 (table-wise with one `[CLS]`
//! per column; single-column; column-pair; `+metadata`; token budgets for
//! the Table 8 / Table 11 input-efficiency sweeps).

pub mod labels;
pub mod model;
pub mod serialize;

pub use labels::{AnnotatedTable, Dataset, LabelId, LabelVocab, RelAnnotation};
pub use model::{is_numeric_like, Column, Table};
pub use serialize::{
    assemble_single_column, assemble_table_wise, column_tokens, serialize_column_pair,
    serialize_single_column, serialize_table, single_column_budget, table_wise_budget,
    SerializeConfig, SerializedTable, NO_COLUMN,
};
