//! The batched engine's contract: `BatchAnnotator` output is byte-identical
//! to sequential `Annotator::annotate`, at every batch size and thread
//! count, in both input modes.

use doduo_core::{Annotator, AnnotatorBundle, DoduoConfig, DoduoModel, InputMode, TableAnnotation};
use doduo_datagen::{generate_wikitable, KbConfig, KnowledgeBase, WikiTableConfig};
use doduo_serve::{BatchAnnotator, BatchConfig};
use doduo_table::{SerializeConfig, Table};
use doduo_tensor::ParamStore;
use doduo_tokenizer::{TrainConfig as TokTrain, WordPiece};
use doduo_transformer::EncoderConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

struct World {
    bundle: Arc<AnnotatorBundle>,
    tables: Vec<Table>,
}

/// A seeded corpus of WikiTable-style tables plus a randomly initialized
/// model (annotation is deterministic regardless of training state).
fn world(mode: InputMode) -> World {
    let kb = KnowledgeBase::generate(&KbConfig::default(), 11);
    let ds = generate_wikitable(
        &kb,
        &WikiTableConfig { n_tables: 24, min_rows: 2, max_rows: 3, seed: 11 },
    );
    let corpus: Vec<String> = ds
        .tables
        .iter()
        .flat_map(|t| t.table.columns.iter())
        .flat_map(|c| c.values.iter().cloned())
        .collect();
    let tok = WordPiece::train(
        corpus.iter().map(String::as_str),
        &TokTrain { merges: 300, min_pair_count: 2, max_word_len: 24 },
    );
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(5);
    let enc = EncoderConfig::tiny(tok.vocab_size());
    let max_seq = enc.max_seq;
    let cfg = DoduoConfig::new(enc, ds.type_vocab.len(), ds.rel_vocab.len().max(1), true)
        .with_input_mode(mode)
        .with_serialize(SerializeConfig::new(8, max_seq));
    let model = DoduoModel::new(&mut store, cfg, "m", &mut rng);
    let tables: Vec<Table> = ds.tables.into_iter().map(|t| t.table).collect();
    let bundle =
        Arc::new(AnnotatorBundle::new(store, model, tok, ds.type_vocab, ds.rel_vocab, "m"));
    World { bundle, tables }
}

fn assert_bit_identical(a: &TableAnnotation, b: &TableAnnotation, table: usize) {
    assert_eq!(a.types.len(), b.types.len(), "table {table}: type count");
    for (x, y) in a.types.iter().zip(&b.types) {
        assert_eq!(x.column, y.column, "table {table}");
        assert_eq!(x.labels.len(), y.labels.len(), "table {table} col {}", x.column);
        for ((n1, s1), (n2, s2)) in x.labels.iter().zip(&y.labels) {
            assert_eq!(n1, n2, "table {table} col {}", x.column);
            assert_eq!(s1.to_bits(), s2.to_bits(), "table {table} col {}: score bits", x.column);
        }
    }
    assert_eq!(a.relations.len(), b.relations.len(), "table {table}: relation count");
    for (x, y) in a.relations.iter().zip(&b.relations) {
        assert_eq!((x.subject, x.object), (y.subject, y.object), "table {table}");
        for ((n1, s1), (n2, s2)) in x.labels.iter().zip(&y.labels) {
            assert_eq!(n1, n2, "table {table} rel ({}, {})", x.subject, x.object);
            assert_eq!(s1.to_bits(), s2.to_bits(), "table {table}: rel score bits");
        }
    }
}

fn annotator(w: &World) -> Annotator<'_> {
    w.bundle.annotator()
}

fn check_equivalence(mode: InputMode, threads: usize, max_batch: usize) {
    check_equivalence_with_tokens(mode, threads, max_batch, BatchConfig::default().max_batch_tokens)
}

fn check_equivalence_with_tokens(
    mode: InputMode,
    threads: usize,
    max_batch: usize,
    max_batch_tokens: usize,
) {
    let w = world(mode);
    let sequential: Vec<TableAnnotation> =
        w.tables.iter().map(|t| annotator(&w).annotate(t)).collect();
    let server = BatchAnnotator::with_config(
        Arc::clone(&w.bundle),
        BatchConfig { max_batch, max_batch_tokens, threads, cache_capacity: 512, quant: false },
    );
    let batched = server.annotate_batch(&w.tables);
    assert_eq!(batched.len(), sequential.len());
    for (i, (s, b)) in sequential.iter().zip(&batched).enumerate() {
        assert_bit_identical(s, b, i);
    }
}

#[test]
fn batched_equals_sequential_one_thread() {
    check_equivalence(InputMode::TableWise, 1, 8);
}

#[test]
fn batched_equals_sequential_four_threads() {
    check_equivalence(InputMode::TableWise, 4, 8);
}

#[test]
fn batched_equals_sequential_single_column_mode() {
    check_equivalence(InputMode::SingleColumn, 4, 16);
}

#[test]
fn batch_of_everything_in_one_forward() {
    // Both bounds larger than the corpus: the whole slice becomes one
    // packed forward pass and must still match.
    check_equivalence_with_tokens(InputMode::TableWise, 2, 1024, usize::MAX);
}

/// The quantized engine has the same scheduling invariance as f32: batched
/// multi-threaded annotation is bit-identical to one-table-at-a-time
/// quantized annotation, at every thread count and batch size.
#[test]
fn quant_batched_equals_quant_sequential_bitwise() {
    let w = world(InputMode::TableWise);
    let qm = w.bundle.quantized();
    let ann = annotator(&w);
    let sequential: Vec<TableAnnotation> = w
        .tables
        .iter()
        .map(|t| {
            let groups = [w.bundle.model.serialize_for_types(t, ann.tokenizer)];
            let refs: Vec<&[_]> = groups.iter().map(Vec::as_slice).collect();
            qm.annotate_serialized(&ann, &refs).into_iter().next().expect("one table")
        })
        .collect();
    for (threads, max_batch) in [(1usize, 8usize), (4, 8), (2, 1024)] {
        let server = BatchAnnotator::with_config(
            Arc::clone(&w.bundle),
            BatchConfig { max_batch, threads, quant: true, ..BatchConfig::default() },
        );
        assert!(server.is_quantized());
        let batched = server.annotate_batch(&w.tables);
        assert_eq!(batched.len(), sequential.len());
        for (i, (s, b)) in sequential.iter().zip(&batched).enumerate() {
            assert_bit_identical(s, b, i);
        }
    }
}

/// Turning quant on must not silently alter the f32 path: a default-config
/// engine stays f32 and still matches sequential annotation exactly.
#[test]
fn default_config_is_not_quantized() {
    let w = world(InputMode::TableWise);
    let server = BatchAnnotator::new(Arc::clone(&w.bundle));
    assert!(!server.is_quantized());
    let batched = server.annotate_batch(&w.tables[..4]);
    let sequential: Vec<TableAnnotation> =
        w.tables[..4].iter().map(|t| annotator(&w).annotate(t)).collect();
    for (i, (s, b)) in sequential.iter().zip(&batched).enumerate() {
        assert_bit_identical(s, b, i);
    }
}

#[test]
fn cache_dedupes_repeated_columns() {
    let w = world(InputMode::TableWise);
    let server = BatchAnnotator::new(Arc::clone(&w.bundle));
    let first = server.annotate_batch(&w.tables);
    let cold = server.cache_stats();
    assert_eq!(cold.hits + cold.misses, cold.misses, "first pass is all misses");
    // Annotating the same tables again must be answered from the cache.
    let second = server.annotate_batch(&w.tables);
    let warm = server.cache_stats();
    assert_eq!(warm.misses, cold.misses, "second pass must not retokenize");
    assert_eq!(warm.hits as usize, cold.misses as usize, "second pass is all hits");
    for (i, (a, b)) in first.iter().zip(&second).enumerate() {
        assert_bit_identical(a, b, i);
    }
}
