//! The batched annotation engine.
//!
//! [`BatchAnnotator::annotate_batch`] turns a slice of tables into
//! annotations in four deterministic stages:
//!
//! 1. serialize every table, memoizing per-column tokenization in the
//!    [`TokenCache`](crate::TokenCache);
//! 2. order tables by sequence length (longest first) so micro-batches
//!    carry similar-sized work items (packing is ragged — composition
//!    never changes compute, only scheduling balance);
//! 3. cut the ordered list into micro-batches of at most
//!    [`BatchConfig::max_batch`] sequences;
//! 4. stripe micro-batches across scoped worker threads, each running
//!    `Annotator::annotate_serialized` (one tape, one packed forward per
//!    micro-batch), and scatter results back into input order.
//!
//! Stages 2–4 never change the numbers — only how they are scheduled — so
//! the output is bit-identical to sequential `Annotator::annotate` calls.
//!
//! With [`BatchConfig::quant`] set, stage 4 dispatches through an int8
//! [`QuantizedModel`] instead. The scheduling guarantee is unchanged —
//! quantized activations are per-row and integer accumulation is exact, so
//! batch composition and thread count still never change the numbers — but
//! the numbers themselves are the quantized tier's, not the f32 reference's.
//!
//! The engine *owns* its model: construction takes an
//! `Arc<AnnotatorBundle>`, not a borrowed [`Annotator`]. That makes a whole
//! engine a swappable unit — the serving daemon hot-swaps models by
//! building a fresh `BatchAnnotator` around a new bundle and exchanging one
//! `Arc` for another, while in-flight batches keep annotating on the engine
//! (and therefore the exact model) they started with.

use crate::cache::{CacheStats, TokenCache};
use doduo_core::{Annotator, AnnotatorBundle, InputMode, QuantizedModel, TableAnnotation};
use doduo_table::{
    assemble_single_column, assemble_table_wise, column_tokens, single_column_budget,
    table_wise_budget, SerializedTable, Table,
};
use std::cmp::Reverse;
use std::sync::{Arc, Mutex};

/// Tuning knobs for [`BatchAnnotator`].
#[derive(Clone, Debug)]
pub struct BatchConfig {
    /// Maximum sequences packed into one forward pass (tables in table-wise
    /// mode, columns in single-column mode). Bigger batches amortize more
    /// per-pass overhead.
    pub max_batch: usize,
    /// Maximum total tokens packed into one forward pass. Packed
    /// activations are `[tokens, hidden]`; on CPU, keeping them inside the
    /// cache hierarchy is worth more than amortizing a few more tape
    /// setups, so batches are cut at whichever bound (`max_batch`,
    /// `max_batch_tokens`) hits first. The default is tuned for per-core
    /// cache sizes; raise it on accelerators where big uniform launches
    /// win.
    pub max_batch_tokens: usize,
    /// Worker threads to fan micro-batches across.
    pub threads: usize,
    /// Columns the tokenization cache keeps resident.
    pub cache_capacity: usize,
    /// Opt-in int8 inference: when `true`, the dense layers run the
    /// quantized kernels (built once from the f32 weights at construction)
    /// instead of the bit-identical f32 path. Accuracy-gated rather than
    /// bit-equal — see the two-tier numerics policy in
    /// `doduo_tensor::quant`.
    pub quant: bool,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch: 32,
            max_batch_tokens: 192,
            threads: doduo_tensor::default_threads(),
            cache_capacity: 4096,
            quant: false,
        }
    }
}

/// A multi-table, multi-threaded front end over a trained model: same
/// results as single-table annotation, serving throughput. Owns its
/// [`AnnotatorBundle`] behind an `Arc`, so the whole engine — weights,
/// tokenizer, vocabularies, caches, and the optional int8 twin — is one
/// swappable unit.
pub struct BatchAnnotator {
    bundle: Arc<AnnotatorBundle>,
    cfg: BatchConfig,
    cache: Mutex<TokenCache>,
    /// Present iff [`BatchConfig::quant`]: the int8 twin every micro-batch
    /// dispatches through instead of the f32 annotator. Rebuilt from the
    /// new bundle's f32 weights on every hot-swap, so both tiers always
    /// answer from the same model version.
    quant: Option<QuantizedModel>,
}

impl BatchAnnotator {
    /// Wraps a bundle with the default [`BatchConfig`].
    pub fn new(bundle: Arc<AnnotatorBundle>) -> Self {
        Self::with_config(bundle, BatchConfig::default())
    }

    /// Wraps a bundle with explicit batching/threading/caching knobs.
    /// When [`BatchConfig::quant`] is set, the int8 model is quantized
    /// here, once, from the bundle's f32 weights.
    pub fn with_config(bundle: Arc<AnnotatorBundle>, cfg: BatchConfig) -> Self {
        let cache = Mutex::new(TokenCache::new(cfg.cache_capacity));
        let quant = cfg.quant.then(|| bundle.quantized());
        BatchAnnotator { bundle, cfg, cache, quant }
    }

    /// A borrowed single-table annotator over the owned bundle.
    pub fn annotator(&self) -> Annotator<'_> {
        self.bundle.annotator()
    }

    /// The owned bundle (shared, not cloned).
    pub fn bundle(&self) -> &Arc<AnnotatorBundle> {
        &self.bundle
    }

    /// The active configuration.
    pub fn config(&self) -> &BatchConfig {
        &self.cfg
    }

    /// Tokenization-cache counters (hits, misses, occupancy).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.lock().expect("cache lock").stats()
    }

    /// Whether micro-batches run the int8 path instead of f32.
    pub fn is_quantized(&self) -> bool {
        self.quant.is_some()
    }

    /// Annotates every table, returning annotations in input order that are
    /// bit-identical to calling `Annotator::annotate` per table.
    pub fn annotate_batch(&self, tables: &[Table]) -> Vec<TableAnnotation> {
        // Stage 1: serialize through the tokenization cache. Cheap relative
        // to the forward passes, so it stays on the calling thread.
        let groups: Vec<Vec<SerializedTable>> =
            tables.iter().map(|t| self.serialize_table(t)).collect();
        self.annotate_groups(&groups)
    }

    /// Stages 2–4 of [`BatchAnnotator::annotate_batch`] over pre-serialized
    /// tables (one group per table, as produced by
    /// [`BatchAnnotator::serialize_table`]). Split out so callers that must
    /// know sequence sizes *before* committing to a batch — the
    /// `doduo-served` daemon's token-budget queue serializes on its
    /// connection threads, then batches whatever the dispatcher drained —
    /// reuse the exact same scheduling and keep its bit-identical guarantee.
    pub fn annotate_groups(&self, groups: &[Vec<SerializedTable>]) -> Vec<TableAnnotation> {
        let slots: Vec<Mutex<Option<TableAnnotation>>> =
            (0..groups.len()).map(|_| Mutex::new(None)).collect();
        self.annotate_groups_each(groups, &|i, ann| {
            *slots[i].lock().expect("slot lock") = Some(ann);
        });
        slots
            .into_iter()
            .map(|s| s.into_inner().expect("slot lock").expect("every table annotated"))
            .collect()
    }

    /// Like [`BatchAnnotator::annotate_groups`], but delivers each group's
    /// annotation through `on_done(group_index, annotation)` *as soon as its
    /// micro-batch finishes* instead of waiting for the whole call. The
    /// callback runs on whichever worker thread completed the micro-batch
    /// (hence `Sync`), at most once per group, with indices into `groups`.
    /// Streaming front ends (the daemon's `/annotate_stream`) use this to
    /// push per-table results while later micro-batches are still running;
    /// the annotations themselves are bit-identical to
    /// `Annotator::annotate`, exactly as in the collecting variant.
    pub fn annotate_groups_each(
        &self,
        groups: &[Vec<SerializedTable>],
        on_done: &(dyn Fn(usize, TableAnnotation) + Sync),
    ) {
        if groups.is_empty() {
            return;
        }
        // Stage 2: longest-first order groups similar lengths together so
        // micro-batches are comparable units of work for the stripe.
        let mut order: Vec<usize> = (0..groups.len()).collect();
        order.sort_by_key(|&i| Reverse(groups[i].iter().map(SerializedTable::len).max()));

        // Stage 3: micro-batches bounded by sequence count and total tokens
        // (always at least one table per batch, even if a table alone
        // exceeds a bound).
        let max_batch = self.cfg.max_batch.max(1);
        let max_tokens = self.cfg.max_batch_tokens.max(1);
        let mut batches: Vec<Vec<usize>> = Vec::new();
        let mut cur: Vec<usize> = Vec::new();
        let (mut cur_seqs, mut cur_tokens) = (0usize, 0usize);
        for &i in &order {
            let n = groups[i].len();
            let t: usize = groups[i].iter().map(SerializedTable::len).sum();
            if !cur.is_empty() && (cur_seqs + n > max_batch || cur_tokens + t > max_tokens) {
                batches.push(std::mem::take(&mut cur));
                cur_seqs = 0;
                cur_tokens = 0;
            }
            cur.push(i);
            cur_seqs += n;
            cur_tokens += t;
        }
        if !cur.is_empty() {
            batches.push(cur);
        }

        // Stage 4: stripe micro-batches across scoped workers sharing the
        // read-only parameter store, delivering each group's annotation the
        // moment its micro-batch completes.
        let threads = self.cfg.threads.clamp(1, batches.len());
        let batches = &batches;
        let bundle = &self.bundle;
        let quant = self.quant.as_ref();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    scope.spawn(move || {
                        let annotator = bundle.annotator();
                        for batch in batches.iter().skip(w).step_by(threads) {
                            let sliced: Vec<&[SerializedTable]> =
                                batch.iter().map(|&i| groups[i].as_slice()).collect();
                            let anns = match quant {
                                Some(qm) => qm.annotate_serialized(&annotator, &sliced),
                                None => annotator.annotate_serialized(&sliced),
                            };
                            for (&i, ann) in batch.iter().zip(anns) {
                                on_done(i, ann);
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("annotation worker panicked");
            }
        });
    }

    /// Serializes one table exactly as `DoduoModel::serialize_for_types`
    /// would, but sourcing per-column tokens from the LRU cache. Public so
    /// serving front ends can measure a table's token cost (for batching
    /// budgets) while warming the cache the later forward pass will hit.
    pub fn serialize_table(&self, table: &Table) -> Vec<SerializedTable> {
        let cfg = self.bundle.model.config();
        let ser = &cfg.serialize;
        match cfg.input_mode {
            InputMode::TableWise => {
                let budget = table_wise_budget(ser, table.n_cols());
                let toks: Vec<Arc<Vec<u32>>> = (0..table.n_cols())
                    .map(|c| self.cached_column(table, c, budget, ser.include_metadata))
                    .collect();
                let slices: Vec<&[u32]> = toks.iter().map(|t| t.as_slice()).collect();
                vec![assemble_table_wise(&slices)]
            }
            InputMode::SingleColumn => {
                let budget = single_column_budget(ser);
                (0..table.n_cols())
                    .map(|c| {
                        assemble_single_column(&self.cached_column(
                            table,
                            c,
                            budget,
                            ser.include_metadata,
                        ))
                    })
                    .collect()
            }
        }
    }

    /// Cached [`column_tokens`]: the key is the serialized column text plus
    /// everything tokenization depends on (budget and metadata flag), so
    /// equal columns under equal policies share one cache entry. Each text
    /// fragment is length-prefixed, so no cell content (including
    /// separator-like characters) can make two distinct columns collide.
    fn cached_column(
        &self,
        table: &Table,
        col: usize,
        budget: usize,
        include_metadata: bool,
    ) -> Arc<Vec<u32>> {
        let column = &table.columns[col];
        let mut key =
            String::with_capacity(32 + column.values.iter().map(String::len).sum::<usize>());
        key.push_str(&format!("b{budget}|m{}|", include_metadata as u8));
        if include_metadata {
            if let Some(name) = &column.name {
                key.push_str(&format!("n{}:", name.len()));
                key.push_str(name);
            }
        }
        for v in &column.values {
            key.push_str(&format!("|{}:", v.len()));
            key.push_str(v);
        }
        self.cache.lock().expect("cache lock").get_or_insert_with(&key, || {
            column_tokens(table, col, &self.bundle.tokenizer, budget, include_metadata)
        })
    }
}
