//! LRU memoization of per-column WordPiece tokenization.
//!
//! Tokenizing a column is pure — the token ids depend only on the column's
//! text, the token budget, and the metadata flag — so serving can trade a
//! hash lookup for a full WordPiece pass whenever the same column comes
//! back. Real table corpora repeat columns constantly (shared dimension
//! tables, re-annotated tables, enum-like value sets), which is the same
//! amortize-shared-work lever the enumeration-under-compression literature
//! applies to repeated query structure.

use std::collections::HashMap;
use std::sync::Arc;

/// Snapshot of a [`TokenCache`]'s counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to tokenize.
    pub misses: u64,
    /// Entries currently resident.
    pub len: usize,
    /// Maximum resident entries before eviction.
    pub capacity: usize,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache (`0.0` when empty).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    tokens: Arc<Vec<u32>>,
    /// Logical timestamp of the last touch; smallest = least recent.
    stamp: u64,
}

/// A least-recently-used map from serialized column text to token ids.
///
/// Values are `Arc`-shared so hits hand out the cached buffer without
/// copying. Eviction scans for the minimum stamp, which is `O(len)` but
/// only runs on insertion past capacity — cheap next to the WordPiece pass
/// it replaces at the capacities serving uses (thousands of entries).
pub struct TokenCache {
    map: HashMap<String, Entry>,
    capacity: usize,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl TokenCache {
    /// Creates a cache that holds at most `capacity` columns (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TokenCache {
            map: HashMap::with_capacity(capacity.min(4096)),
            capacity,
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Returns the tokens for `key`, computing and caching them via
    /// `tokenize` on a miss. The least recently used entry is evicted when
    /// the cache is full.
    pub fn get_or_insert_with(
        &mut self,
        key: &str,
        tokenize: impl FnOnce() -> Vec<u32>,
    ) -> Arc<Vec<u32>> {
        self.clock += 1;
        if let Some(e) = self.map.get_mut(key) {
            e.stamp = self.clock;
            self.hits += 1;
            return Arc::clone(&e.tokens);
        }
        self.misses += 1;
        if self.map.len() >= self.capacity {
            if let Some(oldest) =
                self.map.iter().min_by_key(|(_, e)| e.stamp).map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
            }
        }
        let tokens = Arc::new(tokenize());
        self.map.insert(key.to_string(), Entry { tokens: Arc::clone(&tokens), stamp: self.clock });
        tokens
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            len: self.map.len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_lookup_misses_second_hits() {
        let mut c = TokenCache::new(8);
        let a = c.get_or_insert_with("col-a", || vec![1, 2, 3]);
        assert_eq!(c.stats(), CacheStats { hits: 0, misses: 1, len: 1, capacity: 8 });
        let b = c.get_or_insert_with("col-a", || panic!("must not retokenize on a hit"));
        assert_eq!(*a, *b);
        assert_eq!(c.stats().hits, 1);
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let mut c = TokenCache::new(8);
        c.get_or_insert_with("x", || vec![1]);
        let y = c.get_or_insert_with("y", || vec![2]);
        assert_eq!(*y, vec![2]);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = TokenCache::new(2);
        c.get_or_insert_with("a", || vec![1]);
        c.get_or_insert_with("b", || vec![2]);
        // Touch "a" so "b" becomes the LRU entry.
        c.get_or_insert_with("a", || panic!("hit expected"));
        c.get_or_insert_with("c", || vec![3]);
        assert_eq!(c.stats().len, 2);
        // "a" survived, "b" was evicted.
        c.get_or_insert_with("a", || panic!("a must have survived eviction"));
        let before = c.stats().misses;
        c.get_or_insert_with("b", || vec![2]);
        assert_eq!(c.stats().misses, before + 1, "b must have been evicted");
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut c = TokenCache::new(0);
        c.get_or_insert_with("a", || vec![1]);
        assert_eq!(c.stats().capacity, 1);
        assert_eq!(c.stats().len, 1);
    }
}
