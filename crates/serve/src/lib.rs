//! # doduo-serve
//!
//! Batched, multi-threaded annotation serving for the DODUO reproduction —
//! the throughput layer the ROADMAP's production north star asks for.
//!
//! The training side of this workspace parallelizes *gradients* (one table
//! = one tape, fan-out in `doduo_tensor::parallel`); until this crate, the
//! serving side annotated exactly one table per call on one thread. A
//! [`BatchAnnotator`] closes that gap with three stacked levers:
//!
//! 1. **Tokenization dedup** — a [`TokenCache`] (LRU) memoizes WordPiece
//!    tokenization keyed by serialized column text, so repeated columns
//!    (dimension tables, shared vocabularies, re-submitted tables) skip
//!    the tokenizer entirely.
//! 2. **Packed batches** — sequences are packed row-wise, unpadded, into
//!    one ragged forward pass (`Encoder::forward_batch`), paying tape and
//!    scheduling overhead once per batch instead of once per table, while
//!    `Tape::mha_batch` keeps attention block-diagonal and each table
//!    pays exactly its own compute.
//! 3. **Thread fan-out** — micro-batches are striped across
//!    `std::thread::scope` workers (defaulting to
//!    `doduo_tensor::parallel::default_threads`), which share the
//!    read-only `ParamStore` without locking.
//!
//! All of it is *observationally free*: results are bit-identical to
//! calling `Annotator::annotate` once per table, in input order, at every
//! batch size and thread count.
//!
//! The engine owns its model: construction takes an
//! `Arc<doduo_core::AnnotatorBundle>`, which makes one `BatchAnnotator` a
//! complete, swappable serving unit — the daemon's hot-swap path builds a
//! fresh engine around a newly uploaded bundle and exchanges `Arc`s, while
//! in-flight batches finish on the engine they started with.
//!
//! ```no_run
//! # fn demo(bundle: std::sync::Arc<doduo_core::AnnotatorBundle>, tables: &[doduo_table::Table]) {
//! use doduo_serve::BatchAnnotator;
//! let server = BatchAnnotator::new(bundle);
//! let annotations = server.annotate_batch(tables);
//! # let _ = annotations;
//! # }
//! ```
#![warn(missing_docs)]

mod batch;
mod cache;

pub use batch::{BatchAnnotator, BatchConfig};
pub use cache::{CacheStats, TokenCache};
