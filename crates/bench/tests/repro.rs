//! Integration tests for the `repro` master binary.
//!
//! The cheap tests exercise the CLI surface (help, stage validation). The
//! `#[ignore]`d test runs a real `repro --scale quick --only serve` from a
//! scratch working directory — train → checkpoint → daemon → Table-3
//! checks — and is executed by CI's repro job (where the artifact cache is
//! already warm) via `cargo test --release -- --ignored`.

use std::path::PathBuf;
use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

#[test]
fn help_prints_stages_and_shared_flags() {
    let out = repro().arg("--help").output().expect("run repro --help");
    assert!(out.status.success(), "--help exits 0");
    let text = String::from_utf8_lossy(&out.stdout);
    for needle in ["tables", "train", "serve", "bench", "check", "--scale quick|full", "--bless"] {
        assert!(text.contains(needle), "help must mention {needle}: {text}");
    }
}

#[test]
fn unknown_stage_is_rejected_with_the_valid_list() {
    let out = repro().args(["--only", "deploy"]).output().expect("run repro");
    assert_eq!(out.status.code(), Some(2), "bad stage exits 2");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("deploy"), "error names the bad stage: {err}");
    assert!(err.contains("serve"), "error lists valid stages: {err}");
}

#[test]
fn bad_shared_flag_is_rejected() {
    let out = repro().args(["--scale", "medium"]).output().expect("run repro");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--scale"), "{err}");
}

/// The end-to-end gate: train a quick-scale checkpoint, serve it, and pass
/// the byte-identity + Table-3 checks — from a scratch working directory,
/// sharing only the artifact cache (via CARGO_TARGET_DIR). Expensive
/// (minutes cold, ~1 min warm), so `#[ignore]`d; CI runs it explicitly.
#[test]
#[ignore]
fn quick_serve_stage_passes_from_a_clean_tree() {
    // target/ of this build: CARGO_BIN_EXE_repro is target/<profile>/repro.
    let target_dir: PathBuf = PathBuf::from(env!("CARGO_BIN_EXE_repro"))
        .parent()
        .and_then(|p| p.parent())
        .expect("target dir")
        .to_path_buf();
    let scratch = std::env::temp_dir().join(format!("repro-it-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("create scratch dir");

    let out = repro()
        .args(["--scale", "quick", "--only", "serve"])
        .current_dir(&scratch)
        .env("CARGO_TARGET_DIR", &target_dir)
        .output()
        .expect("run repro");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "repro --only serve must pass from a clean tree\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(stdout.contains("byte-identical"), "serve stage ran the identity gate: {stdout}");
    assert!(!stdout.contains("[FAIL]"), "no failing checks: {stdout}");
    assert!(
        scratch.join("repro_out").join("doduo_quick.dckpt").exists(),
        "train stage wrote the checkpoint"
    );
    let _ = std::fs::remove_dir_all(&scratch);
}
