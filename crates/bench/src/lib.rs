//! Shared experiment harness for the per-table / per-figure binaries.
//!
//! Every binary follows the same recipe: build the deterministic world
//! (knowledge base → corpus → pretrained LM → benchmark datasets), train the
//! models its table needs, and print the paper's numbers next to the
//! measured ones. Expensive artifacts (the pretrained LM, fine-tuned model
//! weights) are cached under `target/doduo-cache/` keyed by configuration,
//! so binaries that share a model (e.g. default Doduo on WikiTable) train it
//! once.
//!
//! Run e.g. `cargo run --release -p doduo-bench --bin table3 -- --scale quick`.

use doduo_core::{
    build_finetune_model, evaluate, prepare, pretrain_lm, train, AttentionMode, DoduoConfig,
    DoduoModel, EvalScores, InputMode, PretrainRecipe, PretrainedLm, Task, TrainConfig,
};
use doduo_datagen::{
    generate_corpus, generate_viznet, generate_wikitable, CorpusConfig, KbConfig, KnowledgeBase,
    VizNetConfig, WikiTableConfig,
};
use doduo_table::{Dataset, SerializeConfig};
use doduo_tensor::serialize;
use doduo_tensor::ParamStore;
use doduo_tokenizer::{Vocab, WordPiece};
use doduo_transformer::{EncoderConfig, MlmConfig};
use std::io::Write as _;
use std::path::PathBuf;
use std::time::Instant;

pub mod artifact;
pub mod report;
pub mod stages;

/// Experiment scale, selectable with `--scale`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// The default: sized so each experiment finishes in minutes on a
    /// multi-core CPU while keeping the paper's qualitative shape.
    Full,
    /// A smoke-test scale for quick verification.
    Quick,
}

impl Scale {
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "full" => Some(Scale::Full),
            "quick" => Some(Scale::Quick),
            _ => None,
        }
    }
}

/// Command-line options shared by all experiment binaries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExpOptions {
    pub scale: Scale,
    pub seed: u64,
    /// Disable the on-disk artifact cache.
    pub no_cache: bool,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions { scale: Scale::Full, seed: 42, no_cache: false }
    }
}

/// Outcome of [`ExpOptions::parse`]: the caller distinguishes a usage
/// request from a malformed command line (different exit codes, same text).
#[derive(Debug, PartialEq, Eq)]
pub enum ArgError {
    /// `--help`/`-h` was passed.
    Help,
    /// A flag was unknown or had a bad value.
    Bad(String),
}

/// The flags every experiment binary shares, for a unified `--help`. The
/// one-line `about` comes from the binary; everything below it means the
/// same thing in every bin (including the `repro` harness, which forwards
/// these to the binaries it orchestrates).
pub fn shared_usage(bin: &str, about: &str) -> String {
    format!(
        "{bin} — {about}\n\
         \n\
         usage: {bin} [options]\n\
         \n\
         shared options (identical across all doduo-bench binaries):\n\
         \x20 --scale quick|full   experiment scale (default full; quick is the CI\n\
         \x20                      smoke scale — same shape, minutes not hours)\n\
         \x20 --seed N             world seed (default 42)\n\
         \x20 --no-cache           ignore and do not write target/doduo-cache/\n\
         \x20 --help, -h           this text"
    )
}

impl ExpOptions {
    /// Parses the shared flags (`--scale full|quick`, `--seed N`,
    /// `--no-cache`, `--help`) from an argument list (without `argv[0]`).
    pub fn parse(args: &[String]) -> Result<ExpOptions, ArgError> {
        let mut opts = ExpOptions::default();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    i += 1;
                    opts.scale = Scale::parse(args.get(i).map(String::as_str).unwrap_or(""))
                        .ok_or_else(|| ArgError::Bad("--scale must be full|quick".into()))?;
                }
                "--seed" => {
                    i += 1;
                    opts.seed = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| ArgError::Bad("--seed must be an integer".into()))?;
                }
                "--no-cache" => opts.no_cache = true,
                "--help" | "-h" => return Err(ArgError::Help),
                other => {
                    return Err(ArgError::Bad(format!(
                        "unknown argument {other} (expected --scale/--seed/--no-cache)"
                    )))
                }
            }
            i += 1;
        }
        Ok(opts)
    }

    /// Standard entry point for experiment binaries: parses
    /// `std::env::args()`, printing the unified usage text (with the bin's
    /// one-line `about`) on `--help` (exit 0) or a parse error (exit 2).
    pub fn from_args_for(about: &str) -> ExpOptions {
        let argv: Vec<String> = std::env::args().collect();
        let bin = argv
            .first()
            .map(|p| {
                std::path::Path::new(p)
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_else(|| p.clone())
            })
            .unwrap_or_else(|| "doduo-bench".into());
        match Self::parse(&argv[1..]) {
            Ok(opts) => opts,
            Err(ArgError::Help) => {
                println!("{}", shared_usage(&bin, about));
                std::process::exit(0)
            }
            Err(ArgError::Bad(msg)) => {
                eprintln!("{msg}\n\n{}", shared_usage(&bin, about));
                std::process::exit(2)
            }
        }
    }
}

/// The deterministic experiment world shared by all binaries.
pub struct World {
    pub opts: ExpOptions,
    pub kb: KnowledgeBase,
    pub lm: PretrainedLm,
    started: Instant,
}

/// Dataset splits used throughout.
pub struct Splits {
    pub train: Dataset,
    pub valid: Dataset,
    pub test: Dataset,
}

fn cache_dir() -> PathBuf {
    // target/ relative to the workspace root; fall back to CWD.
    let base = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into());
    let dir = PathBuf::from(base).join("doduo-cache");
    std::fs::create_dir_all(&dir).expect("create cache dir");
    dir
}

impl World {
    /// Builds (or loads from cache) the knowledge base, pretraining corpus
    /// and pretrained LM.
    pub fn bootstrap(opts: ExpOptions) -> World {
        let started = Instant::now();
        let kb = KnowledgeBase::generate(&KbConfig::default(), opts.seed);
        let lm = load_or_pretrain(&kb, &opts);
        eprintln!(
            "[world] LM ready: vocab={}, elapsed {:?}",
            lm.tokenizer.vocab_size(),
            started.elapsed()
        );
        World { opts, kb, lm, started }
    }

    pub fn elapsed(&self) -> std::time::Duration {
        self.started.elapsed()
    }

    /// The WikiTable-style benchmark split 70/10/20 (train/valid/test).
    pub fn wikitable(&self) -> Splits {
        let cfg = match self.opts.scale {
            Scale::Full => {
                WikiTableConfig { n_tables: 240, min_rows: 2, max_rows: 3, seed: self.opts.seed }
            }
            Scale::Quick => {
                WikiTableConfig { n_tables: 160, min_rows: 2, max_rows: 3, seed: self.opts.seed }
            }
        };
        let ds = generate_wikitable(&self.kb, &cfg);
        let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(self.opts.seed ^ 0x517);
        let (train, valid, test) = ds.split(0.7, 0.1, &mut rng);
        Splits { train, valid, test }
    }

    /// The VizNet-style benchmark split 70/10/20.
    pub fn viznet(&self) -> Splits {
        let cfg = match self.opts.scale {
            Scale::Full => {
                VizNetConfig { n_tables: 900, seed: self.opts.seed, ..Default::default() }
            }
            Scale::Quick => {
                VizNetConfig { n_tables: 200, seed: self.opts.seed, ..Default::default() }
            }
        };
        let ds = generate_viznet(&self.kb, &cfg);
        let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(self.opts.seed ^ 0x91a);
        let (train, valid, test) = ds.split(0.7, 0.1, &mut rng);
        Splits { train, valid, test }
    }

    /// Default fine-tuning schedule for this scale.
    pub fn train_config(&self) -> TrainConfig {
        match self.opts.scale {
            Scale::Full => {
                TrainConfig { epochs: 40, batch_size: 12, lr: 2e-3, ..Default::default() }
            }
            Scale::Quick => {
                TrainConfig { epochs: 30, batch_size: 8, lr: 2e-3, ..Default::default() }
            }
        }
    }

    /// Builds a Doduo-family model over the pretrained encoder.
    pub fn model(
        &self,
        spec: &ModelSpec,
        n_types: usize,
        n_rels: usize,
        multi_label: bool,
    ) -> (ParamStore, DoduoModel) {
        build_finetune_model(
            &self.lm,
            |enc| {
                let max_seq = enc.max_seq;
                let mut ser = SerializeConfig::new(spec.max_tokens_per_col, max_seq);
                if spec.metadata {
                    ser = ser.with_metadata();
                }
                DoduoConfig::new(enc, n_types, n_rels, multi_label)
                    .with_input_mode(spec.input_mode)
                    .with_attention(spec.attention)
                    .with_serialize(ser)
            },
            self.opts.seed ^ 0xf1e7,
        )
    }

    /// Trains (or loads from cache) a model variant and returns it together
    /// with its test scores.
    pub fn trained_model(
        &self,
        name: &str,
        spec: &ModelSpec,
        splits: &Splits,
        tasks: &[Task],
        multi_label: bool,
        cfg: &TrainConfig,
    ) -> TrainedModel {
        let n_types = splits.train.type_vocab.len();
        let n_rels = splits.train.rel_vocab.len().max(1);
        let (mut store, model) = self.model(spec, n_types, n_rels, multi_label);
        let key = format!(
            "{name}-h{}l{}-{:?}-{:?}-b{}-m{}-ml{}-t{:?}-e{}-lr{}-s{}-{:?}",
            self.lm.config.hidden,
            self.lm.config.layers,
            spec.input_mode,
            spec.attention,
            spec.max_tokens_per_col,
            spec.metadata,
            multi_label,
            tasks,
            cfg.epochs,
            cfg.lr,
            self.opts.seed,
            self.opts.scale,
        );
        let path = cache_dir().join(format!("{}.ckpt", sanitize(&key)));
        let tok = &self.lm.tokenizer;
        let train_p = prepare(&model, &splits.train, tok);
        let valid_p = prepare(&model, &splits.valid, tok);
        let mut loaded_from_cache = false;
        if !self.opts.no_cache {
            if let Ok(bytes) = std::fs::read(&path) {
                if serialize::load(&mut store, &bytes).is_ok() {
                    loaded_from_cache = true;
                    eprintln!("[cache] loaded {name} from {}", path.display());
                }
            }
        }
        if !loaded_from_cache {
            let t = Instant::now();
            let report = train(&model, &mut store, &train_p, &valid_p, tasks, cfg);
            eprintln!(
                "[train] {name}: best epoch {} (val {:.3}) in {:?}",
                report.best_epoch,
                report.best_score,
                t.elapsed()
            );
            if !self.opts.no_cache {
                let blob = serialize::save(&store);
                let mut f = std::fs::File::create(&path).expect("write cache");
                f.write_all(&blob).expect("write cache");
            }
        }
        let test_p = prepare(&model, &splits.test, tok);
        let scores = evaluate(&model, &store, &test_p, doduo_tensor::default_threads());
        TrainedModel { store, model, scores }
    }
}

/// A model-variant specification (the rows of the paper's tables).
#[derive(Clone, Debug)]
pub struct ModelSpec {
    pub input_mode: InputMode,
    pub attention: AttentionMode,
    pub max_tokens_per_col: usize,
    pub metadata: bool,
}

impl ModelSpec {
    /// Doduo's default configuration (table-wise, full attention, 32
    /// tokens/col as in Table 8's best row).
    pub fn doduo() -> ModelSpec {
        ModelSpec {
            input_mode: InputMode::TableWise,
            attention: AttentionMode::Full,
            max_tokens_per_col: 32,
            metadata: false,
        }
    }

    /// TURL reproduction: restricted attention via the visibility matrix.
    pub fn turl() -> ModelSpec {
        ModelSpec { attention: AttentionMode::ColumnVisibility, ..ModelSpec::doduo() }
    }

    /// Single-column ablation (DosoloSCol).
    pub fn single_column() -> ModelSpec {
        ModelSpec { input_mode: InputMode::SingleColumn, ..ModelSpec::doduo() }
    }

    pub fn with_metadata(mut self) -> ModelSpec {
        self.metadata = true;
        self
    }

    pub fn with_budget(mut self, budget: usize) -> ModelSpec {
        self.max_tokens_per_col = budget;
        self
    }
}

/// A trained variant plus its held-out scores.
pub struct TrainedModel {
    pub store: ParamStore,
    pub model: DoduoModel,
    pub scores: EvalScores,
}

fn sanitize(key: &str) -> String {
    key.chars().map(|c| if c.is_alphanumeric() || c == '-' || c == '.' { c } else { '_' }).collect()
}

/// Trains the Sherlock baseline on a split and returns its test predictions
/// (label sets per column) together with gold labels.
pub fn run_sherlock(
    splits: &Splits,
    multi_label: bool,
    scale: Scale,
    seed: u64,
) -> (Vec<Vec<u32>>, Vec<Vec<u32>>) {
    use doduo_baselines::{featurize, Sherlock, SherlockConfig};
    let cfg = SherlockConfig {
        epochs: if scale == Scale::Full { 80 } else { 30 },
        multi_label,
        seed,
        ..Default::default()
    };
    let mut store = ParamStore::new();
    let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(seed);
    let model = Sherlock::new(&mut store, splits.train.type_vocab.len(), cfg, &mut rng);
    let train_ex = featurize(&splits.train);
    model.train(&mut store, &train_ex);
    let test_ex = featurize(&splits.test);
    let pred = model.predict(&store, &test_ex);
    let gold: Vec<Vec<u32>> = test_ex.iter().map(|e| e.gold.clone()).collect();
    (pred, gold)
}

/// Applies row / column shuffling to every table of a dataset (Table 6).
pub fn shuffled_dataset(ds: &Dataset, rows: bool, cols: bool, seed: u64) -> Dataset {
    let mut out = ds.clone();
    let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(seed);
    for t in &mut out.tables {
        if rows {
            t.shuffle_rows(&mut rng);
        }
        if cols {
            t.shuffle_cols(&mut rng);
        }
    }
    out
}

// -------------------------------------------------------- LM caching

fn lm_cache_paths(opts: &ExpOptions) -> (PathBuf, PathBuf, PathBuf) {
    let dir = cache_dir();
    let stem = format!("lm-v6-{:?}-{}", opts.scale, opts.seed);
    (
        dir.join(format!("{stem}.ckpt")),
        dir.join(format!("{stem}.vocab")),
        dir.join(format!("{stem}.cfg")),
    )
}

fn encoder_cfg_to_text(c: &EncoderConfig) -> String {
    format!(
        "{} {} {} {} {} {} {}",
        c.vocab_size, c.hidden, c.layers, c.heads, c.ffn, c.max_seq, c.dropout
    )
}

fn encoder_cfg_from_text(s: &str) -> Option<EncoderConfig> {
    let parts: Vec<&str> = s.split_whitespace().collect();
    if parts.len() != 7 {
        return None;
    }
    Some(EncoderConfig {
        vocab_size: parts[0].parse().ok()?,
        hidden: parts[1].parse().ok()?,
        layers: parts[2].parse().ok()?,
        heads: parts[3].parse().ok()?,
        ffn: parts[4].parse().ok()?,
        max_seq: parts[5].parse().ok()?,
        dropout: parts[6].parse().ok()?,
    })
}

fn pretrain_recipe(scale: Scale) -> PretrainRecipe {
    match scale {
        Scale::Full => PretrainRecipe {
            mlm: MlmConfig { epochs: 12, ..Default::default() },
            pack_epochs: 0,
            ..Default::default()
        },
        Scale::Quick => {
            let mut r = PretrainRecipe::default();
            r.mlm.epochs = 6;
            r.pack_epochs = 0;
            r
        }
    }
}

fn load_or_pretrain(kb: &KnowledgeBase, opts: &ExpOptions) -> PretrainedLm {
    let (ckpt, vocab_path, cfg_path) = lm_cache_paths(opts);
    if !opts.no_cache {
        if let (Ok(weights), Ok(vocab_text), Ok(cfg_text)) = (
            std::fs::read(&ckpt),
            std::fs::read_to_string(&vocab_path),
            std::fs::read_to_string(&cfg_path),
        ) {
            if let (Some(vocab), Some(config)) =
                (Vocab::from_text(&vocab_text), encoder_cfg_from_text(&cfg_text))
            {
                eprintln!("[cache] pretrained LM loaded from {}", ckpt.display());
                return PretrainedLm {
                    tokenizer: WordPiece::from_vocab(vocab, 48),
                    config,
                    weights: bytes::Bytes::from(weights),
                    losses: Vec::new(),
                };
            }
        }
    }
    let t = Instant::now();
    let corpus = generate_corpus(kb, &CorpusConfig { seed: opts.seed, ..Default::default() });
    let corpus = match opts.scale {
        Scale::Full => corpus,
        Scale::Quick => corpus.into_iter().take(4000).collect(),
    };
    let recipe = pretrain_recipe(opts.scale);
    let lm = pretrain_lm(&corpus, &recipe, opts.seed);
    eprintln!("[pretrain] {} sentences, losses {:?} in {:?}", corpus.len(), lm.losses, t.elapsed());
    if !opts.no_cache {
        std::fs::write(&ckpt, &lm.weights).expect("cache LM weights");
        std::fs::write(&vocab_path, lm.tokenizer.vocab().to_text()).expect("cache vocab");
        std::fs::write(&cfg_path, encoder_cfg_to_text(&lm.config)).expect("cache cfg");
    }
    lm
}

#[cfg(test)]
mod tests {
    use super::*;
    use doduo_datagen::{generate_wikitable, KbConfig, KnowledgeBase, WikiTableConfig};

    #[test]
    fn scale_parses() {
        assert_eq!(Scale::parse("full"), Some(Scale::Full));
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("medium"), None);
    }

    fn args(xs: &[&str]) -> Vec<String> {
        xs.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn shared_args_parse() {
        let o = ExpOptions::parse(&args(&["--scale", "quick", "--seed", "7", "--no-cache"]))
            .expect("valid args");
        assert_eq!(o.scale, Scale::Quick);
        assert_eq!(o.seed, 7);
        assert!(o.no_cache);
        let d = ExpOptions::parse(&[]).expect("empty args are the defaults");
        assert_eq!(d.scale, Scale::Full);
        assert_eq!(d.seed, 42);
        assert!(!d.no_cache);
    }

    #[test]
    fn bad_shared_args_are_errors_not_panics() {
        assert!(matches!(
            ExpOptions::parse(&args(&["--scale", "medium"])),
            Err(ArgError::Bad(m)) if m.contains("--scale")
        ));
        assert!(matches!(
            ExpOptions::parse(&args(&["--seed", "many"])),
            Err(ArgError::Bad(m)) if m.contains("--seed")
        ));
        assert!(matches!(
            ExpOptions::parse(&args(&["--frobnicate"])),
            Err(ArgError::Bad(m)) if m.contains("--frobnicate")
        ));
        assert_eq!(ExpOptions::parse(&args(&["--help"])), Err(ArgError::Help));
        assert_eq!(ExpOptions::parse(&args(&["-h"])), Err(ArgError::Help));
    }

    #[test]
    fn usage_text_names_the_shared_flags() {
        let u = shared_usage("table3", "WikiTable micro-F1");
        for needle in ["table3", "WikiTable micro-F1", "--scale quick|full", "--seed", "--no-cache"]
        {
            assert!(u.contains(needle), "usage must mention {needle}");
        }
    }

    #[test]
    fn model_specs_encode_paper_variants() {
        let doduo = ModelSpec::doduo();
        assert_eq!(doduo.input_mode, InputMode::TableWise);
        assert_eq!(doduo.attention, AttentionMode::Full);
        assert!(!doduo.metadata);
        let turl = ModelSpec::turl();
        assert_eq!(turl.attention, AttentionMode::ColumnVisibility);
        let scol = ModelSpec::single_column();
        assert_eq!(scol.input_mode, InputMode::SingleColumn);
        let meta = ModelSpec::doduo().with_metadata();
        assert!(meta.metadata);
        assert_eq!(ModelSpec::doduo().with_budget(8).max_tokens_per_col, 8);
    }

    #[test]
    fn sanitize_makes_safe_filenames() {
        let s = sanitize("wiki-doduo-TableWise-b32 (ml=true)/seed:42");
        assert!(s.chars().all(|c| c.is_alphanumeric() || c == '-' || c == '.' || c == '_'));
    }

    #[test]
    fn shuffled_dataset_preserves_annotations() {
        let kb = KnowledgeBase::generate(&KbConfig::default(), 1);
        let ds = generate_wikitable(&kb, &WikiTableConfig { n_tables: 20, ..Default::default() });
        let rows = shuffled_dataset(&ds, true, false, 7);
        rows.validate().expect("row-shuffled dataset stays valid");
        let cols = shuffled_dataset(&ds, false, true, 7);
        cols.validate().expect("col-shuffled dataset stays valid");
        // Row shuffling keeps annotations identical.
        for (a, b) in ds.tables.iter().zip(rows.tables.iter()) {
            assert_eq!(a.col_types, b.col_types);
        }
        // Column shuffling must actually permute at least one table.
        let changed =
            ds.tables.iter().zip(cols.tables.iter()).any(|(a, b)| a.col_types != b.col_types);
        assert!(changed);
    }

    #[test]
    fn encoder_cfg_text_roundtrip() {
        let cfg = EncoderConfig::mini(1234);
        let text = encoder_cfg_to_text(&cfg);
        assert_eq!(encoder_cfg_from_text(&text), Some(cfg));
        assert_eq!(encoder_cfg_from_text("1 2 3"), None);
    }
}
