//! Bench-artifact schema validation (the library behind `report --check`).
//!
//! The committed `BENCH_*.json` files are the repo's performance evidence;
//! CI regenerates them on every push and downstream tooling (and the
//! ROADMAP) reads them. This module keeps them honest: every file must
//! match the expected schema for its `"bench"` kind (`throughput`, `gemm`,
//! `serve`) **and** carry a `host` metadata block (core count, target
//! features, commit, scale — see [`crate::stages::HostMeta`]) so a curve
//! measured on a 1-core container can never masquerade as a multi-core
//! run. JSON parsing reuses the daemon's hand-rolled parser — no new deps.

use doduo_served::json::Json;
use std::path::Path;

/// Validates one artifact file, returning a one-line headline on success
/// or the list of schema violations.
pub fn check_bench_file(path: &Path) -> Result<String, Vec<String>> {
    let text = std::fs::read_to_string(path).map_err(|e| vec![format!("unreadable: {e}")])?;
    check_bench_text(&text)
}

/// Validates one artifact's JSON text (see [`check_bench_file`]).
pub fn check_bench_text(text: &str) -> Result<String, Vec<String>> {
    let v = Json::parse(text).map_err(|e| vec![format!("not valid JSON: {e}")])?;
    let mut c = Checker::default();
    c.str_in(&v, "scale", &["quick", "full"]);
    c.num(&v, "seed");
    check_host(&v, &mut c);
    let kind = match v.get("bench").and_then(Json::as_str) {
        Some(k) => k.to_string(),
        None => {
            c.errs.push("missing string field \"bench\"".into());
            return Err(c.errs);
        }
    };
    let headline = match kind.as_str() {
        "throughput" => check_throughput(&v, &mut c),
        "gemm" => check_gemm(&v, &mut c),
        "serve" => check_serve(&v, &mut c),
        other => {
            c.errs.push(format!("unknown bench kind {other:?}"));
            String::new()
        }
    };
    if c.errs.is_empty() {
        Ok(headline)
    } else {
        Err(c.errs)
    }
}

/// The required host-metadata block: without it a committed artifact's
/// numbers are unattributable (the long-standing "checkout carries 1-core
/// numbers while CI uploads 4-vCPU artifacts" trap).
fn check_host(v: &Json, c: &mut Checker) {
    let Some(host) = v.get("host") else {
        c.errs.push(
            "missing object field \"host\" (cores/arch/target_features/commit/scale); \
             regenerate this artifact with the repro harness"
                .into(),
        );
        return;
    };
    let cores = c.num(host, "cores");
    if c.errs.is_empty() && cores < 1.0 {
        c.errs.push(format!("host.cores is {cores}, expected >= 1"));
    }
    for k in ["arch", "target_features", "commit"] {
        c.str_any(host, k);
    }
    c.str_in(host, "scale", &["quick", "full"]);
    // The host block's scale must agree with the artifact's top-level one.
    let (top, inner) =
        (v.get("scale").and_then(Json::as_str), host.get("scale").and_then(Json::as_str));
    if let (Some(t), Some(i)) = (top, inner) {
        if t != i {
            c.errs.push(format!("host.scale {i:?} disagrees with top-level scale {t:?}"));
        }
    }
}

#[derive(Default)]
struct Checker {
    errs: Vec<String>,
}

impl Checker {
    fn num(&mut self, v: &Json, key: &str) -> f64 {
        match v.get(key).and_then(Json::as_f64) {
            Some(n) if n.is_finite() => n,
            _ => {
                self.errs.push(format!("missing/non-finite number field {key:?}"));
                0.0
            }
        }
    }

    fn str_in(&mut self, v: &Json, key: &str, allowed: &[&str]) {
        match v.get(key).and_then(Json::as_str) {
            Some(s) if allowed.contains(&s) => {}
            Some(s) => self.errs.push(format!("{key:?} is {s:?}, expected one of {allowed:?}")),
            None => self.errs.push(format!("missing string field {key:?}")),
        }
    }

    fn str_any(&mut self, v: &Json, key: &str) {
        if v.get(key).and_then(Json::as_str).is_none() {
            self.errs.push(format!("missing string field {key:?}"));
        }
    }

    fn arr<'a>(&mut self, v: &'a Json, key: &str) -> &'a [Json] {
        match v.get(key).and_then(Json::as_array) {
            Some(a) if !a.is_empty() => a,
            Some(_) => {
                self.errs.push(format!("array field {key:?} must not be empty"));
                &[]
            }
            None => {
                self.errs.push(format!("missing array field {key:?}"));
                &[]
            }
        }
    }
}

fn check_throughput(v: &Json, c: &mut Checker) -> String {
    c.num(v, "corpus_tables");
    let threads = c.num(v, "max_threads");
    let results = c.arr(v, "results").to_vec();
    let mut best = 0.0f64;
    let mut has_sequential = false;
    for (i, r) in results.iter().enumerate() {
        c.str_in(r, "mode", &["sequential", "batched", "batched_gemm_stripes", "batched_int8"]);
        for k in ["batch_size", "threads", "tables", "elapsed_ms", "tables_per_sec"] {
            c.num(r, k);
        }
        c.num(r, "cache_hit_rate");
        if r.get("mode").and_then(Json::as_str) == Some("sequential") {
            has_sequential = true;
        }
        best = best.max(r.get("tables_per_sec").and_then(Json::as_f64).unwrap_or(0.0));
        if c.errs.len() > 16 {
            c.errs.push(format!("... giving up at results[{i}]"));
            break;
        }
    }
    if !has_sequential {
        c.errs.push("no \"sequential\" baseline cell in results".into());
    }
    for t in c.arr(v, "thread_scaling").to_vec() {
        c.num(&t, "threads");
        c.num(&t, "best_tables_per_sec");
    }
    match v.get("speedup") {
        Some(s) => {
            c.num(s, "value");
            for side in ["numerator", "denominator"] {
                match s.get(side) {
                    Some(side_v) => {
                        c.str_any(side_v, "mode");
                        c.num(side_v, "batch_size");
                        c.num(side_v, "threads");
                    }
                    None => c.errs.push(format!("speedup is missing {side:?}")),
                }
            }
        }
        None => c.errs.push("missing object field \"speedup\"".into()),
    }
    // The int8 engine comparison is newer than the speedup block; require
    // only its value when the object is present so older artifacts still
    // report a single clear "missing" error.
    match v.get("int8_vs_f32") {
        Some(s) => {
            c.num(s, "value");
        }
        None => c.errs.push("missing object field \"int8_vs_f32\"".into()),
    }
    format!("{} cells, best {best:.0} tables/sec, {threads:.0} threads", results.len())
}

fn check_gemm(v: &Json, c: &mut Checker) -> String {
    c.num(v, "max_threads");
    c.arr(v, "thread_grid");
    let shapes = c.arr(v, "shapes").to_vec();
    for s in &shapes {
        c.str_any(s, "label");
        c.str_in(s, "variant", &["nn", "nt", "tn"]);
        for k in ["m", "k", "n", "naive_gflops", "speedup_blocked_1t_vs_naive"] {
            c.num(s, k);
        }
        for b in c.arr(s, "blocked").to_vec() {
            c.num(&b, "threads");
            c.num(&b, "gflops");
        }
        // Forward (`nn`) shapes carry the int8 cell; its speedup must ride
        // along with it.
        if s.get("int8_gops_1t").is_some() {
            c.num(s, "int8_gops_1t");
            c.num(s, "speedup_int8_1t_vs_blocked_1t");
        }
        if c.errs.len() > 16 {
            c.errs.push("... giving up".into());
            break;
        }
    }
    let min = c.num(v, "min_speedup_blocked_1t_vs_naive_mini_shapes");
    let int8 = c.num(v, "max_speedup_int8_1t_vs_blocked_1t_mini_shapes");
    format!(
        "{} shapes, min mini-shape speedup {min:.2}x, best mini-shape int8 speedup {int8:.2}x",
        shapes.len()
    )
}

fn check_serve(v: &Json, c: &mut Checker) -> String {
    c.num(v, "corpus_tables");
    c.num(v, "max_threads");
    let results = c.arr(v, "results").to_vec();
    let mut best = 0.0f64;
    for r in &results {
        c.str_in(r, "topology", &["epoll", "thread_per_conn", "pool", "replicated"]);
        c.str_in(r, "mode", &["request", "stream", "idle_fleet", "chaos"]);
        c.str_in(r, "policy", &["eager", "coalesce"]);
        for k in [
            "workers",
            "max_delay_ms",
            "replicas",
            "clients",
            "requests",
            "connects",
            "sheds",
            "errors",
            "restarts",
            "availability",
            "conn_reuse_rate",
            "secs",
            "tables_per_sec",
        ] {
            c.num(r, k);
        }
        let avail = r.get("availability").and_then(Json::as_f64).unwrap_or(-1.0);
        if !(0.0..=1.0).contains(&avail) {
            c.errs.push(format!("availability {avail} outside [0, 1]"));
        }
        match r.get("latency_ms") {
            Some(l) => {
                for k in ["mean", "p50", "p99", "max"] {
                    c.num(l, k);
                }
                let (p50, p99) = (
                    l.get("p50").and_then(Json::as_f64).unwrap_or(0.0),
                    l.get("p99").and_then(Json::as_f64).unwrap_or(0.0),
                );
                if p99 + 1e-9 < p50 {
                    c.errs.push(format!("latency p99 {p99} < p50 {p50}"));
                }
            }
            None => c.errs.push("cell is missing \"latency_ms\"".into()),
        }
        best = best.max(r.get("tables_per_sec").and_then(Json::as_f64).unwrap_or(0.0));
        if c.errs.len() > 16 {
            c.errs.push("... giving up".into());
            break;
        }
    }
    format!("{} cells, best {best:.0} tables/sec", results.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stages::HostMeta;
    use crate::Scale;

    /// A minimal valid gemm artifact, with or without the host block.
    fn gemm_json(host: Option<&str>) -> String {
        let host_line = host.map(|h| format!("  \"host\": {h},\n")).unwrap_or_default();
        format!(
            "{{\n  \"bench\": \"gemm\",\n  \"scale\": \"quick\",\n  \"seed\": 42,\n{host_line}\
             \"max_threads\": 1,\n  \"thread_grid\": [1],\n  \"shapes\": [\n    \
             {{\"label\": \"s\", \"variant\": \"nn\", \"m\": 4, \"k\": 4, \"n\": 4, \
             \"naive_gflops\": 1.0, \"blocked\": [{{\"threads\": 1, \"gflops\": 2.0}}], \
             \"speedup_blocked_1t_vs_naive\": 2.0, \"int8_gops_1t\": 5.0, \
             \"speedup_int8_1t_vs_blocked_1t\": 2.5}}\n  ],\n  \
             \"min_speedup_blocked_1t_vs_naive_mini_shapes\": 2.0,\n  \
             \"max_speedup_int8_1t_vs_blocked_1t_mini_shapes\": 2.5\n}}\n"
        )
    }

    #[test]
    fn artifact_with_host_block_passes() {
        let host = HostMeta::detect(Scale::Quick).to_json();
        let text = gemm_json(Some(&host));
        let headline = check_bench_text(&text).expect("valid artifact passes");
        assert!(headline.contains("1 shapes"));
    }

    #[test]
    fn artifact_missing_host_block_is_rejected() {
        let errs = check_bench_text(&gemm_json(None)).expect_err("missing host must fail");
        assert!(errs.iter().any(|e| e.contains("\"host\"")), "names the host block: {errs:?}");
    }

    #[test]
    fn host_block_missing_fields_is_rejected() {
        let errs = check_bench_text(&gemm_json(Some("{\"cores\": 4}")))
            .expect_err("incomplete host must fail");
        assert!(errs.iter().any(|e| e.contains("target_features")), "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("commit")), "{errs:?}");
    }

    #[test]
    fn host_scale_must_agree_with_top_level() {
        let host = "{\"cores\": 1, \"arch\": \"x86_64\", \"target_features\": \"avx2\", \
                    \"commit\": \"abc\", \"scale\": \"full\"}";
        let errs = check_bench_text(&gemm_json(Some(host))).expect_err("scale mismatch fails");
        assert!(errs.iter().any(|e| e.contains("disagrees")), "{errs:?}");
    }

    #[test]
    fn unknown_bench_kind_is_rejected() {
        let host = HostMeta::detect(Scale::Quick).to_json();
        let text = format!(
            "{{\"bench\": \"mystery\", \"scale\": \"quick\", \"seed\": 1, \"host\": {host}}}"
        );
        let errs = check_bench_text(&text).expect_err("unknown kind fails");
        assert!(errs.iter().any(|e| e.contains("mystery")), "{errs:?}");
    }

    /// A minimal valid serve artifact with one cell of the given topology,
    /// mode, and availability.
    fn serve_json(topology: &str, mode: &str, availability: f64) -> String {
        let host = HostMeta::detect(Scale::Quick).to_json();
        format!(
            "{{\n  \"bench\": \"serve\",\n  \"scale\": \"quick\",\n  \"seed\": 42,\n  \
             \"host\": {host},\n  \"corpus_tables\": 8,\n  \"max_threads\": 1,\n  \
             \"results\": [\n    {{\"topology\": \"{topology}\", \"mode\": \"{mode}\", \
             \"workers\": 2, \"policy\": \"eager\", \"max_delay_ms\": 0, \"replicas\": 3, \
             \"clients\": 4, \"requests\": 100, \"connects\": 4, \"sheds\": 1, \
             \"errors\": 0, \"restarts\": 1, \"availability\": {availability}, \
             \"conn_reuse_rate\": 0.96, \"secs\": 1.0, \"tables_per_sec\": 100.0, \
             \"latency_ms\": {{\"mean\": 1.0, \"p50\": 1.0, \"p99\": 2.0, \"max\": 3.0}}}}\n  \
             ]\n}}\n"
        )
    }

    #[test]
    fn serve_artifact_with_replicated_chaos_cell_passes() {
        let headline =
            check_bench_text(&serve_json("replicated", "chaos", 1.0)).expect("valid serve passes");
        assert!(headline.contains("1 cells"), "{headline}");
    }

    #[test]
    fn serve_cell_missing_fault_fields_is_rejected() {
        let text = serve_json("replicated", "request", 1.0)
            .replace("\"sheds\": 1, ", "")
            .replace("\"restarts\": 1, ", "");
        let errs = check_bench_text(&text).expect_err("missing fields must fail");
        assert!(errs.iter().any(|e| e.contains("sheds")), "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("restarts")), "{errs:?}");
    }

    #[test]
    fn serve_availability_outside_unit_interval_is_rejected() {
        let errs =
            check_bench_text(&serve_json("replicated", "chaos", 1.5)).expect_err("1.5 must fail");
        assert!(errs.iter().any(|e| e.contains("outside [0, 1]")), "{errs:?}");
    }
}
