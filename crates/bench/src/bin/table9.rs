//! Table 9 — the §7 case study: clustering semantically similar columns of
//! an enterprise HR database (10 jobsearch/review tables, ~50 columns,
//! 15 ground-truth clusters).
//!
//! Six methods, scored with Homogeneity (Precision) / Completeness (Recall)
//! / V-Measure (F1). Paper: Doduo+value emb 68.2/70.4/69.3,
//! Doduo+predicted type 44.9/61.3/51.8, fastText+value 35.9/76.6/48.9,
//! fastText+name 56.6/74.7/64.4, COMA 58.5/66.1/62.0,
//! DistributionBased 23.9/69.5/35.5.
//!
//! Key claims: contextualized embeddings win on Precision and F1; the Doduo
//! model transfers *out of domain* (trained on WikiTable, applied to HR
//! data); fastText's static embeddings over-merge (high recall, low
//! precision).

use doduo_baselines::{coma_matches, distribution_matches, FastText, FastTextConfig};
use doduo_bench::report::{pct, Report};
use doduo_bench::{ExpOptions, ModelSpec, World};
use doduo_core::{Annotator, Task};
use doduo_datagen::{generate_case_study, generate_corpus, CaseStudyConfig, CorpusConfig};
use doduo_eval::{completeness, connected_components, homogeneity, kmeans, v_measure};

type Hcv = (f64, f64, f64);

fn scores(gold: &[usize], pred: &[usize]) -> Hcv {
    (homogeneity(gold, pred), completeness(gold, pred), v_measure(gold, pred))
}

fn main() {
    let opts = ExpOptions::from_args_for("Table 9: multi-task vs single-task training");
    let world = World::bootstrap(opts);

    // The Doduo model is trained on WikiTable (a *different domain*, §7).
    let splits = world.wikitable();
    let cfg = world.train_config();
    let doduo = world.trained_model(
        "wiki-doduo",
        &ModelSpec::doduo(),
        &splits,
        &[Task::ColumnType, Task::ColumnRelation],
        true,
        &cfg,
    );
    let annotator = Annotator {
        model: &doduo.model,
        store: &doduo.store,
        tokenizer: &world.lm.tokenizer,
        type_vocab: &splits.train.type_vocab,
        rel_vocab: &splits.train.rel_vocab,
    };

    let study = generate_case_study(
        &world.kb,
        &CaseStudyConfig { seed: world.opts.seed, ..Default::default() },
    );
    let gold: Vec<usize> = study.columns.iter().map(|c| c.cluster as usize).collect();
    let k = doduo_datagen::ALL_CLUSTERS.len();
    let n_cols = gold.len();

    // --- Doduo + contextualized column value embeddings.
    let mut doduo_embs = Vec::with_capacity(n_cols);
    for table in &study.tables {
        doduo_embs.extend(annotator.column_embeddings(table));
    }
    let doduo_pred = kmeans(&doduo_embs, k, 100, world.opts.seed);

    // --- Doduo + predicted type as the cluster id.
    let mut type_pred = Vec::with_capacity(n_cols);
    for table in &study.tables {
        type_pred.extend(annotator.predicted_type_ids(table).into_iter().map(|t| t as usize));
    }

    // --- fastText embeddings (trained on the same pretraining corpus).
    let corpus =
        generate_corpus(&world.kb, &CorpusConfig { seed: world.opts.seed, ..Default::default() });
    let ft =
        FastText::train(&corpus, FastTextConfig { seed: world.opts.seed, ..Default::default() });
    let mut ft_value_embs = Vec::with_capacity(n_cols);
    let mut ft_name_embs = Vec::with_capacity(n_cols);
    for table in &study.tables {
        for col in &table.columns {
            ft_value_embs.push(ft.embed_column_values(&col.values));
            ft_name_embs.push(ft.embed_text(col.name.as_deref().unwrap_or("")));
        }
    }
    let ft_value_pred = kmeans(&ft_value_embs, k, 100, world.opts.seed);
    let ft_name_pred = kmeans(&ft_name_embs, k, 100, world.opts.seed);

    // --- Schema matchers → connected components.
    let coma_pred = connected_components(n_cols, &coma_matches(&study.tables, 0.55));
    let dist_pred = connected_components(n_cols, &distribution_matches(&study.tables, 0.35));

    let rows: Vec<(&str, Hcv, [&str; 3])> = vec![
        ("Doduo+column value emb", scores(&gold, &doduo_pred), ["68.2", "70.4", "69.3"]),
        ("Doduo+predicted type", scores(&gold, &type_pred), ["44.9", "61.3", "51.8"]),
        ("fastText+column value emb", scores(&gold, &ft_value_pred), ["35.9", "76.6", "48.9"]),
        ("fastText+column name emb", scores(&gold, &ft_name_pred), ["56.6", "74.7", "64.4"]),
        ("COMA (with column name)", scores(&gold, &coma_pred), ["58.5", "66.1", "62.0"]),
        ("DistributionBased", scores(&gold, &dist_pred), ["23.9", "69.5", "35.5"]),
    ];

    let mut r = Report::new(
        "Table 9: case-study column clustering (paper vs measured)",
        &["method", "Prec(H)", "Rec(C)", "F1(V)", "paper P", "paper R", "paper F1"],
    );
    for (name, (h, c, v), paper) in &rows {
        r.row(&[
            (*name).into(),
            pct(*h),
            pct(*c),
            pct(*v),
            paper[0].into(),
            paper[1].into(),
            paper[2].into(),
        ]);
    }

    let best_f1 = rows.iter().map(|r| r.1 .2).fold(f64::NEG_INFINITY, f64::max);
    r.check(
        "Doduo value embeddings have the best F1 (paper: 69.3 best)",
        (rows[0].1 .2 - best_f1).abs() < 1e-9,
    );
    r.check(
        "contextual embeddings beat predicted-type clustering (paper: 69.3 > 51.8)",
        rows[0].1 .2 > rows[1].1 .2,
    );
    r.check(
        "fastText value emb: recall > precision (over-merging, paper: 76.6 vs 35.9)",
        rows[2].1 .1 > rows[2].1 .0,
    );
    r.check(
        "Doduo value emb precision > fastText value emb precision (paper: 68.2 > 35.9)",
        rows[0].1 .0 > rows[2].1 .0,
    );
    r.check(
        "DistributionBased falls short on precision (paper: 23.9 lowest)",
        rows[5].1 .0 < rows[0].1 .0,
    );
    r.print();
    eprintln!("[table9] total elapsed {:?}", world.elapsed());
}
