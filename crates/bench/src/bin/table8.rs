//! Table 8 — input-data efficiency on WikiTable: Doduo trained with
//! different `MaxToken/col` budgets.
//!
//! Paper: 8 tokens → 89.8 type / 88.9 rel F1 (56 max cols @ 512);
//! 16 → 91.4 / 90.7 (30); 32 → 92.4 / 91.7 (15). The claim: 8 tokens per
//! column already beat the TURL baseline for type prediction.

use doduo_bench::report::{pct, Report};
use doduo_bench::{ExpOptions, ModelSpec, World};
use doduo_core::Task;
use doduo_table::SerializeConfig;

fn main() {
    let opts = ExpOptions::from_args_for("Table 8: metadata (table context) ablation");
    let world = World::bootstrap(opts);
    let splits = world.wikitable();
    let cfg = world.train_config();
    let both = [Task::ColumnType, Task::ColumnRelation];

    let paper: &[(usize, &str, &str, usize)] =
        &[(8, "89.8", "88.9", 56), (16, "91.4", "90.7", 30), (32, "92.4", "91.7", 15)];

    // TURL reference for the "8 tokens already beat TURL" claim.
    let turl = world.trained_model("wiki-turl", &ModelSpec::turl(), &splits, &both, true, &cfg);

    let mut r = Report::new(
        "Table 8: MaxToken/col sweep on WikiTable (paper vs measured)",
        &[
            "budget",
            "type F1",
            "rel F1",
            "max cols (ours)",
            "paper type",
            "paper rel",
            "max cols (paper@512)",
        ],
    );
    let mut results = Vec::new();
    for &(budget, p_type, p_rel, p_cols) in paper {
        let m = world.trained_model(
            &format!("wiki-doduo-b{budget}"),
            &ModelSpec::doduo().with_budget(budget),
            &splits,
            &both,
            true,
            &cfg,
        );
        let ours_cols = SerializeConfig::new(budget, world.lm.config.max_seq).max_supported_cols();
        r.row(&[
            budget.to_string(),
            pct(m.scores.type_micro.f1),
            pct(m.scores.rel_micro.unwrap().f1),
            ours_cols.to_string(),
            p_type.into(),
            p_rel.into(),
            p_cols.to_string(),
        ]);
        results.push((budget, m.scores.type_micro.f1, m.scores.rel_micro.unwrap().f1));
    }

    r.check(
        "more tokens help type F1: 32 >= 8 (paper: 92.4 > 89.8)",
        results[2].1 >= results[0].1 - 0.01,
    );
    r.check(
        "more tokens help rel F1: 32 >= 8 (paper: 91.7 > 88.9)",
        results[2].2 >= results[0].2 - 0.01,
    );
    r.check(
        "8 tokens/col already competitive with TURL on types (paper: 89.8 > 88.86)",
        results[0].1 > turl.scores.type_micro.f1 - 0.03,
    );
    r.check(
        "relations need more tokens than types (paper: rel catches TURL only at 32)",
        (results[2].2 - results[0].2) >= (results[2].1 - results[0].1) - 0.02,
    );
    r.print();
    eprintln!("[table8] total elapsed {:?}", world.elapsed());
}
