//! Extension experiment (paper §B, "Clean data vs. dirty data"): the paper
//! assumes clean values and cites follow-up evidence that LM-based
//! approaches degrade gracefully on dirty data. We measure it: the default
//! Doduo is trained on clean WikiTable data and evaluated on test sets with
//! increasing corruption (missing values, misplaced values, typos).
//!
//! Expected shape: graceful degradation — mild corruption costs a few
//! points, not a collapse.

use doduo_bench::report::{pct, Report};
use doduo_bench::{ExpOptions, ModelSpec, World};
use doduo_core::{evaluate, prepare, Task};
use doduo_datagen::{corrupt_dataset, corruption_rate, DirtyConfig};

fn main() {
    let opts = ExpOptions::from_args_for(
        "Dirty-cell robustness ablation (noise injected at increasing rates)",
    );
    let world = World::bootstrap(opts);
    let splits = world.wikitable();
    let cfg = world.train_config();
    let m = world.trained_model(
        "wiki-doduo",
        &ModelSpec::doduo(),
        &splits,
        &[Task::ColumnType, Task::ColumnRelation],
        true,
        &cfg,
    );

    let mut r = Report::new(
        "Ablation (extension): Doduo on corrupted test tables",
        &["test set", "cell corruption", "type F1", "rel F1"],
    );
    let mut series = Vec::new();
    for (name, dirty_cfg) in [
        ("clean", None),
        ("mild", Some(DirtyConfig::mild(world.opts.seed ^ 0xd1))),
        ("heavy", Some(DirtyConfig::heavy(world.opts.seed ^ 0xd2))),
    ] {
        let test = match &dirty_cfg {
            None => splits.test.clone(),
            Some(dc) => corrupt_dataset(&splits.test, dc),
        };
        let rate = corruption_rate(&splits.test, &test);
        let prepared = prepare(&m.model, &test, &world.lm.tokenizer);
        let scores = evaluate(&m.model, &m.store, &prepared, doduo_tensor::default_threads());
        r.row(&[
            name.into(),
            format!("{:.1}%", rate * 100.0),
            pct(scores.type_micro.f1),
            scores.rel_micro.map(|x| pct(x.f1)).unwrap_or("-".into()),
        ]);
        series.push((name, scores.type_micro.f1));
    }
    let clean = series[0].1;
    let mild = series[1].1;
    let heavy = series[2].1;
    r.check("mild corruption degrades gracefully (≤ 15 F1 points)", clean - mild < 0.15);
    r.check("degradation is monotone in corruption", clean >= mild && mild >= heavy);
    r.check(
        "heavy corruption does not collapse the model (≥ half of clean F1)",
        heavy > clean * 0.5,
    );
    r.print();
    eprintln!("[ablation_dirty] total elapsed {:?}", world.elapsed());
}
