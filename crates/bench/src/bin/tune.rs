//! Hyper-parameter probe (not a paper experiment): trains key variants on
//! the current WikiTable scale and prints test F1, to calibrate the
//! benchmark difficulty so orderings are visible below the ceiling.
use doduo_bench::{ExpOptions, ModelSpec, World};
use doduo_core::Task;

fn main() {
    let mut opts = ExpOptions::from_args_for(
        "Hyper-parameter sweep helper (not a paper experiment; always uncached)",
    );
    opts.no_cache = true;
    let world = World::bootstrap(opts);
    let splits = world.wikitable();
    let cfg = world.train_config();
    let both = [Task::ColumnType, Task::ColumnRelation];
    for (name, spec, tasks) in [
        ("doduo", ModelSpec::doduo(), &both[..]),
        ("turl", ModelSpec::turl(), &both[..]),
        ("scol-type", ModelSpec::single_column(), &[Task::ColumnType][..]),
    ] {
        let m = world.trained_model(name, &spec, &splits, tasks, true, &cfg);
        eprintln!(
            "== {name}: test type F1 {:.3} rel {:?}",
            m.scores.type_micro.f1,
            m.scores.rel_micro.map(|r| (r.f1 * 1000.0).round() / 1000.0)
        );
    }
}
