//! Table 13 — language-model probing on the VizNet type vocabulary
//! (Appendix A.5): template "`<value>` is a `<type>`" scored by the vanilla
//! pretrained LM over all 78 candidate type names.
//!
//! Paper's finding: types verbalized in the pretraining corpus (year,
//! state, language, day, manufacturer) probe well, while types the corpus
//! never verbalizes (organisation, nationality, creator, affiliation,
//! birthPlace) land at the bottom. Our corpus verbalizes the same kinds of
//! facts, so the same tiers emerge.

use doduo_bench::report::Report;
use doduo_bench::{ExpOptions, World};
use doduo_core::instantiate_lm;
use doduo_datagen::{gen_value, VIZNET_TYPES};
use doduo_eval::{aggregate_probes, top_bottom, ProbeItem};
use doduo_tokenizer::{CLS, SEP};
use doduo_transformer::pseudo_perplexity;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SAMPLES_PER_TYPE: usize = 3;

fn main() {
    let opts = ExpOptions::from_args_for("Table 13: error analysis by column cardinality");
    let world = World::bootstrap(opts);
    let (store, encoder, head) = instantiate_lm(&world.lm);
    let tok = &world.lm.tokenizer;
    let mut rng = StdRng::seed_from_u64(world.opts.seed ^ 0x13bb);

    let encode = |sentence: &str| {
        let mut ids = vec![CLS];
        ids.extend(tok.encode(sentence));
        ids.push(SEP);
        ids
    };

    // Candidate words: the type names themselves, lower-cased (birthDate →
    // "birthdate" via the tokenizer's lowercasing).
    let candidates: Vec<String> = VIZNET_TYPES.iter().map(|t| t.to_lowercase()).collect();
    let article = |word: &str| {
        if word.starts_with(['a', 'e', 'i', 'o', 'u']) {
            "an"
        } else {
            "a"
        }
    };

    let mut items: Vec<(String, ProbeItem)> = Vec::new();
    for (true_idx, ty) in VIZNET_TYPES.iter().enumerate() {
        for _ in 0..SAMPLES_PER_TYPE {
            let value = gen_value(ty, &world.kb, &mut rng);
            let ppls: Vec<f32> = candidates
                .iter()
                .map(|cand| {
                    let s = format!("{value} is {} {cand}", article(cand));
                    pseudo_perplexity(&encoder, &head, &store, &encode(&s))
                })
                .collect();
            items.push((ty.to_string(), ProbeItem { ppls, true_idx }));
        }
    }
    let stats = aggregate_probes(&items);
    let (top, bottom) = top_bottom(stats.clone(), 5);

    let mut r = Report::new(
        "Table 13: VizNet type probing over 78 candidates (paper top-5: year, manufacturer, day, state, language)",
        &["tier", "type", "avg rank", "PPL/avg PPL"],
    );
    for (tier, list) in [("Top-5", &top), ("Bottom-5", &bottom)] {
        for s in list {
            r.row(&[
                tier.into(),
                s.class.clone(),
                format!("{:.2}", s.avg_rank),
                format!("{:.3}", s.avg_norm_ppl),
            ]);
        }
    }

    // Corpus-verbalized types should out-probe never-verbalized ones.
    let verbalized = [
        "city", "country", "team", "religion", "genre", "person", "director", "artist", "language",
    ];
    let mean = |pred: &dyn Fn(&str) -> bool| {
        let xs: Vec<f64> = stats.iter().filter(|s| pred(&s.class)).map(|s| s.avg_rank).collect();
        if xs.is_empty() {
            f64::NAN
        } else {
            xs.iter().sum::<f64>() / xs.len() as f64
        }
    };
    let seen_mean = mean(&|c: &str| verbalized.contains(&c));
    let unseen = ["organisation", "affiliation", "creator", "requirement", "credit"];
    let unseen_mean = mean(&|c: &str| unseen.contains(&c));
    r.check(
        format!(
            "corpus-verbalized types probe better (avg rank {seen_mean:.1} vs {unseen_mean:.1}; paper: same split)"
        ),
        seen_mean < unseen_mean,
    );
    r.check(
        "top-5 normalized PPL < bottom-5 normalized PPL (paper: 0.80-0.84 vs 1.15-1.33)",
        top.iter().map(|s| s.avg_norm_ppl).sum::<f64>()
            < bottom.iter().map(|s| s.avg_norm_ppl).sum::<f64>(),
    );
    r.print();
    eprintln!("[table13] total elapsed {:?}", world.elapsed());
}
